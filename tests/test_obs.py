"""Tests for the observability layer: tracing, metrics, progress hooks."""

from __future__ import annotations

import io
import json

import pytest

from repro import Graph, MQCEEngine, Q, prepare_graph
from repro.core.fastqc import FastQC
from repro.core.stats import SearchStatistics
from repro.graph.generators import planted_quasi_clique_graph
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    ProgressTicker,
    Tracer,
    counter_snapshot,
    heartbeat,
    peak_rss_bytes,
    validate_chrome_trace,
    validate_chrome_trace_file,
)
from repro.obs.metrics import REGISTRY
from repro.pipeline.mqce import run_enumeration


@pytest.fixture
def medium_graph():
    return planted_quasi_clique_graph(60, 120, [8, 7, 6], 0.9, seed=11)


# ----------------------------------------------------------------------
# Spans: nesting, counter deltas, pause/resume, null path
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("query"):
            with tracer.span("prepare"):
                pass
            with tracer.span("enumerate"):
                with tracer.span("shrink"):
                    pass
        assert [span.name for span in tracer.spans] == ["query"]
        root = tracer.spans[0]
        assert [child.name for child in root.children] == ["prepare", "enumerate"]
        assert [g.name for g in root.children[1].children] == ["shrink"]

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [span.name for span in tracer.spans] == ["a", "b"]

    def test_counter_delta(self):
        stats = SearchStatistics()
        tracer = Tracer()
        with tracer.span("enumerate", stats=stats) as span:
            stats.branches_explored += 7
            stats.outputs += 2
        assert span.counters == {"branches_explored": 7, "outputs": 2}

    def test_counter_delta_ignores_unchanged(self):
        stats = SearchStatistics()
        stats.branches_explored = 5
        tracer = Tracer()
        with tracer.span("enumerate", stats=stats) as span:
            pass
        assert span.counters == {}

    def test_callable_stats_resolved_at_exit(self):
        # DCFastQC swaps in a fresh statistics object when a run starts; a
        # callable stats source must observe the new object, not the old one.
        holder = {"stats": SearchStatistics()}
        tracer = Tracer()
        with tracer.span("enumerate", stats=lambda: holder["stats"]) as span:
            holder["stats"] = SearchStatistics()
            holder["stats"].branches_explored = 3
        assert span.counters == {"branches_explored": 3}

    def test_attributes_and_annotate(self):
        tracer = Tracer()
        with tracer.span("plan", algorithm="dcfastqc") as span:
            span.annotate(branching="hybrid")
        assert span.attributes == {"algorithm": "dcfastqc", "branching": "hybrid"}

    def test_pause_stops_the_clock(self):
        tracer = Tracer()
        with tracer.span("enumerate") as span:
            span.pause()
            for _ in range(1000):
                pass
            paused_at = span.seconds
            span.resume()
        assert span.seconds >= paused_at

    def test_seconds_positive_and_elapsed_monotone(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            first = span.elapsed()
            second = span.elapsed()
            assert second >= first >= 0.0
        assert span.seconds > 0.0

    def test_null_tracer_retains_nothing(self):
        stats = SearchStatistics()
        with NULL_TRACER.span("enumerate", stats=stats) as span:
            stats.branches_explored += 4
        assert NULL_TRACER.spans == []
        assert span.counters == {}
        # ...but its spans still time, so callers can reuse span.seconds.
        assert span.seconds > 0.0

    def test_counter_snapshot_skips_non_ints(self):
        stats = SearchStatistics()
        snapshot = counter_snapshot(stats)
        assert "subproblem_sizes" not in snapshot
        assert snapshot["branches_explored"] == 0
        assert counter_snapshot(None) == {}

    def test_coverage_of_full_window(self):
        tracer = Tracer()
        with tracer.span("query"):
            sum(range(200_000))  # real work: exit bookkeeping becomes noise
        assert tracer.coverage() == pytest.approx(1.0, abs=0.05)


# ----------------------------------------------------------------------
# Chrome trace export + schema validation
# ----------------------------------------------------------------------
class TestChromeTrace:
    def test_export_is_schema_valid(self):
        tracer = Tracer()
        with tracer.span("query", gamma=0.9):
            with tracer.span("enumerate"):
                pass
        payload = tracer.chrome_trace(pid=1)
        assert validate_chrome_trace(payload) == []
        names = [event["name"] for event in payload["traceEvents"]]
        assert names == ["process_name", "query", "enumerate"]

    def test_child_nested_within_parent_timestamps(self):
        tracer = Tracer()
        with tracer.span("query"):
            with tracer.span("enumerate"):
                pass
        events = {e["name"]: e for e in tracer.chrome_trace(pid=1)["traceEvents"]
                  if e["ph"] == "X"}
        assert events["enumerate"]["ts"] >= events["query"]["ts"]
        assert events["enumerate"]["dur"] <= events["query"]["dur"] * 1.01 + 1

    def test_validator_flags_problems(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) != []
        assert validate_chrome_trace({"traceEvents": [{}]}) != []
        bad_phase = {"traceEvents": [
            {"name": "x", "ph": "B", "pid": 1, "tid": 0}]}
        assert any(".ph" in error for error in validate_chrome_trace(bad_phase))

    def test_write_and_validate_file(self, tmp_path):
        tracer = Tracer()
        with tracer.span("query"):
            pass
        path = tmp_path / "trace.json"
        tracer.write(str(path), format="chrome")
        payload = validate_chrome_trace_file(str(path))
        assert payload["displayTimeUnit"] == "ms"

    def test_write_json_format(self, tmp_path):
        tracer = Tracer()
        with tracer.span("query"):
            pass
        path = tmp_path / "trace.json"
        tracer.write(str(path), format="json")
        data = json.loads(path.read_text())
        assert data["spans"][0]["name"] == "query"
        with pytest.raises(ValueError):
            tracer.write(str(path), format="xml")

    def test_invalid_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"traceEvents": "nope"}')
        with pytest.raises(ValueError):
            validate_chrome_trace_file(str(path))


# ----------------------------------------------------------------------
# End-to-end tracing through the pipeline and engine
# ----------------------------------------------------------------------
class TestPipelineTracing:
    def test_run_enumeration_spans(self, medium_graph):
        from repro.api import QuerySpec

        tracer = Tracer()
        result = run_enumeration(medium_graph, QuerySpec(gamma=0.9, theta=5),
                                 tracer=tracer)
        names = [span.name for span in tracer.spans]
        assert names == ["enumerate", "filter"]
        enumerate_span = tracer.spans[0]
        assert enumerate_span.counters.get("branches_explored", 0) > 0
        assert enumerate_span.seconds == result.enumeration_seconds
        assert tracer.spans[1].seconds == result.filtering_seconds

    def test_engine_query_trace_covers_wall_clock(self, medium_graph):
        tracer = Tracer()
        engine = MQCEEngine()
        prepared = prepare_graph(medium_graph)
        result = engine.query(prepared, 0.9, 5, trace=tracer)
        assert result.maximal_count > 0
        assert [span.name for span in tracer.spans] == ["query"]
        root = tracer.spans[0]
        child_names = [child.name for child in root.children]
        assert child_names[0] == "prepare"
        assert "plan" in child_names and "cache" in child_names
        assert "enumerate" in child_names and "filter" in child_names
        # The acceptance bar: root spans cover >= 95% of the traced window.
        assert tracer.coverage() >= 0.95

    def test_engine_cache_hit_trace(self, medium_graph):
        engine = MQCEEngine()
        prepared = prepare_graph(medium_graph)
        engine.query(prepared, 0.9, 5)
        tracer = Tracer()
        engine.query(prepared, 0.9, 5, trace=tracer)
        root = tracer.spans[0]
        assert root.attributes.get("served") == "cache"
        cache_span = next(c for c in root.children if c.name == "cache")
        assert cache_span.attributes == {"hit": True}

    def test_stream_trace_attached(self, medium_graph):
        engine = MQCEEngine()
        stream = engine.stream(prepare_graph(medium_graph), 0.9, 5,
                               trace=(tracer := Tracer()))
        assert stream.tracer is tracer
        results = list(stream)
        assert results
        enumerate_span = tracer.spans[0]
        assert enumerate_span.name == "enumerate"
        assert enumerate_span.attributes.get("streaming") is True
        assert enumerate_span.counters.get("branches_explored", 0) > 0

    def test_containment_and_topk_traced(self, medium_graph):
        tracer = Tracer()
        engine = MQCEEngine()
        prepared = prepare_graph(medium_graph)
        spec = Q(medium_graph).gamma(0.9).theta(4).containing(
            next(iter(medium_graph.vertices()))).spec()
        engine.query(prepared, spec, trace=tracer)
        root = tracer.spans[0]
        names = [child.name for child in root.children]
        assert "enumerate" in names and "filter" in names

        topk_tracer = Tracer()
        spec = Q(medium_graph).gamma(0.9).theta(4).top(2).spec()
        engine.query(prepared, spec, trace=topk_tracer)
        root = topk_tracer.spans[0]
        enumerate_span = next(c for c in root.children if c.name == "enumerate")
        assert enumerate_span.attributes.get("workload") == "topk"
        assert any(c.name == "threshold_round" for c in enumerate_span.children)


# ----------------------------------------------------------------------
# Metrics registry + Prometheus exposition
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("x_total", "help text")
        counter.inc()
        counter.inc(2, path="live")
        assert counter.value() == 1
        assert counter.value(path="live") == 2

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4

    def test_histogram_observe(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        for size in (1, 2, 3, 100):
            histogram.observe(size)
        assert histogram.value().count == 4
        assert histogram.value().max == 100

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("dual")
        with pytest.raises(ValueError):
            registry.gauge("dual")

    def test_reset_keeps_handles_valid(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc(5)
        registry.reset()
        assert counter.value() == 0
        counter.inc()
        assert registry.counter("c_total").value() == 1

    def test_prometheus_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_demo_total", "A demo counter").inc(3, kind="a")
        page = registry.render_prometheus(include_process=False)
        assert "# HELP repro_demo_total A demo counter\n" in page
        assert "# TYPE repro_demo_total counter\n" in page
        assert 'repro_demo_total{kind="a"} 3\n' in page

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("esc_total").inc(1, path='a"b\\c')
        page = registry.render_prometheus(include_process=False)
        assert 'path="a\\"b\\\\c"' in page

    def test_prometheus_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("sizes", "sizes")
        for size in (1, 1, 3, 9):
            histogram.observe(size)
        page = registry.render_prometheus(include_process=False)
        lines = [line for line in page.splitlines() if line.startswith("sizes")]
        # log2 buckets: key 1 covers [1,1] (le=1), key 2 covers [2,3] (le=3),
        # key 8 covers [8,15] (le=15); cumulative counts 2, 3, 4.
        assert 'sizes_bucket{le="1"} 2' in lines
        assert 'sizes_bucket{le="3"} 3' in lines
        assert 'sizes_bucket{le="15"} 4' in lines
        assert 'sizes_bucket{le="+Inf"} 4' in lines
        assert "sizes_sum 14" in lines
        assert "sizes_count 4" in lines

    def test_prometheus_process_gauges(self):
        page = MetricsRegistry().render_prometheus(include_process=True)
        if peak_rss_bytes() is not None:
            assert "repro_process_peak_rss_bytes" in page

    def test_snapshot_merge_round_trip(self):
        source = MetricsRegistry()
        source.counter("c_total").inc(3, op="add")
        source.gauge("g").set(7)
        source.histogram("h").observe(5)
        target = MetricsRegistry()
        target.counter("c_total").inc(1, op="add")
        target.merge(source.snapshot())
        target.merge(source.snapshot())
        assert target.counter("c_total").value(op="add") == 7
        assert target.gauge("g").value() == 7
        assert target.histogram("h").value().count == 2

    def test_snapshot_is_json_safe(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(4, kind="x")
        json.dumps(registry.snapshot())


class TestEngineMetrics:
    def test_query_paths_feed_the_global_registry(self, medium_graph):
        queries = REGISTRY.counter("repro_engine_queries_total")
        hits = REGISTRY.counter("repro_cache_hits_total")
        executed_before = queries.value(served="execute")
        cached_before = queries.value(served="cache")
        hits_before = hits.value()
        engine = MQCEEngine()
        prepared = prepare_graph(medium_graph)
        engine.query(prepared, 0.9, 5)
        engine.query(prepared, 0.9, 5)
        assert queries.value(served="execute") == executed_before + 1
        assert queries.value(served="cache") == cached_before + 1
        assert hits.value() == hits_before + 1

    def test_dynamic_sync_metrics(self):
        from repro import DynamicEngine

        syncs = REGISTRY.counter("repro_dynamic_syncs_total")
        mutations = REGISTRY.counter("repro_dynamic_mutations_total")
        before = syncs.value()
        mutations_before = mutations.value(op="add_edge")
        graph = Graph(edges=[(1, 2), (2, 3), (1, 3)])
        dynamic = DynamicEngine(graph)
        dynamic.add_edge(3, 4)
        assert syncs.value() == before + 1
        assert mutations.value(op="add_edge") == mutations_before + 1

    def test_parallel_workers_merge_into_registry(self):
        from repro import ParallelDCFastQC
        from repro.core import dcfastqc_enumerate

        graph = planted_quasi_clique_graph(80, 160, [9, 8, 7], 0.9, seed=29)
        subproblems = REGISTRY.counter("repro_parallel_subproblems_total")
        branches = REGISTRY.counter("repro_parallel_worker_branches_total")
        sizes = REGISTRY.histogram("repro_parallel_subproblem_sizes")
        subproblems_before = subproblems.value()
        branches_before = branches.value()
        sizes_before = sizes.value().count
        parallel = ParallelDCFastQC(graph, 0.9, 6, workers=2, chunk_size=4)
        result = parallel.enumerate()
        assert set(result) == set(dcfastqc_enumerate(graph, 0.9, 6))
        assert subproblems.value() > subproblems_before
        assert branches.value() >= branches_before
        assert sizes.value().count > sizes_before


# ----------------------------------------------------------------------
# Progress hooks
# ----------------------------------------------------------------------
class TestProgress:
    def test_invalid_period(self):
        with pytest.raises(ValueError):
            ProgressTicker(lambda event: None, every=0)

    def test_fires_every_period(self):
        events = []
        ticker = ProgressTicker(events.append, every=3)
        for depth in range(10):
            ticker.on_branch(depth)
        assert ticker.branches == 10
        assert [event.branches for event in events] == [3, 6, 9]
        assert events[-1].stack_depth == 8

    def test_attach_statistics_first_wins(self):
        aggregate, partial = SearchStatistics(), SearchStatistics()
        aggregate.outputs = 5
        ticker = ProgressTicker(lambda event: None, every=1)
        ticker.attach_statistics(aggregate)
        ticker.attach_statistics(partial)
        assert ticker._statistics is aggregate

    def test_event_counters_snapshot(self):
        stats = SearchStatistics()
        stats.branches_explored = 42
        events = []
        ticker = ProgressTicker(events.append, every=2).attach_statistics(stats)
        ticker.on_branch(1)
        ticker.on_branch(2)
        assert events[0].counters["branches_explored"] == 42

    def test_truthy_return_cancels(self):
        ticker = ProgressTicker(lambda event: True, every=2)
        assert ticker.on_branch(0) is False
        assert ticker.on_branch(1) is True
        assert ticker.cancelled
        # Once cancelled, every subsequent branch reports cancellation.
        assert ticker.on_branch(2) is True

    def test_enumeration_fires_progress(self, medium_graph):
        events = []
        ticker = ProgressTicker(events.append, every=10)
        engine = FastQC(medium_graph, 0.9, 5, progress=ticker)
        engine.enumerate()
        assert ticker.branches == engine.statistics.branches_explored
        assert events
        assert events[-1].counters.get("branches_explored", 0) > 0

    def test_progress_cancellation_truncates(self, medium_graph):
        ticker = ProgressTicker(lambda event: event.branches >= 20, every=10)
        engine = FastQC(medium_graph, 0.9, 5, progress=ticker)
        engine.enumerate()
        assert engine.stopped
        assert ticker.branches < engine.statistics.branches_explored + 20

    def test_heartbeat_output(self, medium_graph):
        out = io.StringIO()
        ticker = heartbeat(every=25, stream=out)
        FastQC(medium_graph, 0.9, 5, progress=ticker).enumerate()
        lines = out.getvalue().splitlines()
        assert lines
        assert lines[0].startswith("progress: 25 branches in ")
        assert "branches/s" in lines[0]

    def test_engine_query_forwards_progress(self, medium_graph):
        events = []
        engine = MQCEEngine()
        engine.query(prepare_graph(medium_graph), 0.9, 5,
                     progress=ProgressTicker(events.append, every=10))
        assert events


# ----------------------------------------------------------------------
# Process helpers + statistics integration
# ----------------------------------------------------------------------
class TestProcess:
    def test_peak_rss_positive_where_available(self):
        rss = peak_rss_bytes()
        if rss is not None:
            assert rss > 1024 * 1024  # any python process exceeds 1 MB

    def test_statistics_as_dict_reports_peak_rss(self):
        data = SearchStatistics().as_dict()
        assert "peak_rss_bytes" in data
        if peak_rss_bytes() is not None:
            assert data["peak_rss_bytes"] > 0
