"""Tests for top-k largest quasi-clique mining (exact and kernel expansion)."""

from __future__ import annotations

import random

import pytest

from repro import Graph, find_largest_quasi_cliques, kernel_expansion_top_k
from repro.extensions import expand_kernel, largest_quasi_clique_size, top_k_summary
from repro.graph.generators import erdos_renyi_gnp, planted_quasi_clique_graph
from repro.quasiclique import (
    enumerate_maximal_quasi_cliques_bruteforce,
    is_quasi_clique,
)


class TestExactTopK:
    def test_clique_graph(self, clique5):
        top = find_largest_quasi_cliques(clique5, 1.0, k=1)
        assert top == [frozenset(range(5))]

    def test_two_triangles_top2(self, two_triangles):
        top = find_largest_quasi_cliques(two_triangles, 1.0, k=2)
        assert set(top) == {frozenset({0, 1, 2}), frozenset({3, 4, 5})}

    def test_k_larger_than_available(self, two_triangles):
        top = find_largest_quasi_cliques(two_triangles, 1.0, k=10, minimum_size=3)
        assert len(top) == 2

    def test_empty_graph(self):
        assert find_largest_quasi_cliques(Graph(), 0.9, k=1) == []

    def test_invalid_k(self, triangle):
        with pytest.raises(ValueError):
            find_largest_quasi_cliques(triangle, 0.9, k=0)

    def test_sizes_are_non_increasing(self):
        graph = planted_quasi_clique_graph(40, 55, [9, 7, 6], 0.9, seed=9)
        top = find_largest_quasi_cliques(graph, 0.9, k=3, minimum_size=4)
        sizes = [len(clique) for clique in top]
        assert sizes == sorted(sizes, reverse=True)

    def test_matches_bruteforce_largest_size(self):
        rng = random.Random(71)
        for trial in range(8):
            graph = erdos_renyi_gnp(8, rng.uniform(0.4, 0.8), seed=2100 + trial)
            gamma = rng.choice([0.5, 0.7, 0.9])
            maximal = enumerate_maximal_quasi_cliques_bruteforce(graph, gamma, 2)
            expected = max((len(m) for m in maximal), default=0)
            assert largest_quasi_clique_size(graph, gamma) == expected

    def test_top_k_summary(self, clique5):
        top = find_largest_quasi_cliques(clique5, 1.0, k=1)
        summary = top_k_summary(top)
        assert summary[0]["rank"] == 1
        assert summary[0]["size"] == 5


class TestKernelExpansion:
    def test_expand_kernel_grows_inside_clique(self, clique5):
        grown = expand_kernel(clique5, frozenset({0, 1}), 1.0)
        assert grown == frozenset(range(5))

    def test_expand_kernel_of_non_qc_is_identity(self, path4):
        assert expand_kernel(path4, frozenset({1, 4}), 0.9) == frozenset({1, 4})

    def test_results_are_quasi_cliques(self):
        graph = planted_quasi_clique_graph(40, 55, [9, 7], 0.9, seed=13)
        for clique in kernel_expansion_top_k(graph, 0.85, k=3):
            assert is_quasi_clique(graph, clique, 0.85)

    def test_finds_planted_structure(self):
        graph = planted_quasi_clique_graph(50, 60, [10], 0.95, seed=23)
        top = kernel_expansion_top_k(graph, 0.9, k=1)
        assert top and len(top[0]) >= 9

    def test_invalid_parameters(self, triangle):
        with pytest.raises(ValueError):
            kernel_expansion_top_k(triangle, 0.9, k=0)
        with pytest.raises(ValueError):
            kernel_expansion_top_k(triangle, 0.9, kernel_gamma=0.8)

    def test_heuristic_never_beats_exact(self):
        rng = random.Random(91)
        for trial in range(6):
            graph = erdos_renyi_gnp(9, rng.uniform(0.4, 0.8), seed=2200 + trial)
            gamma = 0.7
            exact = largest_quasi_clique_size(graph, gamma)
            heuristic = kernel_expansion_top_k(graph, gamma, k=1, kernel_theta=2)
            heuristic_size = len(heuristic[0]) if heuristic else 0
            assert heuristic_size <= exact
