"""Tests for the dynamic subsystem: incremental maintenance + selective invalidation."""

from __future__ import annotations

from itertools import combinations

import pytest

from repro import Graph, MQCEEngine, Q
from repro.api import QuerySpec
from repro.dynamic import (
    DynamicEngine,
    DynamicPreparedGraph,
    UpdateError,
    normalise_update,
    parse_updates,
)
from repro.errors import EngineError
from repro.graph import connected_components, core_numbers, degeneracy
from repro.pipeline.mqce import run_enumeration


def clique_edges(labels):
    return list(combinations(labels, 2))


def fresh_answer(graph, gamma, theta):
    """The incremental-vs-rebuild oracle: a from-scratch enumeration."""
    return run_enumeration(graph, QuerySpec(gamma=gamma, theta=theta)).maximal_quasi_cliques


@pytest.fixture
def clique_and_path() -> Graph:
    """A 5-clique (a0..a4) plus a far-away path p0-...-p7 (distance > 2 apart)."""
    graph = Graph(edges=clique_edges([f"a{i}" for i in range(5)]))
    for i in range(7):
        graph.add_edge(f"p{i}", f"p{i + 1}")
    return graph


class TestDynamicPreparedGraph:
    def test_artifacts_match_fresh_preparation(self, clique_and_path):
        prepared = DynamicPreparedGraph(clique_and_path)
        clique_and_path.remove_edge("p2", "p3")
        clique_and_path.add_edge("a0", "p0")
        clique_and_path.remove_vertex("p7")
        prepared.apply(clique_and_path.delta.since(prepared._snapshot))
        graph = clique_and_path
        assert prepared.check_unmodified()
        assert prepared.degrees == tuple(
            len(graph.adjacency_set(i)) for i in range(graph.vertex_count))
        assert (sorted(map(sorted, prepared.components))
                == sorted(map(sorted, connected_components(graph))))

    def test_fingerprint_tracks_content_not_history(self):
        graph = Graph(edges=[(1, 2), (2, 3)])
        prepared = DynamicPreparedGraph(graph)
        original = prepared.fingerprint
        version = graph.version
        graph.add_edge(1, 3)
        graph.remove_edge(1, 3)
        prepared.apply(graph.delta.since(version))
        assert prepared.fingerprint == original  # content reverted
        version = graph.version
        graph.add_edge(3, 4)
        prepared.apply(graph.delta.since(version))
        assert prepared.fingerprint != original

    def test_core_bounds_stay_upper_bounds(self, clique_and_path):
        prepared = DynamicPreparedGraph(clique_and_path)
        version = clique_and_path.version
        clique_and_path.add_edge("p0", "p2")
        clique_and_path.add_edge("p0", "p3")
        clique_and_path.remove_edge("a0", "a1")
        prepared.apply(clique_and_path.delta.since(version))
        exact = core_numbers(clique_and_path)
        for label, core in exact.items():
            assert prepared.core_bound(label) >= core
        assert prepared.degeneracy >= degeneracy(clique_and_path)

    def test_drift_triggers_exact_rebuild(self):
        graph = Graph(vertices=range(12))
        prepared = DynamicPreparedGraph(graph, core_rebuild_inserts=3)
        version = graph.version
        for u, v in clique_edges(range(6)):
            graph.add_edge(u, v)
        prepared.apply(graph.delta.since(version))
        assert prepared.patch_counts["core_rebuilds"] >= 1
        assert prepared.core_drift == (0, 0)
        assert prepared.core_numbers == core_numbers(graph)

    def test_component_merge_and_split(self, two_triangles):
        prepared = DynamicPreparedGraph(two_triangles)
        assert len(prepared.components) == 2
        version = two_triangles.version
        two_triangles.add_edge(0, 3)
        prepared.apply(two_triangles.delta.since(version))
        assert len(prepared.components) == 1
        version = two_triangles.version
        two_triangles.remove_edge(0, 3)
        prepared.apply(two_triangles.delta.since(version))
        assert (sorted(map(sorted, prepared.components))
                == sorted(map(sorted, connected_components(two_triangles))))

    def test_memoized_artifacts_survive_pre_sync_reads(self, clique_and_path):
        # A read between a direct graph mutation and the sync memoizes the
        # stale value under the final graph version; apply() must drop it.
        dynamic = DynamicEngine(clique_and_path)
        clique_and_path.remove_vertex("a4")
        stale = dynamic.prepared.components  # pre-sync read, stale partition
        assert any("a4" in cell for cell in stale)
        dynamic.sync()
        assert not any("a4" in cell for cell in dynamic.prepared.components)
        result = dynamic.query(0.9, 3)  # planner walks components; must not crash
        assert result.maximal_quasi_cliques == fresh_answer(clique_and_path, 0.9, 3)

    def test_summary_reports_dynamic_state(self, triangle):
        prepared = DynamicPreparedGraph(triangle, name="tri")
        summary = prepared.summary()
        assert summary["version"] == triangle.version
        assert summary["core_drift"] == {"inserts": 0, "removals": 0}
        assert set(summary["artifacts"]) >= {"fingerprint", "components"}


class TestSelectiveInvalidation:
    def test_far_removal_retains_entry_and_serves_warm(self, clique_and_path):
        dynamic = DynamicEngine(clique_and_path)
        first = dynamic.query(0.9, 3)
        hits = dynamic.engine.cache.stats.hits
        report = dynamic.remove_edge("p3", "p4")
        assert report.invalidated == 0
        assert report.retained == 1
        assert report.rekeyed == 1
        second = dynamic.query(0.9, 3)
        # The retained entry (re-addressed to the new fingerprint) must serve
        # the repeat without re-enumerating: the hit counter proves it.
        assert dynamic.engine.cache.stats.hits == hits + 1
        assert second.maximal_quasi_cliques == first.maximal_quasi_cliques
        assert second.maximal_quasi_cliques == fresh_answer(clique_and_path, 0.9, 3)

    def test_far_sparse_addition_retains_entry(self, clique_and_path):
        dynamic = DynamicEngine(clique_and_path)
        dynamic.query(0.9, 3)
        hits = dynamic.engine.cache.stats.hits
        report = dynamic.add_edge("p0", "p6")  # ball is a tree: no new QC possible
        assert report.invalidated == 0 and report.retained == 1
        result = dynamic.query(0.9, 3)
        assert dynamic.engine.cache.stats.hits == hits + 1
        assert result.maximal_quasi_cliques == fresh_answer(clique_and_path, 0.9, 3)

    def test_removal_inside_result_invalidates(self, clique_and_path):
        dynamic = DynamicEngine(clique_and_path)
        dynamic.query(0.9, 3)
        report = dynamic.remove_edge("a0", "a1")
        assert report.invalidated == 1
        result = dynamic.query(0.9, 3)
        assert result.maximal_quasi_cliques == fresh_answer(clique_and_path, 0.9, 3)

    def test_addition_creating_new_answer_invalidates(self, clique_and_path):
        dynamic = DynamicEngine(clique_and_path)
        baseline = dynamic.query(0.9, 3)
        assert len(baseline.maximal_quasi_cliques) == 1
        # Close a triangle on the path: a brand-new maximal QC appears in a
        # region no previous result touches — the ball-core rule must catch it.
        report = dynamic.add_edge("p1", "p3")
        assert report.invalidated == 1
        result = dynamic.query(0.9, 3)
        expected = fresh_answer(clique_and_path, 0.9, 3)
        assert result.maximal_quasi_cliques == expected
        assert frozenset({"p1", "p2", "p3"}) in result.maximal_quasi_cliques

    def test_vertex_addition_only_touches_theta_one(self, clique_and_path):
        dynamic = DynamicEngine(clique_and_path)
        dynamic.query(0.9, 3)
        dynamic.query(0.9, 1)
        dynamic.sync()  # registers both entries
        report = dynamic.add_vertex("lonely")
        assert report.invalidated == 1  # the theta=1 entry only
        assert report.retained == 1
        for theta in (1, 3):
            assert (dynamic.query(0.9, theta).maximal_quasi_cliques
                    == fresh_answer(clique_and_path, 0.9, theta))

    def test_vertex_removal_invalidates_touching_entries(self, clique_and_path):
        dynamic = DynamicEngine(clique_and_path)
        dynamic.query(0.9, 3)
        report = dynamic.remove_vertex("a4")
        assert report.invalidated == 1
        assert (dynamic.query(0.9, 3).maximal_quasi_cliques
                == fresh_answer(clique_and_path, 0.9, 3))

    def test_containment_entry_survives_far_mutation(self, clique_and_path):
        dynamic = DynamicEngine(clique_and_path)
        spec = QuerySpec(gamma=0.9, theta=3, contains=("a0",))
        first = dynamic.query(spec)
        hits = dynamic.engine.cache.stats.hits
        report = dynamic.remove_edge("p5", "p6")
        assert report.invalidated == 0 and report.retained == 1
        assert dynamic.query(spec).maximal_quasi_cliques == first.maximal_quasi_cliques
        assert dynamic.engine.cache.stats.hits == hits + 1

    def test_multiple_entries_split_by_region(self, clique_and_path):
        # Two disjoint result regions via containment specs; mutating one
        # region must only invalidate its entry.
        for u, v in clique_edges([f"p{i}" for i in range(3)]):
            clique_and_path.add_edge(u, v)  # make p0..p2 a triangle
        dynamic = DynamicEngine(clique_and_path)
        spec_a = QuerySpec(gamma=0.9, theta=3, contains=("a0",))
        spec_p = QuerySpec(gamma=0.9, theta=3, contains=("p1",))
        dynamic.query(spec_a)
        dynamic.query(spec_p)
        report = dynamic.remove_edge("a0", "a1")
        assert report.invalidated == 1
        assert report.retained == 1
        for spec in (spec_a, spec_p):
            fresh = run_enumeration  # readability only
            del fresh
            assert dynamic.query(spec).maximal_quasi_cliques  # still answerable


class TestDynamicEngineLifecycle:
    def test_direct_graph_mutation_is_synced_on_query(self, clique_and_path):
        dynamic = DynamicEngine(clique_and_path)
        dynamic.query(0.9, 3)
        clique_and_path.remove_edge("a0", "a1")  # behind the engine's back
        assert dynamic.pending_mutations > 0
        result = dynamic.query(0.9, 3)
        assert dynamic.pending_mutations == 0
        assert result.maximal_quasi_cliques == fresh_answer(clique_and_path, 0.9, 3)

    def test_delta_gap_falls_back_to_full_rebuild(self):
        graph = Graph(edges=clique_edges(range(5)), delta_capacity=4)
        dynamic = DynamicEngine(graph)
        dynamic.query(0.9, 3)
        for i in range(6):
            graph.add_edge(10 + i, 11 + i)  # overflow the tiny changelog
        report = dynamic.sync()
        assert report.full_rebuild
        assert dynamic.update_stats.full_rebuilds == 1
        assert (dynamic.query(0.9, 3).maximal_quasi_cliques
                == fresh_answer(graph, 0.9, 3))

    def test_apply_batch_and_report(self, clique_and_path):
        dynamic = DynamicEngine(clique_and_path)
        report = dynamic.apply([
            ("add", "x", "y"),
            ("remove", "p0", "p1"),
            ("add-vertex", "z"),
            ("remove-vertex", "x"),
        ])
        assert report.added_edges == 1
        assert report.removed_edges == 2  # explicit one + x-y via remove-vertex
        assert report.added_vertices == 3  # x, y, z
        assert report.removed_vertices == 1
        assert "z" in clique_and_path and "x" not in clique_and_path

    def test_noop_sync_is_cheap_and_stable(self, triangle):
        dynamic = DynamicEngine(triangle)
        fingerprint = dynamic.prepared.fingerprint
        report = dynamic.sync()
        assert report.mutations == 0
        assert report.new_fingerprint == fingerprint
        assert dynamic.update_stats.syncs == 0  # no-ops are not counted

    def test_stats_surface(self, clique_and_path):
        dynamic = DynamicEngine(clique_and_path, name="fixture")
        dynamic.query(0.9, 3)
        dynamic.remove_edge("p0", "p1")
        stats = dynamic.stats()
        assert stats["dynamic"]["graph_version"] == clique_and_path.version
        assert stats["dynamic"]["updates"]["syncs"] >= 1
        assert stats["dynamic"]["prepared_patches"]["remove_edge"] == 1
        assert "queries" in stats  # MQCEEngine counters still present

    def test_rejects_foreign_graph(self, triangle, clique5):
        dynamic = DynamicEngine(triangle)
        with pytest.raises(EngineError):
            dynamic.query(clique5, 0.9, 3)

    def test_builder_integration(self, clique_and_path):
        dynamic = DynamicEngine(clique_and_path)
        result = Q(clique_and_path).gamma(0.9).theta(3).run(engine=dynamic)
        assert result.maximal_quasi_cliques == fresh_answer(clique_and_path, 0.9, 3)
        streamed = list(Q(clique_and_path).gamma(0.9).theta(3).stream(engine=dynamic))
        assert frozenset(streamed) == frozenset(result.maximal_quasi_cliques)

    def test_stream_entries_join_index_on_next_sync(self, clique_and_path):
        dynamic = DynamicEngine(clique_and_path)
        list(dynamic.stream(0.9, 3))  # completes -> populates the cache
        report = dynamic.remove_edge("p6", "p7")  # reconcile happens here
        assert report.entries_before == 1
        assert report.retained == 1

    def test_query_batch(self, clique_and_path):
        dynamic = DynamicEngine(clique_and_path)
        results = dynamic.query_batch([(0.9, 3), (0.9, 4), (0.9, 3)])
        assert len(results) == 3
        assert results[0].maximal_quasi_cliques == results[2].maximal_quasi_cliques


class TestUpdateParsing:
    def test_parse_script_with_comments(self):
        updates = parse_updates([
            "# header", "", "add 1 2", "- 3 4", "add-vertex x", "remove-vertex 5  # eol",
        ])
        assert [u.op for u in updates] == ["add_edge", "remove_edge",
                                           "add_vertex", "remove_vertex"]
        assert updates[0] == ("add_edge", 1, 2)
        assert updates[2].u == "x"

    def test_labels_coerced_like_edge_lists(self):
        update = normalise_update(("add", "7", "seven"))
        assert update.u == 7 and update.v == "seven"

    def test_unknown_operation_rejected(self):
        with pytest.raises(UpdateError):
            normalise_update(("frobnicate", 1, 2))

    def test_wrong_arity_rejected(self):
        with pytest.raises(UpdateError):
            normalise_update(("add", 1))
        with pytest.raises(UpdateError):
            parse_updates(["remove-vertex 1 2"])

    def test_parse_error_reports_line_number(self):
        with pytest.raises(UpdateError, match="line 2"):
            parse_updates(["add 1 2", "bogus 3 4"])


class TestStaleCacheRegression:
    """Mutating a graph after preparation must never serve stale cached results."""

    def test_count_restoring_mutation_is_detected(self):
        # add+remove restores (|V|, |E|) — the historical snapshot missed this.
        graph = Graph(edges=clique_edges(range(5)) + [(10, 11), (11, 12)])
        engine = MQCEEngine()
        first = engine.query(graph, 0.9, 3)
        assert frozenset(range(5)) in first.maximal_quasi_cliques
        graph.remove_edge(0, 1)
        graph.add_edge(10, 12)  # counts are back to the snapshot values
        second = engine.query(graph, 0.9, 3)
        assert second.maximal_quasi_cliques == fresh_answer(graph, 0.9, 3)
        assert frozenset(range(5)) not in second.maximal_quasi_cliques
        assert frozenset({10, 11, 12}) in second.maximal_quasi_cliques

    def test_explicit_prepared_graph_rejected_after_count_restoring_mutation(self):
        from repro import PreparedGraph

        graph = Graph(edges=clique_edges(range(4)) + [(8, 9), (9, 10)])
        prepared = PreparedGraph(graph)
        engine = MQCEEngine()
        engine.query(prepared, 0.9, 3)
        graph.remove_edge(0, 1)
        graph.add_edge(8, 10)  # counts restored, content changed
        assert not prepared.check_unmodified()
        with pytest.raises(EngineError):
            engine.query(prepared, 0.9, 3)

    def test_completed_stream_does_not_cache_across_mutation(self):
        graph = Graph(edges=clique_edges(range(5)))
        engine = MQCEEngine()
        stream = engine.stream(graph, 0.9, 3)
        next(stream)
        graph.add_edge(0, 99)  # mutate mid-stream
        list(stream)  # drain; must refuse to cache under the old fingerprint
        assert len(engine.cache) == 0

    def test_stream_across_engine_mediated_mutation_does_not_poison_cache(self):
        # The DynamicEngine patches its prepared graph during a mid-stream
        # sync, so the stream cannot rely on the prepared snapshot: it must
        # gate caching on the graph version it derived its key from.
        graph = Graph(edges=clique_edges(range(6)) + clique_edges(range(10, 17)))
        dynamic = DynamicEngine(graph)
        stream = dynamic.stream(0.9, 4, algorithm="dcfastqc")
        next(stream)
        dynamic.remove_edge(10, 11)  # syncs (and re-snapshots) mid-stream
        list(stream)
        assert len(dynamic.engine.cache) == 0
        dynamic.add_edge(10, 11)  # revert: the old fingerprint matches again
        answer = dynamic.query(0.9, 4).maximal_quasi_cliques
        assert frozenset(range(10, 17)) in answer
        assert answer == fresh_answer(graph, 0.9, 4)
