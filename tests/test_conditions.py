"""Unit tests for the SD-space necessary condition (Section 4.1)."""

from __future__ import annotations

import math
import random

import pytest

from repro.core import (
    Branch,
    SDRegions,
    satisfies_condition_c1c2,
    sd_regions,
    sigma,
    tau_sigma,
)
from repro.graph.generators import erdos_renyi_gnp
from repro.quasiclique import enumerate_all_quasi_cliques, tau


def make_branch(graph, partial, candidates):
    return Branch(graph.mask_of(partial), graph.mask_of(candidates), 0)


class TestSigma:
    def test_empty_partial_uses_union_size(self, paper_figure1):
        branch = make_branch(paper_figure1, [], [1, 2, 3, 4])
        assert sigma(paper_figure1, branch, 0.9) == 4.0

    def test_nonempty_partial_uses_min_degree(self, paper_figure1):
        branch = make_branch(paper_figure1, [1], [2, 3, 5])
        # delta(1, {1,2,3,5}) = 3, so the degree bound is 3 / gamma + 1.
        assert sigma(paper_figure1, branch, 0.9) == pytest.approx(min(4.0, 3 / 0.9 + 1))

    def test_union_size_caps_the_bound(self, clique5):
        branch = make_branch(clique5, [0], [1, 2])
        # Degree of 0 inside the union is 2 -> bound 2/0.5 + 1 = 5, capped at 3.
        assert sigma(clique5, branch, 0.5) == 3.0

    def test_sigma_formula_from_paper_example(self, paper_figure1):
        # sigma = min{|S ∪ C|, d_min / gamma + 1}; with d_min = 4 and gamma = 0.7
        # the paper's Section 4.2 example evaluates to 6.71 (its Figure 1 graph);
        # here we verify the same formula on our fixture's numbers.
        branch = make_branch(paper_figure1, [2, 3, 4], [1, 5, 6, 7, 8, 9])
        d_min = min(len(paper_figure1.neighbors(v) & set(paper_figure1.vertices()))
                    for v in [2, 3, 4])
        expected = min(9.0, d_min / 0.7 + 1)
        assert sigma(paper_figure1, branch, 0.7) == pytest.approx(expected)

    def test_sigma_upper_bounds_every_qc_size(self):
        # Lemma 2: any QC under the branch has size at most sigma(B).
        rng = random.Random(5)
        for trial in range(15):
            graph = erdos_renyi_gnp(8, rng.uniform(0.4, 0.8), seed=trial)
            gamma = rng.choice([0.5, 0.6, 0.7, 0.9])
            vertices = graph.vertices()
            partial = set(rng.sample(vertices, rng.randint(1, 3)))
            candidates = set(rng.sample([v for v in vertices if v not in partial],
                                        rng.randint(0, 4)))
            branch = make_branch(graph, partial, candidates)
            bound = sigma(graph, branch, gamma)
            for clique in enumerate_all_quasi_cliques(graph, gamma):
                if partial <= clique <= (partial | candidates):
                    assert len(clique) <= bound + 1e-9

    def test_tau_sigma_consistency(self, paper_figure1):
        branch = make_branch(paper_figure1, [1, 2], [3, 4, 5])
        assert tau_sigma(paper_figure1, branch, 0.8) == tau(
            sigma(paper_figure1, branch, 0.8), 0.8)


class TestSDRegions:
    def test_region_bounds(self, paper_figure1):
        branch = make_branch(paper_figure1, [1, 2], [3, 4, 5])
        regions = sd_regions(paper_figure1, branch, 0.8)
        assert isinstance(regions, SDRegions)
        assert regions.size_lower == 2
        assert regions.size_upper_r1 == 5
        assert regions.disconnection_lower <= regions.disconnection_upper
        assert regions.size_upper_r2 <= regions.size_upper_r1

    def test_intersection_emptiness_matches_condition(self):
        rng = random.Random(17)
        for trial in range(25):
            graph = erdos_renyi_gnp(9, rng.uniform(0.2, 0.8), seed=100 + trial)
            gamma = rng.choice([0.5, 0.7, 0.9])
            vertices = graph.vertices()
            partial = set(rng.sample(vertices, rng.randint(0, 4)))
            candidates = set(rng.sample([v for v in vertices if v not in partial],
                                        rng.randint(0, 5)))
            branch = make_branch(graph, partial, candidates)
            regions = sd_regions(graph, branch, gamma)
            assert regions.intersection_is_empty == (
                not satisfies_condition_c1c2(graph, branch, gamma))

    def test_r1_empty_when_nothing_selected(self, paper_figure1):
        branch = Branch(0, 0, 0)
        regions = sd_regions(paper_figure1, branch, 0.9)
        assert not regions.r1_is_empty  # the (0, 0) point is a degenerate rectangle
        assert regions.size_lower == 0


class TestConditionC1C2:
    def test_clique_branch_satisfies(self, clique5):
        branch = make_branch(clique5, [0, 1], [2, 3, 4])
        assert satisfies_condition_c1c2(clique5, branch, 0.9)

    def test_independent_partial_set_violates(self):
        # Partial vertices with many mutual disconnections exceed the budget.
        graph = erdos_renyi_gnp(8, 0.0, seed=1)
        graph.add_edge(0, 7)
        branch = make_branch(graph, [0, 1, 2, 3], [7])
        assert not satisfies_condition_c1c2(graph, branch, 0.9)

    def test_never_prunes_a_branch_that_holds_a_qc(self):
        # The defining soundness property of the necessary condition.
        rng = random.Random(23)
        for trial in range(25):
            graph = erdos_renyi_gnp(8, rng.uniform(0.3, 0.9), seed=200 + trial)
            gamma = rng.choice([0.5, 0.6, 0.8, 0.9])
            vertices = graph.vertices()
            partial = set(rng.sample(vertices, rng.randint(0, 3)))
            candidates = set(rng.sample([v for v in vertices if v not in partial],
                                        rng.randint(0, 5)))
            branch = make_branch(graph, partial, candidates)
            holds_qc = any(partial <= clique <= (partial | candidates)
                           for clique in enumerate_all_quasi_cliques(graph, gamma))
            if holds_qc:
                assert satisfies_condition_c1c2(graph, branch, gamma), (
                    f"trial {trial}: condition pruned a branch holding a QC")

    def test_equivalent_formulation(self, paper_figure1):
        # Delta(S) <= tau(sigma(B)) is the equivalent form used by FastQC.
        from repro.core import max_disconnections_in_partial

        rng = random.Random(3)
        vertices = paper_figure1.vertices()
        for _ in range(20):
            partial = set(rng.sample(vertices, rng.randint(1, 4)))
            candidates = set(rng.sample([v for v in vertices if v not in partial],
                                        rng.randint(0, 4)))
            branch = make_branch(paper_figure1, partial, candidates)
            gamma = rng.choice([0.5, 0.7, 0.9])
            sigma_value = sigma(paper_figure1, branch, gamma)
            expected = (sigma_value >= branch.partial_size
                        and max_disconnections_in_partial(paper_figure1, branch)
                        <= tau(sigma_value, gamma))
            assert satisfies_condition_c1c2(paper_figure1, branch, gamma) == expected


class TestPaperNumericExamples:
    def test_tau_values_used_in_section_4_2(self):
        assert tau(min(9, 4 / 0.7 + 1), 0.7) == 2
        assert tau(min(5, 2 / 0.7 + 1), 0.7) == 1

    def test_tau_budget_of_figure6(self):
        # Figure 6 uses gamma = 0.6 and tau(sigma(B)) = 3; with |S ∪ C| = 9 and a
        # partial-vertex degree of 4 the formula gives exactly that budget.
        assert tau(min(9, 4 / 0.6 + 1), 0.6) == 3

    def test_sigma_never_negative(self, paper_figure1):
        branch = Branch(0, 0, 0)
        assert sigma(paper_figure1, branch, 0.9) == 0.0
