"""Tests for the `repro dynamic` CLI sub-command group."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.graph import read_edge_list


@pytest.fixture
def graph_file(tmp_path):
    path = tmp_path / "graph.txt"
    lines = ["1 2", "1 3", "2 3", "2 4", "3 4", "1 4", "7 8", "8 9"]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


@pytest.fixture
def updates_file(tmp_path):
    path = tmp_path / "updates.txt"
    path.write_text("# break the clique's diagonal\nremove 1 4\nadd 9 10\n",
                    encoding="utf-8")
    return path


class TestParser:
    def test_dynamic_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dynamic"])

    def test_apply_requires_updates(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dynamic", "apply", "-i", "g.txt"])

    def test_query_accepts_dataset(self):
        args = build_parser().parse_args(["dynamic", "query", "-d", "ca-grqc"])
        assert args.dataset == "ca-grqc"
        assert args.algorithm == "auto"


class TestDynamicApply:
    def test_apply_reports_and_writes(self, graph_file, updates_file, tmp_path, capsys):
        output = tmp_path / "updated.txt"
        code = main(["dynamic", "apply", "-i", str(graph_file),
                     "-u", str(updates_file), "-o", str(output)])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 mutations applied" in out or "mutations applied" in out
        updated = read_edge_list(output)
        assert not updated.has_edge(1, 4)
        assert updated.has_edge(9, 10)

    def test_apply_json(self, graph_file, updates_file, capsys):
        code = main(["dynamic", "apply", "-i", str(graph_file),
                     "-u", str(updates_file), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["report"]["removed_edges"] == 1
        assert payload["report"]["added_edges"] == 1
        assert payload["graph"]["version"] > 0

    def test_malformed_script_exits_2(self, graph_file, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("frobnicate 1 2\n", encoding="utf-8")
        code = main(["dynamic", "apply", "-i", str(graph_file), "-u", str(bad)])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestDynamicQuery:
    def test_query_before_and_after(self, graph_file, updates_file, capsys):
        code = main(["dynamic", "query", "-i", str(graph_file),
                     "-u", str(updates_file), "-g", "0.9", "-t", "3", "--before"])
        assert code == 0
        out = capsys.readouterr().out
        assert "before updates: 1 maximal" in out
        assert "2 maximal" in out
        assert "1 2 3" in out and "2 3 4" in out

    def test_query_json_includes_report(self, graph_file, updates_file, capsys):
        code = main(["dynamic", "query", "-i", str(graph_file),
                     "-u", str(updates_file), "-g", "0.9", "-t", "3",
                     "--before", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["before"]["maximal_count"] == 1
        assert payload["result"]["maximal_count"] == 2
        # remove 1 4 + add 9 10 = one removal, one implicit add_vertex(10),
        # one addition: three low-level mutation records.
        assert payload["report"]["mutations"] == 3
        assert payload["report"]["added_vertices"] == 1
        assert payload["engine"]["dynamic"]["updates"]["syncs"] >= 1

    def test_query_without_updates(self, graph_file, capsys):
        code = main(["dynamic", "query", "-i", str(graph_file), "-g", "0.9", "-t", "3"])
        assert code == 0
        assert "1 maximal" in capsys.readouterr().out

    def test_query_dataset_defaults(self, capsys):
        code = main(["dynamic", "query", "-d", "twitter"])
        assert code == 0
        assert "maximal" in capsys.readouterr().out


class TestDynamicStats:
    def test_stats_reports_patches(self, graph_file, updates_file, capsys):
        code = main(["dynamic", "stats", "-i", str(graph_file), "-u", str(updates_file)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["prepared"]["patch_counts"]["remove_edge"] == 1
        assert payload["prepared"]["version"] > 0
        assert payload["dynamic"]["updates"]["mutations"] == 3

    def test_stats_without_updates(self, graph_file, capsys):
        code = main(["dynamic", "stats", "-i", str(graph_file)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["prepared"]["patch_counts"] == {}
