"""Tests for the parallel DCFastQC driver."""

from __future__ import annotations

import pytest

from repro import Graph, ParallelDCFastQC, filter_non_maximal
from repro.core import dcfastqc_enumerate
from repro.extensions import parallel_enumerate
from repro.graph.generators import planted_quasi_clique_graph


@pytest.fixture(scope="module")
def medium_graph():
    return planted_quasi_clique_graph(80, 160, [9, 8, 7], 0.9, seed=29)


class TestConstruction:
    def test_invalid_workers(self, triangle):
        with pytest.raises(ValueError):
            ParallelDCFastQC(triangle, 0.9, 2, workers=0)

    def test_invalid_chunk_size(self, triangle):
        with pytest.raises(ValueError):
            ParallelDCFastQC(triangle, 0.9, 2, chunk_size=0)

    def test_invalid_parameters(self, triangle):
        from repro.quasiclique import ParameterError

        with pytest.raises(ParameterError):
            ParallelDCFastQC(triangle, 0.3, 2)


class TestSingleWorkerFallback:
    def test_matches_sequential(self, medium_graph):
        sequential = set(dcfastqc_enumerate(medium_graph, 0.9, 6))
        single = set(parallel_enumerate(medium_graph, 0.9, 6, workers=1))
        assert single == sequential

    def test_empty_graph(self):
        assert parallel_enumerate(Graph(), 0.9, 2, workers=1) == []

    def test_small_graph_runs_inline(self, two_triangles):
        # Fewer subproblems than the chunk size: the in-process path is used.
        result = ParallelDCFastQC(two_triangles, 1.0, 3, workers=4, chunk_size=32).enumerate()
        assert frozenset({0, 1, 2}) in set(result)


class TestMultiProcess:
    def test_two_workers_match_sequential(self, medium_graph):
        sequential = set(filter_non_maximal(dcfastqc_enumerate(medium_graph, 0.9, 6), theta=6))
        parallel = ParallelDCFastQC(medium_graph, 0.9, 6, workers=2, chunk_size=4)
        result = set(parallel.find_maximal())
        assert result == sequential

    def test_enumerate_output_is_sorted_and_unique(self, medium_graph):
        parallel = ParallelDCFastQC(medium_graph, 0.9, 6, workers=2, chunk_size=4)
        result = parallel.enumerate()
        assert len(result) == len(set(result))
        sizes = [len(h) for h in result]
        assert sizes == sorted(sizes, reverse=True)

    def test_workers_reproduce_sequential_candidates_exactly(self, medium_graph):
        """Maximality-halo parity (ROADMAP item): with the one-hop halo
        shipped in every CompactSubproblem, workers apply exactly the
        sequential driver's maximality filtering, so the *pre-MQCE-S2*
        candidate sets already agree — not only the final maximal answers."""
        from repro.core import DCFastQC

        sequential = set(DCFastQC(medium_graph, 0.9, 6).enumerate())
        parallel = ParallelDCFastQC(medium_graph, 0.9, 6, workers=2, chunk_size=4)
        assert set(parallel.enumerate()) == sequential
