"""Unit tests for the random graph generators."""

from __future__ import annotations

import pytest

from repro.graph import (
    barabasi_albert,
    erdos_renyi_by_density,
    erdos_renyi_gnm,
    erdos_renyi_gnp,
    planted_quasi_clique,
    planted_quasi_clique_graph,
    random_connected_graph,
    is_connected,
)
from repro.quasiclique import is_quasi_clique
from repro import Graph


class TestErdosRenyi:
    def test_gnm_exact_edge_count(self):
        graph = erdos_renyi_gnm(30, 60, seed=1)
        assert graph.vertex_count == 30
        assert graph.edge_count == 60

    def test_gnm_deterministic_with_seed(self):
        a = erdos_renyi_gnm(25, 50, seed=7)
        b = erdos_renyi_gnm(25, 50, seed=7)
        assert set(map(frozenset, a.edges())) == set(map(frozenset, b.edges()))

    def test_gnm_different_seeds_differ(self):
        a = erdos_renyi_gnm(25, 50, seed=7)
        b = erdos_renyi_gnm(25, 50, seed=8)
        assert set(map(frozenset, a.edges())) != set(map(frozenset, b.edges()))

    def test_gnm_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi_gnm(4, 7)

    def test_gnm_negative_vertices_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi_gnm(-1, 0)

    def test_by_density(self):
        graph = erdos_renyi_by_density(40, 2.5, seed=2)
        assert graph.edge_count == 100

    def test_gnp_bounds(self):
        empty = erdos_renyi_gnp(10, 0.0, seed=1)
        full = erdos_renyi_gnp(10, 1.0, seed=1)
        assert empty.edge_count == 0
        assert full.edge_count == 45

    def test_gnp_invalid_probability(self):
        with pytest.raises(ValueError):
            erdos_renyi_gnp(5, 1.5)


class TestBarabasiAlbert:
    def test_edge_count(self):
        graph = barabasi_albert(50, 3, seed=5)
        # Initial clique of 4 vertices (6 edges) plus 3 edges per new vertex.
        assert graph.edge_count == 6 + 3 * (50 - 4)

    def test_connected(self):
        graph = barabasi_albert(60, 2, seed=6)
        assert is_connected(graph)

    def test_skewed_degrees(self):
        graph = barabasi_albert(200, 2, seed=7)
        assert graph.max_degree() > 4 * (2 * graph.edge_count / graph.vertex_count)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            barabasi_albert(3, 3)
        with pytest.raises(ValueError):
            barabasi_albert(10, 0)


class TestPlantedQuasiCliques:
    def test_planting_makes_group_a_qc(self):
        graph = erdos_renyi_gnm(40, 40, seed=9)
        planted_quasi_clique(graph, list(range(8)), 0.9, seed=1)
        assert is_quasi_clique(graph, range(8), 0.9)

    def test_planting_adds_missing_vertices(self):
        graph = Graph()
        planted_quasi_clique(graph, [0, 1, 2, 3], 1.0, seed=1)
        assert is_quasi_clique(graph, [0, 1, 2, 3], 1.0)

    def test_planting_trivial_groups(self):
        graph = Graph(vertices=[0])
        assert planted_quasi_clique(graph, [0], 0.9) is graph

    def test_planted_graph_contains_all_groups(self):
        graph = planted_quasi_clique_graph(60, 80, [8, 6], 0.9, seed=11)
        assert is_quasi_clique(graph, range(8), 0.9)
        assert is_quasi_clique(graph, range(8, 14), 0.9)

    def test_planted_graph_rejects_oversized_groups(self):
        with pytest.raises(ValueError):
            planted_quasi_clique_graph(10, 5, [8, 8], 0.9, seed=1)

    def test_deterministic(self):
        a = planted_quasi_clique_graph(50, 60, [7], 0.9, seed=3)
        b = planted_quasi_clique_graph(50, 60, [7], 0.9, seed=3)
        assert set(map(frozenset, a.edges())) == set(map(frozenset, b.edges()))


class TestRandomConnectedGraph:
    def test_connected(self):
        graph = random_connected_graph(40, 20, seed=4)
        assert is_connected(graph)
        assert graph.edge_count >= 39

    def test_extra_edges_added(self):
        graph = random_connected_graph(30, 15, seed=4)
        assert graph.edge_count == 29 + 15
