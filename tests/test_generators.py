"""Unit tests for the random graph generators."""

from __future__ import annotations

import random

import pytest

from repro.graph import (
    barabasi_albert,
    erdos_renyi_by_density,
    erdos_renyi_gnm,
    erdos_renyi_gnp,
    gnm_edges,
    gnp_edges,
    planted_quasi_clique,
    planted_quasi_clique_graph,
    preferential_attachment_edges,
    random_connected_graph,
    is_connected,
)
from repro.quasiclique import is_quasi_clique
from repro import Graph


class TestErdosRenyi:
    def test_gnm_exact_edge_count(self):
        graph = erdos_renyi_gnm(30, 60, seed=1)
        assert graph.vertex_count == 30
        assert graph.edge_count == 60

    def test_gnm_deterministic_with_seed(self):
        a = erdos_renyi_gnm(25, 50, seed=7)
        b = erdos_renyi_gnm(25, 50, seed=7)
        assert set(map(frozenset, a.edges())) == set(map(frozenset, b.edges()))

    def test_gnm_different_seeds_differ(self):
        a = erdos_renyi_gnm(25, 50, seed=7)
        b = erdos_renyi_gnm(25, 50, seed=8)
        assert set(map(frozenset, a.edges())) != set(map(frozenset, b.edges()))

    def test_gnm_too_many_edges_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi_gnm(4, 7)

    def test_gnm_negative_vertices_rejected(self):
        with pytest.raises(ValueError):
            erdos_renyi_gnm(-1, 0)

    def test_by_density(self):
        graph = erdos_renyi_by_density(40, 2.5, seed=2)
        assert graph.edge_count == 100

    def test_gnp_bounds(self):
        empty = erdos_renyi_gnp(10, 0.0, seed=1)
        full = erdos_renyi_gnp(10, 1.0, seed=1)
        assert empty.edge_count == 0
        assert full.edge_count == 45

    def test_gnp_invalid_probability(self):
        with pytest.raises(ValueError):
            erdos_renyi_gnp(5, 1.5)


class TestBarabasiAlbert:
    def test_edge_count(self):
        graph = barabasi_albert(50, 3, seed=5)
        # Initial clique of 4 vertices (6 edges) plus 3 edges per new vertex.
        assert graph.edge_count == 6 + 3 * (50 - 4)

    def test_connected(self):
        graph = barabasi_albert(60, 2, seed=6)
        assert is_connected(graph)

    def test_skewed_degrees(self):
        graph = barabasi_albert(200, 2, seed=7)
        assert graph.max_degree() > 4 * (2 * graph.edge_count / graph.vertex_count)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            barabasi_albert(3, 3)
        with pytest.raises(ValueError):
            barabasi_albert(10, 0)


class TestPlantedQuasiCliques:
    def test_planting_makes_group_a_qc(self):
        graph = erdos_renyi_gnm(40, 40, seed=9)
        planted_quasi_clique(graph, list(range(8)), 0.9, seed=1)
        assert is_quasi_clique(graph, range(8), 0.9)

    def test_planting_adds_missing_vertices(self):
        graph = Graph()
        planted_quasi_clique(graph, [0, 1, 2, 3], 1.0, seed=1)
        assert is_quasi_clique(graph, [0, 1, 2, 3], 1.0)

    def test_planting_trivial_groups(self):
        graph = Graph(vertices=[0])
        assert planted_quasi_clique(graph, [0], 0.9) is graph

    def test_planted_graph_contains_all_groups(self):
        graph = planted_quasi_clique_graph(60, 80, [8, 6], 0.9, seed=11)
        assert is_quasi_clique(graph, range(8), 0.9)
        assert is_quasi_clique(graph, range(8, 14), 0.9)

    def test_planted_graph_rejects_oversized_groups(self):
        with pytest.raises(ValueError):
            planted_quasi_clique_graph(10, 5, [8, 8], 0.9, seed=1)

    def test_deterministic(self):
        a = planted_quasi_clique_graph(50, 60, [7], 0.9, seed=3)
        b = planted_quasi_clique_graph(50, 60, [7], 0.9, seed=3)
        assert set(map(frozenset, a.edges())) == set(map(frozenset, b.edges()))


class TestRandomConnectedGraph:
    def test_connected(self):
        graph = random_connected_graph(40, 20, seed=4)
        assert is_connected(graph)
        assert graph.edge_count >= 39

    def test_extra_edges_added(self):
        graph = random_connected_graph(30, 15, seed=4)
        assert graph.edge_count == 29 + 15


def _legacy_gnm_edges(vertex_count, edge_count, rng):
    """The pre-fix rejection loop, verbatim — the byte-identity oracle."""
    existing = set()
    while len(existing) < edge_count:
        u = rng.randrange(vertex_count)
        v = rng.randrange(vertex_count)
        if u == v:
            continue
        edge = (u, v) if u < v else (v, u)
        if edge in existing:
            continue
        existing.add(edge)
        yield edge


class _CountingRandom(random.Random):
    """random.Random that counts randrange draws (for stall regressions)."""

    def __init__(self, seed):
        super().__init__(seed)
        self.draws = 0

    def randrange(self, *args, **kwargs):
        self.draws += 1
        return super().randrange(*args, **kwargs)

    def random(self):
        self.draws += 1
        return super().random()


class TestGnmDenseAsk:
    def test_sparse_seeds_reproduce_legacy_graphs_byte_identically(self):
        # The registry's pinned analogues sit on the sparse side of the
        # complement threshold; their seeds must keep producing the exact
        # edge sequences the old loop produced.
        for n, m, seed in ((30, 60, 1), (120, 700, 9), (50, 612, 3)):
            assert 2 * m <= n * (n - 1) // 2
            legacy = list(_legacy_gnm_edges(n, m, random.Random(seed)))
            assert list(gnm_edges(n, m, seed=seed)) == legacy
            graph = erdos_renyi_gnm(n, m, seed=seed)
            assert set(map(frozenset, graph.edges())) == \
                set(map(frozenset, legacy))
            assert graph.edge_count == m

    def test_dense_ask_does_not_rejection_stall(self, monkeypatch):
        # Regression: asking for max_edges - 1 made the old loop draw
        # O(max_edges * log(max_edges)) samples (~67k-87k draws at n=100,
        # measured across seeds) because the acceptance rate collapses near
        # the full graph.  The complement path needs O(missing) draws; the
        # bound below deterministically fails on the old loop for any of
        # those seeds and passes with two draws now.
        n = 100
        max_edges = n * (n - 1) // 2
        recorded = {}

        def counting_random(seed):
            rng = _CountingRandom(seed)
            recorded["rng"] = rng
            return rng

        from repro.graph import generators

        monkeypatch.setattr(generators.random, "Random", counting_random)
        graph = erdos_renyi_gnm(n, max_edges - 1, seed=0)
        assert graph.edge_count == max_edges - 1
        assert recorded["rng"].draws <= 8 * max_edges

    def test_dense_ask_is_exact_and_deterministic(self):
        n = 40
        max_edges = n * (n - 1) // 2
        for m in (max_edges, max_edges - 1, max_edges - 37,
                  max_edges // 2 + 1):
            graph = erdos_renyi_gnm(n, m, seed=5)
            assert graph.edge_count == m
            again = erdos_renyi_gnm(n, m, seed=5)
            assert set(map(frozenset, graph.edges())) == \
                set(map(frozenset, again.edges()))

    def test_stream_matches_graph_builder_on_both_sides(self):
        for n, m in ((30, 60), (30, 30 * 29 // 2 - 3)):
            stream = set(map(frozenset, gnm_edges(n, m, seed=8)))
            built = set(map(frozenset, erdos_renyi_gnm(n, m, seed=8).edges()))
            assert stream == built

    def test_stream_validates_like_the_builder(self):
        with pytest.raises(ValueError):
            gnm_edges(10, 100, seed=1)


class TestGnpSkipSampling:
    def test_pair_index_inverse_is_exact(self):
        from repro.graph.generators import _pair_from_index

        n = 23
        expected = [(u, v) for u in range(n) for v in range(u + 1, n)]
        assert [_pair_from_index(k, n)
                for k in range(len(expected))] == expected

    def test_draw_count_is_linear_in_edges_not_pairs(self):
        # The old loop flipped one coin per pair: n=2000 means ~2M draws.
        # Geometric skips draw once per edge (expected p * pairs + 1).
        rng_holder = {}

        def counting_random(seed):
            rng = _CountingRandom(seed)
            rng_holder["rng"] = rng
            return rng

        import unittest.mock

        from repro.graph import generators

        with unittest.mock.patch.object(generators.random, "Random",
                                        counting_random):
            edges = list(gnp_edges(2000, 0.001, seed=6))
        draws = rng_holder["rng"].draws
        assert draws == len(edges) + 1
        assert draws < 10_000

    def test_edge_probability_is_calibrated(self):
        n, p = 300, 0.05
        graph = erdos_renyi_gnp(n, p, seed=12)
        expected = p * n * (n - 1) / 2
        assert abs(graph.edge_count - expected) < 6 * (expected ** 0.5)

    def test_deterministic_and_simple(self):
        a = erdos_renyi_gnp(50, 0.2, seed=3)
        b = erdos_renyi_gnp(50, 0.2, seed=3)
        assert set(map(frozenset, a.edges())) == set(map(frozenset, b.edges()))
        assert all(u != v for u, v in a.edges())


class TestPreferentialAttachmentStream:
    def test_stream_matches_barabasi_albert_exactly(self):
        for seed in (0, 7, 42):
            graph = barabasi_albert(200, 3, seed=seed)
            stream = set(map(frozenset,
                             preferential_attachment_edges(200, 3, seed=seed)))
            assert stream == set(map(frozenset, graph.edges()))

    def test_stream_validates_like_the_builder(self):
        with pytest.raises(ValueError):
            preferential_attachment_edges(3, 5, seed=1)
        with pytest.raises(ValueError):
            preferential_attachment_edges(10, 0, seed=1)
