"""Tests for the repro.engine query-engine subsystem."""

from __future__ import annotations

import pytest

from repro import Graph, find_maximal_quasi_cliques
from repro.datasets import dataset_names, get_spec, load_dataset, load_prepared
from repro.engine import (
    EngineError,
    MQCEEngine,
    PlannerConfig,
    PreparedGraph,
    QueryPlanner,
    QueryRequest,
    ResultCache,
    as_plain_graph,
    graph_fingerprint,
    prepare_graph,
)
from repro.extensions.topk import find_largest_quasi_cliques
from repro.quasiclique.definitions import ParameterError


@pytest.fixture
def small_graph() -> Graph:
    """A 4-clique plus a pendant vertex."""
    edges = [(i, j) for i in range(4) for j in range(i + 1, 4)] + [(3, 4)]
    return Graph(edges=edges)


class TestFingerprint:
    def test_deterministic(self, small_graph):
        assert graph_fingerprint(small_graph) == graph_fingerprint(small_graph)

    def test_invariant_to_edge_insertion_order(self):
        a = Graph(vertices=[0, 1, 2], edges=[(0, 1), (1, 2)])
        b = Graph(vertices=[0, 1, 2], edges=[(1, 2), (0, 1)])
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_sensitive_to_edges_and_labels(self, small_graph):
        other = small_graph.copy()
        other.add_edge(0, 4)
        assert graph_fingerprint(other) != graph_fingerprint(small_graph)
        relabeled = Graph(edges=[("a", "b")])
        plain = Graph(edges=[(0, 1)])
        assert graph_fingerprint(relabeled) != graph_fingerprint(plain)


class TestPreparedGraph:
    def test_artifacts_are_lazy_then_memoized(self, small_graph):
        prepared = PreparedGraph(small_graph)
        assert prepared.materialized_artifacts() == ()
        omega = prepared.degeneracy
        assert omega == 3
        assert "degeneracy" in prepared.materialized_artifacts()
        assert prepared.degeneracy is omega or prepared.degeneracy == omega

    def test_prepare_forces_everything(self, small_graph):
        prepared = PreparedGraph(small_graph).prepare()
        assert set(prepared.materialized_artifacts()) == set(
            prepared.preparation_seconds)
        summary = prepared.summary()
        assert summary["vertices"] == 5
        assert summary["components"] == 1

    def test_core_mask_memoized_per_threshold(self, small_graph):
        prepared = PreparedGraph(small_graph)
        # gamma=0.9/theta=4 and gamma=0.95/theta=4 share ceil(gamma*3)=3.
        assert prepared.core_mask(0.9, 4) == prepared.core_mask(0.95, 4)
        assert prepared.core_size(0.9, 4) == 4  # the pendant vertex is pruned

    def test_size_upper_bound(self, small_graph):
        prepared = PreparedGraph(small_graph)
        # omega=3, gamma=0.5 -> floor(3/0.5)+1 = 7, capped at |V|=5.
        assert prepared.size_upper_bound(0.5) == 5
        assert prepared.size_upper_bound(1.0) == 4

    def test_check_unmodified_detects_mutation(self, small_graph):
        prepared = PreparedGraph(small_graph)
        assert prepared.check_unmodified()
        small_graph.add_edge(0, 4)
        assert not prepared.check_unmodified()

    def test_prepare_graph_idempotent(self, small_graph):
        prepared = prepare_graph(small_graph, name="x")
        assert prepare_graph(prepared) is prepared
        assert as_plain_graph(prepared) is small_graph
        assert as_plain_graph(small_graph) is small_graph


class TestResultCache:
    def test_hit_miss_counters(self):
        cache = ResultCache(capacity=4)
        key = ResultCache.make_key("fp", 0.9, 5, "dcfastqc", "hybrid", "dc")
        assert cache.get(key) is None
        cache.put(key, "value")
        assert cache.get(key) == "value"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_gamma_normalisation_in_keys(self):
        from fractions import Fraction

        a = ResultCache.make_key("fp", 0.9, 5, "dcfastqc", "hybrid", "dc")
        b = ResultCache.make_key("fp", Fraction(9, 10), 5, "dcfastqc", "hybrid", "dc")
        assert a == b

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1        # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert cache.stats.evictions == 1
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_clear(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1      # counters survive a plain clear
        cache.clear(reset_stats=True)
        assert cache.stats.hits == 0

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


class TestQueryPlanner:
    def test_plan_reads_only_prepared_artifacts(self, small_graph):
        planner = QueryPlanner()
        prepared = PreparedGraph(small_graph)
        plan = planner.plan(prepared, 0.9, 3)
        assert plan.algorithm in ("fastqc", "dcfastqc")
        assert plan.core_vertices_kept + plan.core_vertices_removed == 5
        assert plan.reasons
        assert "algorithm" in plan.describe()

    def test_small_graph_prefers_plain_fastqc(self, small_graph):
        plan = QueryPlanner().plan(PreparedGraph(small_graph), 0.9, 3)
        assert plan.algorithm == "fastqc"
        assert plan.framework == "none"

    def test_large_graph_prefers_divide_and_conquer(self):
        prepared = load_prepared("ca-grqc")
        plan = QueryPlanner().plan(prepared, 0.9, 7)
        assert plan.algorithm == "dcfastqc"
        assert plan.framework == "dc"
        assert not plan.parallel  # core far below the parallel threshold

    def test_forced_algorithm_and_branching(self, small_graph):
        plan = QueryPlanner().plan(PreparedGraph(small_graph), 0.9, 3,
                                   algorithm="quickplus", branching="se")
        assert plan.algorithm == "quickplus"
        assert plan.branching == "se"
        assert any("forced" in reason for reason in plan.reasons)

    def test_parallel_plan_when_threshold_lowered(self):
        prepared = load_prepared("ca-grqc")
        planner = QueryPlanner(PlannerConfig(parallel_min_vertices=1,
                                             small_graph_vertices=1))
        plan = planner.plan(prepared, 0.9, 7, workers=2)
        assert plan.parallel
        assert plan.workers == 2

    def test_trivial_plan_when_core_too_small(self, small_graph):
        plan = QueryPlanner().plan(PreparedGraph(small_graph), 1.0, 6)
        assert plan.trivial
        assert plan.estimated_cost == 0.0
        assert "TRIVIAL" in plan.describe()

    def test_invalid_parameters_rejected(self, small_graph):
        prepared = PreparedGraph(small_graph)
        with pytest.raises(ParameterError):
            QueryPlanner().plan(prepared, 0.3, 3)
        with pytest.raises(ValueError):
            QueryPlanner().plan(prepared, 0.9, 3, algorithm="bogus")


class TestMQCEEngineQueries:
    @pytest.mark.parametrize("name", dataset_names())
    def test_matches_one_shot_pipeline_on_every_registry_dataset(self, name):
        spec = get_spec(name)
        graph = load_dataset(name)
        reference = find_maximal_quasi_cliques(graph, spec.default_gamma,
                                               spec.default_theta)
        engine = MQCEEngine()
        result = engine.query(graph, spec.default_gamma, spec.default_theta)
        assert result.maximal_quasi_cliques == reference.maximal_quasi_cliques

    def test_repeated_query_served_from_cache(self):
        spec = get_spec("douban")
        engine = MQCEEngine()
        prepared = load_prepared("douban")
        first = engine.query(prepared, spec.default_gamma, spec.default_theta)
        second = engine.query(prepared, spec.default_gamma, spec.default_theta)
        assert second.maximal_quasi_cliques == first.maximal_quasi_cliques
        assert engine.cache.stats.hits == 1
        assert engine.cache.stats.misses == 1
        stats = engine.stats()
        assert stats["queries"] == 2
        assert stats["queries_cached"] == 1

    def test_cached_result_copies_are_defensive(self):
        spec = get_spec("twitter")
        engine = MQCEEngine()
        prepared = load_prepared("twitter")
        first = engine.query(prepared, spec.default_gamma, spec.default_theta)
        first.maximal_quasi_cliques.clear()  # vandalise the returned copy
        second = engine.query(prepared, spec.default_gamma, spec.default_theta)
        assert second.maximal_count > 0

    def test_use_cache_false_bypasses_cache(self):
        spec = get_spec("twitter")
        engine = MQCEEngine()
        prepared = load_prepared("twitter")
        engine.query(prepared, spec.default_gamma, spec.default_theta, use_cache=False)
        engine.query(prepared, spec.default_gamma, spec.default_theta, use_cache=False)
        assert len(engine.cache) == 0
        assert engine.cache.stats.lookups == 0

    def test_trivial_query_returns_empty_without_enumeration(self, triangle):
        engine = MQCEEngine()
        result = engine.query(triangle, 1.0, 10)
        assert result.maximal_quasi_cliques == []
        reference = find_maximal_quasi_cliques(triangle, 1.0, 10)
        assert result.maximal_quasi_cliques == reference.maximal_quasi_cliques

    def test_parallel_plan_produces_identical_results(self):
        spec = get_spec("douban")
        graph = load_dataset("douban")
        reference = find_maximal_quasi_cliques(graph, spec.default_gamma,
                                               spec.default_theta)
        engine = MQCEEngine(planner=QueryPlanner(PlannerConfig(
            parallel_min_vertices=1, small_graph_vertices=1)), workers=2)
        result = engine.query(graph, spec.default_gamma, spec.default_theta)
        assert set(result.maximal_quasi_cliques) == set(reference.maximal_quasi_cliques)

    def test_query_batch_prepares_once_and_caches_duplicates(self):
        spec = get_spec("kmer")
        engine = MQCEEngine()
        requests = [
            QueryRequest(spec.default_gamma, spec.default_theta),
            (spec.default_gamma, spec.default_theta),                 # tuple form
            {"gamma": spec.default_gamma, "theta": spec.default_theta},  # mapping form
            (spec.default_gamma, max(1, spec.default_theta - 1)),
        ]
        results = engine.query_batch(load_dataset("kmer"), requests)
        assert len(results) == 4
        assert results[0].maximal_quasi_cliques == results[1].maximal_quasi_cliques
        assert results[1].maximal_quasi_cliques == results[2].maximal_quasi_cliques
        assert engine.cache.stats.hits == 2
        assert engine.stats()["prepared_graphs"] == 1

    def test_explain_does_not_enumerate_or_cache(self):
        engine = MQCEEngine()
        plan = engine.explain(load_dataset("ca-grqc"), 0.9, 7)
        assert plan.algorithm == "dcfastqc"
        assert len(engine.cache) == 0
        assert engine.stats()["queries"] == 0

    def test_mutated_plain_graph_is_reprepared(self, small_graph):
        engine = MQCEEngine()
        first = engine.prepare(small_graph)
        small_graph.add_edge(0, 4)
        second = engine.prepare(small_graph)
        assert second is not first
        assert second.check_unmodified()

    def test_mutated_prepared_graph_is_rejected(self, small_graph):
        prepared = PreparedGraph(small_graph)
        prepared.fingerprint  # force
        small_graph.add_edge(0, 4)
        with pytest.raises(EngineError):
            MQCEEngine().query(prepared, 0.9, 3)

    def test_transient_graphs_are_not_retained_by_the_engine(self):
        import gc

        engine = MQCEEngine()
        for _ in range(3):
            engine.query(load_dataset("twitter"), 0.9, 5)  # graph dropped each turn
        gc.collect()  # the graph <-> preparation cycle is ordinary garbage
        assert engine.stats()["prepared_graphs"] == 0
        assert engine.cache.stats.hits == 2  # equal content still hits the cache

    def test_plans_are_memoized_per_prepared_graph(self):
        prepared = load_prepared("twitter")
        planner = QueryPlanner()
        first = planner.plan(prepared, 0.9, 5)
        assert planner.plan(prepared, 0.9, 5) is first
        assert planner.plan(prepared, 0.9, 4) is not first

    def test_cache_shared_across_equal_content_graphs(self):
        spec = get_spec("twitter")
        engine = MQCEEngine()
        first = engine.query(load_dataset("twitter"), spec.default_gamma,
                             spec.default_theta)
        # A separately built but identical graph hits the same cache entry.
        second = engine.query(load_dataset("twitter"), spec.default_gamma,
                              spec.default_theta)
        assert engine.cache.stats.hits == 1
        assert second.maximal_quasi_cliques == first.maximal_quasi_cliques


class TestEngineAwareExtensions:
    def test_topk_accepts_prepared_graph_and_matches_plain(self):
        graph = load_dataset("douban")
        prepared = PreparedGraph(graph)
        plain = find_largest_quasi_cliques(graph, 0.9, k=2)
        via_prepared = find_largest_quasi_cliques(prepared, 0.9, k=2)
        assert via_prepared == plain

    def test_containment_accepts_prepared_graph(self):
        from repro.extensions.query import find_quasi_cliques_containing

        graph = load_dataset("twitter")
        prepared = PreparedGraph(graph)
        anchor = next(iter(graph.vertices()))
        plain = find_quasi_cliques_containing(graph, [anchor], 0.9, theta=2)
        via_prepared = find_quasi_cliques_containing(prepared, [anchor], 0.9, theta=2)
        assert via_prepared == plain

    def test_load_prepared_carries_dataset_name(self):
        prepared = load_prepared("kmer")
        assert isinstance(prepared, PreparedGraph)
        assert prepared.name == "kmer"
