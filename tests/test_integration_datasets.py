"""Integration tests: full pipeline agreement on the bundled dataset analogues.

These run the complete MQCE pipeline (enumeration + set-trie filtering) with
different algorithms on a few of the smaller dataset analogues and require the
*exact same* set of maximal quasi-cliques from every configuration.  They are
the closest thing to the paper's end-to-end experiments that still fits in the
unit-test budget (a few seconds each).
"""

from __future__ import annotations

import pytest

from repro import ParallelDCFastQC, find_maximal_quasi_cliques
from repro.datasets import get_spec
from repro.quasiclique import is_quasi_clique, satisfies_maximality_necessary_condition

SMALL_ANALOGUES = ["douban", "twitter", "kmer", "ca-grqc"]


@pytest.fixture(scope="module")
def dataset_results():
    """Run DCFastQC once per analogue and cache the result for the other tests."""
    results = {}
    for name in SMALL_ANALOGUES:
        spec = get_spec(name)
        graph = spec.build()
        result = find_maximal_quasi_cliques(graph, spec.default_gamma, spec.default_theta)
        results[name] = (spec, graph, result)
    return results


class TestAlgorithmsAgreeOnDatasets:
    @pytest.mark.parametrize("name", SMALL_ANALOGUES)
    def test_quickplus_matches_dcfastqc(self, dataset_results, name):
        spec, graph, reference = dataset_results[name]
        quick = find_maximal_quasi_cliques(graph, spec.default_gamma, spec.default_theta,
                                           algorithm="quickplus")
        assert set(quick.maximal_quasi_cliques) == set(reference.maximal_quasi_cliques)

    @pytest.mark.parametrize("name", SMALL_ANALOGUES)
    def test_fastqc_matches_dcfastqc(self, dataset_results, name):
        spec, graph, reference = dataset_results[name]
        fast = find_maximal_quasi_cliques(graph, spec.default_gamma, spec.default_theta,
                                          algorithm="fastqc")
        assert set(fast.maximal_quasi_cliques) == set(reference.maximal_quasi_cliques)

    @pytest.mark.parametrize("name", ["douban", "twitter"])
    def test_branching_variants_match(self, dataset_results, name):
        spec, graph, reference = dataset_results[name]
        for branching in ("sym-se", "se"):
            result = find_maximal_quasi_cliques(graph, spec.default_gamma,
                                                spec.default_theta, branching=branching)
            assert set(result.maximal_quasi_cliques) == set(reference.maximal_quasi_cliques)

    @pytest.mark.parametrize("name", ["douban", "kmer"])
    def test_parallel_matches_sequential(self, dataset_results, name):
        spec, graph, reference = dataset_results[name]
        parallel = ParallelDCFastQC(graph, spec.default_gamma, spec.default_theta,
                                    workers=2, chunk_size=8)
        assert set(parallel.find_maximal()) == set(reference.maximal_quasi_cliques)


class TestOutputQuality:
    @pytest.mark.parametrize("name", SMALL_ANALOGUES)
    def test_every_output_is_a_large_quasi_clique(self, dataset_results, name):
        spec, graph, result = dataset_results[name]
        assert result.maximal_count >= 1
        for clique in result.maximal_quasi_cliques:
            assert len(clique) >= spec.default_theta
            assert is_quasi_clique(graph, clique, spec.default_gamma)

    @pytest.mark.parametrize("name", SMALL_ANALOGUES)
    def test_outputs_pass_the_maximality_necessary_condition(self, dataset_results, name):
        spec, graph, result = dataset_results[name]
        for clique in result.maximal_quasi_cliques:
            assert satisfies_maximality_necessary_condition(graph, clique, spec.default_gamma)

    @pytest.mark.parametrize("name", SMALL_ANALOGUES)
    def test_no_output_contains_another(self, dataset_results, name):
        _, _, result = dataset_results[name]
        cliques = result.maximal_quasi_cliques
        for a in cliques:
            for b in cliques:
                assert not (a < b)

    @pytest.mark.parametrize("name", SMALL_ANALOGUES)
    def test_candidate_set_is_superset_of_answer(self, dataset_results, name):
        _, _, result = dataset_results[name]
        assert set(result.maximal_quasi_cliques) <= set(result.candidate_quasi_cliques)
