"""Unit tests for k-core decomposition and degeneracy ordering."""

from __future__ import annotations

import pytest

from repro import Graph
from repro.graph import (
    core_numbers,
    degeneracy,
    degeneracy_ordering,
    erdos_renyi_gnm,
    is_degeneracy_ordering,
    k_core,
    k_core_vertices,
)


class TestCoreNumbers:
    def test_clique_core_numbers(self, clique5):
        assert set(core_numbers(clique5).values()) == {4}

    def test_path_core_numbers(self, path4):
        assert set(core_numbers(path4).values()) == {1}

    def test_star_core_numbers(self, star5):
        cores = core_numbers(star5)
        assert cores[0] == 1
        assert all(cores[leaf] == 1 for leaf in range(1, 5))

    def test_empty_graph(self):
        assert core_numbers(Graph()) == {}
        assert degeneracy(Graph()) == 0

    def test_triangle_with_pendant(self):
        graph = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
        cores = core_numbers(graph)
        assert cores[3] == 1
        assert cores[0] == cores[1] == cores[2] == 2

    def test_core_number_bounded_by_degree(self, paper_figure1):
        cores = core_numbers(paper_figure1)
        for vertex, core in cores.items():
            assert core <= paper_figure1.degree(vertex)


class TestDegeneracy:
    def test_clique_degeneracy(self, clique5):
        assert degeneracy(clique5) == 4

    def test_tree_degeneracy(self, path4, star5):
        assert degeneracy(path4) == 1
        assert degeneracy(star5) == 1

    def test_degeneracy_of_er_graph_is_at_most_max_degree(self):
        graph = erdos_renyi_gnm(60, 180, seed=3)
        assert degeneracy(graph) <= graph.max_degree()


class TestDegeneracyOrdering:
    def test_ordering_is_permutation(self, paper_figure1):
        ordering = degeneracy_ordering(paper_figure1)
        assert sorted(ordering) == sorted(paper_figure1.vertices())

    def test_ordering_satisfies_property(self, paper_figure1):
        assert is_degeneracy_ordering(paper_figure1, degeneracy_ordering(paper_figure1))

    def test_ordering_property_on_random_graph(self):
        graph = erdos_renyi_gnm(50, 140, seed=11)
        assert is_degeneracy_ordering(graph, degeneracy_ordering(graph))

    def test_wrong_ordering_detected(self, star5):
        # Placing the hub first gives it 4 later neighbours > degeneracy 1.
        ordering = [0, 1, 2, 3, 4]
        assert not is_degeneracy_ordering(star5, ordering)

    def test_incomplete_ordering_rejected(self, triangle):
        assert not is_degeneracy_ordering(triangle, [1, 2])

    def test_empty_graph_ordering(self):
        assert degeneracy_ordering(Graph()) == []


class TestKCore:
    def test_k_core_of_clique(self, clique5):
        assert k_core(clique5, 4).vertex_count == 5
        assert k_core(clique5, 5).vertex_count == 0

    def test_k_core_removes_pendants(self):
        graph = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
        core = k_core(graph, 2)
        assert sorted(core.vertices()) == [0, 1, 2]

    def test_k_core_iterative_removal(self):
        # A path attached to a triangle: removing the leaf exposes the next vertex.
        graph = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4)])
        assert sorted(k_core(graph, 2).vertices()) == [0, 1, 2]

    def test_k_core_zero_returns_copy(self, path4):
        core = k_core(path4, 0)
        assert core.vertex_count == path4.vertex_count
        core.add_edge(1, 4)
        assert not path4.has_edge(1, 4)

    def test_k_core_vertices_matches_k_core(self, paper_figure1):
        for k in range(0, 5):
            assert k_core_vertices(paper_figure1, k) == frozenset(k_core(paper_figure1, k).vertices())

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_k_core_min_degree_property(self, paper_figure1, k):
        core = k_core(paper_figure1, k)
        for vertex in core.vertices():
            assert core.degree(vertex) >= k
