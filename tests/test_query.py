"""Tests for query-driven quasi-clique search."""

from __future__ import annotations

import random

import pytest

from repro import Graph, community_of, find_quasi_cliques_containing
from repro.extensions import QueryError
from repro.graph.generators import erdos_renyi_gnp, planted_quasi_clique_graph
from repro.quasiclique import enumerate_maximal_quasi_cliques_bruteforce, is_quasi_clique


class TestFindContaining:
    def test_empty_query_rejected(self, triangle):
        with pytest.raises(QueryError):
            find_quasi_cliques_containing(triangle, [], 0.9)

    def test_unknown_vertex_rejected(self, triangle):
        from repro import GraphError

        with pytest.raises(GraphError):
            find_quasi_cliques_containing(triangle, [42], 0.9)

    def test_single_query_in_clique(self, clique5):
        found = find_quasi_cliques_containing(clique5, [2], 1.0, theta=3)
        assert found == [frozenset(range(5))]

    def test_query_pair_in_different_triangles(self, two_triangles):
        assert find_quasi_cliques_containing(two_triangles, [0, 3], 0.9, theta=2) == []

    def test_all_results_contain_query_and_are_qcs(self, paper_figure1):
        for query in ([1], [2, 3], [5]):
            for gamma in (0.6, 0.9):
                found = find_quasi_cliques_containing(paper_figure1, query, gamma, theta=2)
                for clique in found:
                    assert set(query) <= clique
                    assert is_quasi_clique(paper_figure1, clique, gamma)

    def test_contains_every_maximal_qc_with_query(self):
        rng = random.Random(501)
        for trial in range(12):
            graph = erdos_renyi_gnp(9, rng.uniform(0.3, 0.8), seed=2300 + trial)
            gamma = rng.choice([0.5, 0.7, 0.9])
            theta = rng.randint(1, 3)
            query_vertex = rng.choice(graph.vertices())
            expected = [m for m in enumerate_maximal_quasi_cliques_bruteforce(graph, gamma, theta)
                        if query_vertex in m]
            found = find_quasi_cliques_containing(graph, [query_vertex], gamma, theta)
            for mqc in expected:
                assert mqc in found, (
                    f"trial {trial}: missing {sorted(mqc)} for query {query_vertex}")

    def test_non_maximal_mode_returns_more(self, clique5):
        maximal = find_quasi_cliques_containing(clique5, [0], 1.0, theta=2)
        everything = find_quasi_cliques_containing(clique5, [0], 1.0, theta=2,
                                                   require_maximal=False)
        assert len(everything) >= len(maximal)

    def test_results_sorted_by_size(self):
        graph = planted_quasi_clique_graph(30, 40, [8], 0.9, seed=7)
        found = find_quasi_cliques_containing(graph, [0], 0.85, theta=3)
        sizes = [len(h) for h in found]
        assert sizes == sorted(sizes, reverse=True)


class TestCommunityOf:
    def test_member_of_planted_community(self):
        graph = planted_quasi_clique_graph(40, 50, [9], 0.9, seed=19)
        community = community_of(graph, 0, gamma=0.85, theta=5)
        assert 0 in community
        assert len(community) >= 7

    def test_isolated_vertex_has_no_community(self):
        graph = Graph(edges=[(0, 1), (1, 2), (0, 2)], vertices=[0, 1, 2, 9])
        assert community_of(graph, 9, gamma=0.9, theta=2) == frozenset()

    def test_community_is_quasi_clique(self, paper_figure1):
        community = community_of(paper_figure1, 5, gamma=0.6, theta=3)
        if community:
            assert is_quasi_clique(paper_figure1, community, 0.6)
