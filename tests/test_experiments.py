"""Tests for the experiment harness and the table/figure drivers.

The harness functions are exercised on tiny inputs (small planted graphs or a
single small dataset analogue) so the test suite stays fast; the full-size runs
live under ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    compare_algorithms,
    codesign_ablation_rows,
    dc_reduction_rows,
    default_gamma_values,
    default_theta_values,
    figure10a_rows,
    figure10b_rows,
    format_table,
    max_round_rows,
    run_algorithm,
    speedup_over_baseline,
    sweep_parameter,
    table1_row,
)
from repro.graph.generators import planted_quasi_clique_graph


@pytest.fixture(scope="module")
def small_graph():
    return planted_quasi_clique_graph(40, 60, [8, 6], 0.9, seed=13)


class TestHarness:
    def test_run_algorithm_row(self, small_graph):
        row = run_algorithm(small_graph, 0.9, 5, "dcfastqc")
        assert row["algorithm"] == "dcfastqc"
        assert row["vertices"] == 40
        assert row["maximal_count"] >= 1
        assert row["candidate_count"] >= row["maximal_count"]
        assert row["enumeration_seconds"] >= 0.0
        assert row["branches_explored"] > 0

    def test_run_algorithm_without_filtering(self, small_graph):
        row = run_algorithm(small_graph, 0.9, 5, "dcfastqc", include_filtering=False)
        assert row["maximal_count"] == 0
        assert row["filtering_seconds"] == 0.0

    def test_kwargs_recorded_as_options(self, small_graph):
        row = run_algorithm(small_graph, 0.9, 5, "dcfastqc", branching="sym-se")
        assert row["option_branching"] == "sym-se"

    def test_compare_algorithms(self, small_graph):
        rows = compare_algorithms(small_graph, 0.9, 5, algorithms=("dcfastqc", "quickplus"))
        assert [row["algorithm"] for row in rows] == ["dcfastqc", "quickplus"]
        assert rows[0]["maximal_count"] == rows[1]["maximal_count"]

    def test_sweep_parameter_gamma(self, small_graph):
        rows = sweep_parameter(small_graph, "gamma", [0.85, 0.9], 0.9, 5,
                               algorithms=("dcfastqc",))
        assert len(rows) == 2
        assert {row["swept_value"] for row in rows} == {0.85, 0.9}

    def test_sweep_parameter_theta(self, small_graph):
        rows = sweep_parameter(small_graph, "theta", [5, 6], 0.9, 5, algorithms=("dcfastqc",))
        assert {row["theta"] for row in rows} == {5, 6}

    def test_sweep_parameter_invalid(self, small_graph):
        with pytest.raises(ValueError):
            sweep_parameter(small_graph, "delta", [1], 0.9, 5)

    def test_speedup_over_baseline(self):
        rows = [
            {"algorithm": "dcfastqc", "enumeration_seconds": 1.0},
            {"algorithm": "quickplus", "enumeration_seconds": 10.0},
        ]
        assert speedup_over_baseline(rows) == pytest.approx(10.0)

    def test_format_table(self):
        rows = [{"a": 1, "b": 2.34567}, {"a": 10, "b": 0.5}]
        text = format_table(rows)
        assert "a" in text and "b" in text
        assert "2.346" in text
        assert format_table([]) == "(no rows)"

    def test_format_table_missing_column(self):
        text = format_table([{"a": 1}], columns=["a", "missing"])
        assert "missing" in text


class TestFigureDrivers:
    def test_default_sweep_values(self):
        gammas = default_gamma_values("enron")
        thetas = default_theta_values("enron")
        assert all(0.5 <= g <= 1.0 for g in gammas)
        assert all(t >= 2 for t in thetas)
        assert len(gammas) >= 3 and len(thetas) >= 3

    def test_figure10a_rows_small(self):
        rows = figure10a_rows(vertex_counts=(60,), edge_density=4.0, gamma=0.9, theta=5,
                              algorithms=("dcfastqc",))
        assert len(rows) == 1
        assert rows[0]["vertex_count"] == 60

    def test_figure10b_rows_small(self):
        rows = figure10b_rows(edge_densities=(3.0, 5.0), vertex_count=60, gamma=0.9,
                              theta=5, algorithms=("dcfastqc",))
        assert {row["edge_density"] for row in rows} == {3.0, 5.0}

    def test_max_round_rows(self):
        rows = max_round_rows(names=("douban",), rounds=(1, 2))
        assert {row["max_rounds"] for row in rows} == {1, 2}

    def test_dc_reduction_rows(self):
        rows = dc_reduction_rows(names=("douban",))
        assert rows[0]["subproblems"] >= 1
        assert rows[0]["avg_refined_size"] <= rows[0]["avg_initial_size"]

    def test_codesign_ablation_rows(self):
        rows = codesign_ablation_rows(names=("douban",))
        variants = {row["variant"] for row in rows}
        assert "quickplus+se" in variants
        assert "dcfastqc+hybrid" in variants


class TestTable1:
    def test_single_row_structure(self):
        row = table1_row("douban", include_quickplus=True)
        assert row["dataset"] == "douban"
        assert row["mqc_count"] >= 1
        assert row["dcfastqc_count"] >= row["mqc_count"]
        assert row["quickplus_count"] >= row["mqc_count"]
        assert row["min_size"] <= row["avg_size"] <= row["max_size"]
        assert row["paper_mqc_count"] == 26

    def test_row_without_quickplus(self):
        row = table1_row("douban", include_quickplus=False)
        assert "quickplus_count" not in row
