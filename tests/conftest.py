"""Shared fixtures: small reference graphs used across the test suite."""

from __future__ import annotations

import pytest

from repro import Graph


@pytest.fixture
def triangle() -> Graph:
    """A 3-clique."""
    return Graph(edges=[(1, 2), (2, 3), (1, 3)])


@pytest.fixture
def path4() -> Graph:
    """A path on 4 vertices: 1-2-3-4."""
    return Graph(edges=[(1, 2), (2, 3), (3, 4)])


@pytest.fixture
def star5() -> Graph:
    """A star with center 0 and leaves 1..4."""
    return Graph(edges=[(0, 1), (0, 2), (0, 3), (0, 4)])


@pytest.fixture
def clique5() -> Graph:
    """A 5-clique."""
    edges = [(i, j) for i in range(5) for j in range(i + 1, 5)]
    return Graph(edges=edges)


@pytest.fixture
def two_triangles() -> Graph:
    """Two disjoint triangles."""
    return Graph(edges=[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])


@pytest.fixture
def paper_figure1() -> Graph:
    """A 9-vertex graph in the spirit of the paper's running example (Figure 1).

    The exact edge list of Figure 1 is not published; this graph reproduces
    the properties the paper derives from it that the tests rely on:
    ``G[{1, 3, 4, 5}]`` is a 0.6-quasi-clique while ``G[{1, 3, 4}]`` is not
    (the non-hereditary Property 1).
    """
    edges = [
        (1, 2), (1, 3), (1, 5),
        (2, 3), (2, 4), (2, 5), (2, 6),
        (3, 4), (3, 5),
        (4, 5), (4, 6),
        (5, 6), (5, 9),
        (6, 7), (6, 8),
        (7, 8), (7, 9),
        (8, 9),
    ]
    return Graph(edges=edges)


@pytest.fixture
def almost_clique6() -> Graph:
    """A 6-clique with one edge removed: a 0.8-quasi-clique that is not a clique."""
    edges = [(i, j) for i in range(6) for j in range(i + 1, 6) if (i, j) != (0, 1)]
    return Graph(edges=edges)
