"""Tests for the plain-text reporting helpers (Markdown tables, ASCII charts)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    ascii_bar_chart,
    markdown_table,
    render_figure,
    series_chart,
    speedup_summary,
)


class TestMarkdownTable:
    def test_basic(self):
        text = markdown_table([{"a": 1, "b": 2.5}, {"a": 3, "b": 0.125}])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert "| 1 | 2.5 |" in lines
        assert len(lines) == 4

    def test_column_selection_and_missing(self):
        text = markdown_table([{"a": 1}], columns=["a", "c"])
        assert "| 1 |  |" in text

    def test_empty(self):
        assert markdown_table([]) == "(no rows)"


class TestAsciiBarChart:
    def test_bars_scale_with_values(self):
        chart = ascii_bar_chart({"fast": 1.0, "slow": 10.0}, width=20)
        fast_line, slow_line = chart.splitlines()
        assert fast_line.count("#") < slow_line.count("#")

    def test_log_scale(self):
        chart = ascii_bar_chart({"a": 0.01, "b": 100.0}, width=20, log_scale=True)
        a_line, b_line = chart.splitlines()
        assert a_line.count("#") < b_line.count("#")

    def test_unit_suffix(self):
        chart = ascii_bar_chart({"x": 2.0}, unit="s")
        assert "2s" in chart.replace(" ", "")

    def test_empty(self):
        assert ascii_bar_chart({}) == "(no data)"

    def test_zero_values_do_not_crash(self):
        chart = ascii_bar_chart({"a": 0.0, "b": 0.0})
        assert "a" in chart and "b" in chart


class TestSeriesChart:
    def test_groups_rendered(self):
        rows = [
            {"gamma": 0.85, "seconds": 1.0, "algorithm": "dcfastqc"},
            {"gamma": 0.9, "seconds": 0.5, "algorithm": "dcfastqc"},
            {"gamma": 0.85, "seconds": 9.0, "algorithm": "quickplus"},
            {"gamma": 0.9, "seconds": 4.0, "algorithm": "quickplus"},
        ]
        chart = series_chart(rows, "gamma", "seconds", "algorithm")
        assert "[algorithm=dcfastqc]" in chart
        assert "[algorithm=quickplus]" in chart


class TestSpeedupSummary:
    def test_per_dataset_speedups(self):
        rows = [
            {"dataset": "x", "algorithm": "dcfastqc", "enumeration_seconds": 1.0},
            {"dataset": "x", "algorithm": "quickplus", "enumeration_seconds": 5.0},
            {"dataset": "y", "algorithm": "dcfastqc", "enumeration_seconds": 2.0},
            {"dataset": "y", "algorithm": "quickplus", "enumeration_seconds": 2.0},
        ]
        summary = {row["dataset"]: row["speedup"] for row in speedup_summary(rows)}
        assert summary["x"] == pytest.approx(5.0)
        assert summary["y"] == pytest.approx(1.0)

    def test_zero_subject_time(self):
        rows = [{"dataset": "x", "algorithm": "dcfastqc", "enumeration_seconds": 0.0},
                {"dataset": "x", "algorithm": "quickplus", "enumeration_seconds": 1.0}]
        assert speedup_summary(rows)[0]["speedup"] == float("inf")


class TestRenderFigure:
    def test_contains_title_chart_and_table(self):
        rows = [{"algorithm": "dcfastqc", "gamma": 0.9, "seconds": 0.5},
                {"algorithm": "quickplus", "gamma": 0.9, "seconds": 5.0}]
        text = render_figure(rows, "Figure 8 (enron)", "gamma", "seconds", "algorithm")
        assert "== Figure 8 (enron) ==" in text
        assert "| algorithm | gamma | seconds |" in text
        assert "#" in text
