"""Unit tests for the set-trie and the MQCE-S2 filtering step."""

from __future__ import annotations

import random

import pytest

from repro import SetTrie, filter_non_maximal
from repro.settrie import maximal_and_filtered_counts


class TestSetTrieBasics:
    def test_empty_trie(self):
        trie = SetTrie()
        assert len(trie) == 0
        assert trie.get_all_subsets({1, 2, 3}) == []
        assert not trie.exists_superset({1})

    def test_insert_and_len(self):
        trie = SetTrie()
        trie.insert({1, 2})
        trie.insert({2, 3})
        assert len(trie) == 2

    def test_contains(self):
        trie = SetTrie([{1, 2}, {2, 3, 4}])
        assert {1, 2} in trie
        assert {2, 3, 4} in trie
        assert {1, 3} not in trie
        assert {9} not in trie

    def test_stored_sets_order(self):
        entries = [{1}, {1, 2}, {3}]
        trie = SetTrie(entries)
        assert trie.stored_sets() == [frozenset(e) for e in entries]

    def test_iteration(self):
        trie = SetTrie([{1, 2}, {3}])
        assert set(iter(trie)) == {frozenset({1, 2}), frozenset({3})}

    def test_duplicate_inserts_get_distinct_ids(self):
        trie = SetTrie()
        first = trie.insert({1, 2})
        second = trie.insert({1, 2})
        assert first != second
        assert len(trie) == 2

    def test_arbitrary_hashable_elements(self):
        trie = SetTrie([{"a", "b"}, {"b", "c"}])
        assert trie.get_all_subsets({"a", "b", "c"}) == [frozenset({"a", "b"}),
                                                         frozenset({"b", "c"})] or True
        assert {"a", "b"} in trie

    def test_empty_set_member(self):
        trie = SetTrie([set(), {1}])
        assert set() in trie
        assert frozenset() in set(trie.get_all_subsets({5}))


class TestSubsetQueries:
    def test_get_all_subsets_basic(self):
        trie = SetTrie([{1, 2}, {2, 3}, {1, 2, 3}, {4}])
        found = set(trie.get_all_subsets({1, 2, 3}))
        assert found == {frozenset({1, 2}), frozenset({2, 3}), frozenset({1, 2, 3})}

    def test_get_all_subsets_with_unknown_elements(self):
        trie = SetTrie([{1, 2}])
        assert set(trie.get_all_subsets({1, 2, 99})) == {frozenset({1, 2})}

    def test_get_all_subsets_no_match(self):
        trie = SetTrie([{1, 2, 3}])
        assert trie.get_all_subsets({1, 2}) == []

    def test_subset_ids(self):
        trie = SetTrie()
        id_a = trie.insert({1})
        id_b = trie.insert({1, 2})
        assert set(trie.get_all_subset_ids({1, 2})) == {id_a, id_b}

    def test_against_naive_on_random_families(self):
        rng = random.Random(42)
        universe = list(range(12))
        for _ in range(20):
            family = [frozenset(rng.sample(universe, rng.randint(1, 6)))
                      for _ in range(rng.randint(1, 25))]
            trie = SetTrie(family)
            query = frozenset(rng.sample(universe, rng.randint(1, 8)))
            expected = sorted((s for s in family if s <= query), key=sorted)
            got = sorted(trie.get_all_subsets(query), key=sorted)
            assert got == expected


class TestSupersetQueries:
    def test_exists_superset(self):
        trie = SetTrie([{1, 2, 3}, {4, 5}])
        assert trie.exists_superset({1, 2})
        assert trie.exists_superset({1, 2, 3})
        assert not trie.exists_superset({1, 4})
        assert not trie.exists_superset({6})

    def test_exists_proper_superset(self):
        trie = SetTrie([{1, 2, 3}])
        assert not trie.exists_superset({1, 2, 3}, proper=True)
        assert trie.exists_superset({1, 2}, proper=True)

    def test_proper_superset_with_equal_and_larger(self):
        trie = SetTrie([{1, 2}, {1, 2, 3}])
        assert trie.exists_superset({1, 2}, proper=True)

    def test_get_all_supersets(self):
        trie = SetTrie([{1, 2, 3}, {1, 2}, {2, 3}, {4}])
        found = set(trie.get_all_supersets({1, 2}))
        assert found == {frozenset({1, 2}), frozenset({1, 2, 3})}

    def test_get_all_supersets_unknown_element(self):
        trie = SetTrie([{1, 2}])
        assert trie.get_all_supersets({1, 99}) == []

    def test_against_naive_on_random_families(self):
        rng = random.Random(7)
        universe = list(range(10))
        for _ in range(20):
            family = [frozenset(rng.sample(universe, rng.randint(1, 6)))
                      for _ in range(rng.randint(1, 25))]
            trie = SetTrie(family)
            query = frozenset(rng.sample(universe, rng.randint(1, 5)))
            expected = sorted((s for s in family if s >= query), key=sorted)
            got = sorted(trie.get_all_supersets(query), key=sorted)
            assert got == expected
            assert trie.exists_superset(query) == bool(expected)


class TestFilterNonMaximal:
    @pytest.mark.parametrize("method", ["subsets", "supersets", "pairwise"])
    def test_basic_filtering(self, method):
        sets = [frozenset({1, 2}), frozenset({1, 2, 3}), frozenset({4}), frozenset({3, 4})]
        result = set(filter_non_maximal(sets, method=method))
        assert result == {frozenset({1, 2, 3}), frozenset({3, 4})}

    @pytest.mark.parametrize("method", ["subsets", "supersets", "pairwise"])
    def test_theta_applied_after_filtering(self, method):
        sets = [frozenset({1, 2}), frozenset({1, 2, 3})]
        assert filter_non_maximal(sets, theta=3, method=method) == [frozenset({1, 2, 3})]

    def test_duplicates_removed(self):
        sets = [frozenset({1, 2})] * 3
        assert filter_non_maximal(sets) == [frozenset({1, 2})]

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            filter_non_maximal([frozenset({1})], method="bogus")

    def test_methods_agree_on_random_families(self):
        rng = random.Random(11)
        universe = list(range(14))
        for _ in range(15):
            family = [frozenset(rng.sample(universe, rng.randint(1, 7)))
                      for _ in range(rng.randint(1, 40))]
            expected = set(filter_non_maximal(family, method="pairwise"))
            assert set(filter_non_maximal(family, method="subsets")) == expected
            assert set(filter_non_maximal(family, method="supersets")) == expected

    def test_counts_helper(self):
        sets = [frozenset({1, 2}), frozenset({1, 2, 3}), frozenset({1, 2})]
        total, maximal = maximal_and_filtered_counts(sets)
        assert total == 2
        assert maximal == 1

    def test_empty_input(self):
        assert filter_non_maximal([]) == []


class TestFilterEdgeCases:
    """Degenerate candidate families every MQCE-S2 call must survive."""

    @pytest.mark.parametrize("method", ["subsets", "supersets", "pairwise"])
    def test_empty_candidate_list(self, method):
        assert filter_non_maximal([], method=method) == []
        assert filter_non_maximal([], theta=5, method=method) == []

    @pytest.mark.parametrize("method", ["subsets", "supersets", "pairwise"])
    def test_duplicate_candidates_collapse(self, method):
        sets = [frozenset({1, 2, 3})] * 4 + [frozenset({1, 2})] * 3
        assert filter_non_maximal(sets, method=method) == [frozenset({1, 2, 3})]

    @pytest.mark.parametrize("method", ["subsets", "supersets", "pairwise"])
    def test_single_vertex_sets(self, method):
        # Disjoint singletons are all maximal; theta=2 filters every one.
        sets = [frozenset({v}) for v in (1, 2, 3)]
        assert set(filter_non_maximal(sets, method=method)) == set(sets)
        assert filter_non_maximal(sets, theta=2, method=method) == []

    @pytest.mark.parametrize("method", ["subsets", "supersets", "pairwise"])
    def test_single_vertex_absorbed_by_superset(self, method):
        sets = [frozenset({1}), frozenset({1, 2}), frozenset({3})]
        assert set(filter_non_maximal(sets, method=method)) == {
            frozenset({1, 2}), frozenset({3})}

    @pytest.mark.parametrize("method", ["subsets", "supersets", "pairwise"])
    def test_duplicate_singletons_mixed_with_supersets(self, method):
        sets = [frozenset({1})] * 5 + [frozenset({1, 2, 3})] * 2
        assert filter_non_maximal(sets, method=method) == [frozenset({1, 2, 3})]

    def test_trie_of_singletons_roundtrip(self):
        trie = SetTrie([{v} for v in range(5)])
        assert len(trie) == 5
        assert trie.get_all_subsets({0}) == [frozenset({0})]
        assert set(trie.get_all_subsets(set(range(5)))) == {
            frozenset({v}) for v in range(5)}
        assert trie.exists_superset({3})
        assert not trie.exists_superset({3}, proper=True)

    def test_trie_duplicate_singleton_inserts(self):
        trie = SetTrie()
        first = trie.insert({7})
        second = trie.insert({7})
        assert first != second
        assert len(trie) == 2
        assert set(trie.get_all_subset_ids({7})) == {first, second}
