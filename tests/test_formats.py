"""Tests for the extra graph interchange formats (adjacency list, JSON, DIMACS)."""

from __future__ import annotations

import io
import json

import pytest

from repro import Graph, GraphError
from repro.graph.formats import (
    graph_from_json_dict,
    graph_to_json_dict,
    read_adjacency_list,
    read_dimacs,
    read_json_graph,
    write_adjacency_list,
    write_dimacs,
    write_json_graph,
)


class TestAdjacencyList:
    def test_read_with_colons(self):
        graph = read_adjacency_list(io.StringIO("1: 2 3\n2: 1\n3: 1\n4:\n"))
        assert graph.vertex_count == 4
        assert graph.edge_count == 2
        assert graph.degree(4) == 0

    def test_read_without_colons(self):
        graph = read_adjacency_list(io.StringIO("a b c\nb a\n"))
        assert graph.has_edge("a", "b")
        assert graph.has_edge("a", "c")

    def test_comments_and_blanks_skipped(self):
        graph = read_adjacency_list(io.StringIO("# comment\n\n1: 2\n"))
        assert graph.edge_count == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            read_adjacency_list(io.StringIO("1: 1\n"))

    def test_roundtrip(self, paper_figure1):
        buffer = io.StringIO()
        write_adjacency_list(paper_figure1, buffer)
        back = read_adjacency_list(io.StringIO(buffer.getvalue()))
        assert back.vertex_count == paper_figure1.vertex_count
        assert back.edge_count == paper_figure1.edge_count
        for u, v in paper_figure1.edges():
            assert back.has_edge(u, v)

    def test_roundtrip_via_path(self, tmp_path, triangle):
        path = tmp_path / "adj.txt"
        write_adjacency_list(triangle, path)
        assert read_adjacency_list(path).edge_count == 3


class TestJson:
    def test_dict_roundtrip(self, paper_figure1):
        back = graph_from_json_dict(graph_to_json_dict(paper_figure1))
        assert back.vertex_count == paper_figure1.vertex_count
        assert back.edge_count == paper_figure1.edge_count

    def test_missing_edges_key(self):
        with pytest.raises(GraphError):
            graph_from_json_dict({"vertices": [1, 2]})

    def test_isolated_vertices_preserved(self):
        graph = Graph(edges=[(1, 2)], vertices=[1, 2, 3])
        back = graph_from_json_dict(graph_to_json_dict(graph))
        assert back.vertex_count == 3

    def test_file_roundtrip(self, tmp_path, clique5):
        path = tmp_path / "graph.json"
        write_json_graph(clique5, path, indent=2)
        data = json.loads(path.read_text())
        assert len(data["edges"]) == 10
        assert read_json_graph(path).edge_count == 10

    def test_stream_roundtrip(self, triangle):
        buffer = io.StringIO()
        write_json_graph(triangle, buffer)
        back = read_json_graph(io.StringIO(buffer.getvalue()))
        assert back.edge_count == 3


class TestDimacs:
    DIMACS = "c example\np edge 4 3\ne 1 2\ne 2 3\ne 3 4\n"

    def test_read(self):
        graph = read_dimacs(io.StringIO(self.DIMACS))
        assert graph.vertex_count == 4
        assert graph.edge_count == 3
        assert graph.has_edge(1, 2)

    def test_missing_problem_line(self):
        with pytest.raises(GraphError):
            read_dimacs(io.StringIO("e 1 2\n"))

    def test_malformed_lines(self):
        with pytest.raises(GraphError):
            read_dimacs(io.StringIO("p edge 2\n"))
        with pytest.raises(GraphError):
            read_dimacs(io.StringIO("p edge 2 1\nx 1 2\n"))

    def test_self_loops_skipped(self):
        graph = read_dimacs(io.StringIO("p edge 2 2\ne 1 1\ne 1 2\n"))
        assert graph.edge_count == 1

    def test_roundtrip_with_relabeling(self, tmp_path):
        graph = Graph(edges=[("x", "y"), ("y", "z")])
        path = tmp_path / "graph.dimacs"
        write_dimacs(graph, path, comment="from tests")
        back = read_dimacs(path)
        assert back.vertex_count == 3
        assert back.edge_count == 2
        assert path.read_text().startswith("c from tests\n")

    def test_enumeration_on_dimacs_graph(self):
        graph = read_dimacs(io.StringIO("p edge 4 6\ne 1 2\ne 1 3\ne 1 4\ne 2 3\ne 2 4\ne 3 4\n"))
        from repro import find_maximal_quasi_cliques

        result = find_maximal_quasi_cliques(graph, gamma=1.0, theta=3)
        assert result.maximal_quasi_cliques == [frozenset({1, 2, 3, 4})]
