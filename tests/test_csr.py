"""Tests for the CSR large-graph backend (repro.core.csr).

The contract under test: a :class:`CSRGraph` is a read-only facade over flat
``indptr`` / ``indices`` arrays whose every accessor — and therefore every
enumeration answer — is identical to a dict/bitmask :class:`Graph` of the
same content.  The differential below covers the full dataset registry.
"""

from __future__ import annotations

import io

import pytest

from repro import Graph, GraphError
from repro.api import QuerySpec
from repro.core.csr import (
    CSRGraph,
    build_csr_arrays,
    csr_restricted_degeneracy_order,
    iter_mask_indices,
)
from repro.datasets.registry import REGISTRY, get_spec, load_dataset
from repro.graph import (
    connected_components,
    core_numbers,
    degeneracy,
    degeneracy_ordering,
    degeneracy_ordering_within,
    gnm_csr_graph,
    graph_statistics,
    ingest_edge_list,
    is_connected,
    iter_bits,
    powerlaw_csr_graph,
    read_edge_list,
    two_hop_mask,
    write_edge_list,
)
from repro.graph.generators import barabasi_albert, erdos_renyi_gnm
from repro.graph.subgraph import compact_subgraph
from repro.pipeline.mqce import run_enumeration

try:
    import numpy  # noqa: F401
    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy-less CI lane
    HAVE_NUMPY = False


def csr_of(graph: Graph) -> CSRGraph:
    """Rebuild a dict graph as a CSRGraph with the same index space."""
    return CSRGraph.from_edge_stream(graph.edges(), vertices=graph.vertices())


@pytest.fixture(scope="module")
def pair() -> tuple[Graph, CSRGraph]:
    graph = barabasi_albert(120, 4, seed=9)
    return graph, csr_of(graph)


# ----------------------------------------------------------------------
# Accessor parity
# ----------------------------------------------------------------------
def test_counts_and_vertices_match(pair):
    graph, csr = pair
    assert csr.vertex_count == graph.vertex_count
    assert csr.edge_count == graph.edge_count
    assert csr.vertices() == graph.vertices()
    assert len(csr) == len(graph)
    assert list(csr) == list(graph)
    assert csr.density() == graph.density()


def test_adjacency_accessors_match(pair):
    graph, csr = pair
    for index in range(graph.vertex_count):
        assert csr.adjacency_mask(index) == graph.adjacency_mask(index)
        assert csr.adjacency_set(index) == graph.adjacency_set(index)
        label = graph.label_of(index)
        assert csr.neighbors(label) == graph.neighbors(label)
        assert csr.degree(label) == graph.degree(label)
    assert csr.degree_sequence() == graph.degree_sequence()
    assert csr.max_degree() == graph.max_degree()


def test_lazy_mask_table_is_indexable_like_a_list(pair):
    graph, csr = pair
    masks = csr.adjacency_masks()
    assert len(masks) == graph.vertex_count
    assert masks[3] == graph.adjacency_mask(3)
    assert masks[-1] == graph.adjacency_mask(graph.vertex_count - 1)
    assert list(masks) == list(graph.adjacency_masks())
    sets = csr._adjacency_sets
    assert len(sets) == graph.vertex_count
    assert sets[5] == graph.adjacency_set(5)
    assert list(sets) == [graph.adjacency_set(i)
                          for i in range(graph.vertex_count)]


def test_edge_queries_match(pair):
    graph, csr = pair
    assert set(map(frozenset, csr.edges())) == set(map(frozenset, graph.edges()))
    for u, v in graph.edges()[:50]:
        assert csr.has_edge(u, v) and csr.has_edge(v, u)
    assert not csr.has_edge(0, "no-such-vertex")
    non_edge = next((u, v) for u in graph.vertices() for v in graph.vertices()
                    if u != v and not graph.has_edge(u, v))
    assert not csr.has_edge(*non_edge)


def test_mask_helpers_match(pair):
    graph, csr = pair
    some = graph.vertices()[10:40]
    assert csr.mask_of(some) == graph.mask_of(some)
    mask = graph.mask_of(some)
    assert csr.labels_of_mask(mask) == graph.labels_of_mask(mask)
    assert csr.full_mask() == graph.full_mask()
    with pytest.raises(GraphError):
        csr.mask_of(["no-such-vertex"])
    with pytest.raises(GraphError):
        csr.index_of("no-such-vertex")


def test_iter_mask_indices_matches_iter_bits():
    for mask in (0, 1, 0b1010110, (1 << 200) | (1 << 64) | (1 << 63) | 7):
        assert list(iter_mask_indices(mask)) == list(iter_bits(mask))


def test_statistics_match(pair):
    graph, csr = pair
    assert graph_statistics(csr) == graph_statistics(graph)


# ----------------------------------------------------------------------
# Frozen mutation surface and thaw
# ----------------------------------------------------------------------
def test_mutations_raise_typed_graph_error(pair):
    _, csr = pair
    for operation in (lambda: csr.add_vertex("x"),
                      lambda: csr.add_edge(0, 999),
                      lambda: csr.remove_edge(0, 1),
                      lambda: csr.remove_vertex(0)):
        with pytest.raises(GraphError, match="immutable.*thaw"):
            operation()


def test_thaw_round_trips_and_is_mutable(pair):
    graph, csr = pair
    thawed = csr.thaw()
    assert type(thawed) is Graph
    assert thawed.vertices() == graph.vertices()
    assert set(map(frozenset, thawed.edges())) == set(map(frozenset, graph.edges()))
    thawed.add_edge("new-a", "new-b")  # mutability restored
    assert thawed.has_edge("new-a", "new-b")
    assert not csr.has_edge("new-a", "new-b")


def test_copy_shares_buffers_and_matches(pair):
    _, csr = pair
    clone = csr.copy()
    assert isinstance(clone, CSRGraph)
    assert clone.indptr is csr.indptr and clone.indices is csr.indices
    assert clone.vertices() == csr.vertices()
    assert clone.edge_count == csr.edge_count


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def test_build_rejects_self_loops_and_bad_shapes():
    with pytest.raises(GraphError, match="self-loop"):
        build_csr_arrays(3, [0, 1], [0, 2], use_numpy=False)
    if HAVE_NUMPY:
        with pytest.raises(GraphError, match="self-loop"):
            build_csr_arrays(3, [0, 1], [0, 2], use_numpy=True)
    with pytest.raises(GraphError, match="self-loops"):
        CSRGraph.from_edge_stream([("a", "a")])
    indptr, indices, _ = build_csr_arrays(2, [0], [1], use_numpy=False)
    with pytest.raises(GraphError, match="indptr"):
        CSRGraph(["a", "b", "c"], indptr, indices)
    with pytest.raises(GraphError, match="duplicate"):
        CSRGraph(["a", "a"], build_csr_arrays(2, [0], [1], use_numpy=False)[0],
                 indices)


def test_duplicate_and_reversed_pairs_deduplicate():
    csr = CSRGraph.from_edge_stream([("a", "b"), ("b", "a"), ("a", "b"),
                                     ("b", "c")])
    assert csr.edge_count == 2
    assert csr.adjacency_set(csr.index_of("b")) == {csr.index_of("a"),
                                                    csr.index_of("c")}


def test_rows_are_sorted_ascending():
    csr = CSRGraph.from_edge_stream([(5, 1), (5, 9), (5, 0), (5, 3)])
    row = list(csr.indices[csr.indptr[0]:csr.indptr[1]])
    assert row == sorted(row)


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
def test_numpy_and_stdlib_builds_are_identical():
    graph = erdos_renyi_gnm(80, 400, seed=5)
    endpoints = list(zip(*[(graph.index_of(u), graph.index_of(v))
                           for u, v in graph.edges()]))
    for_np = build_csr_arrays(80, endpoints[0], endpoints[1], use_numpy=True)
    for_py = build_csr_arrays(80, endpoints[0], endpoints[1], use_numpy=False)
    assert list(for_np[0]) == list(for_py[0])
    assert list(for_np[1]) == list(for_py[1])
    assert for_np[2] == for_py[2]
    # And the returned buffers hold plain Python ints (no numpy scalar
    # leakage into `1 << width` shifts).
    assert type(for_np[1][0]) is int


def test_empty_and_isolated_vertices():
    empty = CSRGraph.from_edge_stream([])
    assert empty.vertex_count == 0 and empty.edge_count == 0
    assert empty.max_degree() == 0 and empty.full_mask() == 0
    lone = CSRGraph.from_edge_stream([("a", "b")], vertices=["z", "a", "b"])
    assert lone.vertices() == ["z", "a", "b"]
    assert lone.degree("z") == 0
    assert connected_components(lone) == [frozenset({"z"}),
                                          frozenset({"a", "b"})]


def test_from_csr_classmethod_builds_csr_graph():
    indptr, indices, edge_count = build_csr_arrays(3, [0, 1], [1, 2],
                                                   use_numpy=False)
    graph = Graph.from_csr(["a", "b", "c"], indptr, indices,
                           edge_count=edge_count)
    assert isinstance(graph, CSRGraph)
    assert graph.edge_count == 2
    assert graph.adjacency_mask(1) == 0b101


# ----------------------------------------------------------------------
# CSR-native algorithm parity
# ----------------------------------------------------------------------
def test_degeneracy_machinery_matches(pair):
    graph, csr = pair
    assert degeneracy_ordering(csr) == degeneracy_ordering(graph)
    assert core_numbers(csr) == core_numbers(graph)
    assert degeneracy(csr) == degeneracy(graph)


def test_components_and_connectivity_match():
    graph = Graph([(1, 2), (2, 3), (10, 11), (12, 13), (13, 10)])
    graph.add_vertex(99)
    csr = csr_of(graph)
    assert connected_components(csr) == connected_components(graph)
    assert is_connected(csr) == is_connected(graph)
    sub = [1, 2, 3]
    assert is_connected(csr, sub) == is_connected(graph, sub)
    mask = graph.mask_of([10, 11, 12])
    assert connected_components(csr, within_mask=mask) == \
        connected_components(graph, within_mask=mask)
    single = csr_of(Graph([(1, 2), (2, 3)]))
    assert is_connected(single)


def test_two_hop_mask_matches(pair):
    graph, csr = pair
    allowed = graph.mask_of(graph.vertices()[: graph.vertex_count // 2])
    for center in range(0, graph.vertex_count, 7):
        assert two_hop_mask(csr, center, allowed) == \
            two_hop_mask(graph, center, allowed)
        full = graph.full_mask()
        assert two_hop_mask(csr, center, full) == \
            two_hop_mask(graph, center, full)


def test_compact_subgraph_matches(pair):
    graph, csr = pair
    mask = graph.mask_of(graph.vertices()[20:60])
    from_dict = compact_subgraph(graph, mask)
    from_csr = compact_subgraph(csr, mask)
    assert from_csr.vertices() == from_dict.vertices()
    assert list(from_csr.adjacency_masks()) == list(from_dict.adjacency_masks())
    assert type(from_csr) is Graph  # subproblems return to the bitmask kernel


def test_restricted_degeneracy_order_equals_compact_route(pair):
    graph, csr = pair
    mask = graph.mask_of(graph.vertices()[10:90])
    expected = degeneracy_ordering(compact_subgraph(graph, mask))
    assert degeneracy_ordering_within(graph, mask) == expected
    assert degeneracy_ordering_within(csr, mask) == expected
    native = [csr.label_of(i)
              for i in csr_restricted_degeneracy_order(csr, mask)]
    assert native == expected
    assert degeneracy_ordering_within(csr, csr.full_mask()) == \
        degeneracy_ordering(graph)


def test_restricted_counts_match_mask_popcounts(pair):
    graph, csr = pair
    members = graph.mask_of(graph.vertices()[15:70])
    target = graph.mask_of(graph.vertices()[0:50])
    counts = csr.restricted_counts(members, target)
    assert set(counts) == set(iter_bits(members))
    for v in iter_bits(members):
        assert counts[v] == (graph.adjacency_mask(v) & target).bit_count()
    self_counts = csr.restricted_counts(members)
    for v in iter_bits(members):
        assert self_counts[v] == (graph.adjacency_mask(v) & members).bit_count()


# ----------------------------------------------------------------------
# Full-registry enumeration differential
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(REGISTRY))
def test_registry_differential_csr_answers_match(name):
    spec = get_spec(name)
    graph = load_dataset(name)
    csr = csr_of(graph)
    query = QuerySpec(gamma=spec.default_gamma, theta=spec.default_theta)
    expected = run_enumeration(graph, query)
    actual = run_enumeration(csr, query)
    assert set(actual.maximal_quasi_cliques) == \
        set(expected.maximal_quasi_cliques)
    assert actual.candidate_count == expected.candidate_count


def test_quickplus_and_fastqc_match_on_csr():
    graph = load_dataset("ca-grqc")
    csr = csr_of(graph)
    for algorithm in ("fastqc", "quickplus"):
        query = QuerySpec(gamma=0.85, theta=6, algorithm=algorithm)
        expected = run_enumeration(graph, query)
        actual = run_enumeration(csr, query)
        assert set(actual.maximal_quasi_cliques) == \
            set(expected.maximal_quasi_cliques), algorithm


def test_budgeted_query_on_csr_graph_reports_truncation():
    csr = powerlaw_csr_graph(3000, 3, seed=2)
    result = run_enumeration(csr, QuerySpec(gamma=0.85, theta=4,
                                            time_limit=1e-9))
    assert result.truncated


# ----------------------------------------------------------------------
# Generators + ingestion glue
# ----------------------------------------------------------------------
def test_generator_csr_graphs_match_dict_generators():
    dict_graph = barabasi_albert(300, 3, seed=21)
    csr_graph = powerlaw_csr_graph(300, 3, seed=21)
    assert csr_graph.vertices() == dict_graph.vertices()
    assert set(map(frozenset, csr_graph.edges())) == \
        set(map(frozenset, dict_graph.edges()))
    dict_gnm = erdos_renyi_gnm(200, 900, seed=4)
    csr_gnm = gnm_csr_graph(200, 900, seed=4)
    assert set(map(frozenset, csr_gnm.edges())) == \
        set(map(frozenset, dict_gnm.edges()))


def test_ingest_answers_match_read_edge_list():
    graph = barabasi_albert(150, 3, seed=13)
    buffer = io.StringIO()
    write_edge_list(graph, buffer)
    text = buffer.getvalue()
    dict_graph = read_edge_list(io.StringIO(text))
    csr_graph = ingest_edge_list(io.StringIO(text))
    assert isinstance(csr_graph, CSRGraph)
    query = QuerySpec(gamma=0.9, theta=4)
    expected = run_enumeration(dict_graph, query)
    actual = run_enumeration(csr_graph, query)
    assert set(actual.maximal_quasi_cliques) == \
        set(expected.maximal_quasi_cliques)
