"""Work-stealing branch parallelism: codec, steal-protocol parity, recovery.

The differential heart of this file is *branch-for-branch* parity: a stolen
subtree must reproduce exactly the candidate sets the sequential driver would
have produced from the same branch, and the donor/thief branch counts must add
up to the sequential run's.  :class:`repro.extensions.stealing.InlineStealRuntime`
drives the real scheduler surfaces deterministically (seeded steal points via
:class:`ForcedStealSchedule`), so the grid sweeps every steal cadence without
multiprocessing nondeterminism; the multiprocess tests then cover the actual
shared-memory transport, natural hungry-driven stealing and crash fallback.
"""

import glob

import pytest

from repro.core.dcfastqc import DCFastQC
from repro.core.fastqc import FastQC
from repro.core.stats import SizeHistogram
from repro.engine.planner import PlannerConfig, QueryPlanner
from repro.engine.prepared import PreparedGraph
from repro.extensions.parallel import (ParallelDCFastQC, branch_histogram_skew,
                                       branch_mode_wins, histogram_skew,
                                       run_compact_subproblem)
from repro.extensions.stealing import (ForcedStealSchedule, InlineStealRuntime,
                                       SEGMENT_PREFIX, SharedSubproblemStore,
                                       SubproblemCache, branch_parallel_enumerate,
                                       decode_subproblem, encode_subproblem)
from repro.graph.generators import barabasi_albert
from repro.resilience.faults import install_plan, reset_plan
from repro.settrie.filter import filter_non_maximal

GAMMA, THETA = 0.85, 4


def _subproblems(graph, gamma=GAMMA, theta=THETA):
    return tuple(DCFastQC(graph, gamma, theta).iter_compact_subproblems())


def _shm_segments():
    return glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")


def _sequential_answer(graph, gamma=GAMMA, theta=THETA):
    candidates = set()
    for subproblem in _subproblems(graph, gamma, theta):
        chunk, _, _ = run_compact_subproblem(subproblem, gamma, theta)
        candidates.update(chunk)
    return candidates


@pytest.fixture(scope="module")
def graph():
    return barabasi_albert(160, attachment=8, seed=3)


@pytest.fixture(scope="module")
def subproblems(graph):
    found = _subproblems(graph)
    assert found, "fixture graph must decompose into nontrivial subproblems"
    return found


# ----------------------------------------------------------------------
# Shared-memory codec
# ----------------------------------------------------------------------
class TestCodec:
    def test_roundtrip_preserves_every_field(self, subproblems):
        for subproblem in subproblems:
            clone = decode_subproblem(encode_subproblem(subproblem))
            assert clone.root_local == subproblem.root_local
            assert clone.labels == subproblem.labels
            assert clone.adjacency_masks == subproblem.adjacency_masks
            assert clone.halo_labels == subproblem.halo_labels
            assert clone.halo_adjacency == subproblem.halo_adjacency

    def test_store_publish_attach_and_unlink(self, subproblems):
        store = SharedSubproblemStore()
        cache = SubproblemCache()
        try:
            tokens = [store.publish(s) for s in subproblems[:4]]
            assert len(_shm_segments()) >= len(tokens)
            for token, original in zip(tokens, subproblems[:4]):
                assert cache.get(token).labels == original.labels
            # Attach-once: repeated gets hand back the same decoded object.
            assert cache.get(tokens[0]) is cache.get(tokens[0])
        finally:
            cache.close()
            store.close()
        assert _shm_segments() == []


# ----------------------------------------------------------------------
# Branch-for-branch differential parity (deterministic inline protocol)
# ----------------------------------------------------------------------
class TestInlineStealParity:
    @pytest.mark.parametrize("every", [1, 2, 3])
    @pytest.mark.parametrize("offset", [0, 1])
    def test_stolen_subtrees_reproduce_sequential_branches(
            self, subproblems, every, offset):
        total_steals = 0
        for subproblem in subproblems:
            local = subproblem.build_graph()
            maximality = (subproblem.build_maximality_graph()
                          if subproblem.halo_labels else local)
            reference = FastQC(local, GAMMA, THETA, maximality_graph=maximality)
            expected = set(reference.enumerate_branch(subproblem.initial_branch()))

            emissions: list[frozenset] = []

            def make_engine():
                return FastQC(local, GAMMA, THETA, maximality_graph=maximality,
                              on_output=emissions.append)

            donor = make_engine()
            runtime = InlineStealRuntime(
                make_engine, ForcedStealSchedule(every=every, offset=offset))
            runtime.enumerate(donor, subproblem.initial_branch())

            assert set(emissions) == expected
            combined = donor.statistics.branches_explored + sum(
                thief.statistics.branches_explored
                for thief in runtime.thief_engines)
            assert combined == reference.statistics.branches_explored
            total_steals += runtime.steals
        assert total_steals > 0, "the forced schedule must actually steal"


# ----------------------------------------------------------------------
# Multiprocess transport parity
# ----------------------------------------------------------------------
class TestBranchParallel:
    def test_forced_aggressive_stealing_matches_sequential(self, graph,
                                                           subproblems):
        expected = _sequential_answer(graph)
        results, stats, telemetry = branch_parallel_enumerate(
            subproblems, GAMMA, THETA, workers=3,
            steal_schedule=ForcedStealSchedule(every=1))
        assert set(results) == expected
        assert stats.steals > 0
        assert telemetry["steals"] == stats.steals
        assert _shm_segments() == []

    def test_natural_hungry_driven_stealing_matches_sequential(
            self, graph, subproblems):
        expected = _sequential_answer(graph)
        results, stats, _ = branch_parallel_enumerate(
            subproblems, GAMMA, THETA, workers=3)
        assert set(results) == expected
        assert _shm_segments() == []

    def test_branch_counts_add_up_to_sequential(self, graph, subproblems):
        sequential_branches = 0
        for subproblem in subproblems:
            _, _, stats = run_compact_subproblem(subproblem, GAMMA, THETA)
            sequential_branches += stats.branches_explored
        _, stats, _ = branch_parallel_enumerate(
            subproblems, GAMMA, THETA, workers=3,
            steal_schedule=ForcedStealSchedule(every=2))
        assert stats.branches_explored == sequential_branches


# ----------------------------------------------------------------------
# Crash recovery (reuses the PR-9 worker.task fault site)
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def test_killed_worker_falls_back_sequential_without_shm_leak(self, graph):
        expected = filter_non_maximal(
            sorted(_sequential_answer(graph),
                   key=lambda h: (-len(h), sorted(map(str, h)))),
            theta=THETA)
        install_plan("worker.task:kill:times=1")
        try:
            runner = ParallelDCFastQC(graph, GAMMA, THETA, workers=2,
                                      mode="branch")
            answers = runner.find_maximal()
        finally:
            reset_plan()
        assert runner.mode_selected == "sequential"
        assert sorted(map(sorted, answers)) == sorted(map(sorted, expected))
        assert _shm_segments() == []


# ----------------------------------------------------------------------
# Satellite 1: no pointless pools
# ----------------------------------------------------------------------
class TestInProcessFallback:
    def test_workers_one_never_spawns_a_pool(self, graph, monkeypatch):
        import repro.extensions.parallel as parallel_module

        def _boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("workers=1 must not create a process pool")

        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor", _boom)
        monkeypatch.setattr(parallel_module, "branch_parallel_enumerate", _boom)
        runner = ParallelDCFastQC(graph, GAMMA, THETA, workers=1)
        answers = runner.enumerate()
        assert runner.mode_selected == "sequential"
        assert set(answers) == _sequential_answer(graph)

    def test_single_subproblem_runs_inline_under_shard(self, monkeypatch):
        import repro.extensions.parallel as parallel_module

        # A small clique decomposes into fewer subproblems than half a pool
        # chunk: shard mode must keep them in-process instead of paying pool
        # startup for work it cannot spread.
        from repro.graph.graph import Graph
        clique = Graph()
        for u in range(6):
            for v in range(u + 1, 6):
                clique.add_edge(u, v)

        def _boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("a handful of subproblems must not create a pool")

        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor", _boom)
        runner = ParallelDCFastQC(clique, 0.9, 4, workers=4, mode="shard")
        answers = runner.enumerate()
        assert runner.mode_selected == "sequential"
        assert frozenset(range(6)) in set(answers)

    def test_cpu_count_none_defaults_to_one_worker(self, monkeypatch):
        import repro.extensions.parallel as parallel_module
        monkeypatch.setattr(parallel_module.os, "cpu_count", lambda: None)
        runner = ParallelDCFastQC(barabasi_albert(30, attachment=3, seed=1),
                                  GAMMA, THETA)
        assert runner.workers == 1


# ----------------------------------------------------------------------
# Planner mode selection on synthetic histograms
# ----------------------------------------------------------------------
def _skewed_histogram(dominant=800, trivial=60):
    histogram = SizeHistogram()
    for _ in range(trivial):
        histogram.record(4)
    histogram.record(dominant)
    return histogram


def _uniform_histogram(size=24, count=64):
    histogram = SizeHistogram()
    for _ in range(count):
        histogram.record(size)
    return histogram


class TestPlannerModeSelection:
    def _planner(self):
        return QueryPlanner(PlannerConfig(parallel_min_vertices=32,
                                          max_workers=4))

    def test_branch_mode_wins_rule(self):
        largest, total = histogram_skew(_skewed_histogram())
        assert branch_mode_wins(largest, total, workers=4)
        largest, total = histogram_skew(_uniform_histogram())
        assert not branch_mode_wins(largest, total, workers=4)

    def test_observed_skew_selects_branch(self, graph):
        prepared = PreparedGraph(graph)
        prepared.record_subproblem_histogram(GAMMA, THETA, _skewed_histogram())
        plan = self._planner().plan(prepared, GAMMA, THETA, workers=4)
        assert plan.parallel and plan.parallel_mode == "branch"
        assert plan.histogram_source == "observed-sizes"
        assert plan.skew_ratio >= plan.skew_threshold
        assert "branch" in plan.describe()

    def test_observed_branch_counts_trump_the_size_proxy(self, graph):
        # A descending chain of similar-size balls defeats any size-based work
        # proxy (each is ~1/k of the quadratic total), yet the actual work can
        # concentrate in one subtree.  Recorded branch counts expose it.
        prepared = PreparedGraph(graph)
        sizes = SizeHistogram()
        for size in range(32, 8, -1):
            sizes.record(size)
        branches = SizeHistogram()
        for _ in range(22):
            branches.record(1000)
        branches.record(50_000)
        prepared.record_subproblem_histogram(GAMMA, THETA, sizes)
        prepared.record_subproblem_histogram(GAMMA, THETA, branches,
                                             kind="branches")
        plan = self._planner().plan(prepared, GAMMA, THETA, workers=4)
        assert plan.histogram_source == "observed-branches"
        assert plan.parallel_mode == "branch"
        assert "branches" in plan.describe()
        # The size histogram alone would have (wrongly) kept shard mode.
        largest, total = histogram_skew(sizes)
        assert not branch_mode_wins(largest, total, workers=4)
        largest, total = branch_histogram_skew(branches)
        assert branch_mode_wins(largest, total, workers=4)

    def test_observed_uniform_selects_shard(self, graph):
        prepared = PreparedGraph(graph)
        prepared.record_subproblem_histogram(GAMMA, THETA, _uniform_histogram())
        plan = self._planner().plan(prepared, GAMMA, THETA, workers=4)
        assert plan.parallel and plan.parallel_mode == "shard"
        assert plan.skew_ratio < plan.skew_threshold

    def test_estimated_histogram_backs_the_cold_decision(self, graph):
        plan = self._planner().plan(PreparedGraph(graph), GAMMA, THETA,
                                    workers=4)
        assert plan.parallel
        assert plan.histogram_source == "estimated"
        assert plan.parallel_mode in ("shard", "branch")

    def test_forced_modes_and_none(self, graph):
        prepared = PreparedGraph(graph)
        planner = self._planner()
        assert planner.plan(prepared, GAMMA, THETA, workers=4,
                            parallel="branch").parallel_mode == "branch"
        assert planner.plan(prepared, GAMMA, THETA, workers=4,
                            parallel="shard").parallel_mode == "shard"
        disabled = planner.plan(prepared, GAMMA, THETA, workers=4,
                                parallel="none")
        assert not disabled.parallel and disabled.parallel_mode == "none"

    def test_new_observation_invalidates_the_plan_memo(self, graph):
        prepared = PreparedGraph(graph)
        planner = self._planner()
        cold = planner.plan(prepared, GAMMA, THETA, workers=4)
        assert cold.histogram_source == "estimated"
        prepared.record_subproblem_histogram(GAMMA, THETA, _skewed_histogram())
        warm = planner.plan(prepared, GAMMA, THETA, workers=4)
        assert warm.histogram_source == "observed-sizes"
        assert warm.parallel_mode == "branch"
