"""Tests for the unified QuerySpec API: spec, builder, errors, shims."""

from __future__ import annotations

import dataclasses
import json
import warnings
from fractions import Fraction

import pytest

from repro import (
    EngineError,
    Graph,
    GraphError,
    MQCEEngine,
    ParameterError,
    Q,
    QueryError,
    QuerySpec,
    ReproError,
    SpecError,
    find_largest_quasi_cliques,
    find_maximal_quasi_cliques,
    find_quasi_cliques_containing,
)
from repro.api import coerce_spec, execute, result_value, shape_result
from repro.datasets import get_spec, load_dataset
from repro.engine import ResultCache


@pytest.fixture
def diamond() -> Graph:
    """A 4-clique with a pendant vertex."""
    return Graph(edges=[(1, 2), (1, 3), (2, 3), (2, 4), (3, 4), (1, 4), (4, 5)])


class TestQuerySpec:
    def test_frozen_and_hashable(self):
        spec = QuerySpec(gamma=0.9, theta=5)
        assert hash(spec) == hash(QuerySpec(gamma=0.9, theta=5))
        assert spec == QuerySpec(gamma=0.9, theta=5)
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.gamma = 0.8

    def test_workload_derivation(self):
        assert QuerySpec(gamma=0.9, theta=5).workload == "enumerate"
        assert QuerySpec(gamma=0.9, theta=5, k=3).workload == "topk"
        assert QuerySpec(gamma=0.9, theta=5, contains=("a",)).workload == "containment"
        assert QuerySpec(gamma=0.9, theta=5, count_only=True).workload == "count"

    def test_contains_normalised(self):
        a = QuerySpec(gamma=0.9, contains=("b", "a", "a"))
        b = QuerySpec(gamma=0.9, contains=["a", "b"])
        assert a.contains == ("a", "b")
        assert a == b and hash(a) == hash(b)

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            QuerySpec(gamma=0.4, theta=5)
        with pytest.raises(ParameterError):
            QuerySpec(gamma=0.9, theta=0)

    @pytest.mark.parametrize("fields", [
        {"algorithm": "bogus"},
        {"branching": "bogus"},
        {"framework": "bogus"},
        {"kernel": "bogus"},
        {"max_rounds": -1},
        {"k": 0},
        {"time_limit": 0},
        {"max_results": 0},
    ])
    def test_spec_validation(self, fields):
        with pytest.raises(SpecError):
            QuerySpec(gamma=0.9, theta=5, **fields)

    def test_kernel_selects_execution_path(self):
        assert QuerySpec(gamma=0.9).kernel == "ledger"
        reference = QuerySpec(gamma=0.9, kernel="reference")
        assert reference.cache_key() != QuerySpec(gamma=0.9).cache_key()
        assert QuerySpec.from_json(json.dumps(reference.to_dict())) == reference

    def test_json_round_trip(self):
        spec = QuerySpec(gamma=0.9, theta=5, k=3, time_limit=1.5,
                         contains=("a",), algorithm="fastqc")
        again = QuerySpec.from_json(json.dumps(spec.to_dict()))
        assert again == spec

    def test_to_json_is_canonical(self):
        spec = QuerySpec(gamma=0.9, theta=5, k=3, contains=("b", "a"))
        text = spec.to_json()
        # Compact separators, sorted keys: byte-identical for equal specs.
        assert " " not in text
        assert text == QuerySpec(gamma=0.9, theta=5, k=3,
                                 contains=("a", "b")).to_json()
        assert QuerySpec.from_json(text) == spec
        assert json.loads(text) == spec.to_dict()

    def test_fields_from_json_rejects_garbage(self):
        with pytest.raises(SpecError):
            QuerySpec.fields_from_json("{not json")
        with pytest.raises(SpecError):
            QuerySpec.fields_from_json("[1, 2, 3]")
        with pytest.raises(SpecError):
            QuerySpec.from_json('{"gamma": 0.9, "bogus": 1}')

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(SpecError):
            QuerySpec.from_dict({"gamma": 0.9, "bogus": 1})
        with pytest.raises(SpecError):
            QuerySpec.from_dict({"theta": 5})

    def test_cache_key_excludes_output_options_and_budgets(self):
        base = QuerySpec(gamma=0.9, theta=5, algorithm="dcfastqc",
                         branching="hybrid", framework="dc")
        shaped = dataclasses.replace(base, max_results=2, include_candidates=False,
                                     count_only=True)
        assert base.cache_key() == shaped.cache_key()
        assert base.cache_key() != dataclasses.replace(base, theta=6).cache_key()
        fraction = dataclasses.replace(base, gamma=Fraction(9, 10))
        assert base.cache_key() == fraction.cache_key()

    def test_cacheable(self):
        assert QuerySpec(gamma=0.9).cacheable
        assert not QuerySpec(gamma=0.9, time_limit=1.0).cacheable

    def test_coerce_spec(self):
        spec = QuerySpec(gamma=0.9, theta=5)
        assert coerce_spec(spec) is spec
        assert coerce_spec(0.9, 5) == spec
        with pytest.raises(SpecError):
            coerce_spec(spec, 5)
        with pytest.raises(SpecError):
            coerce_spec(None, None)


class TestErrorHierarchy:
    def test_all_under_repro_error_and_value_error(self):
        for exc in (QueryError, ParameterError, SpecError, EngineError, GraphError):
            assert issubclass(exc, ReproError)
            assert issubclass(exc, ValueError)
        assert issubclass(ParameterError, QueryError)
        assert issubclass(SpecError, QueryError)

    def test_legacy_import_locations_are_aliases(self):
        from repro.extensions import QueryError as ext_query_error
        from repro.quasiclique.definitions import ParameterError as defs_parameter_error
        from repro.engine import EngineError as engine_error

        assert ext_query_error is QueryError
        assert defs_parameter_error is ParameterError
        assert engine_error is EngineError


class TestBuilder:
    def test_builder_spec(self):
        spec = (Q(None).gamma(0.9).theta(5).algorithm("fastqc").branching("se")
                .containing("a", "b").top(10).limit(4).within(2.0)
                .no_candidates().spec())
        assert spec == QuerySpec(gamma=0.9, theta=5, algorithm="fastqc",
                                 branching="se", contains=("a", "b"), k=10,
                                 max_results=4, time_limit=2.0,
                                 include_candidates=False)

    def test_builder_is_immutable(self, diamond):
        base = Q(diamond).gamma(0.6).theta(3)
        top = base.top(1)
        assert base.spec().k is None
        assert top.spec().k == 1

    def test_run_shapes(self, diamond):
        base = Q(diamond).gamma(0.6).theta(3)
        result = base.run()
        assert result.maximal_quasi_cliques == [frozenset({1, 2, 3, 4})]
        assert base.count().run() == 1
        assert base.top(1).run() == [frozenset({1, 2, 3, 4})]
        assert base.containing(1).run() == [frozenset({1, 2, 3, 4})]
        assert base.containing(5).run() == []

    def test_stream_matches_run(self, diamond):
        base = Q(diamond).gamma(0.6).theta(3)
        assert set(base.stream()) == set(base.run().maximal_quasi_cliques)

    def test_run_through_engine(self, diamond):
        engine = MQCEEngine()
        base = Q(diamond).gamma(0.6).theta(3)
        first = base.run(engine)
        second = base.run(engine)
        assert first.maximal_quasi_cliques == second.maximal_quasi_cliques
        assert engine.cache.stats.hits == 1

    def test_explain(self, diamond):
        plan = Q(diamond).gamma(0.6).theta(3).explain()
        assert plan.algorithm in ("fastqc", "dcfastqc")


class TestShapeResult:
    def test_max_results_and_candidates(self, diamond):
        spec = QuerySpec(gamma=0.6, theta=2)
        result = execute(diamond, spec)
        shaped = shape_result(result, dataclasses.replace(
            spec, max_results=1, include_candidates=False))
        assert len(shaped.maximal_quasi_cliques) == 1
        assert shaped.candidate_quasi_cliques == []
        # The original envelope is untouched (defensive copy).
        assert len(result.maximal_quasi_cliques) >= 1
        assert result.candidate_quasi_cliques

    def test_result_value_count(self, diamond):
        spec = QuerySpec(gamma=0.6, theta=3, count_only=True)
        assert result_value(execute(diamond, spec), spec) == 1


class TestDeprecatedShims:
    """Satellite: old kwargs entry points warn and return identical results."""

    def test_find_maximal_quasi_cliques_warns_and_matches(self, diamond):
        with pytest.warns(DeprecationWarning):
            legacy = find_maximal_quasi_cliques(diamond, 0.6, 3)
        via_spec = execute(diamond, QuerySpec(gamma=0.6, theta=3, algorithm="dcfastqc"))
        assert legacy.maximal_quasi_cliques == via_spec.maximal_quasi_cliques
        assert legacy.candidate_quasi_cliques == via_spec.candidate_quasi_cliques
        assert legacy.algorithm == via_spec.algorithm == "dcfastqc"

    def test_find_largest_quasi_cliques_warns_and_matches(self):
        graph = load_dataset("twitter")
        with pytest.warns(DeprecationWarning):
            legacy = find_largest_quasi_cliques(graph, 0.9, k=2, minimum_size=3)
        via_spec = Q(graph).gamma(0.9).theta(3).top(2).run()
        assert legacy == via_spec

    def test_find_quasi_cliques_containing_warns_and_matches(self, diamond):
        with pytest.warns(DeprecationWarning):
            legacy = find_quasi_cliques_containing(diamond, [1], 0.6, theta=3)
        via_spec = Q(diamond).gamma(0.6).theta(3).containing(1).run()
        assert legacy == via_spec

    def test_engine_matches_deprecated_pipeline(self):
        name = "kmer"
        spec = get_spec(name)
        graph = load_dataset(name)
        with pytest.warns(DeprecationWarning):
            legacy = find_maximal_quasi_cliques(graph, spec.default_gamma,
                                                spec.default_theta)
        result = MQCEEngine().query(graph, QuerySpec(gamma=spec.default_gamma,
                                                     theta=spec.default_theta))
        assert set(result.maximal_quasi_cliques) == set(legacy.maximal_quasi_cliques)


class TestEngineSpecCaching:
    """Acceptance: ResultCache hit/miss behaviour is preserved with spec keys."""

    def test_warm_identical_specs_skip_enumeration(self):
        engine = MQCEEngine()
        graph = load_dataset("twitter")
        spec = QuerySpec(gamma=0.9, theta=5)
        first = engine.query(graph, spec)
        second = engine.query(graph, spec)
        assert engine.cache.stats.hits == 1
        assert engine.cache.stats.misses == 1
        assert first.maximal_quasi_cliques == second.maximal_quasi_cliques

    def test_kwargs_and_spec_share_cache_entries(self):
        engine = MQCEEngine()
        graph = load_dataset("twitter")
        engine.query(graph, 0.9, 5)
        engine.query(graph, QuerySpec(gamma=0.9, theta=5))
        assert engine.cache.stats.hits == 1
        assert len(engine.cache) == 1

    def test_output_options_do_not_fragment_cache(self):
        engine = MQCEEngine()
        graph = load_dataset("twitter")
        full = engine.query(graph, QuerySpec(gamma=0.9, theta=5))
        shaped = engine.query(graph, QuerySpec(gamma=0.9, theta=5, max_results=1,
                                               include_candidates=False))
        assert engine.cache.stats.hits == 1
        assert shaped.maximal_quasi_cliques == full.maximal_quasi_cliques[:1]
        assert shaped.candidate_quasi_cliques == []

    def test_budgeted_queries_are_not_cached(self):
        engine = MQCEEngine()
        graph = load_dataset("twitter")
        engine.query(graph, QuerySpec(gamma=0.9, theta=5, time_limit=60.0))
        assert len(engine.cache) == 0
        assert engine.cache.stats.lookups == 0

    def test_topk_and_containment_are_cached_by_spec(self):
        engine = MQCEEngine()
        graph = load_dataset("twitter")
        topk = QuerySpec(gamma=0.9, theta=3, k=2)
        containment = QuerySpec(gamma=0.9, theta=5, contains=(0,))
        first_topk = engine.query(graph, topk)
        engine.query(graph, topk)
        first_containment = engine.query(graph, containment)
        engine.query(graph, containment)
        assert engine.cache.stats.hits == 2
        assert len(engine.cache) == 2
        assert len(first_topk.maximal_quasi_cliques) == 2
        assert all(0 in clique for clique in first_containment.maximal_quasi_cliques)

    def test_spec_key_includes_fingerprint(self):
        spec = QuerySpec(gamma=0.9, theta=5, algorithm="dcfastqc",
                         branching="hybrid", framework="dc")
        a = ResultCache.spec_key("fp-a", spec)
        b = ResultCache.spec_key("fp-b", spec)
        assert a != b
        assert a == ResultCache.spec_key("fp-a", spec)


class TestCLIQueryWarningFree:
    def test_legacy_cli_commands_do_not_warn(self, capsys):
        from repro.cli import main

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert main(["enumerate", "-d", "twitter"]) == 0
            assert main(["topk", "-d", "twitter", "-k", "1"]) == 0
            assert main(["community", "-d", "twitter", "0", "--gamma", "0.9",
                         "--theta", "5"]) == 0
        capsys.readouterr()


class TestParallelField:
    def test_validation_rejects_unknown_mode(self):
        with pytest.raises(SpecError):
            QuerySpec(gamma=0.9, theta=4, parallel="threads")

    def test_excluded_from_cache_key(self):
        base = QuerySpec(gamma=0.9, theta=4)
        branch = dataclasses.replace(base, parallel="branch")
        shard = dataclasses.replace(base, parallel="shard")
        assert base.cache_key() == branch.cache_key() == shard.cache_key()

    def test_json_roundtrip_omits_default(self):
        default = QuerySpec(gamma=0.9, theta=4)
        assert "parallel" not in json.loads(default.to_json())
        forced = dataclasses.replace(default, parallel="branch")
        restored = QuerySpec.from_json(forced.to_json())
        assert restored.parallel == "branch"
        # Pre-parallel JSON documents still load (field defaults to auto).
        assert QuerySpec.from_json(default.to_json()).parallel == "auto"
