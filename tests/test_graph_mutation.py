"""Tests for graph mutation support: removal, versioning and the delta log."""

from __future__ import annotations

import pytest

from repro import Graph
from repro.dynamic import IncrementalFingerprint
from repro.graph import GraphDelta, GraphError, connected_components
from repro.graph.delta import GraphMutation


class TestRemoveEdge:
    def test_removes_both_directions(self, triangle):
        triangle.remove_edge(1, 2)
        assert not triangle.has_edge(1, 2)
        assert not triangle.has_edge(2, 1)
        assert triangle.edge_count == 2
        assert triangle.vertex_count == 3

    def test_masks_and_sets_stay_synchronized(self, clique5):
        clique5.remove_edge(0, 3)
        for i in range(clique5.vertex_count):
            mask = clique5.adjacency_mask(i)
            assert {j for j in range(clique5.vertex_count) if (mask >> j) & 1} \
                == clique5.adjacency_set(i)

    def test_missing_edge_raises(self, path4):
        with pytest.raises(GraphError):
            path4.remove_edge(1, 4)

    def test_unknown_vertex_raises(self, path4):
        with pytest.raises(GraphError):
            path4.remove_edge(1, 99)

    def test_remove_then_add_restores_structure(self, clique5):
        clique5.remove_edge(0, 1)
        clique5.add_edge(0, 1)
        assert clique5.edge_count == 10
        assert clique5.has_edge(0, 1)


class TestRemoveVertex:
    def test_removes_vertex_and_incident_edges(self, clique5):
        clique5.remove_vertex(2)
        assert 2 not in clique5
        assert clique5.vertex_count == 4
        assert clique5.edge_count == 6  # K4 remains
        assert set(clique5.vertices()) == {0, 1, 3, 4}

    def test_indices_stay_dense_after_swap(self, clique5):
        clique5.remove_vertex(0)  # forces the last vertex into slot 0
        for label in clique5.vertices():
            index = clique5.index_of(label)
            assert 0 <= index < clique5.vertex_count
            assert clique5.label_of(index) == label
        # Bitmask layout must match the set layout after the swap.
        for i in range(clique5.vertex_count):
            mask = clique5.adjacency_mask(i)
            assert {j for j in range(clique5.vertex_count) if (mask >> j) & 1} \
                == clique5.adjacency_set(i)
        assert clique5.full_mask() == (1 << clique5.vertex_count) - 1

    def test_remove_last_indexed_vertex(self, path4):
        path4.remove_vertex(4)
        assert set(path4.vertices()) == {1, 2, 3}
        assert path4.edge_count == 2

    def test_neighbors_updated(self, paper_figure1):
        old_neighbors = paper_figure1.neighbors(2)
        paper_figure1.remove_vertex(2)
        for label in old_neighbors:
            assert 2 not in paper_figure1.neighbors(label)

    def test_unknown_vertex_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.remove_vertex(42)

    def test_components_consistent_after_removals(self, paper_figure1):
        paper_figure1.remove_vertex(5)
        paper_figure1.remove_vertex(2)
        reference = Graph()
        for label in paper_figure1.vertices():
            reference.add_vertex(label)
        for u, v in paper_figure1.edges():
            reference.add_edge(u, v)
        assert (sorted(map(sorted, connected_components(paper_figure1)))
                == sorted(map(sorted, connected_components(reference))))


class TestVersionAndDelta:
    def test_version_starts_at_zero(self):
        assert Graph().version == 0

    def test_every_mutation_bumps_version(self):
        graph = Graph()
        graph.add_vertex("a")
        assert graph.version == 1
        graph.add_edge("a", "b")  # implicit add_vertex(b) + add_edge
        assert graph.version == 3
        graph.remove_edge("a", "b")
        assert graph.version == 4
        graph.remove_vertex("b")
        assert graph.version == 5

    def test_noop_mutations_do_not_bump(self, triangle):
        version = triangle.version
        triangle.add_vertex(1)       # already present
        triangle.add_edge(1, 2)      # already present
        assert triangle.version == version

    def test_count_restoring_sequence_still_changes_version(self, clique5):
        version = clique5.version
        clique5.remove_edge(0, 1)
        clique5.add_edge(0, 2)  # was present -> no-op; use a genuinely new edge
        clique5.add_edge(0, 99)
        clique5.remove_vertex(99)
        assert clique5.version != version

    def test_delta_records_operations_in_order(self):
        graph = Graph()
        graph.delta  # attach the changelog before mutating
        graph.add_edge(1, 2)
        graph.remove_edge(1, 2)
        ops = [(m.op, m.u, m.v) for m in graph.delta]
        assert ops == [("add_vertex", 1, None), ("add_vertex", 2, None),
                       ("add_edge", 1, 2), ("remove_edge", 1, 2)]

    def test_remove_vertex_expands_to_edge_removals(self, triangle):
        triangle.delta  # attach
        before = triangle.version
        triangle.remove_vertex(1)
        ops = [m.op for m in triangle.delta if m.version > before]
        assert ops == ["remove_edge", "remove_edge", "remove_vertex"]

    def test_since_returns_new_mutations(self):
        graph = Graph(edges=[(1, 2)])
        version = graph.delta.version  # attaches at the current version
        graph.add_edge(2, 3)
        pending = graph.delta.since(version)
        assert [m.op for m in pending] == ["add_vertex", "add_edge"]
        assert graph.delta.since(graph.version) == []

    def test_since_reports_history_gap(self):
        graph = Graph(delta_capacity=4)
        graph.delta  # attach before mutating, then overflow the tiny log
        for i in range(10):
            graph.add_vertex(i)
        assert graph.delta.since(0) is None
        assert graph.delta.since(graph.version - 2) is not None

    def test_changelog_attaches_lazily(self):
        graph = Graph(edges=[(1, 2), (2, 3)])  # mutations before attachment
        delta = graph.delta
        assert len(delta) == 0
        assert delta.version == graph.version
        # Pre-attachment history is a gap, not silently-empty pending work.
        assert delta.since(0) is None
        graph.add_edge(1, 3)
        assert [m.op for m in delta] == ["add_edge"]
        assert graph.version == delta.version

    def test_delta_validates_operations(self):
        with pytest.raises(ValueError):
            GraphDelta().record("paint_vertex", 1)

    def test_mutation_endpoints(self):
        assert GraphMutation(1, "add_edge", 1, 2).endpoints == (1, 2)
        assert GraphMutation(1, "add_vertex", 1).endpoints == (1,)


class TestIncrementalFingerprint:
    def test_matches_rebuilt_digest_after_mutations(self, paper_figure1):
        fp = IncrementalFingerprint.from_graph(paper_figure1)
        paper_figure1.remove_edge(1, 2)
        fp.toggle_edge(1, 2)
        paper_figure1.add_edge(1, 42)
        fp.toggle_vertex(42)
        fp.toggle_edge(1, 42)
        assert fp.hexdigest() == IncrementalFingerprint.from_graph(paper_figure1).hexdigest()

    def test_insensitive_to_construction_order(self):
        one = Graph(edges=[(1, 2), (2, 3), (1, 3)])
        other = Graph(edges=[(2, 3), (1, 3), (1, 2)])
        assert (IncrementalFingerprint.from_graph(one).hexdigest()
                == IncrementalFingerprint.from_graph(other).hexdigest())

    def test_sensitive_to_content(self, triangle, path4):
        assert (IncrementalFingerprint.from_graph(triangle).hexdigest()
                != IncrementalFingerprint.from_graph(path4).hexdigest())

    def test_revert_restores_digest(self, clique5):
        fp = IncrementalFingerprint.from_graph(clique5)
        digest = fp.hexdigest()
        fp.toggle_edge(0, 1)
        assert fp.hexdigest() != digest
        fp.toggle_edge(1, 0)  # endpoint order must not matter
        assert fp.hexdigest() == digest

    def test_edge_endpoint_order_canonicalised(self):
        one, other = IncrementalFingerprint(), IncrementalFingerprint()
        one.toggle_edge("a", "b")
        other.toggle_edge("b", "a")
        assert one == other
