"""Additional unit tests for the Quick+ pruning helpers (bounds, critical vertex)."""

from __future__ import annotations

import random

from repro.baselines import (
    branch_size_upper_bound,
    critical_vertex_forced_mask,
    max_tolerable_non_neighbors,
)
from repro.core import Branch
from repro.graph.generators import erdos_renyi_gnp
from repro.quasiclique import enumerate_all_quasi_cliques


def make_branch(graph, partial, candidates):
    return Branch(graph.mask_of(partial), graph.mask_of(candidates), 0)


class TestSizeUpperBound:
    def test_empty_partial_returns_union_size(self, paper_figure1):
        branch = make_branch(paper_figure1, [], [1, 2, 3, 4])
        assert branch_size_upper_bound(paper_figure1, branch, 0.9) == 4

    def test_bound_holds_for_every_qc(self):
        rng = random.Random(701)
        for trial in range(10):
            graph = erdos_renyi_gnp(8, rng.uniform(0.4, 0.9), seed=2500 + trial)
            gamma = rng.choice([0.5, 0.7, 0.9])
            partial = set(rng.sample(graph.vertices(), 2))
            candidates = set(graph.vertices()) - partial
            branch = make_branch(graph, partial, candidates)
            bound = branch_size_upper_bound(graph, branch, gamma)
            for clique in enumerate_all_quasi_cliques(graph, gamma):
                if partial <= clique:
                    assert len(clique) <= bound


class TestNonNeighborBudget:
    def test_values(self):
        assert max_tolerable_non_neighbors(1.0, 10) == 0
        assert max_tolerable_non_neighbors(0.5, 11) == 5
        assert max_tolerable_non_neighbors(0.9, 11) == 1
        assert max_tolerable_non_neighbors(0.9, 0) == 0


class TestCriticalVertex:
    def test_empty_partial_forces_nothing(self, clique5):
        branch = Branch(0, clique5.full_mask(), 0)
        assert critical_vertex_forced_mask(clique5, branch, 1.0, 3) == 0

    def test_tight_vertex_forces_its_candidate_neighbours(self, clique5):
        # In a 5-clique with theta = 5, every partial vertex has degree exactly
        # ceil(1.0 * 4) = 4 within S ∪ C, so all candidates are forced.
        branch = make_branch(clique5, [0], [1, 2, 3, 4])
        forced = critical_vertex_forced_mask(clique5, branch, 1.0, 5)
        assert forced == branch.c_mask

    def test_slack_vertex_forces_nothing(self, clique5):
        # With theta = 3 the partial vertex has two degrees of slack.
        branch = make_branch(clique5, [0], [1, 2, 3, 4])
        assert critical_vertex_forced_mask(clique5, branch, 1.0, 3) == 0

    def test_forced_vertices_belong_to_every_large_qc(self):
        rng = random.Random(711)
        for trial in range(15):
            graph = erdos_renyi_gnp(8, rng.uniform(0.4, 0.9), seed=2600 + trial)
            gamma = rng.choice([0.5, 0.7, 0.9])
            theta = rng.randint(2, 4)
            partial = set(rng.sample(graph.vertices(), rng.randint(1, 3)))
            candidates = set(graph.vertices()) - partial
            branch = make_branch(graph, partial, candidates)
            forced = graph.labels_of_mask(
                critical_vertex_forced_mask(graph, branch, gamma, theta))
            if not forced:
                continue
            for clique in enumerate_all_quasi_cliques(graph, gamma, theta):
                if partial <= clique:
                    assert forced <= clique, (
                        f"trial {trial}: forced {sorted(forced)} not inside {sorted(clique)}")
