"""Tests for the edge-based quasi-clique definitions (related-work contrast)."""

from __future__ import annotations

import random

from repro.graph.generators import erdos_renyi_gnp
from repro.quasiclique import (
    degree_based_implies_edge_based,
    edge_density,
    enumerate_all_quasi_cliques,
    enumerate_edge_based_quasi_cliques,
    internal_edge_count,
    is_edge_based_quasi_clique,
)


class TestBasics:
    def test_internal_edge_count(self, paper_figure1):
        assert internal_edge_count(paper_figure1, {1, 2, 3}) == 3
        assert internal_edge_count(paper_figure1, {1, 7}) == 0
        assert internal_edge_count(paper_figure1, {1}) == 0

    def test_edge_density(self, clique5, path4):
        assert edge_density(clique5, range(5)) == 1.0
        assert edge_density(path4, {1, 2, 3}) == 2 / 3
        assert edge_density(path4, {1}) == 1.0

    def test_clique_is_edge_based_qc(self, clique5):
        assert is_edge_based_quasi_clique(clique5, range(5), 1.0)

    def test_empty_set_is_not(self, clique5):
        assert not is_edge_based_quasi_clique(clique5, set(), 0.9)

    def test_connectivity_required_by_default(self, two_triangles):
        union = set(range(6))
        assert not is_edge_based_quasi_clique(two_triangles, union, 0.4)
        assert is_edge_based_quasi_clique(two_triangles, union, 0.4,
                                          require_connected=False)

    def test_path_triple_is_two_thirds_qc(self, path4):
        assert is_edge_based_quasi_clique(path4, {1, 2, 3}, 0.6)
        assert not is_edge_based_quasi_clique(path4, {1, 2, 3}, 0.7)


class TestRelationToDegreeBased:
    def test_degree_based_implies_edge_based_on_random_graphs(self):
        rng = random.Random(601)
        for trial in range(10):
            graph = erdos_renyi_gnp(8, rng.uniform(0.3, 0.9), seed=2400 + trial)
            gamma = rng.choice([0.5, 0.6, 0.8, 0.9])
            for clique in enumerate_all_quasi_cliques(graph, gamma):
                assert degree_based_implies_edge_based(graph, clique, gamma)

    def test_edge_based_is_weaker(self, path4):
        # A path of three vertices is an edge-based 0.5-QC AND a degree-based
        # 0.5-QC; but with gamma = 0.6 only the edge-based notion survives.
        assert is_edge_based_quasi_clique(path4, {1, 2, 3}, 0.6)
        from repro.quasiclique import is_quasi_clique

        assert not is_quasi_clique(path4, {1, 2, 3}, 0.6)

    def test_enumeration_counts(self, paper_figure1):
        for gamma in (0.6, 0.9):
            degree_based = set(enumerate_all_quasi_cliques(paper_figure1, gamma, theta=3))
            edge_based = set(enumerate_edge_based_quasi_cliques(paper_figure1, gamma, theta=3))
            assert degree_based <= edge_based

    def test_theta_and_max_size_filters(self, clique5):
        result = enumerate_edge_based_quasi_cliques(clique5, 1.0, theta=4, max_size=4)
        assert all(len(clique) == 4 for clique in result)
