"""Tests for the CLI sub-commands that expose the extensions (topk, community)."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.graph import write_edge_list
from repro.graph.generators import planted_quasi_clique_graph


@pytest.fixture
def graph_file(tmp_path):
    graph = planted_quasi_clique_graph(35, 45, [8, 6], 0.9, seed=5)
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return path


class TestTopkCommand:
    def test_exact_topk(self, graph_file, capsys):
        code = main(["topk", "-i", str(graph_file), "-g", "0.9", "-k", "2", "--min-size", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "top-2 largest 0.9-quasi-cliques (exact)" in out
        assert "1. size" in out

    def test_heuristic_topk(self, graph_file, capsys):
        code = main(["topk", "-i", str(graph_file), "-g", "0.9", "-k", "1",
                     "--min-size", "4", "--heuristic"])
        assert code == 0
        assert "kernel expansion" in capsys.readouterr().out

    def test_dataset_defaults(self, capsys):
        code = main(["topk", "-d", "douban", "-k", "1", "--min-size", "5"])
        assert code == 0
        assert "size" in capsys.readouterr().out

    def test_missing_gamma(self, graph_file):
        with pytest.raises(SystemExit):
            main(["topk", "-i", str(graph_file)])


class TestCommunityCommand:
    def test_community_of_planted_member(self, graph_file, capsys):
        code = main(["community", "-i", str(graph_file), "-g", "0.85", "-t", "4", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "containing 0" in out
        assert "quasi-cliques" in out

    def test_community_with_dataset_defaults(self, capsys):
        code = main(["community", "-d", "douban", "0"])
        assert code == 0
        assert "containing 0" in capsys.readouterr().out

    def test_missing_parameters(self, graph_file):
        with pytest.raises(SystemExit):
            main(["community", "-i", str(graph_file), "0"])

    def test_multiple_query_vertices(self, graph_file, capsys):
        code = main(["community", "-i", str(graph_file), "-g", "0.85", "-t", "4", "0", "1"])
        assert code == 0
        assert "containing 0, 1" in capsys.readouterr().out
