"""Tests for graph statistics, search statistics and result bookkeeping."""

from __future__ import annotations

import pytest

from repro import SearchStatistics
from repro.graph import GraphStatistics, graph_statistics, quasi_clique_statistics


class TestGraphStatistics:
    def test_values(self, clique5):
        stats = graph_statistics(clique5)
        assert stats == GraphStatistics(vertex_count=5, edge_count=10, edge_density=2.0,
                                        max_degree=4, degeneracy=4)

    def test_as_dict(self, triangle):
        data = graph_statistics(triangle).as_dict()
        assert data["vertex_count"] == 3
        assert data["degeneracy"] == 2


class TestQuasiCliqueStatistics:
    def test_empty(self):
        stats = quasi_clique_statistics([])
        assert stats.count == 0
        assert stats.min_size == stats.max_size == 0
        assert stats.avg_size == 0.0

    def test_values(self):
        stats = quasi_clique_statistics([frozenset({1, 2}), frozenset({1, 2, 3, 4})])
        assert stats.count == 2
        assert stats.min_size == 2
        assert stats.max_size == 4
        assert stats.avg_size == pytest.approx(3.0)

    def test_as_dict(self):
        data = quasi_clique_statistics([frozenset({1})]).as_dict()
        assert data == {"count": 1, "min_size": 1, "max_size": 1, "avg_size": 1.0}


class TestSearchStatistics:
    def test_defaults(self):
        stats = SearchStatistics()
        assert stats.branches_explored == 0
        assert stats.subproblem_sizes == []

    def test_merge(self):
        first = SearchStatistics(branches_explored=3, outputs=1, subproblems=1,
                                 subproblem_sizes=[5])
        second = SearchStatistics(branches_explored=4, outputs=2, subproblems=2,
                                  subproblem_sizes=[7, 2])
        first.merge(second)
        assert first.branches_explored == 7
        assert first.outputs == 3
        assert first.subproblems == 3
        assert first.subproblem_sizes == [5, 7, 2]

    def test_as_dict_aggregates(self):
        stats = SearchStatistics(subproblem_sizes=[4, 8])
        data = stats.as_dict()
        assert data["max_subproblem_size"] == 8
        assert data["avg_subproblem_size"] == pytest.approx(6.0)

    def test_as_dict_empty_sizes(self):
        data = SearchStatistics().as_dict()
        assert data["max_subproblem_size"] == 0
        assert data["avg_subproblem_size"] == 0.0
