"""Tests for graph statistics, search statistics and result bookkeeping."""

from __future__ import annotations

import json

import pytest

from repro import SearchStatistics
from repro.core.stats import SizeHistogram
from repro.graph import GraphStatistics, graph_statistics, quasi_clique_statistics


def _histogram(sizes):
    histogram = SizeHistogram()
    for size in sizes:
        histogram.record(size)
    return histogram


class TestGraphStatistics:
    def test_values(self, clique5):
        stats = graph_statistics(clique5)
        assert stats == GraphStatistics(vertex_count=5, edge_count=10, edge_density=2.0,
                                        max_degree=4, degeneracy=4)

    def test_as_dict(self, triangle):
        data = graph_statistics(triangle).as_dict()
        assert data["vertex_count"] == 3
        assert data["degeneracy"] == 2


class TestQuasiCliqueStatistics:
    def test_empty(self):
        stats = quasi_clique_statistics([])
        assert stats.count == 0
        assert stats.min_size == stats.max_size == 0
        assert stats.avg_size == 0.0

    def test_values(self):
        stats = quasi_clique_statistics([frozenset({1, 2}), frozenset({1, 2, 3, 4})])
        assert stats.count == 2
        assert stats.min_size == 2
        assert stats.max_size == 4
        assert stats.avg_size == pytest.approx(3.0)

    def test_as_dict(self):
        data = quasi_clique_statistics([frozenset({1})]).as_dict()
        assert data == {"count": 1, "min_size": 1, "max_size": 1, "avg_size": 1.0}


class TestSizeHistogram:
    def test_record_tracks_count_total_max(self):
        histogram = _histogram([4, 8, 3])
        assert histogram.count == 3
        assert histogram.total == 15
        assert histogram.max == 8
        assert histogram.average == pytest.approx(5.0)

    def test_bounded_state(self):
        # 10k observations collapse into O(log max) buckets, not a 10k list.
        histogram = _histogram(range(10_000))
        assert histogram.count == 10_000
        assert len(histogram.buckets) <= (10_000).bit_length() + 1

    def test_power_of_two_buckets(self):
        histogram = _histogram([0, 1, 2, 3, 4, 7, 8])
        assert histogram.buckets == {0: 1, 1: 1, 2: 2, 4: 2, 8: 1}

    def test_merge(self):
        first = _histogram([5])
        first.merge(_histogram([7, 2]))
        assert first.count == 3
        assert first.total == 14
        assert first.max == 7
        assert first.buckets == {4: 2, 2: 1}

    def test_truthiness(self):
        assert not SizeHistogram()
        assert _histogram([1])
        assert len(_histogram([1, 2])) == 2


class TestSearchStatistics:
    def test_defaults(self):
        stats = SearchStatistics()
        assert stats.branches_explored == 0
        assert stats.ledger_moves == 0
        assert stats.ledger_updates == 0
        assert not stats.subproblem_sizes

    def test_merge(self):
        first = SearchStatistics(branches_explored=3, outputs=1, subproblems=1,
                                 ledger_moves=2, ledger_updates=9,
                                 subproblem_sizes=_histogram([5]))
        second = SearchStatistics(branches_explored=4, outputs=2, subproblems=2,
                                  ledger_moves=1, ledger_updates=4,
                                  subproblem_sizes=_histogram([7, 2]))
        first.merge(second)
        assert first.branches_explored == 7
        assert first.outputs == 3
        assert first.subproblems == 3
        assert first.ledger_moves == 3
        assert first.ledger_updates == 13
        assert first.subproblem_sizes.count == 3
        assert first.subproblem_sizes.max == 7

    def test_as_dict_aggregates(self):
        stats = SearchStatistics(subproblem_sizes=_histogram([4, 8]))
        data = stats.as_dict()
        assert data["max_subproblem_size"] == 8
        assert data["avg_subproblem_size"] == pytest.approx(6.0)

    def test_as_dict_empty_sizes(self):
        data = SearchStatistics().as_dict()
        assert data["max_subproblem_size"] == 0
        assert data["avg_subproblem_size"] == 0.0

    def test_as_dict_is_json_serialisable(self):
        # The CLI prints these dicts with json.dumps; the histogram must not break it.
        stats = SearchStatistics(subproblem_sizes=_histogram([3, 9]))
        assert json.loads(json.dumps(stats.as_dict()))["subproblem_sizes"]["count"] == 2
