"""Unit tests for the brute-force reference enumerators."""

from __future__ import annotations

from repro import Graph
from repro.quasiclique import (
    enumerate_all_quasi_cliques,
    enumerate_maximal_quasi_cliques_bruteforce,
    is_quasi_clique,
    is_superset_of_all_maximal,
)


class TestEnumerateAll:
    def test_triangle_cliques(self, triangle):
        cliques = enumerate_all_quasi_cliques(triangle, 1.0)
        assert frozenset({1, 2, 3}) in cliques
        assert frozenset({1, 2}) in cliques
        assert len([c for c in cliques if len(c) == 1]) == 3

    def test_theta_filters_small(self, triangle):
        cliques = enumerate_all_quasi_cliques(triangle, 1.0, theta=3)
        assert cliques == [frozenset({1, 2, 3})]

    def test_max_size_cap(self, clique5):
        cliques = enumerate_all_quasi_cliques(clique5, 1.0, theta=2, max_size=3)
        assert all(len(c) <= 3 for c in cliques)

    def test_every_output_is_a_qc(self, paper_figure1):
        for gamma in (0.5, 0.75, 0.9):
            for clique in enumerate_all_quasi_cliques(paper_figure1, gamma, theta=2):
                assert is_quasi_clique(paper_figure1, clique, gamma)

    def test_empty_graph(self):
        assert enumerate_all_quasi_cliques(Graph(), 0.9) == []


class TestEnumerateMaximal:
    def test_clique_has_single_maximal(self, clique5):
        assert enumerate_maximal_quasi_cliques_bruteforce(clique5, 1.0) == [frozenset(range(5))]

    def test_two_triangles(self, two_triangles):
        maximal = enumerate_maximal_quasi_cliques_bruteforce(two_triangles, 1.0, theta=3)
        assert set(maximal) == {frozenset({0, 1, 2}), frozenset({3, 4, 5})}

    def test_maximality_is_global_even_with_theta(self, clique5):
        # With theta=4, the 4-subsets are NOT maximal because the 5-clique exists.
        maximal = enumerate_maximal_quasi_cliques_bruteforce(clique5, 1.0, theta=4)
        assert maximal == [frozenset(range(5))]

    def test_no_output_is_subset_of_another(self, paper_figure1):
        maximal = enumerate_maximal_quasi_cliques_bruteforce(paper_figure1, 0.6)
        for a in maximal:
            for b in maximal:
                assert not (a < b)

    def test_star_maximal_edges(self, star5):
        maximal = enumerate_maximal_quasi_cliques_bruteforce(star5, 0.9, theta=2)
        assert set(maximal) == {frozenset({0, leaf}) for leaf in range(1, 5)}


class TestSupersetChecker:
    def test_accepts_superset(self, triangle):
        output = [frozenset({1, 2, 3}), frozenset({1, 2})]
        assert is_superset_of_all_maximal(output, triangle, 1.0, theta=3)

    def test_rejects_missing_mqc(self, two_triangles):
        output = [frozenset({0, 1, 2})]
        assert not is_superset_of_all_maximal(output, two_triangles, 1.0, theta=3)
