"""Tests for the incremental branch-state kernel (repro.core.kernel).

Three layers of guarantees:

1. **Ledger invariant** — after arbitrary include/remove sequences, the
   ``deg_in_s`` / ``deg_in_union`` ledgers equal degrees recomputed from
   scratch (the property the whole kernel rests on).
2. **Component parity** — refinement, pivot selection and branch generation
   agree with their mask-based reference counterparts on random branches.
3. **Driver behaviour** — the explicit work stack searches arbitrarily deep
   branch trees without touching the Python recursion limit, and the emit
   path dedups before any label/maximality work.
"""

from __future__ import annotations

import random
import sys

import pytest

from repro.core import kernel as kernel_module
from repro.core.branch import Branch
from repro.core.branching import BRANCHING_METHODS, generate_branches, select_pivot
from repro.core.dcfastqc import (
    CompactSubproblem,
    DCFastQC,
    two_hop_pruning_threshold,
)
from repro.core.fastqc import FastQC
from repro.core.kernel import (
    BranchState,
    ShrinkLedgers,
    depth_first_enumerate,
    generate_child_states,
    pivot_from_state,
    refine_state,
    terminates_by_theta_state,
    union_min_degree,
)
from repro.core.refinement import progressively_refine
from repro.core.stats import SearchStatistics
from repro.graph.generators import erdos_renyi_gnm, erdos_renyi_gnp
from repro.graph.graph import Graph, iter_bits
from repro.graph.subgraph import compact_subgraph, two_hop_mask
from repro.quasiclique.definitions import degree_threshold


def _random_branch(graph: Graph, rng: random.Random) -> Branch:
    """A random (S, C, D) partition of the graph's vertices."""
    s_mask = c_mask = d_mask = 0
    for index in range(graph.vertex_count):
        roll = rng.random()
        if roll < 0.2:
            s_mask |= 1 << index
        elif roll < 0.75:
            c_mask |= 1 << index
        elif roll < 0.9:
            d_mask |= 1 << index
    return Branch(s_mask, c_mask, d_mask)


def _assert_ledgers_match(graph: Graph, state: BranchState) -> None:
    union = state.union_mask
    assert state.s_size == state.s_mask.bit_count()
    assert state.c_size == state.c_mask.bit_count()
    for vertex in iter_bits(union):
        adjacency = graph.adjacency_mask(vertex)
        assert state.deg_in_s[vertex] == (adjacency & state.s_mask).bit_count()
        assert state.deg_in_union[vertex] == (adjacency & union).bit_count()


class TestBranchStateLedgers:
    def test_from_branch_initialises_ledgers(self):
        graph = erdos_renyi_gnm(12, 24, seed=41)
        state = BranchState.from_branch(graph, _random_branch(graph, random.Random(1)))
        _assert_ledgers_match(graph, state)

    def test_property_random_move_sequences(self):
        """Ledger values equal recomputed degrees after every random move."""
        rng = random.Random(77)
        for trial in range(15):
            graph = erdos_renyi_gnp(14, rng.uniform(0.2, 0.7), seed=700 + trial)
            state = BranchState.from_branch(graph, Branch.initial(graph))
            while state.c_mask:
                vertex = rng.choice(list(iter_bits(state.c_mask)))
                if rng.random() < 0.5:
                    state.include(vertex)
                else:
                    state.remove(vertex, exclude=rng.random() < 0.5)
                _assert_ledgers_match(graph, state)

    def test_copy_is_independent(self):
        graph = erdos_renyi_gnm(10, 18, seed=42)
        state = BranchState.from_branch(graph, Branch.initial(graph))
        fork = state.copy()
        fork.include(next(iter_bits(fork.c_mask)))
        _assert_ledgers_match(graph, state)
        _assert_ledgers_match(graph, fork)
        assert state.s_mask != fork.s_mask

    def test_moves_are_counted(self):
        graph = erdos_renyi_gnm(8, 14, seed=43)
        stats = SearchStatistics()
        state = BranchState.from_branch(graph, Branch.initial(graph), stats)
        first = next(iter_bits(state.c_mask))
        state.include(first)
        state.remove(next(iter_bits(state.c_mask)), exclude=True)
        assert stats.ledger_moves == 2
        assert stats.ledger_updates >= len(graph.adjacency_set(first))

    def test_to_branch_round_trip(self):
        graph = erdos_renyi_gnm(9, 15, seed=44)
        branch = _random_branch(graph, random.Random(2))
        assert BranchState.from_branch(graph, branch).to_branch() == branch


class TestKernelReferenceParity:
    """Each kernel component decides exactly like its mask-based reference."""

    GRID = [(0.5, 2), (0.7, 3), (0.9, 4), (1.0, 3)]

    def test_refine_state_matches_progressively_refine(self):
        rng = random.Random(99)
        for trial in range(30):
            graph = erdos_renyi_gnp(12, rng.uniform(0.25, 0.7), seed=1300 + trial)
            branch = _random_branch(graph, rng)
            gamma, theta = rng.choice(self.GRID)
            reference = progressively_refine(graph, branch, gamma, theta)
            state = BranchState.from_branch(graph, branch)
            pruned, tau_value, rounds, removed1, removed2 = refine_state(
                state, gamma, theta)
            assert pruned == reference.pruned
            assert tau_value == reference.tau_value
            assert rounds == reference.rounds
            assert removed1 == reference.removed_by_rule1
            assert removed2 == reference.removed_by_rule2
            assert state.s_mask == reference.branch.s_mask
            assert state.c_mask == reference.branch.c_mask
            _assert_ledgers_match(graph, state)

    def test_refine_state_honours_max_rounds(self):
        rng = random.Random(17)
        for trial in range(20):
            graph = erdos_renyi_gnp(11, rng.uniform(0.3, 0.7), seed=1500 + trial)
            branch = _random_branch(graph, rng)
            gamma, theta = rng.choice(self.GRID)
            for cap in (1, 2):
                reference = progressively_refine(graph, branch, gamma, theta,
                                                 max_rounds=cap)
                state = BranchState.from_branch(graph, branch)
                pruned, tau_value, rounds, _, _ = refine_state(
                    state, gamma, theta, max_rounds=cap)
                assert (pruned, tau_value, rounds) == (
                    reference.pruned, reference.tau_value, reference.rounds)
                assert state.c_mask == reference.branch.c_mask

    def test_pivot_and_children_match_reference(self):
        rng = random.Random(55)
        checked_pivots = 0
        for trial in range(40):
            graph = erdos_renyi_gnp(11, rng.uniform(0.25, 0.7), seed=1400 + trial)
            branch = _random_branch(graph, rng)
            gamma, theta = rng.choice(self.GRID)
            reference = progressively_refine(graph, branch, gamma, theta)
            if reference.pruned:
                continue
            refined = reference.branch
            tau_value = reference.tau_value
            state = BranchState.from_branch(graph, refined)
            reference_pivot = select_pivot(graph, refined, tau_value)
            min_deg, argmin = union_min_degree(state)
            union_size = state.union_size
            if reference_pivot is None:
                assert union_size - min_deg <= tau_value  # T1 fires identically
                continue
            assert union_size - min_deg > tau_value
            kernel_pivot = pivot_from_state(state, argmin, tau_value)
            assert kernel_pivot == reference_pivot
            checked_pivots += 1
            for method in BRANCHING_METHODS:
                reference_children = generate_branches(
                    graph, refined, reference_pivot, method)
                kernel_children = generate_child_states(
                    state.copy(), kernel_pivot, method)
                assert [child.to_branch() for child in kernel_children] \
                    == reference_children
                for child in kernel_children:
                    _assert_ledgers_match(graph, child)
        assert checked_pivots >= 5  # the trial grid must actually exercise pivots

    def test_t2_matches_reference(self):
        rng = random.Random(31)
        for trial in range(30):
            graph = erdos_renyi_gnp(10, rng.uniform(0.3, 0.7), seed=1600 + trial)
            branch = _random_branch(graph, rng)
            gamma, theta = rng.choice(self.GRID)
            state = BranchState.from_branch(graph, branch)
            algo = FastQC(graph, gamma, theta)
            for tau_value in (0, 1, 2):
                assert (terminates_by_theta_state(state, theta, tau_value)
                        == algo._terminates_by_theta(branch, tau_value))


class TestWorkStackDriver:
    def test_deep_search_needs_no_recursion(self):
        """A 120-vertex path drives the branch tree ~120 levels deep; the old
        recursive search needed a raised recursion limit for it."""
        graph = Graph(edges=[(i, i + 1) for i in range(119)])
        margin = sys.getrecursionlimit() - _current_stack_depth()
        limit = _current_stack_depth() + 80
        previous = sys.getrecursionlimit()
        assert margin > 80, "test environment has an unusually deep stack"
        sys.setrecursionlimit(limit)
        try:
            results = FastQC(graph, 0.5, 2).enumerate()
        finally:
            sys.setrecursionlimit(previous)
        # Every edge of the path is a maximal 0.5-quasi-clique seed.
        assert len(results) == 118

    def test_recursion_limit_untouched_during_search(self):
        """The old entry point raised sys.recursionlimit mid-run; the work
        stack must leave it alone, observed from inside the enumeration."""
        graph = erdos_renyi_gnm(30, 80, seed=21)
        before = sys.getrecursionlimit()
        seen: list[int] = []
        algo = FastQC(graph, 0.8, 3,
                      on_output=lambda labels: seen.append(sys.getrecursionlimit()))
        algo.enumerate()
        assert seen, "the instance must produce at least one output"
        assert all(value == before for value in seen)
        assert sys.getrecursionlimit() == before

    def test_driver_post_order_semantics(self):
        """close() fires after the children and G[S] fallback short-circuits."""
        visits = []

        def expand(node):
            visits.append(("expand", node["id"]))
            if "children" in node:
                return node["children"], node["id"]
            return node["found"]

        def close(node_id, sub_found):
            visits.append(("close", node_id, sub_found))
            return sub_found

        tree = {"id": "root", "children": [
            {"id": "a", "found": False},
            {"id": "b", "children": [{"id": "b1", "found": True}]},
            {"id": "c", "found": False},
        ]}
        assert depth_first_enumerate(tree, expand, close) is True
        assert visits == [
            ("expand", "root"),
            ("expand", "a"),
            ("expand", "b"),
            ("expand", "b1"),
            ("close", "b", True),
            ("expand", "c"),
            ("close", "root", True),
        ]

    def test_driver_cancellation_claims_found(self):
        calls = []
        result = depth_first_enumerate(
            {"id": "root"}, lambda node: calls.append(node) or False,
            lambda payload, found: found, should_stop=lambda: True)
        assert result is True
        assert calls == []  # expansion never ran


class TestEmitPath:
    def test_duplicate_masks_counted_once(self):
        """Dedup now runs before the maximality check, so a suppressed mask
        re-emitted from another branch costs nothing and counts once."""
        graph = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
        algo = FastQC(graph, 1.0, 2)
        mask = graph.mask_of([0, 1])  # extensible by vertex 2 -> suppressed
        assert algo._emit(mask) is True
        assert algo._emit(mask) is True
        assert algo.statistics.outputs_suppressed_by_maximality == 1
        assert algo.statistics.outputs == 0

    def test_small_masks_short_circuit(self):
        graph = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        algo = FastQC(graph, 1.0, 3)
        assert algo._emit(graph.mask_of([0, 1])) is True
        assert algo.statistics.outputs == 0
        assert not algo._seen_masks  # below-theta masks are not remembered

    def test_kernel_and_reference_emit_agree(self):
        rng = random.Random(3)
        for trial in range(10):
            graph = erdos_renyi_gnp(10, rng.uniform(0.4, 0.8), seed=1700 + trial)
            ledger = FastQC(graph, 0.8, 3, kernel="ledger")
            reference = FastQC(graph, 0.8, 3, kernel="reference")
            assert ledger.enumerate() == reference.enumerate()
            assert (ledger.statistics.outputs_suppressed_by_maximality
                    == reference.statistics.outputs_suppressed_by_maximality)


class TestCompactSubproblems:
    def test_compact_subgraph_matches_induced(self):
        rng = random.Random(5)
        for trial in range(10):
            graph = erdos_renyi_gnp(15, rng.uniform(0.2, 0.6), seed=1800 + trial)
            mask = 0
            for index in range(graph.vertex_count):
                if rng.random() < 0.6:
                    mask |= 1 << index
            compact = compact_subgraph(graph, mask)
            induced = graph.induced_subgraph(graph.labels_of_mask(mask))
            assert set(compact.vertices()) == set(induced.vertices())
            assert set(map(frozenset, compact.edges())) \
                == set(map(frozenset, induced.edges()))
            # Local index order follows global index order (tie-break parity).
            globals_sorted = sorted(iter_bits(mask))
            assert compact.vertices() == [graph.label_of(i) for i in globals_sorted]

    def test_from_dense_adjacency_round_trip(self):
        graph = erdos_renyi_gnm(12, 30, seed=46)
        rebuilt = Graph.from_dense_adjacency(graph.vertices(),
                                             graph.adjacency_masks())
        assert rebuilt.vertices() == graph.vertices()
        assert rebuilt.edge_count == graph.edge_count
        assert rebuilt.adjacency_masks() == graph.adjacency_masks()
        assert rebuilt.adjacency_set(0) == graph.adjacency_set(0)

    def test_compact_payloads_reproduce_subproblems(self):
        graph = erdos_renyi_gnm(40, 120, seed=47)
        driver = DCFastQC(graph, 0.8, 4)
        payloads = list(driver.iter_compact_subproblems())
        assert payloads, "the instance must produce at least one subproblem"
        merged: list[frozenset] = []
        for payload in payloads:
            assert isinstance(payload, CompactSubproblem)
            subgraph = payload.build_graph()
            assert subgraph.vertex_count == len(payload.labels)
            engine = FastQC(subgraph, 0.8, 4)
            merged.extend(engine.enumerate_branch(payload.initial_branch()))
        # Worker-style per-subproblem enumeration finds every sequential
        # candidate (the sequential driver may suppress a few more via its
        # full-graph maximality filter).
        assert set(DCFastQC(graph, 0.8, 4).enumerate()) <= set(merged)


class TestEngineWiring:
    def test_plan_reports_kernel(self):
        from repro.api import QuerySpec
        from repro.engine import MQCEEngine

        graph = erdos_renyi_gnm(30, 70, seed=23)
        engine = MQCEEngine()
        default_plan = engine.explain(graph, 0.8, 3)
        assert default_plan.kernel == "ledger"
        assert "kernel=ledger" in default_plan.describe()
        forced = engine.explain(
            graph, spec=QuerySpec(gamma=0.8, theta=3, kernel="reference"))
        assert forced.kernel == "reference"
        assert any("reference kernel" in reason for reason in forced.reasons)

    def test_topk_and_containment_honour_the_kernel(self):
        """Regression: the k/contains workloads forward spec.kernel too, so
        kernel="reference" really runs the oracle (no ledger moves)."""
        from repro.api import QuerySpec
        from repro.api.execute import containment_search, topk_search

        graph = erdos_renyi_gnm(20, 60, seed=25)
        seed_vertex = graph.vertices()[0]
        for build in (
            lambda kernel: topk_search(
                graph, QuerySpec(gamma=0.8, theta=3, k=3, kernel=kernel)),
            lambda kernel: containment_search(
                graph, QuerySpec(gamma=0.8, theta=2, contains=(seed_vertex,),
                                 kernel=kernel)),
        ):
            ledger, reference = build("ledger"), build("reference")
            assert ledger.maximal_quasi_cliques == reference.maximal_quasi_cliques
            assert reference.search_statistics.ledger_moves == 0
            assert ledger.search_statistics.ledger_moves > 0

    def test_engine_serves_both_kernels_identically(self):
        from repro.api import QuerySpec
        from repro.engine import MQCEEngine

        graph = erdos_renyi_gnm(30, 70, seed=24)
        engine = MQCEEngine()
        ledger = engine.query(graph, spec=QuerySpec(gamma=0.8, theta=3))
        reference = engine.query(
            graph, spec=QuerySpec(gamma=0.8, theta=3, kernel="reference"))
        assert ledger.maximal_quasi_cliques == reference.maximal_quasi_cliques
        # Distinct kernels address distinct cache entries (execution knob).
        assert len(engine.cache) == 2


class TestShrinkLedgers:
    """The incremental shrinking ledgers against brute mask recomputation."""

    GRID = [(0.5, 2), (0.7, 3), (0.8, 4), (0.9, 5), (1.0, 3)]

    @staticmethod
    def _random_ball(graph: Graph, rng: random.Random) -> tuple[int, int]:
        ball = 0
        for index in range(graph.vertex_count):
            if rng.random() < 0.8:
                ball |= 1 << index
        if not ball:
            ball = 1
        root = rng.choice(list(iter_bits(ball)))
        return root, ball

    @staticmethod
    def _assert_fresh_ledgers_match(graph: Graph, ledgers: ShrinkLedgers,
                                    root: int) -> None:
        masks = graph.adjacency_masks()
        alive = ledgers.alive_mask
        assert ledgers.alive_count == alive.bit_count()
        root_alive = masks[root] & alive
        for v in iter_bits(alive):
            restricted = masks[v] & alive
            assert ledgers.deg[v] == restricted.bit_count()
            assert ledgers.common[v] == (restricted & root_alive).bit_count()

    def test_property_random_prune_sequences_match_recomputation(self):
        """After arbitrary removal batches, a refresh reproduces exactly the
        degrees and common-neighbour counts recomputed from the masks."""
        rng = random.Random(123)
        for trial in range(20):
            graph = erdos_renyi_gnp(18, rng.uniform(0.2, 0.6), seed=4000 + trial)
            root, ball = self._random_ball(graph, rng)
            ledgers = ShrinkLedgers(graph, root, ball)
            while ledgers.alive_count > 1:
                pool = [v for v in iter_bits(ledgers.alive_mask) if v != root]
                if not pool:
                    break
                batch = rng.sample(pool, k=rng.randint(1, len(pool)))
                ledgers.remove_vertices(batch)
                ledgers.refresh()  # exercises both the walk and reseed paths
                self._assert_fresh_ledgers_match(graph, ledgers, root)

    def test_rounds_match_mask_rules_pass_for_pass(self):
        """Random interleavings of one-hop and two-hop passes survive exactly
        the vertices the mask-based reference rules keep."""
        rng = random.Random(5)
        for trial in range(25):
            graph = erdos_renyi_gnp(16, rng.uniform(0.2, 0.6), seed=4300 + trial)
            gamma, theta = rng.choice(self.GRID)
            oracle = DCFastQC(graph, gamma, theta, kernel="reference")
            required = degree_threshold(gamma, theta)
            root, ball = self._random_ball(graph, rng)
            ledgers = ShrinkLedgers(graph, root, ball)
            for _ in range(4):
                before = ledgers.alive_count
                if rng.random() < 0.5:
                    expected = oracle._one_hop_prune(root, ledgers.alive_mask,
                                                     required)
                    removed = ledgers.one_hop_round(required)
                else:
                    threshold = two_hop_pruning_threshold(
                        gamma, theta, ledgers.alive_count)
                    expected = oracle._two_hop_prune(root, ledgers.alive_mask)
                    removed = ledgers.two_hop_round(threshold)
                assert ledgers.alive_mask == expected
                assert ledgers.alive_count == expected.bit_count()
                assert removed == before - ledgers.alive_count

    def test_full_shrink_matches_reference_kernel(self):
        """DCFastQC's ledger shrinking equals the mask rounds bit-for-bit."""
        rng = random.Random(9)
        for trial in range(20):
            graph = erdos_renyi_gnp(20, rng.uniform(0.2, 0.55), seed=4600 + trial)
            gamma, theta = rng.choice(self.GRID)
            for framework in ("dc", "basic-dc"):
                for max_rounds in (0, 1, 2, 4):
                    ledger = DCFastQC(graph, gamma, theta, framework=framework,
                                      max_rounds=max_rounds, kernel="ledger")
                    reference = DCFastQC(graph, gamma, theta, framework=framework,
                                         max_rounds=max_rounds, kernel="reference")
                    core = ledger._core_reduction_mask()
                    for root in iter_bits(core):
                        ball = two_hop_mask(graph, root, core)
                        assert (ledger._shrink_subproblem(root, ball)
                                == reference._shrink_subproblem(root, ball)), (
                            trial, gamma, theta, framework, max_rounds, root)

    def test_shrink_counters_populated(self):
        graph = erdos_renyi_gnm(40, 130, seed=71)
        algo = DCFastQC(graph, 0.8, 4, kernel="ledger")
        algo.enumerate()
        stats = algo.statistics
        assert stats.shrink_rounds > 0
        reference = DCFastQC(graph, 0.8, 4, kernel="reference")
        reference.enumerate()
        assert reference.statistics.shrink_rounds == 0
        assert reference.statistics.shrink_ledger_updates == 0


class TestLedgerBackends:
    """The flat-buffer backends behind BranchState and ShrinkLedgers."""

    def test_default_is_auto(self):
        assert kernel_module.DEFAULT_LEDGER_BACKEND == "auto"
        assert set(kernel_module.LEDGER_BACKENDS) >= {"auto", "array", "list"}

    def test_auto_picks_buffer_type_by_width(self):
        wide = kernel_module.AUTO_ARRAY_MIN_WIDTH
        previous = kernel_module.set_ledger_backend("auto")
        try:
            import array
            small = kernel_module._make_ledger([0] * 4)
            large = kernel_module._make_ledger([0] * wide)
            assert isinstance(small, list)
            assert isinstance(large, array.array)
            assert isinstance(kernel_module._zero_ledger(4), list)
            assert isinstance(kernel_module._zero_ledger(wide), array.array)
        finally:
            kernel_module.set_ledger_backend(previous)

    @pytest.mark.parametrize("backend", ["auto", "array", "list", "numpy"])
    def test_enumeration_identical_under_every_backend(self, backend):
        from repro.baselines.quickplus import QuickPlus

        graph = erdos_renyi_gnm(26, 80, seed=61)
        baseline_fastqc = FastQC(graph, 0.8, 3, kernel="reference").enumerate()
        baseline_quick = QuickPlus(graph, 0.8, 3, kernel="reference").enumerate()
        previous = kernel_module.set_ledger_backend(backend)
        try:
            assert FastQC(graph, 0.8, 3).enumerate() == baseline_fastqc
            assert QuickPlus(graph, 0.8, 3).enumerate() == baseline_quick
            assert DCFastQC(graph, 0.8, 3).enumerate() \
                == DCFastQC(graph, 0.8, 3, kernel="reference").enumerate()
        finally:
            kernel_module.set_ledger_backend(previous)

    def test_unknown_backend_warns_and_falls_back(self):
        previous = kernel_module.ledger_backend()
        try:
            with pytest.warns(RuntimeWarning, match="unknown REPRO_KERNEL_BACKEND"):
                kernel_module.set_ledger_backend("gpu")
            assert kernel_module.ledger_backend() == "auto"
        finally:
            kernel_module.set_ledger_backend(previous)

    def test_set_ledger_backend_returns_previous(self):
        previous = kernel_module.set_ledger_backend("list")
        try:
            assert kernel_module.ledger_backend() == "list"
            assert kernel_module.set_ledger_backend(previous) == "list"
        finally:
            kernel_module.set_ledger_backend(previous)


class TestMaximalityHalo:
    """CompactSubproblem's one-hop halo reproduces full-graph maximality."""

    def test_payloads_carry_halo(self):
        graph = erdos_renyi_gnm(40, 120, seed=47)
        driver = DCFastQC(graph, 0.8, 4)
        payloads = list(driver.iter_compact_subproblems())
        assert payloads
        for payload in payloads:
            assert len(payload.halo_labels) == len(payload.halo_adjacency)
            ball = set(payload.labels)
            # Halo = outside neighbours of ball members, adjacency into ball.
            expected_halo = set()
            for label in payload.labels:
                expected_halo |= graph.neighbors(label)
            expected_halo -= ball
            assert set(payload.halo_labels) == expected_halo
            for label, into_ball in zip(payload.halo_labels, payload.halo_adjacency):
                neighbours = {payload.labels[i] for i in iter_bits(into_ball)}
                assert neighbours == graph.neighbors(label) & ball

    def test_maximality_graph_contains_ball_and_halo_edges(self):
        graph = erdos_renyi_gnm(30, 90, seed=48)
        driver = DCFastQC(graph, 0.8, 3)
        payload = next(iter(driver.iter_compact_subproblems()))
        combined = payload.build_maximality_graph()
        assert set(combined.vertices()) \
            == set(payload.labels) | set(payload.halo_labels)
        for u, v in combined.edges():
            assert graph.has_edge(u, v)
        # Every ball-halo edge of the input graph is present.
        ball = set(payload.labels)
        for label in payload.halo_labels:
            for neighbour in graph.neighbors(label) & ball:
                assert combined.has_edge(label, neighbour)

    @pytest.mark.parametrize("seed,gamma,theta",
                             [(47, 0.8, 4), (99, 0.9, 3), (123, 0.6, 3)])
    def test_worker_batches_equal_sequential_batches(self, seed, gamma, theta):
        """With the halo, a worker that never sees the full graph emits the
        sequential driver's candidate lists exactly, batch for batch (the
        ROADMAP's parallel-maximality parity item)."""
        graph = erdos_renyi_gnm(40, 120, seed=seed)
        sequential = DCFastQC(graph, gamma, theta)
        batches = list(sequential.iter_candidate_batches())
        driver = DCFastQC(graph, gamma, theta)
        payloads = list(driver.iter_compact_subproblems())
        assert len(payloads) == len(batches)
        for payload, batch in zip(payloads, batches):
            subgraph = payload.build_graph()
            engine = FastQC(subgraph, gamma, theta,
                            maximality_graph=payload.build_maximality_graph())
            assert engine.enumerate_branch(payload.initial_branch()) == batch


def _current_stack_depth() -> int:
    depth = 0
    frame = sys._getframe()
    while frame is not None:
        depth += 1
        frame = frame.f_back
    return depth
