"""Property-based tests for the extension modules and the extra I/O formats."""

from __future__ import annotations

import io

from hypothesis import given, settings, strategies as st

from repro import Graph
from repro.extensions import find_largest_quasi_cliques, find_quasi_cliques_containing
from repro.graph.formats import (
    graph_from_json_dict,
    graph_to_json_dict,
    read_adjacency_list,
    read_dimacs,
    write_adjacency_list,
    write_dimacs,
)
from repro.quasiclique import (
    enumerate_maximal_quasi_cliques_bruteforce,
    is_quasi_clique,
)


@st.composite
def small_graphs(draw, max_vertices: int = 8):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    possible_edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chosen = draw(st.lists(st.sampled_from(possible_edges), unique=True,
                           max_size=len(possible_edges))) if possible_edges else []
    return Graph(edges=chosen, vertices=range(n))


gammas = st.sampled_from([0.5, 0.6, 0.75, 0.9, 1.0])


class TestFormatRoundtrips:
    @settings(max_examples=40, deadline=None)
    @given(graph=small_graphs(max_vertices=10))
    def test_json_roundtrip(self, graph):
        back = graph_from_json_dict(graph_to_json_dict(graph))
        assert set(back.vertices()) == set(graph.vertices())
        assert set(map(frozenset, back.edges())) == set(map(frozenset, graph.edges()))

    @settings(max_examples=40, deadline=None)
    @given(graph=small_graphs(max_vertices=10))
    def test_adjacency_list_roundtrip(self, graph):
        buffer = io.StringIO()
        write_adjacency_list(graph, buffer)
        back = read_adjacency_list(io.StringIO(buffer.getvalue()))
        assert set(back.vertices()) == set(graph.vertices())
        assert set(map(frozenset, back.edges())) == set(map(frozenset, graph.edges()))

    @settings(max_examples=40, deadline=None)
    @given(graph=small_graphs(max_vertices=10))
    def test_dimacs_roundtrip_preserves_structure(self, graph):
        buffer = io.StringIO()
        write_dimacs(graph, buffer)
        back = read_dimacs(io.StringIO(buffer.getvalue()))
        assert back.vertex_count == graph.vertex_count
        assert back.edge_count == graph.edge_count
        # DIMACS renumbers vertices, so compare degree multisets instead of labels.
        assert sorted(back.degree(v) for v in back.vertices()) == sorted(
            graph.degree(v) for v in graph.vertices())


class TestTopKProperties:
    @settings(max_examples=20, deadline=None)
    @given(graph=small_graphs(), gamma=gammas, k=st.integers(min_value=1, max_value=4))
    def test_exact_topk_matches_bruteforce_sizes(self, graph, gamma, k):
        expected = sorted((len(m) for m in
                           enumerate_maximal_quasi_cliques_bruteforce(graph, gamma, 2)),
                          reverse=True)[:k]
        top = find_largest_quasi_cliques(graph, gamma, k=k, minimum_size=2)
        assert [len(clique) for clique in top] == expected
        for clique in top:
            assert is_quasi_clique(graph, clique, gamma)


class TestQueryProperties:
    @settings(max_examples=20, deadline=None)
    @given(graph=small_graphs(), gamma=gammas, data=st.data())
    def test_query_results_complete_and_sound(self, graph, gamma, data):
        query_vertex = data.draw(st.sampled_from(graph.vertices()))
        found = find_quasi_cliques_containing(graph, [query_vertex], gamma, theta=1)
        expected = [m for m in enumerate_maximal_quasi_cliques_bruteforce(graph, gamma, 1)
                    if query_vertex in m]
        for mqc in expected:
            assert mqc in found
        for clique in found:
            assert query_vertex in clique
            assert is_quasi_clique(graph, clique, gamma)
