"""Property-based tests (hypothesis) for the core invariants of the library."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import Graph, SetTrie, filter_non_maximal, find_maximal_quasi_cliques
from repro.core import Branch, generate_branches, select_pivot, sigma, tau_sigma
from repro.core.refinement import progressively_refine
from repro.graph import core_numbers, degeneracy, degeneracy_ordering, is_degeneracy_ordering
from repro.quasiclique import (
    degree_threshold,
    enumerate_all_quasi_cliques,
    enumerate_maximal_quasi_cliques_bruteforce,
    is_quasi_clique,
    is_quasi_clique_by_lemma1,
    tau,
)


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def small_graphs(draw, max_vertices: int = 9):
    """A random simple graph with up to ``max_vertices`` vertices."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    possible_edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
    chosen = draw(st.lists(st.sampled_from(possible_edges), unique=True, max_size=len(possible_edges))
                  ) if possible_edges else []
    return Graph(edges=chosen, vertices=range(n))


gammas = st.sampled_from([0.5, 0.6, 0.7, 0.8, 0.9, 0.96, 1.0])
thetas = st.integers(min_value=1, max_value=4)


# ----------------------------------------------------------------------
# Definition-level properties
# ----------------------------------------------------------------------
class TestDefinitionProperties:
    @settings(max_examples=60, deadline=None)
    @given(gamma=gammas, size=st.integers(min_value=1, max_value=60))
    def test_tau_complements_degree_threshold(self, gamma, size):
        assert tau(size, gamma) == size - degree_threshold(gamma, size)

    @settings(max_examples=40, deadline=None)
    @given(graph=small_graphs(), gamma=gammas, data=st.data())
    def test_lemma1_matches_definition(self, graph, gamma, data):
        vertices = graph.vertices()
        subset = data.draw(st.sets(st.sampled_from(vertices), min_size=1))
        assert is_quasi_clique(graph, subset, gamma) == is_quasi_clique_by_lemma1(
            graph, subset, gamma)

    @settings(max_examples=40, deadline=None)
    @given(graph=small_graphs(), gamma=gammas)
    def test_single_vertices_and_edges_are_qcs(self, graph, gamma):
        for v in graph.vertices():
            assert is_quasi_clique(graph, {v}, gamma)
        for u, v in graph.edges():
            assert is_quasi_clique(graph, {u, v}, gamma)


# ----------------------------------------------------------------------
# Core decomposition properties
# ----------------------------------------------------------------------
class TestDecompositionProperties:
    @settings(max_examples=40, deadline=None)
    @given(graph=small_graphs(max_vertices=12))
    def test_degeneracy_ordering_is_valid(self, graph):
        ordering = degeneracy_ordering(graph)
        assert sorted(ordering) == sorted(graph.vertices())
        assert is_degeneracy_ordering(graph, ordering)

    @settings(max_examples=40, deadline=None)
    @given(graph=small_graphs(max_vertices=12))
    def test_core_numbers_bounded_by_degeneracy(self, graph):
        cores = core_numbers(graph)
        omega = degeneracy(graph)
        assert all(0 <= value <= omega for value in cores.values())
        if cores:
            assert max(cores.values()) == omega


# ----------------------------------------------------------------------
# Set-trie properties
# ----------------------------------------------------------------------
class TestSetTrieProperties:
    @settings(max_examples=50, deadline=None)
    @given(family=st.lists(st.frozensets(st.integers(min_value=0, max_value=10), max_size=5),
                           max_size=20),
           query=st.frozensets(st.integers(min_value=0, max_value=10), max_size=8))
    def test_subset_and_superset_queries_match_naive(self, family, query):
        trie = SetTrie(family)
        assert sorted(map(sorted, trie.get_all_subsets(query))) == sorted(
            map(sorted, (s for s in family if s <= query)))
        assert sorted(map(sorted, trie.get_all_supersets(query))) == sorted(
            map(sorted, (s for s in family if s >= query)))

    @settings(max_examples=50, deadline=None)
    @given(family=st.lists(st.frozensets(st.integers(min_value=0, max_value=10), max_size=5),
                           max_size=20))
    def test_filter_non_maximal_matches_pairwise(self, family):
        assert set(filter_non_maximal(family, method="subsets")) == set(
            filter_non_maximal(family, method="pairwise"))


# ----------------------------------------------------------------------
# Branch-and-bound soundness properties
# ----------------------------------------------------------------------
class TestSearchProperties:
    @settings(max_examples=25, deadline=None)
    @given(graph=small_graphs(max_vertices=8), gamma=gammas, theta=thetas,
           algorithm=st.sampled_from(["dcfastqc", "fastqc", "quickplus"]))
    def test_pipeline_matches_bruteforce(self, graph, gamma, theta, algorithm):
        expected = set(enumerate_maximal_quasi_cliques_bruteforce(graph, gamma, theta))
        result = find_maximal_quasi_cliques(graph, gamma, theta, algorithm=algorithm)
        assert set(result.maximal_quasi_cliques) == expected

    @settings(max_examples=25, deadline=None)
    @given(graph=small_graphs(max_vertices=8), gamma=gammas, theta=thetas, data=st.data())
    def test_refinement_preserves_large_qcs(self, graph, gamma, theta, data):
        vertices = graph.vertices()
        partial = data.draw(st.sets(st.sampled_from(vertices), max_size=3))
        candidates = set(vertices) - partial
        branch = Branch(graph.mask_of(partial), graph.mask_of(candidates), 0)
        outcome = progressively_refine(graph, branch, gamma, theta)
        large = [clique for clique in enumerate_all_quasi_cliques(graph, gamma, theta)
                 if partial <= clique]
        if outcome.pruned:
            assert not large
        else:
            kept = graph.labels_of_mask(outcome.branch.union_mask)
            assert all(clique <= kept for clique in large)

    @settings(max_examples=25, deadline=None)
    @given(graph=small_graphs(max_vertices=8), gamma=gammas)
    def test_sigma_bounds_every_qc(self, graph, gamma):
        branch = Branch.initial(graph)
        bound = sigma(graph, branch, gamma)
        for clique in enumerate_all_quasi_cliques(graph, gamma):
            assert len(clique) <= bound

    @settings(max_examples=25, deadline=None)
    @given(graph=small_graphs(max_vertices=8), gamma=gammas,
           method=st.sampled_from(["hybrid", "sym-se"]))
    def test_branching_covers_every_maximal_qc(self, graph, gamma, method):
        branch = Branch.initial(graph)
        budget = tau_sigma(graph, branch, gamma)
        pivot = select_pivot(graph, branch, budget)
        if pivot is None:
            return
        children = generate_branches(graph, branch, pivot, method)
        for mqc in enumerate_maximal_quasi_cliques_bruteforce(graph, gamma):
            mask = graph.mask_of(mqc)
            assert any(child.covers(mask) for child in children)
