"""Unit tests for the SE / Sym-SE / Hybrid-SE branching methods (Sections 3, 4.3, 4.4)."""

from __future__ import annotations

import random
from itertools import combinations

import pytest

from repro.core import (
    Branch,
    generate_branches,
    hybrid_se_applicable,
    hybrid_se_branch_pair,
    pivot_ordering,
    se_branches,
    select_pivot,
    sym_se_branches,
    tau_sigma,
)
from repro.graph.generators import erdos_renyi_gnp
from repro.quasiclique import enumerate_maximal_quasi_cliques_bruteforce


def make_branch(graph, partial, candidates):
    return Branch(graph.mask_of(partial), graph.mask_of(candidates), 0)


def all_subsets_under(branch):
    """Every vertex-index set covered by a branch (for small branches only)."""
    partial = frozenset(branch.partial_vertices())
    candidates = branch.candidate_vertices()
    subsets = []
    for size in range(len(candidates) + 1):
        for extra in combinations(candidates, size):
            subsets.append(partial | frozenset(extra))
    return subsets


class TestPivotSelection:
    def test_none_when_budget_not_exceeded(self, clique5):
        branch = make_branch(clique5, [0, 1], [2, 3, 4])
        assert select_pivot(clique5, branch, tau_value=1) is None

    def test_pivot_has_maximum_disconnections(self, paper_figure1):
        branch = make_branch(paper_figure1, [1, 2], [3, 4, 5, 6, 7, 8, 9])
        pivot = select_pivot(paper_figure1, branch, tau_value=1)
        assert pivot is not None
        union = branch.union_mask
        best = max((union & ~paper_figure1.adjacency_mask(v)).bit_count()
                   for v in branch.partial_vertices() + branch.candidate_vertices())
        assert pivot.disconnections_in_union == best
        assert pivot.disconnections_in_union > 1

    def test_pivot_fields_consistent(self, paper_figure1):
        branch = make_branch(paper_figure1, [1, 2], [3, 4, 5, 6, 7, 8, 9])
        pivot = select_pivot(paper_figure1, branch, tau_value=2)
        assert pivot is not None
        assert pivot.disconnections_in_union == (
            pivot.disconnections_in_partial + pivot.disconnections_in_candidates)
        assert pivot.b - pivot.a == pivot.disconnections_in_union - pivot.budget
        assert pivot.a < pivot.b

    def test_pivot_in_partial_flag(self):
        graph = erdos_renyi_gnp(6, 0.0, seed=1)
        graph.add_edge(0, 1)
        branch = make_branch(graph, [0, 2], [1, 3])
        pivot = select_pivot(graph, branch, tau_value=1)
        assert pivot is not None
        assert pivot.in_partial == (pivot.vertex in {graph.index_of(0), graph.index_of(2)})


class TestOrdering:
    def test_case1_non_neighbours_first(self, paper_figure1):
        branch = make_branch(paper_figure1, [1, 2], [3, 4, 5, 6, 7, 8, 9])
        tau_value = tau_sigma(paper_figure1, branch, 0.6)
        pivot = select_pivot(paper_figure1, branch, tau_value)
        assert pivot is not None
        ordering = pivot_ordering(paper_figure1, branch, pivot)
        assert sorted(ordering) == sorted(branch.candidate_vertices())
        adjacency = paper_figure1.adjacency_mask(pivot.vertex)
        non_neighbour_count = (branch.c_mask & ~adjacency).bit_count()
        front = ordering[:non_neighbour_count]
        assert all(not (adjacency >> v) & 1 for v in front)

    def test_case2_pivot_first(self):
        graph = erdos_renyi_gnp(7, 0.3, seed=0)
        branch = Branch(0, graph.full_mask(), 0)
        pivot = select_pivot(graph, branch, tau_value=1)
        assert pivot is not None and not pivot.in_partial
        ordering = pivot_ordering(graph, branch, pivot)
        assert ordering[0] == pivot.vertex

    def test_ordering_is_permutation_of_candidates(self, paper_figure1):
        branch = make_branch(paper_figure1, [1], [2, 3, 4, 5, 6])
        pivot = select_pivot(paper_figure1, branch, tau_value=1)
        assert pivot is not None
        ordering = pivot_ordering(paper_figure1, branch, pivot)
        assert sorted(ordering) == sorted(branch.candidate_vertices())


class TestSEBranches:
    def test_counts_and_structure(self, paper_figure1):
        branch = make_branch(paper_figure1, [1], [2, 3, 4])
        ordering = branch.candidate_vertices()
        children = se_branches(branch, ordering)
        assert len(children) == 3
        # Child i includes ordering[i-1] and excludes the earlier ones.
        for position, child in enumerate(children):
            included = 1 << ordering[position]
            assert child.s_mask == branch.s_mask | included
            assert child.d_mask == branch.d_mask | sum(1 << v for v in ordering[:position])

    def test_partition_of_supersets(self, paper_figure1):
        # Every vertex set that strictly contains S is covered by exactly one SE child.
        branch = make_branch(paper_figure1, [1], [2, 3, 4, 5])
        children = se_branches(branch, branch.candidate_vertices())
        for subset in all_subsets_under(branch):
            mask = sum(1 << v for v in subset)
            covering = [child for child in children if child.covers(mask)]
            if subset == frozenset(branch.partial_vertices()):
                assert covering == []
            else:
                assert len(covering) == 1

    def test_keep_limits_output(self, paper_figure1):
        branch = make_branch(paper_figure1, [1], [2, 3, 4, 5])
        assert len(se_branches(branch, branch.candidate_vertices(), keep=2)) == 2


class TestSymSEBranches:
    def test_counts_and_last_branch(self, paper_figure1):
        branch = make_branch(paper_figure1, [1], [2, 3, 4])
        children = sym_se_branches(branch, branch.candidate_vertices())
        assert len(children) == 4
        last = children[-1]
        assert last.s_mask == branch.union_mask
        assert last.c_mask == 0

    def test_partition_of_all_subsets(self, paper_figure1):
        # Every vertex set under the branch (including S itself) is covered by
        # exactly one Sym-SE child.
        branch = make_branch(paper_figure1, [1], [2, 3, 4, 5])
        children = sym_se_branches(branch, branch.candidate_vertices())
        for subset in all_subsets_under(branch):
            mask = sum(1 << v for v in subset)
            covering = [child for child in children if child.covers(mask)]
            assert len(covering) == 1

    def test_prefix_partial_sets_grow(self, paper_figure1):
        branch = make_branch(paper_figure1, [1], [2, 3, 4, 5])
        children = sym_se_branches(branch, branch.candidate_vertices())
        sizes = [child.partial_size for child in children]
        assert sizes == sorted(sizes)
        for earlier, later in zip(children, children[1:]):
            assert earlier.s_mask & later.s_mask == earlier.s_mask

    def test_keep_limits_output(self, paper_figure1):
        branch = make_branch(paper_figure1, [1], [2, 3, 4, 5])
        children = sym_se_branches(branch, branch.candidate_vertices(), keep=3)
        assert len(children) == 3


class TestHybridSE:
    def _hybrid_setup(self, seed=13):
        rng = random.Random(seed)
        while True:
            graph = erdos_renyi_gnp(8, rng.uniform(0.3, 0.7), seed=rng.randrange(10_000))
            branch = Branch(0, graph.full_mask(), 0)
            tau_value = tau_sigma(graph, branch, 0.6)
            pivot = select_pivot(graph, branch, tau_value)
            if pivot is not None and not pivot.in_partial and pivot.disconnections_in_partial == 0:
                return graph, branch, pivot

    def test_applicability_conditions(self, paper_figure1):
        branch = make_branch(paper_figure1, [1, 2], [3, 4, 5, 6, 7, 8, 9])
        tau_value = tau_sigma(paper_figure1, branch, 0.6)
        pivot = select_pivot(paper_figure1, branch, tau_value)
        assert pivot is not None
        expected = (not pivot.in_partial and pivot.disconnections_in_partial == 0
                    and (pivot.b == pivot.a + 1 or pivot.budget == 1))
        assert hybrid_se_applicable(pivot) == expected

    def test_branch_pair_structure(self):
        graph, branch, pivot = self._hybrid_setup()
        ordering = pivot_ordering(graph, branch, pivot)
        excluding, including = hybrid_se_branch_pair(branch, ordering, pivot)
        pivot_bit = 1 << pivot.vertex
        assert all(child.d_mask & pivot_bit for child in excluding)
        assert all(child.s_mask & pivot_bit for child in including)
        assert len(excluding) == pivot.b - 1
        assert len(including) == pivot.a

    def test_hybrid_covers_every_maximal_qc(self):
        # The branches dropped by Hybrid-SE may only hold non-maximal QCs, so
        # every maximal QC under the parent must be covered by a kept child.
        rng = random.Random(61)
        checked = 0
        for trial in range(120):
            graph = erdos_renyi_gnp(8, rng.uniform(0.3, 0.7), seed=700 + trial)
            gamma = 0.6
            branch = Branch(0, graph.full_mask(), 0)
            tau_value = tau_sigma(graph, branch, gamma)
            pivot = select_pivot(graph, branch, tau_value)
            if pivot is None or not hybrid_se_applicable(pivot):
                continue
            checked += 1
            children = generate_branches(graph, branch, pivot, "hybrid")
            for mqc in enumerate_maximal_quasi_cliques_bruteforce(graph, gamma):
                mask = graph.mask_of(mqc)
                assert any(child.covers(mask) for child in children), (
                    f"trial {trial}: maximal QC {sorted(mqc)} not covered")
        assert checked >= 2


class TestGenerateBranches:
    def test_unknown_method_rejected(self, paper_figure1):
        branch = Branch.initial(paper_figure1)
        pivot = select_pivot(paper_figure1, branch, tau_value=1)
        assert pivot is not None
        with pytest.raises(ValueError):
            generate_branches(paper_figure1, branch, pivot, "bogus")

    def test_sym_se_children_shrink_candidates(self, paper_figure1):
        branch = Branch.initial(paper_figure1)
        tau_value = tau_sigma(paper_figure1, branch, 0.9)
        pivot = select_pivot(paper_figure1, branch, tau_value)
        assert pivot is not None
        for method in ("hybrid", "sym-se", "se"):
            for child in generate_branches(paper_figure1, branch, pivot, method):
                assert child.candidate_size < branch.candidate_size

    def test_sym_se_keeps_every_qc_bearing_branch(self):
        # Branches dropped by the Sym-SE keep-limit hold no QCs at all, so every
        # QC under the parent is covered by a kept child.
        from repro.quasiclique import enumerate_all_quasi_cliques

        rng = random.Random(71)
        for trial in range(25):
            graph = erdos_renyi_gnp(8, rng.uniform(0.3, 0.8), seed=800 + trial)
            gamma = rng.choice([0.5, 0.6, 0.9])
            branch = Branch(0, graph.full_mask(), 0)
            tau_value = tau_sigma(graph, branch, gamma)
            pivot = select_pivot(graph, branch, tau_value)
            if pivot is None:
                continue
            children = generate_branches(graph, branch, pivot, "sym-se")
            for clique in enumerate_all_quasi_cliques(graph, gamma):
                mask = graph.mask_of(clique)
                assert any(child.covers(mask) for child in children), (
                    f"trial {trial}: QC {sorted(clique)} lost by Sym-SE keep-limit")
