"""Property-based update-sequence tests: the incremental-vs-rebuild oracle.

Random insert/delete sequences are driven through a :class:`DynamicEngine`;
after **every** mutation the engine's answer must be byte-identical to a
fresh-from-scratch enumeration of the current graph, and the incrementally
patched artifacts must match their recomputed counterparts.  This is the
strongest guarantee the dynamic subsystem makes: selective invalidation may
retain as many cache entries as it likes, but it must never change an answer.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro import Graph
from repro.api import QuerySpec
from repro.dynamic import DynamicEngine
from repro.graph import connected_components, core_numbers, degeneracy
from repro.pipeline.mqce import run_enumeration

gammas = st.sampled_from([0.5, 0.6, 0.8, 0.9, 1.0])
thetas = st.integers(min_value=1, max_value=4)


def random_mutation(rng: random.Random, graph: Graph, next_label: list[int]):
    """Pick one applicable random mutation and apply it; returns its kind."""
    choices = ["add_edge", "add_vertex"]
    if graph.edge_count > 0:
        choices.append("remove_edge")
    if graph.vertex_count > 1:
        choices.append("remove_vertex")
    kind = rng.choice(choices)
    if kind == "add_edge":
        vertices = graph.vertices()
        absent = [(u, v) for i, u in enumerate(vertices) for v in vertices[i + 1:]
                  if not graph.has_edge(u, v)]
        if absent:
            graph.add_edge(*rng.choice(absent))
        else:  # complete graph: grow it instead
            graph.add_edge(rng.choice(vertices), next_label[0])
            next_label[0] += 1
    elif kind == "add_vertex":
        graph.add_vertex(next_label[0])
        next_label[0] += 1
    elif kind == "remove_edge":
        graph.remove_edge(*rng.choice(graph.edges()))
    else:
        graph.remove_vertex(rng.choice(graph.vertices()))
    return kind


def fresh_answer(graph: Graph, gamma, theta):
    return run_enumeration(graph, QuerySpec(gamma=gamma, theta=theta)).maximal_quasi_cliques


def canon(collection_of_sets):
    """Order-insensitive canonical form of a collection of vertex sets."""
    return sorted(sorted(map(str, vertex_set)) for vertex_set in collection_of_sets)


class TestUpdateSequenceOracle:
    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(min_value=3, max_value=8),
           edge_seed=st.integers(min_value=0, max_value=2 ** 20),
           mutation_seed=st.integers(min_value=0, max_value=2 ** 20),
           steps=st.integers(min_value=1, max_value=8),
           gamma=gammas, theta=thetas)
    def test_answers_match_fresh_enumeration_after_every_mutation(
            self, n, edge_seed, mutation_seed, steps, gamma, theta):
        rng = random.Random(edge_seed)
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        edges = [pair for pair in pairs if rng.random() < 0.5]
        graph = Graph(edges=edges, vertices=range(n))
        dynamic = DynamicEngine(graph)
        assert (dynamic.query(gamma, theta).maximal_quasi_cliques
                == fresh_answer(graph, gamma, theta))
        rng = random.Random(mutation_seed)
        next_label = [n + 100]
        for _ in range(steps):
            random_mutation(rng, graph, next_label)
            produced = dynamic.query(gamma, theta).maximal_quasi_cliques
            assert produced == fresh_answer(graph, gamma, theta)

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(min_value=3, max_value=7),
           seed=st.integers(min_value=0, max_value=2 ** 20),
           steps=st.integers(min_value=1, max_value=10))
    def test_patched_artifacts_match_recomputation(self, n, seed, steps):
        rng = random.Random(seed)
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        graph = Graph(edges=[p for p in pairs if rng.random() < 0.5],
                      vertices=range(n))
        dynamic = DynamicEngine(graph)
        next_label = [n + 100]
        for _ in range(steps):
            random_mutation(rng, graph, next_label)
            dynamic.sync()
            prepared = dynamic.prepared
            assert prepared.check_unmodified()
            assert prepared.degrees == tuple(
                len(graph.adjacency_set(i)) for i in range(graph.vertex_count))
            assert canon(prepared.components) == canon(connected_components(graph))
            exact = core_numbers(graph)
            assert all(prepared.core_bound(v) >= c for v, c in exact.items())
            assert prepared.degeneracy >= degeneracy(graph)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2 ** 20),
           gamma=gammas, theta=st.integers(min_value=2, max_value=3))
    def test_mixed_workloads_stay_correct_across_updates(self, seed, gamma, theta):
        """Top-k and containment entries must also survive or die correctly."""
        rng = random.Random(seed)
        n = 8
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        graph = Graph(edges=[p for p in pairs if rng.random() < 0.45],
                      vertices=range(n))
        dynamic = DynamicEngine(graph)
        topk = QuerySpec(gamma=gamma, theta=theta, k=2)
        next_label = [n + 100]
        for _ in range(5):
            random_mutation(rng, graph, next_label)
            produced = dynamic.query(topk).maximal_quasi_cliques
            fresh = run_enumeration(graph, QuerySpec(gamma=gamma, theta=theta))
            from repro.pipeline.mqce import canonical_order

            expected = canonical_order(fresh.maximal_quasi_cliques)[:2]
            assert produced == expected
            if graph.vertex_count:
                seedling = graph.vertices()[0]
                contains = QuerySpec(gamma=gamma, theta=theta, contains=(seedling,))
                produced_containment = dynamic.query(contains).maximal_quasi_cliques
                expected_containment = [
                    clique for clique in fresh.maximal_quasi_cliques
                    if seedling in clique]
                assert canon(produced_containment) == canon(expected_containment)
