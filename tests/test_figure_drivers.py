"""Smoke tests for the figure drivers on trimmed inputs.

The full-size runs belong to ``benchmarks/``; here each driver is exercised on
a single small dataset analogue (or tiny synthetic input) to lock its row
schema and its basic invariants.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    figure7_rows,
    figure8_rows,
    figure9_rows,
    figure11_rows,
    figure12_rows,
    settrie_filtering_rows,
    speedup_over_baseline,
)

SMALL = "douban"


@pytest.mark.parametrize("driver, kwargs, expected_extra_keys", [
    (figure7_rows, {"names": [SMALL]}, {"dataset"}),
    (figure8_rows, {"names": [SMALL], "gamma_values": [0.9]}, {"dataset", "swept_value"}),
    (figure9_rows, {"names": [SMALL], "theta_values": [7]}, {"dataset", "swept_value"}),
])
def test_comparison_drivers(driver, kwargs, expected_extra_keys):
    rows = driver(algorithms=("dcfastqc", "quickplus"), **kwargs)
    assert rows
    algorithms = {row["algorithm"] for row in rows}
    assert algorithms == {"dcfastqc", "quickplus"}
    for row in rows:
        assert expected_extra_keys <= set(row)
        assert row["enumeration_seconds"] >= 0.0
        assert row["maximal_count"] >= 0
    # Both algorithms agree on the answer size on every row group.
    counts = {}
    for row in rows:
        key = tuple(row.get(k) for k in ("dataset", "swept_value"))
        counts.setdefault(key, set()).add(row["maximal_count"])
    assert all(len(values) == 1 for values in counts.values())
    assert speedup_over_baseline(rows) > 0


def test_figure11_driver_small():
    rows = figure11_rows(names=(SMALL,), branchings=("hybrid", "se"), vary="theta")
    assert {row["branching"] for row in rows} == {"hybrid", "se"}
    assert all(row["branches_explored"] > 0 for row in rows)


def test_figure12_driver_small():
    rows = figure12_rows(names=(SMALL,), frameworks=(("DCFastQC", "dc"), ("FastQC", "none")),
                         vary="theta")
    assert {row["variant"] for row in rows} == {"DCFastQC", "FastQC"}
    by_variant = {}
    for row in rows:
        by_variant.setdefault(row["variant"], 0)
        by_variant[row["variant"]] += row["branches_explored"]
    # The DC framework explores no more branches than plain FastQC overall.
    assert by_variant["DCFastQC"] <= by_variant["FastQC"]


def test_settrie_filtering_driver_small():
    rows = settrie_filtering_rows(names=[SMALL])
    assert rows[0]["filtering_fraction"] >= 0.0
    assert rows[0]["candidate_count"] >= rows[0]["maximal_count"]
