"""Unit tests for the Graph data structure (repro.graph.graph)."""

from __future__ import annotations

import pytest

from repro import Graph, GraphError
from repro.graph import iter_bits, mask_to_set, set_to_mask


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.vertex_count == 0
        assert graph.edge_count == 0
        assert len(graph) == 0
        assert graph.vertices() == []
        assert graph.edges() == []

    def test_add_vertex_returns_index(self):
        graph = Graph()
        assert graph.add_vertex("a") == 0
        assert graph.add_vertex("b") == 1

    def test_add_vertex_idempotent(self):
        graph = Graph()
        assert graph.add_vertex("a") == 0
        assert graph.add_vertex("a") == 0
        assert graph.vertex_count == 1

    def test_add_edge_creates_vertices(self):
        graph = Graph()
        graph.add_edge(1, 2)
        assert graph.vertex_count == 2
        assert graph.edge_count == 1
        assert graph.has_edge(1, 2)
        assert graph.has_edge(2, 1)

    def test_add_edge_duplicate_is_noop(self):
        graph = Graph()
        graph.add_edge(1, 2)
        graph.add_edge(2, 1)
        assert graph.edge_count == 1

    def test_self_loop_rejected(self):
        graph = Graph()
        with pytest.raises(GraphError):
            graph.add_edge(1, 1)

    def test_from_edges_with_extra_vertices(self):
        graph = Graph.from_edges([(1, 2)], vertices=[1, 2, 3])
        assert graph.vertex_count == 3
        assert graph.degree(3) == 0

    def test_from_adjacency(self):
        graph = Graph.from_adjacency({1: [2, 3], 2: [1], 3: []})
        assert graph.edge_count == 2
        assert graph.has_edge(1, 3)

    def test_constructor_with_edges(self, triangle):
        assert triangle.vertex_count == 3
        assert triangle.edge_count == 3

    def test_string_and_int_labels_coexist(self):
        graph = Graph(edges=[("a", 1), (1, "b")])
        assert graph.vertex_count == 3
        assert graph.has_edge("a", 1)

    def test_repr(self, triangle):
        assert "3" in repr(triangle)


class TestAccessors:
    def test_contains(self, triangle):
        assert 1 in triangle
        assert 99 not in triangle

    def test_iter_yields_labels(self, triangle):
        assert set(triangle) == {1, 2, 3}

    def test_neighbors(self, path4):
        assert path4.neighbors(2) == frozenset({1, 3})
        assert path4.neighbors(1) == frozenset({2})

    def test_degree(self, star5):
        assert star5.degree(0) == 4
        assert star5.degree(1) == 1

    def test_max_degree(self, star5, path4):
        assert star5.max_degree() == 4
        assert path4.max_degree() == 2
        assert Graph().max_degree() == 0

    def test_density(self, triangle):
        assert triangle.density() == pytest.approx(1.0)
        assert Graph().density() == 0.0

    def test_edges_listed_once(self, triangle):
        edges = triangle.edges()
        assert len(edges) == 3
        assert len(set(frozenset(e) for e in edges)) == 3

    def test_unknown_vertex_raises(self, triangle):
        with pytest.raises(GraphError):
            triangle.neighbors(42)
        with pytest.raises(GraphError):
            triangle.index_of(42)
        with pytest.raises(GraphError):
            triangle.label_of(17)


class TestIndexSpace:
    def test_index_label_roundtrip(self, path4):
        for label in path4.vertices():
            assert path4.label_of(path4.index_of(label)) == label

    def test_labels_of_and_indices_of(self, path4):
        indices = path4.indices_of([1, 3])
        assert path4.labels_of(indices) == frozenset({1, 3})

    def test_full_mask_has_n_bits(self, clique5):
        assert clique5.full_mask().bit_count() == 5

    def test_mask_of_roundtrip(self, clique5):
        mask = clique5.mask_of([0, 2, 4])
        assert clique5.labels_of_mask(mask) == frozenset({0, 2, 4})

    def test_adjacency_mask_matches_sets(self, paper_figure1):
        for label in paper_figure1.vertices():
            index = paper_figure1.index_of(label)
            from_mask = paper_figure1.labels_of_mask(paper_figure1.adjacency_mask(index))
            assert from_mask == paper_figure1.neighbors(label)

    def test_adjacency_masks_list(self, triangle):
        masks = triangle.adjacency_masks()
        assert len(masks) == 3
        assert all(mask.bit_count() == 2 for mask in masks)


class TestDerivedGraphs:
    def test_induced_subgraph(self, paper_figure1):
        subgraph = paper_figure1.induced_subgraph([1, 2, 3])
        assert subgraph.vertex_count == 3
        assert subgraph.has_edge(1, 2)
        assert not subgraph.has_edge(1, 9) and 9 not in subgraph

    def test_induced_subgraph_unknown_vertex(self, triangle):
        with pytest.raises(GraphError):
            triangle.induced_subgraph([1, 99])

    def test_copy_is_independent(self, triangle):
        clone = triangle.copy()
        clone.add_edge(3, 4)
        assert 4 not in triangle
        assert clone.edge_count == triangle.edge_count + 1

    def test_relabeled_uses_indices(self):
        graph = Graph(edges=[("x", "y"), ("y", "z")])
        relabeled = graph.relabeled()
        assert set(relabeled.vertices()) == {0, 1, 2}
        assert relabeled.edge_count == 2

    def test_networkx_roundtrip(self, paper_figure1):
        nx_graph = paper_figure1.to_networkx()
        back = Graph.from_networkx(nx_graph)
        assert back.vertex_count == paper_figure1.vertex_count
        assert back.edge_count == paper_figure1.edge_count


class TestBitHelpers:
    def test_iter_bits_empty(self):
        assert list(iter_bits(0)) == []

    def test_iter_bits_order(self):
        assert list(iter_bits(0b101101)) == [0, 2, 3, 5]

    def test_mask_set_roundtrip(self):
        indices = {1, 4, 9}
        assert mask_to_set(set_to_mask(indices)) == indices

    def test_set_to_mask_empty(self):
        assert set_to_mask([]) == 0
