"""Serve-layer tests: protocol, coalescing, admission, workers, CLI.

The acceptance criteria live here:

* a stampede of >= 8 concurrent identical cold queries runs exactly ONE
  enumeration (verified via ``repro_engine_queries_total{served="execute"}``
  and the coalesce counters) and every client receives the full,
  byte-identical batch sequence;
* overload sheds with the typed :class:`ServiceOverloadedError` without
  corrupting in-flight streams;
* server answers under admission control match single-process
  ``MQCEEngine.query`` across a differential case grid, including across an
  interleaved graph mutation.
"""

from __future__ import annotations

import json
import random
import threading
import time

import pytest

from repro import Graph, MQCEEngine, QuerySpec
from repro.cli import main
from repro.errors import ReproError, ServiceOverloadedError, SpecError
from repro.obs.metrics import REGISTRY
from repro.serve import (ReproService, ServeClient, SpoolQueue, SpoolWorker,
                         WorkTask, fetch_http, spool_enumerate, start_in_thread)
from repro.serve.protocol import (ProtocolError, clique_to_wire, decode_frame,
                                  encode_frame, error_payload,
                                  exception_from_payload, validate_request,
                                  wire_to_clique)

_EXECUTED = REGISTRY.counter("repro_engine_queries_total")
_COALESCED = REGISTRY.counter("repro_serve_coalesced_waiters_total")
_SHED = REGISTRY.counter("repro_serve_shed_total")


def _random_graph(seed: int = 11, vertices: int = 36, edges: int = 260) -> Graph:
    rng = random.Random(seed)
    graph = Graph()
    while graph.edge_count < edges:
        u, v = rng.randrange(vertices), rng.randrange(vertices)
        if u != v:
            graph.add_edge(u, v)
    return graph


def _edges(graph: Graph) -> list[tuple]:
    return sorted((min(u, v), max(u, v)) for u, v in graph.edges())


@pytest.fixture
def graph() -> Graph:
    return _random_graph()


@pytest.fixture
def service(graph):
    service = ReproService(max_concurrent=2, allow_shutdown=True)
    service.add_graph("demo", graph)
    with start_in_thread(service) as handle:
        yield handle
    # teardown handled by the context manager


class _GatedStream:
    """Wraps a ResultStream so iteration blocks until the test says go."""

    def __init__(self, inner, gate: threading.Event) -> None:
        self._inner_stream = inner
        self._gate = gate

    def __iter__(self):
        assert self._gate.wait(timeout=30), "test gate never opened"
        yield from self._inner_stream

    def cancel(self) -> None:
        self._inner_stream.cancel()

    def __getattr__(self, name):
        return getattr(self._inner_stream, name)


def _gate_host(service: ReproService, name: str = "demo") -> threading.Event:
    """Make the named host's enumerations block on the returned event."""
    host = service.hosts[name]
    gate = threading.Event()
    original = host.open_stream
    host.open_stream = (lambda spec, tracer=None:
                        _GatedStream(original(spec, tracer=tracer), gate))
    return gate


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------
class TestProtocol:
    def test_frame_round_trip(self):
        payload = {"op": "query", "spec": {"gamma": 0.9, "theta": 5}}
        line = encode_frame(payload)
        assert line.endswith(b"\n") and b"\n" not in line[:-1]
        assert decode_frame(line) == payload

    def test_encoding_is_canonical(self):
        a = encode_frame({"b": 1, "a": [2, 3]})
        b = encode_frame({"a": [2, 3], "b": 1})
        assert a == b and b" " not in a

    @pytest.mark.parametrize("line", [b"", b"   ", b"not json", b"[1,2]"])
    def test_decode_rejects_garbage(self, line):
        with pytest.raises(ProtocolError):
            decode_frame(line)

    def test_validate_request(self):
        assert validate_request({"op": "ping"}) == "ping"
        with pytest.raises(ProtocolError):
            validate_request({"op": "bogus"})
        with pytest.raises(ProtocolError):
            validate_request({"op": "query"})  # no spec
        with pytest.raises(ProtocolError):
            validate_request({"op": "mutate"})  # no updates/script

    def test_clique_wire_round_trip(self):
        clique = frozenset({3, 1, 2})
        wired = clique_to_wire(clique)
        assert wired == sorted(wired, key=lambda x: (str(type(x)), str(x)))
        assert wire_to_clique(wired) == clique

    def test_typed_errors_cross_the_wire(self):
        exc = ServiceOverloadedError("full", running=2, queued=3)
        back = exception_from_payload(error_payload(exc))
        assert isinstance(back, ServiceOverloadedError)
        assert back.running == 2 and back.queued == 3
        spec_err = exception_from_payload(error_payload(SpecError("bad spec")))
        assert isinstance(spec_err, SpecError)
        unknown = exception_from_payload({"error": "WeirdError", "message": "x"})
        assert isinstance(unknown, ReproError)
        assert "WeirdError" in str(unknown)


# ----------------------------------------------------------------------
# Service basics
# ----------------------------------------------------------------------
class TestServiceBasics:
    def test_ping_graphs_stats(self, service):
        with ServeClient(port=service.port) as client:
            assert client.ping()
            graphs = client.graphs()
            assert graphs["demo"]["vertices"] == 36
            stats = client.stats()
            assert stats["admission"]["max_concurrent"] == 2
            assert "demo" in stats["graphs"]

    def test_query_matches_engine(self, service, graph):
        with ServeClient(port=service.port) as client:
            cliques, done = client.query({"gamma": 0.9, "theta": 4})
        reference = MQCEEngine().query(_random_graph(),
                                       spec=QuerySpec(gamma=0.9, theta=4))
        assert set(cliques) == set(reference.maximal_quasi_cliques)
        assert done["finished"] and not done["truncated"]

    def test_second_query_hits_cache(self, service):
        with ServeClient(port=service.port) as client:
            first, done1 = client.query({"gamma": 0.9, "theta": 4})
            second, done2 = client.query({"gamma": 0.9, "theta": 4})
        assert not done1["from_cache"] and done2["from_cache"]
        assert set(first) == set(second)

    def test_flush_forces_re_execution(self, service):
        with ServeClient(port=service.port) as client:
            client.query({"gamma": 0.9, "theta": 4})
            assert client.flush() >= 1
            _, done = client.query({"gamma": 0.9, "theta": 4})
        assert not done["from_cache"]

    def test_protocol_error_keeps_connection_usable(self, service):
        with ServeClient(port=service.port) as client:
            client._send({"op": "bogus"})
            frame = client._recv()
            assert frame["type"] == "error"
            assert frame["error"] == "ProtocolError"
            assert client.ping()  # same connection still works

    def test_unknown_graph_is_typed_error(self, service):
        with ServeClient(port=service.port) as client:
            with pytest.raises(ReproError):
                client.query({"gamma": 0.9, "theta": 4}, graph="nope")
            assert client.ping()

    def test_budget_overlay_caps_results(self, graph):
        service = ReproService(max_results=2)
        service.add_graph("demo", graph)
        with start_in_thread(service) as handle:
            with ServeClient(port=handle.port) as client:
                cliques, done = client.query({"gamma": 0.9, "theta": 4})
        assert len(cliques) <= 2
        assert done["truncated"]

    def test_http_shim(self, service):
        status, body = fetch_http("/metrics", port=service.port)
        assert status == 200
        assert "repro_serve_requests_total" in body
        assert "repro_engine_queries_total" in body
        status, body = fetch_http("/healthz", port=service.port)
        assert status == 200 and json.loads(body)["status"] == "ok"
        status, body = fetch_http("/stats", port=service.port)
        assert status == 200 and "admission" in json.loads(body)
        status, _ = fetch_http("/nope", port=service.port)
        assert status == 404


# ----------------------------------------------------------------------
# Differential grid vs the in-process engine (acceptance criterion)
# ----------------------------------------------------------------------
class TestDifferentialGrid:
    GRID = [
        {"gamma": 0.9, "theta": 4},
        {"gamma": 0.85, "theta": 4},
        {"gamma": 0.9, "theta": 5},
        {"gamma": 0.9, "theta": 4, "k": 3},
        {"gamma": 0.9, "theta": 3, "contains": [0]},
        {"gamma": 0.9, "theta": 4, "algorithm": "fastqc"},
    ]

    def test_grid_matches_engine_across_mutation(self, service):
        mutations = [("add_edge", 0, 35), ("add_edge", 1, 34),
                     ("remove_edge", *_edges(_random_graph())[0])]
        local = _random_graph()

        def check_all(client):
            engine = MQCEEngine()
            for fields in self.GRID:
                served, done = client.query(fields)
                expected = engine.query(local, spec=QuerySpec.from_dict(fields))
                assert set(served) == set(expected.maximal_quasi_cliques), fields
                assert done["finished"], fields

        with ServeClient(port=service.port) as client:
            check_all(client)
            report = client.mutate(mutations)
            assert report["type"] == "report"
            for op, u, v in mutations:
                getattr(local, op)(u, v)
            check_all(client)  # same grid, post-mutation


# ----------------------------------------------------------------------
# Single-flight coalescing (acceptance criterion)
# ----------------------------------------------------------------------
class TestSingleFlight:
    STAMPEDE = 8

    def test_stampede_runs_exactly_one_enumeration(self, service):
        gate = _gate_host(service.service)
        spec = {"gamma": 0.9, "theta": 4}
        frames: dict[int, list] = {}
        errors: list[BaseException] = []

        def run_client(index: int) -> None:
            try:
                with ServeClient(port=service.port) as client:
                    frames[index] = list(client.query_stream(spec))
            except BaseException as exc:  # noqa: BLE001 - surfaced by the test
                errors.append(exc)

        executed_before = _EXECUTED.value(served="execute")
        coalesced_before = _COALESCED.value()
        threads = [threading.Thread(target=run_client, args=(i,))
                   for i in range(self.STAMPEDE)]
        for thread in threads:
            thread.start()
        # Open the gate only after every client has subscribed to the flight,
        # so the coalescing decision is deterministic, not a race.
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            joined = sum(f.joined for f in
                         service.service.flights._flights.values())
            if joined >= self.STAMPEDE:
                break
            time.sleep(0.01)
        else:
            pytest.fail("clients never all subscribed")
        gate.set()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors, errors

        # Exactly ONE enumeration for the whole stampede, counter-verified.
        assert _EXECUTED.value(served="execute") == executed_before + 1
        assert _COALESCED.value() == coalesced_before + self.STAMPEDE - 1

        # Every client saw the identical batch sequence (hence identical
        # bytes: encode_frame is canonical), and the full result set.
        batch_frames = {i: [f for f in seq if f["type"] == "batch"]
                        for i, seq in frames.items()}
        reference = batch_frames[0]
        assert all(batch_frames[i] == reference for i in batch_frames)
        expected = MQCEEngine().query(_random_graph(),
                                      spec=QuerySpec(gamma=0.9, theta=4))
        delivered = {wire_to_clique(c) for f in reference for c in f["cliques"]}
        assert delivered == set(expected.maximal_quasi_cliques)
        # One done frame each; exactly one client led, the rest coalesced.
        done_frames = [seq[-1] for seq in frames.values()]
        assert all(f["type"] == "done" and f["finished"] for f in done_frames)
        assert sum(1 for f in done_frames if not f["coalesced"]) == 1

    def test_disabled_coalescing_runs_n_enumerations(self, graph):
        service = ReproService(single_flight=False)
        service.add_graph("demo", graph)
        executed_before = _EXECUTED.value(served="execute")
        with start_in_thread(service) as handle:
            gate = _gate_host(service)
            spec = {"gamma": 0.9, "theta": 4}
            threads = [threading.Thread(
                target=lambda: ServeClient(port=handle.port).query(spec))
                for _ in range(3)]
            for thread in threads:
                thread.start()
            gate.set()
            for thread in threads:
                thread.join(timeout=30)
        assert _EXECUTED.value(served="execute") == executed_before + 3


# ----------------------------------------------------------------------
# Admission control and load shedding (acceptance criterion)
# ----------------------------------------------------------------------
class TestAdmission:
    def test_overload_sheds_typed_error_without_corrupting_streams(self, graph):
        service = ReproService(max_concurrent=1, max_queue=0)
        service.add_graph("demo", graph)
        with start_in_thread(service) as handle:
            gate = _gate_host(service)
            slow_result: dict = {}

            def slow_client() -> None:
                with ServeClient(port=handle.port) as client:
                    cliques, done = client.query({"gamma": 0.9, "theta": 4})
                    slow_result["cliques"] = cliques
                    slow_result["done"] = done

            slow = threading.Thread(target=slow_client)
            slow.start()
            deadline = time.monotonic() + 15
            while service.admission.running < 1:
                assert time.monotonic() < deadline, "first query never admitted"
                time.sleep(0.01)

            shed_before = _SHED.value()
            with ServeClient(port=handle.port) as client:
                with pytest.raises(ServiceOverloadedError) as info:
                    client.query({"gamma": 0.85, "theta": 5})  # distinct query
                assert info.value.running == 1
                assert client.ping()  # connection survives the shed
            assert _SHED.value() == shed_before + 1

            gate.set()  # release the in-flight enumeration
            slow.join(timeout=30)
        expected = MQCEEngine().query(_random_graph(),
                                      spec=QuerySpec(gamma=0.9, theta=4))
        assert set(slow_result["cliques"]) == set(expected.maximal_quasi_cliques)
        assert slow_result["done"]["finished"]

    def test_queue_admits_when_below_bound(self, graph):
        service = ReproService(max_concurrent=1, max_queue=4)
        service.add_graph("demo", graph)
        with start_in_thread(service) as handle:
            gate = _gate_host(service)
            results: list = []

            def client_thread(theta: int) -> None:
                with ServeClient(port=handle.port) as client:
                    results.append(client.query({"gamma": 0.9, "theta": theta}))

            threads = [threading.Thread(target=client_thread, args=(theta,))
                       for theta in (4, 5)]
            for thread in threads:
                thread.start()
            gate.set()
            for thread in threads:
                thread.join(timeout=30)
        assert len(results) == 2  # the second waited in the queue, no shed


# ----------------------------------------------------------------------
# Worker fan-out
# ----------------------------------------------------------------------
class TestWorkers:
    def test_spool_enumerate_matches_sequential(self, graph, tmp_path):
        from repro.core.dcfastqc import DCFastQC
        from repro.settrie.filter import filter_non_maximal

        expected = filter_non_maximal(DCFastQC(graph, 0.85, 4).enumerate(),
                                      theta=4)
        got = spool_enumerate(graph, 0.85, 4, str(tmp_path / "spool"),
                              inline_workers=2, timeout=60)
        assert set(got) == set(expected)

    def test_claim_is_exclusive(self, graph, tmp_path):
        from repro.core.dcfastqc import DCFastQC

        spool = SpoolQueue(str(tmp_path / "spool"))
        subproblem = next(iter(DCFastQC(graph, 0.9, 4)
                               .iter_compact_subproblems()))
        spool.submit(WorkTask(task_id="only", subproblem=subproblem,
                              gamma=0.9, theta=4))
        first = spool.claim("w1")
        second = spool.claim("w2")
        assert first is not None and first.task_id == "only"
        assert second is None
        assert spool.stats() == {"tasks": 0, "claimed": 1, "results": 0,
                                 "dead": 0}

    def test_two_workers_split_the_spool_without_duplication(self, graph, tmp_path):
        from repro.core.dcfastqc import DCFastQC

        spool = SpoolQueue(str(tmp_path / "spool"))
        subproblems = tuple(DCFastQC(graph, 0.85, 4).iter_compact_subproblems())
        ids = spool.submit_subproblems(subproblems, 0.85, 4)
        workers = [SpoolWorker(spool, worker_id=f"w{i}") for i in range(2)]
        threads = [threading.Thread(target=w.run,
                                    kwargs={"idle_timeout": 0.3})
                   for w in workers]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        results = spool.collect(ids, timeout=10)
        assert len(results) == len(subproblems)
        assert sum(w.processed for w in workers) == len(subproblems)

    def test_worker_failure_surfaces_at_collect(self, graph, tmp_path):
        from repro.core.dcfastqc import DCFastQC

        spool = SpoolQueue(str(tmp_path / "spool"))
        subproblem = next(iter(DCFastQC(graph, 0.9, 4)
                               .iter_compact_subproblems()))
        # gamma outside [0.5, 1] blows up inside the worker, not the submit.
        spool.submit(WorkTask(task_id="bad", subproblem=subproblem,
                              gamma=2.0, theta=4))
        assert SpoolWorker(spool).run(max_tasks=1, idle_timeout=1.0) == 1
        with pytest.raises(ReproError, match="bad"):
            spool.collect(["bad"], timeout=10)

    def test_requeue_stale_recovers_claimed_tasks(self, graph, tmp_path):
        from repro.core.dcfastqc import DCFastQC

        spool = SpoolQueue(str(tmp_path / "spool"))
        subproblem = next(iter(DCFastQC(graph, 0.9, 4)
                               .iter_compact_subproblems()))
        spool.submit(WorkTask(task_id="stuck", subproblem=subproblem,
                              gamma=0.9, theta=4))
        assert spool.claim("dead-worker") is not None
        assert spool.requeue_stale(older_than=0.0) == 1
        assert spool.stats()["tasks"] == 1
        assert spool.claim("live-worker").task_id == "stuck"


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestServeCLI:
    def test_client_query_and_mutate(self, service, tmp_path, capsys):
        rc = main(["client", "--port", str(service.port),
                   "--query", '{"gamma": 0.9, "theta": 4}'])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# " in out and "answers" in out

        script = tmp_path / "updates.txt"
        script.write_text("add 100 101\nadd 101 102\n")
        rc = main(["client", "--port", str(service.port),
                   "--mutate", str(script)])
        assert rc == 0
        assert "mutations applied" in capsys.readouterr().out

    def test_client_json_stream(self, service, capsys):
        rc = main(["client", "--port", str(service.port), "--json",
                   "--query", '{"gamma": 0.9, "theta": 4, "k": 2}'])
        assert rc == 0
        lines = [json.loads(line) for line
                 in capsys.readouterr().out.strip().splitlines()]
        assert sum(1 for entry in lines if "clique" in entry) == 2
        assert lines[-1]["type"] == "done"

    def test_client_control_operations(self, service, capsys):
        assert main(["client", "--port", str(service.port)]) == 0
        assert "pong" in capsys.readouterr().out
        assert main(["client", "--port", str(service.port), "--graphs"]) == 0
        assert "demo" in capsys.readouterr().out
        assert main(["client", "--port", str(service.port), "--stats"]) == 0
        assert "admission" in capsys.readouterr().out

    def test_client_shutdown(self, graph, capsys):
        service = ReproService(allow_shutdown=True)
        service.add_graph("demo", graph)
        handle = start_in_thread(service)
        assert main(["client", "--port", str(handle.port), "--shutdown"]) == 0
        assert "shut down" in capsys.readouterr().out
        handle.thread.join(timeout=10)
        assert not handle.thread.is_alive()

    def test_shutdown_refused_without_flag(self, graph, capsys):
        locked = ReproService()  # allow_shutdown defaults to False
        locked.add_graph("demo", graph)
        with start_in_thread(locked) as handle:
            rc = main(["client", "--port", str(handle.port), "--shutdown"])
        assert rc == 2  # typed ProtocolError -> CLI error exit
        assert "shutdown is disabled" in capsys.readouterr().err

    def test_serve_cli_boots_serves_and_shuts_down(self, graph, tmp_path):
        import socket as socket_module

        from repro.graph.io import write_edge_list

        with socket_module.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        edges = tmp_path / "graph.txt"
        write_edge_list(graph, str(edges))
        outcome: dict = {}
        server = threading.Thread(target=lambda: outcome.update(rc=main(
            ["serve", "--input", str(edges), "--name", "demo",
             "--port", str(port), "--allow-shutdown", "--max-concurrent", "2"])))
        server.start()
        deadline = time.monotonic() + 20
        while True:
            try:
                ServeClient(port=port, timeout=5).close()
                break
            except OSError:
                assert time.monotonic() < deadline, "serve CLI never bound"
                time.sleep(0.05)
        with ServeClient(port=port) as client:
            assert client.graphs().keys() == {"demo"}
            _, done = client.query({"gamma": 0.9, "theta": 4})
            assert done["finished"]
            client.shutdown()
        server.join(timeout=20)
        assert outcome.get("rc") == 0

    def test_serve_cli_requires_a_graph(self):
        with pytest.raises(SystemExit):
            main(["serve", "--port", "0"])

    def test_worker_cli_drains_spool(self, graph, tmp_path, capsys):
        from repro.core.dcfastqc import DCFastQC

        spool_dir = str(tmp_path / "spool")
        spool = SpoolQueue(spool_dir)
        subproblems = tuple(DCFastQC(graph, 0.9, 4).iter_compact_subproblems())
        ids = spool.submit_subproblems(subproblems, 0.9, 4)
        rc = main(["worker", "--spool", spool_dir, "--idle-timeout", "0.3"])
        assert rc == 0
        assert f"{len(ids)} tasks" in capsys.readouterr().out
        assert len(spool.collect(ids, timeout=10)) == len(ids)
