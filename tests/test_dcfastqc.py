"""Unit and randomized tests for DCFastQC (Algorithm 3) and its DC framework."""

from __future__ import annotations

import random

import pytest

from repro import DCFastQC, Graph, filter_non_maximal
from repro.core import dcfastqc_enumerate, two_hop_pruning_threshold
from repro.graph.generators import erdos_renyi_gnp, planted_quasi_clique_graph
from repro.quasiclique import (
    enumerate_maximal_quasi_cliques_bruteforce,
    is_quasi_clique,
    tau,
)


class TestConstruction:
    def test_invalid_framework_rejected(self, triangle):
        with pytest.raises(ValueError):
            DCFastQC(triangle, 0.9, 2, framework="bogus")

    def test_invalid_branching_rejected(self, triangle):
        with pytest.raises(ValueError):
            DCFastQC(triangle, 0.9, 2, branching="bogus")

    def test_negative_rounds_rejected(self, triangle):
        with pytest.raises(ValueError):
            DCFastQC(triangle, 0.9, 2, max_rounds=-1)


class TestTwoHopThreshold:
    def test_matches_paper_closed_form_at_common_settings(self):
        # f(theta) = theta - tau(theta) - tau(theta + 1) coincides with the
        # minimum-based threshold for the paper's default parameters.
        for gamma, theta in [(0.9, 10), (0.9, 23), (0.96, 35), (0.96, 50)]:
            closed_form = theta - tau(theta, gamma) - tau(theta + 1, gamma)
            assert two_hop_pruning_threshold(gamma, theta, theta + 40) <= closed_form
            assert two_hop_pruning_threshold(gamma, theta, theta + 40) >= closed_form - 1

    def test_lower_bound_property(self):
        # The threshold never exceeds h - 2*tau(h) for any feasible QC size h.
        for gamma in (0.5, 0.7, 0.9, 0.96):
            for theta in (3, 6, 10):
                max_size = theta + 25
                threshold = two_hop_pruning_threshold(gamma, theta, max_size)
                for h in range(theta, max_size + 1):
                    assert threshold <= h - 2 * tau(h, gamma)

    def test_zero_when_no_feasible_size(self):
        assert two_hop_pruning_threshold(0.9, 10, 5) == 0


class TestSmallGraphs:
    def test_clique(self, clique5):
        assert frozenset(range(5)) in dcfastqc_enumerate(clique5, 1.0, 3)

    def test_two_triangles(self, two_triangles):
        result = set(dcfastqc_enumerate(two_triangles, 1.0, 3))
        assert frozenset({0, 1, 2}) in result
        assert frozenset({3, 4, 5}) in result

    def test_empty_graph(self):
        assert dcfastqc_enumerate(Graph(), 0.9, 1) == []

    def test_outputs_are_quasi_cliques(self, paper_figure1):
        for gamma in (0.5, 0.75, 0.9):
            for clique in dcfastqc_enumerate(paper_figure1, gamma, 2):
                assert is_quasi_clique(paper_figure1, clique, gamma)

    def test_dc_statistics_recorded(self, paper_figure1):
        algo = DCFastQC(paper_figure1, 0.9, 2)
        algo.enumerate()
        assert algo.dc_statistics.subproblem_records
        assert algo.dc_statistics.core_reduction_kept <= paper_figure1.vertex_count
        assert 0.0 <= algo.dc_statistics.reduction_ratio() <= 1.0

    def test_subproblem_sizes_bounded_by_two_hops(self, paper_figure1):
        algo = DCFastQC(paper_figure1, 0.9, 2)
        algo.enumerate()
        for record in algo.dc_statistics.subproblem_records:
            assert record.refined_size <= record.initial_size
            assert record.initial_size <= paper_figure1.vertex_count


class TestFrameworks:
    @pytest.mark.parametrize("framework", ["dc", "basic-dc", "none"])
    def test_superset_guarantee(self, framework):
        rng = random.Random(301)
        for trial in range(20):
            graph = erdos_renyi_gnp(10, rng.uniform(0.25, 0.8), seed=1800 + trial)
            gamma = rng.choice([0.5, 0.6, 0.8, 0.9])
            theta = rng.randint(1, 4)
            expected = set(enumerate_maximal_quasi_cliques_bruteforce(graph, gamma, theta))
            output = set(dcfastqc_enumerate(graph, gamma, theta, framework=framework))
            missing = expected - output
            assert not missing, (
                f"trial {trial} framework {framework} gamma {gamma} theta {theta}: "
                f"missing {[sorted(m) for m in missing]}")

    def test_frameworks_agree_after_filtering(self):
        rng = random.Random(311)
        for trial in range(10):
            graph = erdos_renyi_gnp(10, rng.uniform(0.3, 0.7), seed=1900 + trial)
            gamma, theta = rng.choice([(0.6, 3), (0.9, 2)])
            results = {}
            for framework in ("dc", "basic-dc", "none"):
                output = dcfastqc_enumerate(graph, gamma, theta, framework=framework)
                results[framework] = set(filter_non_maximal(output, theta=theta))
            assert results["dc"] == results["basic-dc"] == results["none"]

    @pytest.mark.parametrize("max_rounds", [0, 1, 2, 4])
    def test_max_rounds_does_not_change_the_answer(self, max_rounds):
        graph = planted_quasi_clique_graph(40, 50, [8, 6], 0.9, seed=31)
        expected = set(filter_non_maximal(
            dcfastqc_enumerate(graph, 0.9, 5, max_rounds=2), theta=5))
        output = set(filter_non_maximal(
            dcfastqc_enumerate(graph, 0.9, 5, max_rounds=max_rounds), theta=5))
        assert output == expected

    def test_dc_produces_smaller_subproblems_than_basic(self):
        graph = planted_quasi_clique_graph(60, 120, [9, 8], 0.9, seed=17)
        dc = DCFastQC(graph, 0.9, 6, framework="dc")
        dc.enumerate()
        basic = DCFastQC(graph, 0.9, 6, framework="basic-dc")
        basic.enumerate()
        dc_avg = (sum(r.refined_size for r in dc.dc_statistics.subproblem_records)
                  / max(1, len(dc.dc_statistics.subproblem_records)))
        basic_avg = (sum(r.refined_size for r in basic.dc_statistics.subproblem_records)
                     / max(1, len(basic.dc_statistics.subproblem_records)))
        assert dc_avg <= basic_avg

    def test_theta_one_runs_without_core_reduction(self, path4):
        # ceil(gamma * 0) = 0: no core reduction, every vertex is a subproblem root.
        result = dcfastqc_enumerate(path4, 0.9, 1)
        assert frozenset({1, 2}) in set(result) or frozenset({2, 3}) in set(result)


class TestAgreementWithOtherAlgorithms:
    def test_matches_fastqc_and_quickplus_on_planted_graph(self):
        from repro.core import fastqc_enumerate
        from repro.baselines import quickplus_enumerate

        graph = planted_quasi_clique_graph(50, 80, [9, 7], 0.9, seed=41)
        gamma, theta = 0.9, 6
        dc = set(filter_non_maximal(dcfastqc_enumerate(graph, gamma, theta), theta=theta))
        fast = set(filter_non_maximal(fastqc_enumerate(graph, gamma, theta), theta=theta))
        quick = set(filter_non_maximal(quickplus_enumerate(graph, gamma, theta), theta=theta))
        assert dc == fast == quick
