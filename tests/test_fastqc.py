"""Unit and randomized tests for the FastQC algorithm (Algorithm 2)."""

from __future__ import annotations

import random

import pytest

from repro import FastQC, Graph, filter_non_maximal
from repro.core import fastqc_enumerate
from repro.graph.generators import erdos_renyi_gnp, planted_quasi_clique_graph
from repro.quasiclique import (
    enumerate_maximal_quasi_cliques_bruteforce,
    is_quasi_clique,
)


class TestConstruction:
    def test_invalid_gamma_rejected(self, triangle):
        from repro.quasiclique import ParameterError

        with pytest.raises(ParameterError):
            FastQC(triangle, gamma=0.3, theta=2)

    def test_invalid_theta_rejected(self, triangle):
        from repro.quasiclique import ParameterError

        with pytest.raises(ParameterError):
            FastQC(triangle, gamma=0.9, theta=0)

    def test_invalid_branching_rejected(self, triangle):
        with pytest.raises(ValueError):
            FastQC(triangle, gamma=0.9, theta=2, branching="other")


class TestSmallGraphs:
    def test_clique(self, clique5):
        result = fastqc_enumerate(clique5, gamma=1.0, theta=3)
        assert frozenset(range(5)) in result

    def test_two_triangles(self, two_triangles):
        result = fastqc_enumerate(two_triangles, gamma=1.0, theta=3)
        assert frozenset({0, 1, 2}) in result
        assert frozenset({3, 4, 5}) in result

    def test_empty_graph(self):
        assert fastqc_enumerate(Graph(), gamma=0.9, theta=1) == []

    def test_single_vertex(self):
        graph = Graph(vertices=[7])
        result = fastqc_enumerate(graph, gamma=0.9, theta=1)
        assert result == [frozenset({7})]

    def test_theta_filters_outputs(self, two_triangles):
        result = fastqc_enumerate(two_triangles, gamma=1.0, theta=4)
        assert result == []

    def test_outputs_are_quasi_cliques(self, paper_figure1):
        for gamma in (0.5, 0.6, 0.9):
            for clique in fastqc_enumerate(paper_figure1, gamma, theta=2):
                assert is_quasi_clique(paper_figure1, clique, gamma)

    def test_on_output_callback(self, clique5):
        seen = []
        algo = FastQC(clique5, gamma=1.0, theta=3, on_output=seen.append)
        algo.enumerate()
        assert seen == algo.results

    def test_statistics_populated(self, paper_figure1):
        algo = FastQC(paper_figure1, gamma=0.9, theta=2)
        algo.enumerate()
        assert algo.statistics.branches_explored >= 1
        assert algo.statistics.subproblems == 1
        assert algo.statistics.outputs == len(algo.results)

    def test_enumerate_from_restricts_search(self, two_triangles):
        algo = FastQC(two_triangles, gamma=1.0, theta=3)
        result = algo.enumerate_from(partial=[0], candidates=[1, 2], excluded=[3, 4, 5])
        assert result == [frozenset({0, 1, 2})]


class TestSupersetGuarantee:
    """The MQCE-S1 contract: the output contains every large maximal QC."""

    @pytest.mark.parametrize("branching", ["hybrid", "sym-se", "se"])
    def test_random_graphs_all_branchings(self, branching):
        rng = random.Random(97)
        for trial in range(25):
            graph = erdos_renyi_gnp(9, rng.uniform(0.25, 0.85), seed=900 + trial)
            gamma = rng.choice([0.5, 0.6, 0.7, 0.9, 1.0])
            theta = rng.randint(1, 4)
            expected = set(enumerate_maximal_quasi_cliques_bruteforce(graph, gamma, theta))
            output = set(fastqc_enumerate(graph, gamma, theta, branching=branching))
            missing = expected - output
            assert not missing, (
                f"trial {trial} branching {branching} gamma {gamma} theta {theta}: "
                f"missing {[sorted(m) for m in missing]}")

    def test_filtered_output_equals_mqcs(self):
        rng = random.Random(111)
        for trial in range(15):
            graph = erdos_renyi_gnp(8, rng.uniform(0.3, 0.8), seed=1000 + trial)
            gamma = rng.choice([0.5, 0.7, 0.9])
            theta = rng.randint(1, 3)
            expected = set(enumerate_maximal_quasi_cliques_bruteforce(graph, gamma, theta))
            output = fastqc_enumerate(graph, gamma, theta)
            assert set(filter_non_maximal(output, theta=theta)) == expected

    def test_maximality_filter_only_drops_non_maximal(self):
        rng = random.Random(131)
        for trial in range(10):
            graph = erdos_renyi_gnp(8, rng.uniform(0.3, 0.8), seed=1100 + trial)
            gamma, theta = 0.7, 2
            with_filter = set(fastqc_enumerate(graph, gamma, theta, maximality_filter=True))
            without_filter = set(fastqc_enumerate(graph, gamma, theta, maximality_filter=False))
            assert with_filter <= without_filter
            expected = set(enumerate_maximal_quasi_cliques_bruteforce(graph, gamma, theta))
            assert expected <= with_filter


class TestBranchingComparison:
    def test_all_branchings_agree_after_filtering(self):
        rng = random.Random(151)
        for trial in range(10):
            graph = erdos_renyi_gnp(9, rng.uniform(0.3, 0.8), seed=1200 + trial)
            gamma, theta = rng.choice([(0.6, 2), (0.9, 3), (0.5, 2)])
            results = {}
            for branching in ("hybrid", "sym-se", "se"):
                output = fastqc_enumerate(graph, gamma, theta, branching=branching)
                results[branching] = set(filter_non_maximal(output, theta=theta))
            assert results["hybrid"] == results["sym-se"] == results["se"]

    def test_branch_counts_recorded_for_every_method(self):
        # The branching methods differ in how many branches they explore on a
        # given instance (the Figure 11 experiment measures this at scale); the
        # per-instance counts are not ordered in general, but they must be
        # recorded and every method must reach the same filtered answer.
        graph = planted_quasi_clique_graph(40, 60, [8, 7], 0.9, seed=5)
        counts = {}
        answers = {}
        for branching in ("hybrid", "sym-se", "se"):
            algo = FastQC(graph, gamma=0.9, theta=5, branching=branching)
            output = algo.enumerate()
            counts[branching] = algo.statistics.branches_explored
            answers[branching] = set(filter_non_maximal(output, theta=5))
        assert all(count > 0 for count in counts.values())
        assert answers["hybrid"] == answers["sym-se"] == answers["se"]


class TestPlantedStructure:
    def test_planted_quasi_cliques_are_found(self):
        graph = planted_quasi_clique_graph(50, 70, [9, 7], 0.9, seed=21)
        output = fastqc_enumerate(graph, gamma=0.9, theta=6)
        maximal = filter_non_maximal(output, theta=6)
        planted_a = frozenset(range(9))
        planted_b = frozenset(range(9, 16))
        covered_a = any(planted_a <= found for found in maximal)
        covered_b = any(planted_b <= found for found in maximal)
        assert covered_a and covered_b
