"""Unit tests for neighbourhood / connectivity helpers (repro.graph.subgraph)."""

from __future__ import annotations

from repro import Graph
from repro.graph import (
    closed_neighborhood,
    connected_components,
    is_connected,
    neighborhood_intersection,
    two_hop_mask,
    two_hop_neighborhood,
)


class TestNeighborhoods:
    def test_closed_neighborhood(self, path4):
        assert closed_neighborhood(path4, 2) == frozenset({1, 2, 3})

    def test_two_hop_includes_center_by_default(self, path4):
        assert two_hop_neighborhood(path4, 1) == frozenset({1, 2, 3})

    def test_two_hop_excluding_center(self, path4):
        assert two_hop_neighborhood(path4, 1, include_center=False) == frozenset({2, 3})

    def test_two_hop_full_reach_in_clique(self, clique5):
        assert two_hop_neighborhood(clique5, 0) == frozenset(range(5))

    def test_two_hop_does_not_reach_three_hops(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 4)])
        assert 3 not in two_hop_neighborhood(graph, 0)
        assert 2 in two_hop_neighborhood(graph, 0)

    def test_neighborhood_intersection(self, paper_figure1):
        common = neighborhood_intersection(paper_figure1, 1, 4)
        assert common == paper_figure1.neighbors(1) & paper_figure1.neighbors(4)

    def test_neighborhood_intersection_restricted(self, paper_figure1):
        common = neighborhood_intersection(paper_figure1, 1, 4, restriction={2})
        assert common <= {2}


class TestTwoHopMask:
    def test_restricted_intermediates(self):
        # 0-1-2 and 0-3; with vertex 1 disallowed, 2 is unreachable within 2 hops.
        graph = Graph(edges=[(0, 1), (1, 2), (0, 3)])
        full = graph.full_mask()
        allowed_without_1 = full & ~(1 << graph.index_of(1))
        mask = two_hop_mask(graph, graph.index_of(0), allowed_without_1)
        labels = graph.labels_of_mask(mask)
        assert labels == frozenset({0, 3})

    def test_includes_center_when_allowed(self, triangle):
        center = triangle.index_of(1)
        mask = two_hop_mask(triangle, center, triangle.full_mask())
        assert (mask >> center) & 1

    def test_center_excluded_when_disallowed(self, triangle):
        center = triangle.index_of(1)
        allowed = triangle.full_mask() & ~(1 << center)
        mask = two_hop_mask(triangle, center, allowed)
        assert not (mask >> center) & 1


class TestConnectivity:
    def test_connected_graph(self, path4):
        assert is_connected(path4)

    def test_disconnected_graph(self, two_triangles):
        assert not is_connected(two_triangles)

    def test_connected_subset(self, two_triangles):
        assert is_connected(two_triangles, {0, 1, 2})
        assert not is_connected(two_triangles, {0, 1, 3})

    def test_empty_subset_is_connected(self, path4):
        assert is_connected(path4, [])

    def test_single_vertex_connected(self, path4):
        assert is_connected(path4, [3])

    def test_connected_components(self, two_triangles):
        components = connected_components(two_triangles)
        assert sorted(sorted(c) for c in components) == [[0, 1, 2], [3, 4, 5]]

    def test_components_of_connected_graph(self, clique5):
        assert connected_components(clique5) == [frozenset(range(5))]

    def test_components_with_isolated_vertex(self):
        graph = Graph(edges=[(0, 1)], vertices=[0, 1, 2])
        components = connected_components(graph)
        assert frozenset({2}) in components
        assert len(components) == 2
