"""Unit tests for quasi-clique definitions (Section 2 / Lemma 1 conventions)."""

from __future__ import annotations

import math

import pytest

from repro import Graph
from repro.quasiclique import (
    ParameterError,
    degree_threshold,
    degree_within,
    disconnections_within,
    is_quasi_clique,
    is_quasi_clique_by_lemma1,
    mask_degree,
    mask_disconnections,
    mask_is_quasi_clique,
    mask_max_disconnections,
    max_disconnections,
    neighbors_within,
    non_neighbors_within,
    quasi_clique_size_upper_bound,
    tau,
    validate_parameters,
)


class TestParameters:
    def test_valid_parameters(self):
        validate_parameters(0.5, 1)
        validate_parameters(1.0, 100)

    @pytest.mark.parametrize("gamma", [0.49, 1.01, -0.1])
    def test_invalid_gamma(self, gamma):
        with pytest.raises(ParameterError):
            validate_parameters(gamma, 3)

    @pytest.mark.parametrize("theta", [0, -2, 2.5])
    def test_invalid_theta(self, theta):
        with pytest.raises(ParameterError):
            validate_parameters(0.9, theta)


class TestDegreeThresholdAndTau:
    def test_degree_threshold_examples(self):
        assert degree_threshold(0.9, 10) == math.ceil(0.9 * 9)
        assert degree_threshold(0.5, 5) == 2
        assert degree_threshold(1.0, 4) == 3
        assert degree_threshold(0.9, 1) == 0

    def test_tau_examples_from_paper(self):
        # Section 4.2 worked example: gamma = 0.7.
        assert tau(6.71, 0.7) == 2
        assert tau(3.85, 0.7) == 1

    def test_tau_is_non_decreasing(self):
        values = [tau(x / 2, 0.85) for x in range(0, 60)]
        assert values == sorted(values)

    def test_tau_at_least_one_for_nonempty(self):
        for gamma in (0.5, 0.7, 0.9, 1.0):
            assert tau(1, gamma) >= 1

    def test_tau_negative_size(self):
        assert tau(-3, 0.9) == 0

    def test_tau_complements_degree_threshold(self):
        # tau(h) == h - ceil(gamma * (h - 1)) for integer h (Equation 6).
        for gamma in (0.5, 0.6, 0.75, 0.9, 0.96, 1.0):
            for h in range(1, 40):
                assert tau(h, gamma) == h - degree_threshold(gamma, h)


class TestNeighborhoodHelpers:
    def test_neighbors_within(self, paper_figure1):
        assert neighbors_within(paper_figure1, 1, {2, 3, 7}) == frozenset({2, 3})

    def test_degree_within(self, paper_figure1):
        assert degree_within(paper_figure1, 1, {2, 3, 7}) == 2

    def test_non_neighbors_include_self(self, paper_figure1):
        non = non_neighbors_within(paper_figure1, 1, {1, 2, 3, 7})
        assert 1 in non
        assert non == frozenset({1, 7})

    def test_non_neighbors_exclude_self_when_absent(self, paper_figure1):
        non = non_neighbors_within(paper_figure1, 1, {2, 3, 7})
        assert 1 not in non

    def test_disconnections_plus_degree_equals_size(self, paper_figure1):
        subset = frozenset({1, 2, 3, 4, 5})
        for vertex in subset:
            total = (degree_within(paper_figure1, vertex, subset)
                     + disconnections_within(paper_figure1, vertex, subset))
            assert total == len(subset)

    def test_max_disconnections(self, paper_figure1):
        assert max_disconnections(paper_figure1, set()) == 0
        assert max_disconnections(paper_figure1, {1}) == 1
        clique = {1, 2, 3}
        assert max_disconnections(paper_figure1, clique) == 1


class TestIsQuasiClique:
    def test_clique_is_one_quasi_clique(self, clique5):
        assert is_quasi_clique(clique5, range(5), 1.0)

    def test_single_vertex_is_quasi_clique(self, path4):
        assert is_quasi_clique(path4, {2}, 0.9)

    def test_empty_set_is_not(self, path4):
        assert not is_quasi_clique(path4, set(), 0.9)

    def test_paper_property1_non_hereditary(self, paper_figure1):
        assert is_quasi_clique(paper_figure1, {1, 3, 4, 5}, 0.6)
        assert not is_quasi_clique(paper_figure1, {1, 3, 4}, 0.6)

    def test_disconnected_subset_rejected(self, two_triangles):
        assert not is_quasi_clique(two_triangles, {0, 1, 2, 3, 4, 5}, 0.5)

    def test_connectivity_can_be_skipped(self, two_triangles):
        # Without the connectivity requirement the union of two triangles
        # passes the (vacuous for gamma=0.33...) degree test only for low gamma;
        # with gamma=0.5 the degree requirement itself fails.
        assert not is_quasi_clique(two_triangles, {0, 1, 2, 3, 4, 5}, 0.5,
                                   require_connected=False)

    def test_path_is_half_quasi_clique_of_size_3(self, path4):
        assert is_quasi_clique(path4, {1, 2, 3}, 0.5)
        assert not is_quasi_clique(path4, {1, 2, 3, 4}, 0.5)

    def test_almost_clique(self, almost_clique6):
        assert is_quasi_clique(almost_clique6, range(6), 0.8)
        assert not is_quasi_clique(almost_clique6, range(6), 0.9)

    def test_unknown_vertex_raises(self, triangle):
        from repro import GraphError

        with pytest.raises(GraphError):
            is_quasi_clique(triangle, {1, 99}, 0.9)

    def test_lemma1_equivalence_for_gamma_at_least_half(self, paper_figure1):
        subsets = [
            {1, 2, 3}, {1, 3, 4}, {1, 3, 4, 5}, {2, 4, 6}, {6, 7, 8, 9},
            {1, 2, 3, 4, 5}, {5, 6, 9}, {2, 3, 4, 5, 6},
        ]
        for gamma in (0.5, 0.6, 0.75, 0.9, 1.0):
            for subset in subsets:
                assert (is_quasi_clique(paper_figure1, subset, gamma)
                        == is_quasi_clique_by_lemma1(paper_figure1, subset, gamma)), (
                    f"subset {subset} gamma {gamma}")

    def test_lemma1_empty_set(self, triangle):
        assert not is_quasi_clique_by_lemma1(triangle, set(), 0.9)


class TestMaskVariants:
    def test_mask_degree_matches_label_degree(self, paper_figure1):
        subset = {1, 2, 3, 4}
        mask = paper_figure1.mask_of(subset)
        for vertex in subset:
            index = paper_figure1.index_of(vertex)
            assert mask_degree(paper_figure1, index, mask) == degree_within(
                paper_figure1, vertex, subset)

    def test_mask_disconnections_matches(self, paper_figure1):
        subset = {1, 2, 3, 4}
        mask = paper_figure1.mask_of(subset)
        for vertex in subset:
            index = paper_figure1.index_of(vertex)
            assert mask_disconnections(paper_figure1, index, mask) == disconnections_within(
                paper_figure1, vertex, subset)

    def test_mask_max_disconnections(self, paper_figure1):
        subset = {1, 2, 3, 4, 5}
        mask = paper_figure1.mask_of(subset)
        assert mask_max_disconnections(paper_figure1, mask) == max_disconnections(
            paper_figure1, subset)
        assert mask_max_disconnections(paper_figure1, 0) == 0

    def test_mask_is_quasi_clique(self, paper_figure1):
        good = paper_figure1.mask_of({1, 3, 4, 5})
        bad = paper_figure1.mask_of({1, 3, 4})
        assert mask_is_quasi_clique(paper_figure1, good, 0.6)
        assert not mask_is_quasi_clique(paper_figure1, bad, 0.6)
        assert not mask_is_quasi_clique(paper_figure1, 0, 0.6)


class TestSizeUpperBound:
    def test_formula(self):
        assert quasi_clique_size_upper_bound(0.9, 5) == 11
        assert quasi_clique_size_upper_bound(0.5, 0) == 1

    def test_bound_holds_on_small_graphs(self, paper_figure1):
        from repro.graph import degeneracy
        from repro.quasiclique import enumerate_all_quasi_cliques

        omega = degeneracy(paper_figure1)
        for gamma in (0.5, 0.7, 0.9):
            for clique in enumerate_all_quasi_cliques(paper_figure1, gamma):
                assert len(clique) <= quasi_clique_size_upper_bound(gamma, omega)
