"""Streaming enumeration tests: parity, incrementality, budgets, caching.

Satellite coverage for the QuerySpec redesign: on every registry dataset (and
each refactored MQCE-S1 algorithm on the smaller analogues),
``set(engine.stream(spec))`` must equal
``engine.query(spec).maximal_quasi_cliques``, budgets must be respected, and —
the acceptance criterion — a cold DC stream must yield its first maximal
quasi-clique before the enumeration completes.
"""

from __future__ import annotations

import pytest

from repro import Graph, MQCEEngine, QuerySpec, stream_maximal_quasi_cliques
from repro.datasets import dataset_names, get_spec, load_dataset
from repro.pipeline.streaming import QuasiCliqueStream

#: Analogues small enough to re-enumerate with every algorithm.
SMALL_ANALOGUES = ("douban", "twitter", "kmer", "ca-grqc")


def _fresh_query(name: str, **spec_fields):
    spec = get_spec(name)
    graph = spec.build()
    query_spec = QuerySpec(gamma=spec.default_gamma, theta=spec.default_theta,
                           **spec_fields)
    return graph, query_spec


class TestStreamingParity:
    @pytest.mark.parametrize("name", dataset_names())
    def test_stream_matches_query_on_every_registry_dataset(self, name):
        graph, spec = _fresh_query(name)
        engine = MQCEEngine()
        reference = engine.query(graph, spec)
        stream = MQCEEngine().stream(graph, spec)  # fresh engine: cold stream
        assert set(stream) == set(reference.maximal_quasi_cliques)
        assert stream.finished and not stream.truncated

    @pytest.mark.parametrize("name", SMALL_ANALOGUES)
    @pytest.mark.parametrize("algorithm", ["dcfastqc", "fastqc", "quickplus"])
    def test_stream_matches_query_per_algorithm(self, name, algorithm):
        graph, spec = _fresh_query(name, algorithm=algorithm)
        engine = MQCEEngine()
        reference = engine.query(graph, spec)
        stream = MQCEEngine().stream(graph, spec)
        assert set(stream) == set(reference.maximal_quasi_cliques)
        assert stream.finished

    def test_pipeline_level_stream_parity(self):
        graph = load_dataset("ca-grqc")
        spec = get_spec("ca-grqc")
        stream = stream_maximal_quasi_cliques(graph, spec.default_gamma,
                                              spec.default_theta)
        engine_result = MQCEEngine().query(graph, spec.default_gamma,
                                           spec.default_theta)
        assert set(stream) == set(engine_result.maximal_quasi_cliques)


class TestIncrementality:
    """Acceptance criterion: first yield arrives before enumeration completes."""

    def test_first_yield_before_enumeration_completes(self):
        graph, spec = _fresh_query("ca-grqc")
        stream = MQCEEngine().stream(graph, spec)
        first = next(stream)
        assert first  # a real maximal quasi-clique
        assert not stream.finished
        completed_at_first_yield = stream.subproblems_completed
        rest = list(stream)
        assert stream.finished
        assert stream.subproblems_completed > completed_at_first_yield
        # Everything seen plus the first item is exactly the full answer.
        reference = MQCEEngine().query(graph, spec.gamma, spec.theta)
        assert set([first] + rest) == set(reference.maximal_quasi_cliques)

    def test_incremental_yields_are_genuinely_maximal_even_when_cancelled(self):
        graph, spec = _fresh_query("ca-grqc")
        reference = set(MQCEEngine().query(graph, spec).maximal_quasi_cliques)
        stream = MQCEEngine().stream(graph, spec)
        first = next(stream)
        stream.cancel()
        leftovers = list(stream)
        assert stream.truncated or stream.finished
        assert set([first] + leftovers) <= reference


class TestBudgets:
    def test_max_results_stops_enumeration(self):
        graph, spec = _fresh_query("ca-grqc", max_results=2)
        stream = MQCEEngine().stream(graph, spec)
        delivered = list(stream)
        assert len(delivered) == 2
        assert stream.truncated and not stream.finished

    def test_max_results_larger_than_answer_finishes(self):
        graph, spec = _fresh_query("twitter", max_results=1000)
        stream = MQCEEngine().stream(graph, spec)
        delivered = list(stream)
        assert stream.finished and not stream.truncated
        assert 0 < len(delivered) < 1000

    def test_time_limit_truncates_quickly(self):
        graph, spec = _fresh_query("ca-grqc", time_limit=1e-9)
        stream = MQCEEngine().stream(graph, spec)
        delivered = list(stream)
        assert stream.truncated and not stream.finished
        assert delivered == []

    def test_query_with_time_limit_is_marked_truncated(self):
        graph, spec = _fresh_query("ca-grqc", time_limit=1e-9)
        result = MQCEEngine().query(graph, spec)
        assert result.truncated
        # An untruncated run of the same parameters is NOT served from the
        # budgeted one (which was never cached).
        engine = MQCEEngine()
        full = engine.query(graph, QuerySpec(gamma=spec.gamma, theta=spec.theta))
        assert not full.truncated
        assert len(engine.cache) == 1

    def test_terminal_flush_budgets(self):
        graph, spec = _fresh_query("twitter", algorithm="fastqc", max_results=1)
        stream = MQCEEngine().stream(graph, spec)
        assert len(list(stream)) == 1
        assert stream.truncated


class TestWorkloadStreams:
    def test_count_with_containment_respects_constraint(self):
        graph = load_dataset("twitter")
        spec = QuerySpec(gamma=0.9, theta=5, contains=(0,), count_only=True)
        engine = MQCEEngine()
        streamed = list(engine.stream(graph, spec))
        assert len(streamed) == 1 and all(0 in c for c in streamed)
        # The full-enumeration answer must NOT have been cached under the
        # containment key: query() still sees the constrained count.
        assert engine.query(graph, spec).maximal_count == 1

    def test_eager_stream_with_limit_reports_truncated(self):
        graph = load_dataset("twitter")
        stream = MQCEEngine().stream(graph, QuerySpec(gamma=0.9, theta=3,
                                                      k=2, max_results=1))
        assert len(list(stream)) == 1
        assert stream.truncated and not stream.finished

    def test_slow_consumer_does_not_inflate_cached_timings(self):
        import time as time_module

        graph = load_dataset("twitter")
        engine = MQCEEngine()
        stream = engine.stream(graph, QuerySpec(gamma=0.9, theta=5))
        for _ in stream:
            time_module.sleep(0.05)  # consumer think-time between answers
        cached = engine.query(graph, QuerySpec(gamma=0.9, theta=5))
        assert engine.cache.stats.hits == 1
        assert cached.enumeration_seconds < 0.05


class TestStreamCaching:
    def test_completed_stream_populates_cache(self):
        graph, spec = _fresh_query("twitter")
        engine = MQCEEngine()
        cold = list(engine.stream(graph, spec))
        assert len(engine.cache) == 1
        warm = engine.query(graph, spec)
        assert engine.cache.stats.hits == 1
        assert set(cold) == set(warm.maximal_quasi_cliques)

    def test_warm_stream_replays_from_cache(self):
        graph, spec = _fresh_query("twitter")
        engine = MQCEEngine()
        reference = engine.query(graph, spec)
        stream = engine.stream(graph, spec)
        replayed = list(stream)
        assert stream.from_cache and stream.finished
        assert replayed == list(reference.maximal_quasi_cliques)

    def test_truncated_stream_does_not_pollute_cache(self):
        graph, spec = _fresh_query("ca-grqc", max_results=1)
        engine = MQCEEngine()
        list(engine.stream(graph, spec))
        assert len(engine.cache) == 0

    def test_trivial_plan_streams_empty(self):
        engine = MQCEEngine()
        triangle = Graph(edges=[(1, 2), (2, 3), (1, 3)])
        stream = engine.stream(triangle, QuerySpec(gamma=1.0, theta=10))
        assert list(stream) == []
        assert stream.finished


class TestStreamCancel:
    """Regression: ResultStream.cancel must be thread-safe and idempotent.

    The serve layer cancels streams from the asyncio event loop while an
    executor thread is consuming them, and may cancel *before* iteration has
    created the inner enumeration — both used to be unsafe."""

    def test_cancel_before_iteration_yields_nothing(self):
        graph, spec = _fresh_query("ca-grqc")
        engine = MQCEEngine()
        stream = engine.stream(graph, spec)
        stream.cancel()  # before __iter__ ever ran
        assert stream.cancelled
        assert list(stream) == []
        assert stream.truncated and not stream.finished
        assert len(engine.cache) == 0  # a cancelled stream never caches

    def test_cancel_mid_iteration_stops_promptly(self):
        graph, spec = _fresh_query("ca-grqc")
        engine = MQCEEngine()
        stream = engine.stream(graph, spec)
        reference = MQCEEngine().query(graph, spec).maximal_count
        delivered = []
        for clique in stream:
            delivered.append(clique)
            stream.cancel()
        assert len(delivered) == 1 < reference
        assert stream.truncated and not stream.finished
        assert len(engine.cache) == 0

    def test_cancel_from_another_thread(self):
        import threading

        graph, spec = _fresh_query("ca-grqc")
        stream = MQCEEngine().stream(graph, spec)
        first_answer = threading.Event()
        release = threading.Event()
        delivered = []

        def consume() -> None:
            for clique in stream:
                delivered.append(clique)
                first_answer.set()
                release.wait(timeout=10)

        consumer = threading.Thread(target=consume)
        consumer.start()
        assert first_answer.wait(timeout=10)
        stream.cancel()   # from this thread, mid-consumption
        stream.cancel()   # idempotent
        release.set()
        consumer.join(timeout=10)
        assert not consumer.is_alive()
        assert stream.cancelled and stream.truncated
        total = MQCEEngine().query(graph, spec).maximal_count
        assert len(delivered) < total

    def test_cancel_after_completion_is_a_no_op(self):
        graph, spec = _fresh_query("twitter")
        stream = MQCEEngine().stream(graph, spec)
        answers = list(stream)
        assert stream.finished
        stream.cancel()
        assert stream.cancelled
        assert stream.finished  # completion already recorded; not rewritten
        assert answers  # the delivered answers are untouched


class TestEnumeratorRefactor:
    def test_batches_concatenate_to_enumerate(self):
        from repro.core.dcfastqc import DCFastQC

        graph = load_dataset("twitter")
        batches = list(DCFastQC(graph, 0.9, 5).iter_candidate_batches())
        flat = [clique for batch in batches for clique in batch]
        assert flat == DCFastQC(graph, 0.9, 5).enumerate()
        assert len(batches) > 1

    @pytest.mark.parametrize("algorithm", ["dcfastqc", "fastqc", "quickplus"])
    def test_should_stop_halts_early_with_partial_results(self, algorithm):
        from repro.pipeline.mqce import build_enumerator

        graph = load_dataset("ca-grqc")
        calls = {"n": 0}

        def stop_after_a_few():
            calls["n"] += 1
            return calls["n"] > 5

        enumerator = build_enumerator(graph, 0.9, 7, algorithm=algorithm,
                                      should_stop=stop_after_a_few)
        partial = enumerator.enumerate()
        assert enumerator.stopped
        full = build_enumerator(graph, 0.9, 7, algorithm=algorithm).enumerate()
        assert set(partial) <= set(full)
        assert len(partial) < len(full) or not full
