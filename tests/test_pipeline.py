"""Tests for the end-to-end MQCE pipeline and its result objects."""

from __future__ import annotations

import random

import pytest

from repro import (
    ALGORITHMS,
    EnumerationResult,
    Graph,
    enumerate_candidate_quasi_cliques,
    find_maximal_quasi_cliques,
)
from repro.graph.generators import erdos_renyi_gnp, planted_quasi_clique_graph
from repro.pipeline.mqce import build_enumerator
from repro.quasiclique import enumerate_maximal_quasi_cliques_bruteforce


class TestBuildEnumerator:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_known_algorithms(self, triangle, algorithm):
        enumerator = build_enumerator(triangle, 0.9, 2, algorithm=algorithm)
        assert hasattr(enumerator, "enumerate")

    def test_unknown_algorithm(self, triangle):
        with pytest.raises(ValueError):
            build_enumerator(triangle, 0.9, 2, algorithm="nope")

    def test_invalid_parameters(self, triangle):
        from repro.quasiclique import ParameterError

        with pytest.raises(ParameterError):
            build_enumerator(triangle, 0.2, 2)


class TestFindMaximalQuasiCliques:
    @pytest.mark.parametrize("algorithm", ["dcfastqc", "fastqc", "quickplus", "naive"])
    def test_matches_bruteforce(self, algorithm):
        rng = random.Random(401)
        for trial in range(8):
            graph = erdos_renyi_gnp(8, rng.uniform(0.3, 0.8), seed=2000 + trial)
            gamma = rng.choice([0.5, 0.7, 0.9])
            theta = rng.randint(1, 3)
            expected = set(enumerate_maximal_quasi_cliques_bruteforce(graph, gamma, theta))
            result = find_maximal_quasi_cliques(graph, gamma, theta, algorithm=algorithm)
            assert set(result.maximal_quasi_cliques) == expected

    def test_result_fields(self, clique5):
        result = find_maximal_quasi_cliques(clique5, 1.0, 3)
        assert isinstance(result, EnumerationResult)
        assert result.algorithm == "dcfastqc"
        assert result.gamma == 1.0
        assert result.theta == 3
        assert result.maximal_count == 1
        assert result.candidate_count >= result.maximal_count
        assert result.enumeration_seconds >= 0.0
        assert result.filtering_seconds >= 0.0
        assert result.total_seconds == pytest.approx(
            result.enumeration_seconds + result.filtering_seconds)

    def test_results_sorted_largest_first(self):
        graph = planted_quasi_clique_graph(30, 40, [7, 5], 0.9, seed=3)
        result = find_maximal_quasi_cliques(graph, 0.9, 4)
        sizes = [len(h) for h in result.maximal_quasi_cliques]
        assert sizes == sorted(sizes, reverse=True)

    def test_size_statistics(self, two_triangles):
        result = find_maximal_quasi_cliques(two_triangles, 1.0, 3)
        sizes = result.size_statistics()
        assert sizes.count == 2
        assert sizes.min_size == sizes.max_size == 3
        assert sizes.avg_size == pytest.approx(3.0)

    def test_summary_keys(self, triangle):
        summary = find_maximal_quasi_cliques(triangle, 1.0, 2).summary()
        for key in ("algorithm", "gamma", "theta", "maximal_count", "candidate_count",
                    "enumeration_seconds", "branches_explored"):
            assert key in summary

    def test_empty_graph(self):
        result = find_maximal_quasi_cliques(Graph(), 0.9, 2)
        assert result.maximal_quasi_cliques == []
        assert result.size_statistics().count == 0

    def test_algorithm_options_forwarded(self, clique5):
        result = find_maximal_quasi_cliques(clique5, 1.0, 3, algorithm="dcfastqc",
                                            branching="sym-se", framework="basic-dc",
                                            max_rounds=1)
        assert result.maximal_count == 1


class TestEnumerateCandidates:
    def test_returns_candidates_and_statistics(self, clique5):
        candidates, statistics = enumerate_candidate_quasi_cliques(clique5, 1.0, 3)
        assert frozenset(range(5)) in set(candidates)
        assert statistics.branches_explored >= 0

    def test_candidates_are_superset_of_mqcs(self):
        graph = erdos_renyi_gnp(9, 0.5, seed=77)
        expected = set(enumerate_maximal_quasi_cliques_bruteforce(graph, 0.7, 2))
        for algorithm in ("dcfastqc", "fastqc", "quickplus"):
            candidates, _ = enumerate_candidate_quasi_cliques(graph, 0.7, 2,
                                                              algorithm=algorithm)
            assert expected <= set(candidates)
