"""Tests for the unified ``repro query`` CLI command and error mapping."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.graph import write_edge_list
from repro.graph.generators import planted_quasi_clique_graph


@pytest.fixture
def graph_file(tmp_path):
    graph = planted_quasi_clique_graph(30, 40, [7], 0.9, seed=2)
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return path


class TestQueryCommand:
    def test_enumerate_with_dataset_defaults(self, capsys):
        assert main(["query", "-d", "twitter"]) == 0
        out = capsys.readouterr().out
        assert "enumerate gamma=0.9 theta=5" in out
        assert "# 3 answers" in out

    def test_count(self, capsys):
        assert main(["query", "-d", "twitter", "--count"]) == 0
        assert capsys.readouterr().out.strip() == "3"

    def test_top_k(self, capsys):
        assert main(["query", "-d", "twitter", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "# 2 answers for topk" in out

    def test_containing(self, capsys):
        assert main(["query", "-d", "twitter", "--containing", "0"]) == 0
        out = capsys.readouterr().out
        assert "containing=0" in out

    def test_stream_prints_incrementally_with_summary(self, capsys):
        assert main(["query", "-d", "twitter", "--stream"]) == 0
        out = capsys.readouterr().out
        assert "maximal quasi-cliques streamed" in out
        assert "complete" in out

    def test_limit_budget(self, capsys):
        assert main(["query", "-d", "twitter", "--stream", "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "# 1 maximal quasi-cliques streamed" in out
        assert "truncated by budget" in out

    def test_spec_file(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"gamma": 0.9, "theta": 5, "k": 1}))
        assert main(["query", "-d", "twitter", "--spec", str(spec_path)]) == 0
        out = capsys.readouterr().out
        assert "topk" in out and "k=1" in out

    def test_flags_override_spec_file(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"gamma": 0.9, "theta": 4}))
        assert main(["query", "-d", "twitter", "--spec", str(spec_path),
                     "--theta", "5"]) == 0
        assert "theta=5" in capsys.readouterr().out

    def test_from_edge_list_file(self, graph_file, capsys):
        assert main(["query", "-i", str(graph_file), "-g", "0.9", "-t", "5"]) == 0
        assert "answers" in capsys.readouterr().out

    def test_json_payload(self, capsys):
        assert main(["query", "-d", "twitter", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["gamma"] == 0.9
        assert payload["result"]["maximal_count"] == 3
        assert payload["plan"]["algorithm"]

    def test_explain(self, capsys):
        assert main(["query", "-d", "twitter", "--explain"]) == 0
        assert "QueryPlan" in capsys.readouterr().out

    def test_output_file(self, graph_file, tmp_path, capsys):
        target = tmp_path / "out.txt"
        assert main(["query", "-i", str(graph_file), "-g", "0.9", "-t", "5",
                     "-o", str(target)]) == 0
        assert target.read_text().strip()
        capsys.readouterr()

    def test_stream_honours_output_file(self, tmp_path, capsys):
        target = tmp_path / "streamed.txt"
        assert main(["query", "-d", "twitter", "--stream", "-o", str(target)]) == 0
        assert len(target.read_text().strip().splitlines()) == 3
        capsys.readouterr()

    def test_stream_json_lines(self, capsys):
        assert main(["query", "-d", "twitter", "--stream", "--json"]) == 0
        lines = [json.loads(line) for line in
                 capsys.readouterr().out.strip().splitlines()]
        assert len(lines) == 4  # 3 answers + 1 summary
        assert all("clique" in line for line in lines[:-1])
        assert lines[-1]["delivered"] == 3 and lines[-1]["state"] == "complete"


class TestErrorMapping:
    """Satellite: ReproError exits with code 2 and a one-line message."""

    def test_invalid_gamma_exits_2(self, capsys):
        assert main(["query", "-d", "twitter", "--gamma", "2.0"]) == 2
        captured = capsys.readouterr()
        assert captured.err.startswith("error: ")
        assert "gamma" in captured.err
        assert "Traceback" not in captured.err

    def test_invalid_spec_field_exits_2(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"gamma": 0.9, "bogus": True}))
        assert main(["query", "-d", "twitter", "--spec", str(spec_path)]) == 2
        assert "bogus" in capsys.readouterr().err

    def test_malformed_spec_file_exits_2(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text("{not json")
        assert main(["query", "-d", "twitter", "--spec", str(spec_path)]) == 2
        assert capsys.readouterr().err.startswith("error: ")

    def test_missing_spec_file_exits_2(self, tmp_path, capsys):
        assert main(["query", "-d", "twitter", "--spec",
                     str(tmp_path / "nope.json")]) == 2
        assert capsys.readouterr().err.startswith("error: ")

    def test_unknown_vertex_exits_2(self, capsys):
        assert main(["query", "-d", "twitter", "--containing", "no-such-vertex"]) == 2
        assert capsys.readouterr().err.startswith("error: ")

    def test_legacy_commands_also_mapped(self, capsys):
        assert main(["enumerate", "-d", "twitter", "--gamma", "0.3"]) == 2
        assert capsys.readouterr().err.startswith("error: ")
