"""Tests for the `repro engine` CLI sub-command group."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.graph import write_edge_list
from repro.graph.generators import planted_quasi_clique_graph


@pytest.fixture
def graph_file(tmp_path):
    graph = planted_quasi_clique_graph(30, 40, [7], 0.9, seed=2)
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return path


class TestParser:
    def test_engine_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["engine"])

    def test_engine_query_defaults(self):
        args = build_parser().parse_args(["engine", "query", "-d", "ca-grqc"])
        assert args.algorithm == "auto"
        assert args.repeat == 1

    def test_engine_query_requires_graph(self):
        with pytest.raises(SystemExit):
            main(["engine", "query", "-g", "0.9", "-t", "5"])


class TestEngineQuery:
    def test_query_on_dataset_defaults(self, capsys):
        code = main(["engine", "query", "-d", "twitter"])
        assert code == 0
        out = capsys.readouterr().out
        assert "maximal" in out
        assert "engine:" in out

    def test_repeat_reports_cache_hits(self, capsys):
        code = main(["engine", "query", "-d", "twitter", "--repeat", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2 cache hits" in out

    def test_query_json_includes_plan_and_stats(self, capsys):
        code = main(["engine", "query", "-d", "twitter", "--json", "--repeat", "2"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["result"]["maximal_count"] >= 1
        assert payload["plan"]["algorithm"] in ("dcfastqc", "fastqc")
        assert payload["engine"]["cache"]["hits"] == 1

    def test_query_from_edge_list_file(self, graph_file, capsys):
        code = main(["engine", "query", "-i", str(graph_file), "-g", "0.9", "-t", "5"])
        assert code == 0
        assert "maximal" in capsys.readouterr().out

    def test_query_writes_output_file(self, graph_file, tmp_path, capsys):
        out_path = tmp_path / "mqcs.txt"
        code = main(["engine", "query", "-i", str(graph_file), "-g", "0.9",
                     "-t", "5", "-o", str(out_path)])
        assert code == 0
        assert out_path.exists()
        assert out_path.read_text().strip()


class TestEngineExplain:
    def test_explain_prints_plan_without_enumerating(self, capsys):
        code = main(["engine", "explain", "-d", "ca-grqc"])
        assert code == 0
        out = capsys.readouterr().out
        assert "QueryPlan" in out
        assert "algorithm:" in out
        assert "reduction:" in out
        # No quasi-clique listing: explain never enumerates.
        assert "maximal" not in out

    def test_explain_json(self, capsys):
        code = main(["engine", "explain", "-d", "ca-grqc", "--json"])
        assert code == 0
        plan = json.loads(capsys.readouterr().out)
        assert plan["algorithm"] == "dcfastqc"
        assert plan["core_vertices_kept"] + plan["core_vertices_removed"] \
            == plan["graph_vertices"]

    def test_explain_honours_forced_algorithm(self, capsys):
        code = main(["engine", "explain", "-d", "ca-grqc",
                     "--algorithm", "quickplus", "--json"])
        assert code == 0
        plan = json.loads(capsys.readouterr().out)
        assert plan["algorithm"] == "quickplus"


class TestEngineBatch:
    def test_batch_grid_with_cache(self, capsys):
        code = main(["engine", "batch", "-d", "twitter",
                     "--gammas", "0.9,0.92", "--thetas", "4,5", "--repeat", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "gamma" in out
        assert "4 served from cache" in out

    def test_batch_json(self, capsys):
        code = main(["engine", "batch", "-d", "twitter", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["rows"]) == 1
        assert payload["queries_per_second"] > 0


class TestEngineStats:
    def test_stats_reports_artifacts_and_timings(self, capsys):
        code = main(["engine", "stats", "-d", "kmer"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "kmer"
        assert payload["fingerprint"]
        assert set(payload["preparation_seconds"]) == set(payload["artifacts"])
        assert payload["components"] >= 1
