"""Fault-tolerance tests: injection, leases, retry/resume, degradation.

The acceptance criteria live here:

* SIGKILLing a worker subprocess mid-task leads to lease expiry, atomic
  reclaim by a surviving worker, and a final answer parity-identical to the
  sequential pipeline — with an empty dead-letter directory;
* a fault matrix over the spool injection sites (claim, write, heartbeat,
  task, enumerate, subproblem) always ends in either a clean retry or a
  typed error — never a corrupted or short answer;
* a client stream interrupted by injected connection drops resumes from the
  last acked batch and reassembles a byte-identical frame sequence;
* repeated enumeration failures open the per-``(graph, spec)`` circuit
  (typed :class:`CircuitOpenError`), and a half-open probe closes it again.
"""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sys
import time

import pytest

from repro import Graph
from repro.errors import (CircuitOpenError, ConnectionLostError,
                          DeadlineExceededError, FaultInjectedError,
                          ReproError, SpoolCorruptionError, SpoolTimeoutError,
                          TaskPoisonedError)
from repro.obs.metrics import REGISTRY
from repro.resilience import (BreakerBoard, CircuitBreaker, Deadline,
                              FaultPlan, RetryPolicy, call_with_retry,
                              fault_point, install_plan, parse_plan,
                              reset_plan)
from repro.serve import (ReproService, ServeClient, SpoolQueue, SpoolWorker,
                         WorkTask, fetch_http, spool_enumerate,
                         start_in_thread)
from repro.serve.protocol import (encode_frame, error_payload,
                                  exception_from_payload, validate_request)
from repro.serve.worker import _dump_payload, _load_payload

_INJECTED = REGISTRY.counter("repro_faults_injected_total")


@pytest.fixture(autouse=True)
def _clean_fault_plan():
    """Every test starts fault-free and leaves no plan behind."""
    install_plan(None)
    yield
    reset_plan()


def _random_graph(seed: int = 11, vertices: int = 36, edges: int = 260) -> Graph:
    rng = random.Random(seed)
    graph = Graph()
    while graph.edge_count < edges:
        u, v = rng.randrange(vertices), rng.randrange(vertices)
        if u != v:
            graph.add_edge(u, v)
    return graph


@pytest.fixture
def graph() -> Graph:
    return _random_graph()


def _sequential_answer(graph, gamma, theta):
    from repro.core.dcfastqc import DCFastQC
    from repro.settrie.filter import filter_non_maximal

    return set(filter_non_maximal(DCFastQC(graph, gamma, theta).enumerate(),
                                  theta=theta))


# ----------------------------------------------------------------------
# Fault plan mechanics
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_plan_round_trip(self):
        plan = parse_plan("spool.claim:raise:after=2;"
                          "serve.write_frame:drop:times=3;"
                          "worker.task:delay=0.25;"
                          "engine.subproblem:raise:p=0.5:seed=7:times=0")
        rules = {rule.site: rule for rule in plan.rules()}
        assert rules["spool.claim"].after == 2
        assert rules["serve.write_frame"].times == 3
        assert rules["worker.task"].action == "delay"
        assert rules["worker.task"].delay == 0.25
        assert rules["engine.subproblem"].p == 0.5

    @pytest.mark.parametrize("text", ["nonsense", "site:explode",
                                      "site:raise:after=0", "site:raise:p=2",
                                      "site:raise:wat=1"])
    def test_malformed_plans_are_rejected(self, text):
        with pytest.raises(ReproError):
            parse_plan(text)

    def test_no_plan_is_a_no_op(self):
        assert fault_point("spool.claim") is None

    def test_after_and_times_schedule_hits(self):
        install_plan(parse_plan("x:raise:after=2:times=2"))
        assert fault_point("x") is None          # hit 1: before `after`
        for _ in range(2):                        # hits 2-3 fire
            with pytest.raises(FaultInjectedError) as info:
                fault_point("x")
            assert info.value.site == "x"
        assert fault_point("x") is None          # budget exhausted

    def test_truncate_and_drop_are_returned_not_raised(self):
        install_plan(parse_plan("w:truncate:times=0;d:drop:times=0"))
        assert fault_point("w") == "truncate"
        assert fault_point("d") == "drop"

    def test_delay_sleeps(self):
        install_plan(parse_plan("z:delay=0.05"))
        start = time.monotonic()
        assert fault_point("z") is None
        assert time.monotonic() - start >= 0.05

    def test_probabilistic_rules_are_seeded_deterministic(self):
        def fired_pattern():
            plan = parse_plan("p:raise:p=0.5:seed=42:times=0")
            install_plan(plan)
            pattern = []
            for _ in range(20):
                try:
                    fault_point("p")
                    pattern.append(False)
                except FaultInjectedError:
                    pattern.append(True)
            return pattern

        first, second = fired_pattern(), fired_pattern()
        assert first == second
        assert any(first) and not all(first)

    def test_fired_faults_are_counted(self):
        before = _INJECTED.value(site="counted", action="raise")
        install_plan(parse_plan("counted:raise"))
        with pytest.raises(FaultInjectedError):
            fault_point("counted")
        assert _INJECTED.value(site="counted", action="raise") == before + 1
        assert install_plan(None) is None

    def test_env_var_arms_the_plan_after_reset(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "envsite:raise")
        reset_plan()
        with pytest.raises(FaultInjectedError):
            fault_point("envsite")
        install_plan(None)  # detach from env for the rest of the test


# ----------------------------------------------------------------------
# Retry policy and deadlines
# ----------------------------------------------------------------------
class TestRetry:
    def test_delays_are_deterministic_capped_and_decorrelated(self):
        policy = RetryPolicy(max_attempts=6, base_delay=0.1, max_delay=1.0,
                             seed=3)
        first, second = list(policy.delays()), list(policy.delays())
        assert first == second
        assert len(first) == 5
        assert all(0.1 <= delay <= 1.0 for delay in first)

    def test_call_with_retry_recovers_then_succeeds(self):
        sleeps, attempts = [], []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise ConnectionResetError("boom")
            return "ok"

        result = call_with_retry(
            flaky, policy=RetryPolicy(max_attempts=4, seed=1),
            retryable=(ConnectionResetError,), sleep=sleeps.append)
        assert result == "ok"
        assert len(attempts) == 3 and len(sleeps) == 2

    def test_call_with_retry_exhausts_and_reraises(self):
        def always():
            raise ConnectionResetError("still down")

        with pytest.raises(ConnectionResetError):
            call_with_retry(always,
                            policy=RetryPolicy(max_attempts=3, seed=1),
                            retryable=(ConnectionResetError,),
                            sleep=lambda _s: None)

    def test_non_retryable_errors_pass_straight_through(self):
        calls = []

        def typed():
            calls.append(1)
            raise ValueError("logic bug")

        with pytest.raises(ValueError):
            call_with_retry(typed, policy=RetryPolicy(max_attempts=5, seed=1),
                            retryable=(ConnectionResetError,),
                            sleep=lambda _s: None)
        assert len(calls) == 1

    def test_deadline_bounds_the_retry_loop(self):
        clock = {"now": 0.0}
        deadline = Deadline(1.0, clock=lambda: clock["now"])

        def always():
            clock["now"] += 0.6
            raise ConnectionResetError("down")

        with pytest.raises(ConnectionResetError):
            call_with_retry(always,
                            policy=RetryPolicy(max_attempts=10, seed=1),
                            retryable=(ConnectionResetError,),
                            deadline=deadline, sleep=lambda _s: None)
        assert clock["now"] < 2.0  # far fewer than 10 attempts ran

    def test_deadline_check_raises_typed_error(self):
        clock = {"now": 0.0}
        deadline = Deadline.after(0.5, clock=lambda: clock["now"])
        deadline.check("warm-up")
        clock["now"] = 1.0
        assert deadline.expired() and deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceededError):
            deadline.check("enumeration")


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_at_threshold_and_fails_fast(self):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10.0,
                                 clock=lambda: clock["now"])
        for _ in range(3):
            breaker.allow()
            breaker.record_failure()
        with pytest.raises(CircuitOpenError) as info:
            breaker.allow()
        assert info.value.retry_after == pytest.approx(10.0)
        assert breaker.state_name == "open"

    def test_half_open_admits_one_probe_then_closes_on_success(self):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0,
                                 clock=lambda: clock["now"])
        breaker.allow()
        breaker.record_failure()
        clock["now"] = 6.0
        assert breaker.state_name == "half-open"
        breaker.allow()                       # the probe
        with pytest.raises(CircuitOpenError):
            breaker.allow()                   # concurrent arrival: fail fast
        breaker.record_success()
        assert breaker.state_name == "closed"
        breaker.allow()

    def test_probe_failure_reopens_for_a_full_timeout(self):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0,
                                 clock=lambda: clock["now"])
        breaker.allow()
        breaker.record_failure()
        clock["now"] = 6.0
        breaker.allow()
        breaker.record_failure()              # probe failed
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        clock["now"] = 10.9                   # < 6.0 + 5.0
        with pytest.raises(CircuitOpenError):
            breaker.allow()

    def test_board_keys_breakers_independently(self):
        board = BreakerBoard(failure_threshold=1, reset_timeout=30.0)
        board.for_key(("g", "spec-a")).record_failure()
        with pytest.raises(CircuitOpenError):
            board.for_key(("g", "spec-a")).allow()
        board.for_key(("g", "spec-b")).allow()  # untouched neighbour
        assert len(board) == 2
        assert any("spec-a" in key for key in board.stats())

    def test_circuit_open_error_survives_the_wire(self):
        err = CircuitOpenError("open", retry_after=1.5)
        back = exception_from_payload(error_payload(err))
        assert isinstance(back, CircuitOpenError)
        assert back.retry_after == pytest.approx(1.5)


# ----------------------------------------------------------------------
# Spool payload integrity
# ----------------------------------------------------------------------
class TestSpoolChecksums:
    def test_payload_round_trip(self):
        payload = {"cliques": [frozenset({1, 2})], "n": 3}
        assert _load_payload(_dump_payload(payload)) == payload

    @pytest.mark.parametrize("mangle", [
        lambda data: data[: len(data) // 2],         # truncated
        lambda data: b"???" + data[3:],              # bad magic
        lambda data: data[:-2] + b"xx",              # flipped payload bytes
        lambda data: data[:2],                       # shorter than the header
    ])
    def test_corruption_is_detected(self, mangle):
        data = _dump_payload({"k": list(range(100))})
        with pytest.raises(SpoolCorruptionError):
            _load_payload(mangle(data))

    def test_corrupt_task_file_is_quarantined_not_fatal(self, tmp_path):
        spool = SpoolQueue(str(tmp_path / "spool"))
        with open(os.path.join(spool.tasks_dir, "task-junk.pkl"), "wb") as fh:
            fh.write(b"not a payload at all")
        assert spool.claim("w0") is None
        reports = spool.dead_letters()
        assert len(reports) == 1
        assert reports[0]["task_id"] == "junk"
        assert reports[0]["reason"] == "corrupt-task"
        assert spool.stats()["dead"] == 1


# ----------------------------------------------------------------------
# Leases, attempts and quarantine
# ----------------------------------------------------------------------
class TestLeases:
    def _one_task(self, graph, tmp_path, **spool_kwargs) -> tuple:
        from repro.core.dcfastqc import DCFastQC

        spool = SpoolQueue(str(tmp_path / "spool"), **spool_kwargs)
        subproblem = next(iter(DCFastQC(graph, 0.9, 4)
                               .iter_compact_subproblems()))
        task = WorkTask(task_id="t0", subproblem=subproblem, gamma=0.9,
                        theta=4)
        spool.submit(task)
        return spool, task

    def test_renewed_lease_is_not_reclaimed(self, graph, tmp_path):
        spool, _task = self._one_task(graph, tmp_path, lease_seconds=0.2)
        assert spool.claim("w0") is not None
        time.sleep(0.25)
        assert spool.renew_lease("t0") is True
        moved = spool.reclaim_expired()  # renewal just reset the clock
        assert moved == {"requeued": 0, "quarantined": 0, "completed": 0}

    def test_expired_lease_requeues_with_attempt_bump(self, graph, tmp_path):
        spool, _task = self._one_task(graph, tmp_path, lease_seconds=0.1)
        assert spool.claim("w0") is not None
        time.sleep(0.15)
        moved = spool.reclaim_expired()
        assert moved["requeued"] == 1
        reclaimed = spool.claim("w1")
        assert reclaimed.task_id == "t0" and reclaimed.attempts == 1

    def test_lease_expiry_past_budget_quarantines(self, graph, tmp_path):
        spool, _task = self._one_task(graph, tmp_path, lease_seconds=0.05,
                                      max_attempts=2)
        for expected_attempts in (1,):
            assert spool.claim("w0") is not None
            time.sleep(0.1)
            assert spool.reclaim_expired()["requeued"] == 1
        assert spool.claim("w0").attempts == 1
        time.sleep(0.1)
        assert spool.reclaim_expired()["quarantined"] == 1
        assert spool.stats() == {"tasks": 0, "claimed": 0, "results": 0,
                                 "dead": 1}
        with pytest.raises(TaskPoisonedError) as info:
            spool.collect(["t0"], timeout=1.0)
        assert info.value.task_id == "t0"
        assert info.value.report["reason"] == "lease-expired"

    def test_finished_but_unretired_claim_is_just_dropped(self, graph,
                                                          tmp_path):
        spool, task = self._one_task(graph, tmp_path, lease_seconds=0.05)
        claimed = spool.claim("w0")
        from repro.serve.worker import TaskResult

        # Simulate a worker that published its result, then died before
        # removing the claim: write the result directly, keep the claim.
        spool._write_atomic(spool.results_dir, task.task_id,
                            TaskResult(task_id=task.task_id, cliques=()))
        assert claimed is not None
        time.sleep(0.1)
        assert spool.reclaim_expired()["completed"] == 1
        assert spool.stats()["claimed"] == 0

    def test_renew_lease_reports_a_stolen_claim(self, graph, tmp_path):
        spool, _task = self._one_task(graph, tmp_path, lease_seconds=0.05)
        assert spool.claim("w0") is not None
        time.sleep(0.1)
        assert spool.reclaim_expired()["requeued"] == 1
        assert spool.renew_lease("t0") is False


class TestCollect:
    def test_timeout_carries_partial_progress(self, graph, tmp_path):
        from repro.core.dcfastqc import DCFastQC

        spool = SpoolQueue(str(tmp_path / "spool"))
        subproblems = tuple(DCFastQC(graph, 0.85, 4)
                            .iter_compact_subproblems())
        assert len(subproblems) >= 2
        ids = spool.submit_subproblems(subproblems, 0.85, 4)
        SpoolWorker(spool).run(max_tasks=1, idle_timeout=1.0)
        with pytest.raises(SpoolTimeoutError) as info:
            spool.collect(ids, timeout=0.3)
        assert len(info.value.completed) == 1
        assert info.value.completed[0].error is None
        done_id = info.value.completed[0].task_id
        assert set(info.value.outstanding) == set(ids) - {done_id}
        # Nothing thrown away: finishing the spool still converges.
        SpoolWorker(spool).run(idle_timeout=0.5)
        assert len(spool.collect(ids, timeout=10)) == len(ids)

    def test_error_results_are_resubmitted_with_a_task_map(self, graph,
                                                           tmp_path):
        from repro.core.dcfastqc import DCFastQC

        spool = SpoolQueue(str(tmp_path / "spool"), max_attempts=3)
        subproblem = next(iter(DCFastQC(graph, 0.9, 4)
                               .iter_compact_subproblems()))
        # worker.enumerate raises once; the resubmitted attempt succeeds.
        install_plan(parse_plan("worker.enumerate:raise:times=1"))
        task = WorkTask(task_id="flaky", subproblem=subproblem, gamma=0.9,
                        theta=4)
        spool.submit(task)

        import threading

        worker = SpoolWorker(spool)
        thread = threading.Thread(
            target=lambda: worker.run(idle_timeout=2.0), daemon=True)
        thread.start()
        results = spool.collect(["flaky"], timeout=15,
                                tasks={"flaky": task})
        thread.join(timeout=10)
        assert results[0].error is None
        assert results[0].attempts == 1
        assert spool.stats()["dead"] == 0

    def test_error_results_poison_without_a_task_map(self, graph, tmp_path):
        from repro.core.dcfastqc import DCFastQC

        spool = SpoolQueue(str(tmp_path / "spool"))
        subproblem = next(iter(DCFastQC(graph, 0.9, 4)
                               .iter_compact_subproblems()))
        spool.submit(WorkTask(task_id="bad", subproblem=subproblem,
                              gamma=2.0, theta=4))  # invalid gamma: worker error
        SpoolWorker(spool).run(max_tasks=1, idle_timeout=1.0)
        with pytest.raises(TaskPoisonedError) as info:
            spool.collect(["bad"], timeout=5)
        assert info.value.task_id == "bad"
        assert spool.dead_letters()[0]["reason"] == "worker-error"


# ----------------------------------------------------------------------
# Crash recovery: a real SIGKILL mid-task
# ----------------------------------------------------------------------
class TestCrashRecovery:
    def test_sigkilled_worker_recovers_to_sequential_parity(self, graph,
                                                            tmp_path):
        from repro.core.dcfastqc import DCFastQC
        from repro.settrie.filter import filter_non_maximal

        spool_dir = str(tmp_path / "spool")
        spool = SpoolQueue(spool_dir, lease_seconds=0.5, max_attempts=5)
        driver = DCFastQC(graph, 0.85, 4)
        subproblems = tuple(driver.iter_compact_subproblems())
        ids = spool.submit_subproblems(subproblems, 0.85, 4)
        tasks = {task_id: WorkTask(task_id=task_id, subproblem=subproblem,
                                   gamma=0.85, theta=4)
                 for task_id, subproblem in zip(ids, subproblems)}

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")]))
        # The victim claims its first task, then stalls inside it forever.
        env["REPRO_FAULTS"] = "worker.task:delay=600"
        victim = subprocess.Popen(
            [sys.executable, "-c",
             "from repro.cli import main; import sys; "
             "sys.exit(main(['worker', '--spool', %r, "
             "'--lease-seconds', '0.5']))" % spool_dir],
            env=env, cwd=os.getcwd())
        try:
            deadline = time.monotonic() + 30
            while not os.listdir(spool.claimed_dir):
                assert time.monotonic() < deadline, "victim never claimed"
                time.sleep(0.02)
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=10)
        finally:
            if victim.poll() is None:  # pragma: no cover - cleanup on failure
                victim.kill()
                victim.wait(timeout=10)

        # A surviving worker drains the spool; its idle loop reclaims the
        # victim's expired lease and re-runs the orphaned task.
        survivor = SpoolWorker(spool)
        survivor.run(idle_timeout=1.5)
        results = spool.collect(ids, timeout=30, tasks=tasks)

        candidates: set = set()
        for result in results:
            candidates.update(result.cliques)
        got = set(filter_non_maximal(
            sorted(candidates, key=lambda h: (-len(h), sorted(map(str, h)))),
            theta=4))
        assert got == _sequential_answer(graph, 0.85, 4)
        assert spool.dead_letters() == []
        # The reclaimed task really did go through the lease machinery.
        reclaimed = [r for r in results if r.attempts > 0]
        assert reclaimed, "no task carried a bumped attempt count"


# ----------------------------------------------------------------------
# The fault matrix: spool_enumerate under every spool-side site
# ----------------------------------------------------------------------
class TestFaultMatrix:
    @pytest.mark.parametrize("plan_text", [
        "spool.claim:raise:times=1",
        "spool.write:truncate:times=1",
        "spool.heartbeat:raise:times=0",
        "worker.task:raise:times=1",
        "worker.enumerate:raise:times=2",
        "engine.subproblem:raise:times=1",
        ("spool.claim:raise:times=1;worker.enumerate:raise:times=1;"
         "spool.write:truncate:after=2:times=1"),
    ])
    def test_spool_enumerate_survives_with_exact_parity(self, graph, tmp_path,
                                                        plan_text):
        install_plan(parse_plan(plan_text))
        got = spool_enumerate(graph, 0.85, 4, str(tmp_path / "spool"),
                              inline_workers=2, timeout=60,
                              lease_seconds=0.25, max_attempts=5)
        install_plan(None)
        assert set(got) == _sequential_answer(graph, 0.85, 4)

    def test_a_truly_poisoned_task_surfaces_typed_not_corrupt(self, graph,
                                                              tmp_path):
        # Every attempt fails: the budget runs out and the typed error
        # surfaces instead of a wrong (short) answer.
        install_plan(parse_plan("worker.enumerate:raise:times=0"))
        with pytest.raises(TaskPoisonedError):
            spool_enumerate(graph, 0.9, 4, str(tmp_path / "spool"),
                            inline_workers=2, timeout=60,
                            lease_seconds=0.25, max_attempts=2)


# ----------------------------------------------------------------------
# Client retry + stream resume against a live service
# ----------------------------------------------------------------------
SPEC = {"gamma": 0.85, "theta": 4}


@pytest.fixture
def service(graph):
    service = ReproService(max_concurrent=2, allow_shutdown=True,
                           circuit_threshold=2, circuit_reset=0.3)
    service.add_graph("demo", graph)
    with start_in_thread(service) as handle:
        yield handle


class TestClientResilience:
    def test_dead_socket_is_closed_and_reconnects(self, service):
        client = ServeClient(port=service.port)
        try:
            assert client.ping()
            # Kill the next frame write server-side: abrupt RST mid-request.
            install_plan(parse_plan("serve.write_frame:drop:times=1"))
            with pytest.raises((ConnectionLostError, ConnectionError)):
                client.ping()
            install_plan(None)
            # Satellite fix: the dead socket is gone, not left bound.
            assert not client.connected
            assert client.ping()  # transparently redialled
            assert client.connected
        finally:
            client.close()

    def test_connect_fault_surfaces_then_recovers(self, service):
        install_plan(parse_plan("client.connect:raise:times=1"))
        with pytest.raises(FaultInjectedError):
            ServeClient(port=service.port)
        with ServeClient(port=service.port) as client:
            assert client.ping()

    def test_resumed_stream_is_byte_identical(self, service):
        with ServeClient(port=service.port) as client:
            list(client.query_stream(SPEC, batch=1))  # warm the cache
            baseline = list(client.query_stream(SPEC, batch=1))
        batches = [frame for frame in baseline if frame["type"] == "batch"]
        assert len(batches) >= 3, "need a multi-batch stream to interrupt"
        # Every cache replay of the same key shares one stream token.
        assert {f["stream"] for f in batches} == {batches[0]["stream"]}

        with ServeClient(port=service.port) as client:
            install_plan(parse_plan("serve.write_frame:drop:after=3:times=1"))
            received = []
            with pytest.raises((ConnectionLostError, ConnectionError)):
                for frame in client.query_stream(SPEC, batch=1):
                    if frame["type"] == "batch":
                        received.append(frame)
            install_plan(None)
            assert 0 < len(received) < len(batches)
            resumed = [frame
                       for frame in client.query_stream(
                           SPEC, batch=1, resume_from=len(received),
                           resume_stream=received[-1]["stream"])
                       if frame["type"] == "batch"]
        stitched = received + resumed
        assert [f["seq"] for f in stitched] == list(range(len(batches)))
        assert b"".join(map(encode_frame, stitched)) \
            == b"".join(map(encode_frame, batches))

    def test_resume_restarts_when_stream_identity_changes(self, service,
                                                          graph):
        # A first attempt riding a *live* enumeration (unique stream token)
        # is interrupted; the sole subscriber leaving cancels the flight, so
        # nothing is cached and the retry leads a fresh live flight with a
        # *different* token.  The server must refuse the stale resume offset
        # (batch order is not comparable across live streams) and restart
        # from batch 0; the client must discard the superseded partial
        # batches — the final list holds each clique exactly once.
        spec = {"gamma": 0.8, "theta": 3}
        install_plan(parse_plan("serve.write_frame:drop:after=2:times=1"))
        with ServeClient(port=service.port) as client:
            got, done = client.query(
                spec, batch=1,
                retry=RetryPolicy(max_attempts=5, base_delay=0.01,
                                  max_delay=0.05, seed=3))
        install_plan(None)
        expected = _sequential_answer(graph, 0.8, 3)
        assert set(got) == expected
        assert len(got) == len(expected), "restart left duplicate batches"
        assert done["type"] == "done"

    def test_query_retries_to_the_full_answer_under_drops(self, service,
                                                          graph):
        with ServeClient(port=service.port) as client:
            expected, _ = client.query(SPEC)
        # Two separate connection drops; the retrying client stitches the
        # stream back together from the resume point each time.
        install_plan(parse_plan("serve.write_frame:drop:after=2:times=1;"
                                "serve.write_frame:drop:after=5:times=1"))
        with ServeClient(port=service.port) as client:
            got, done = client.query(
                SPEC, batch=1,
                retry=RetryPolicy(max_attempts=5, base_delay=0.01,
                                  max_delay=0.05, seed=7))
        install_plan(None)
        assert sorted(map(sorted, got)) == sorted(map(sorted, expected))
        assert done["type"] == "done"
        assert set(got) == _sequential_answer(graph, 0.85, 4)

    def test_retry_metric_counts_server_side(self, service):
        install_plan(parse_plan("serve.write_frame:drop:after=2:times=1"))
        with ServeClient(port=service.port) as client:
            client.query(SPEC, batch=1,
                         retry=RetryPolicy(max_attempts=4, base_delay=0.01,
                                           max_delay=0.02, seed=1))
        install_plan(None)
        status, body = fetch_http("/metrics", port=service.port)
        assert status == 200
        assert 'repro_serve_retries_total{kind="resume"}' in body
        assert "repro_faults_injected_total" in body

    def test_deadline_clamps_the_server_side_budget(self, service):
        with ServeClient(port=service.port) as client:
            _cliques, done = client.query(SPEC, deadline=30.0)
        assert done["type"] == "done" and done["finished"]

    def test_deadline_is_validated_on_the_wire(self):
        with pytest.raises(ReproError):
            validate_request({"op": "query", "spec": {}, "deadline": -1})
        with pytest.raises(ReproError):
            validate_request({"op": "query", "spec": {}, "resume_from": -2})
        with pytest.raises(ReproError):
            validate_request({"op": "query", "spec": {}, "attempt": "x"})


class TestServiceDegradation:
    def test_circuit_opens_then_half_open_probe_recovers(self, service):
        install_plan(parse_plan("serve.enumerate:raise:times=0"))
        with ServeClient(port=service.port) as client:
            for _ in range(2):  # circuit_threshold=2
                with pytest.raises(FaultInjectedError):
                    client.query(SPEC)
            with pytest.raises(CircuitOpenError) as info:
                client.query(SPEC)
            assert info.value.retry_after is not None
            install_plan(None)
            time.sleep(0.35)  # past circuit_reset: half-open
            cliques, done = client.query(SPEC)  # the probe, succeeds
            assert done["finished"]
            cliques2, _ = client.query(SPEC)
            assert sorted(map(sorted, cliques2)) == sorted(map(sorted, cliques))
            stats = client.stats()
            assert stats["circuits"] == {}  # closed circuits are not reported

    def test_open_circuit_is_visible_in_stats_and_metrics(self, service):
        install_plan(parse_plan("serve.enumerate:raise:times=0"))
        with ServeClient(port=service.port) as client:
            for _ in range(2):
                with pytest.raises(FaultInjectedError):
                    client.query({"gamma": 0.9, "theta": 5})
            stats = client.stats()
        install_plan(None)
        assert any("open" == entry["state"]
                   for entry in stats["circuits"].values())
        status, body = fetch_http("/metrics", port=service.port)
        assert status == 200
        assert 'repro_serve_circuit_state{graph="demo"} 2' in body

    def test_overload_does_not_trip_the_breaker(self, graph, monkeypatch):
        # Shedding is back-pressure, not evidence the query is poisoned:
        # with circuit_threshold=1 a single *real* failure would open the
        # breaker, so a shed followed by a clean success proves overload
        # leaves it untouched.
        from repro.errors import ServiceOverloadedError

        service = ReproService(max_concurrent=2, circuit_threshold=1,
                               circuit_reset=30.0)
        service.add_graph("demo", graph)
        host = service.hosts["demo"]
        real_open = host.open_stream
        calls = {"n": 0}

        def shed_once(spec, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise ServiceOverloadedError("synthetic shed",
                                             running=2, queued=0)
            return real_open(spec, **kwargs)

        monkeypatch.setattr(host, "open_stream", shed_once)
        with start_in_thread(service):
            with ServeClient(port=service.port) as client:
                with pytest.raises(ServiceOverloadedError):
                    list(client.query_stream(SPEC))
                cliques, done = client.query(SPEC)
        assert done["type"] == "done"
        assert set(cliques) == _sequential_answer(graph, SPEC["gamma"],
                                                  SPEC["theta"])
        assert calls["n"] == 2
        assert all(b["state"] != "open"
                   for b in service.breakers.stats().values())


class TestAdmissionDeadline:
    def test_apply_budgets_clamps_to_the_deadline(self):
        from repro.api.spec import QuerySpec
        from repro.serve.admission import AdmissionController

        controller = AdmissionController(default_time_limit=60.0,
                                         max_time_limit=120.0)
        spec = QuerySpec(gamma=0.9, theta=3)
        assert controller.apply_budgets(spec).time_limit == 60.0
        assert controller.apply_budgets(spec, deadline=5.0).time_limit == 5.0
        capped = controller.apply_budgets(
            QuerySpec(gamma=0.9, theta=3, time_limit=500.0), deadline=90.0)
        assert capped.time_limit == 90.0
        loose = controller.apply_budgets(
            QuerySpec(gamma=0.9, theta=3, time_limit=2.0), deadline=90.0)
        assert loose.time_limit == 2.0
