"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.graph import write_edge_list
from repro.graph.generators import planted_quasi_clique_graph


@pytest.fixture
def graph_file(tmp_path):
    graph = planted_quasi_clique_graph(30, 40, [7], 0.9, seed=2)
    path = tmp_path / "graph.txt"
    write_edge_list(graph, path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_enumerate_defaults(self):
        args = build_parser().parse_args(["enumerate", "-i", "x.txt", "-g", "0.9", "-t", "5"])
        assert args.algorithm == "dcfastqc"
        assert args.gamma == 0.9


class TestEnumerateCommand:
    def test_enumerate_from_file(self, graph_file, capsys):
        code = main(["enumerate", "-i", str(graph_file), "-g", "0.9", "-t", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "maximal" in out

    def test_enumerate_json_summary(self, graph_file, capsys):
        code = main(["enumerate", "-i", str(graph_file), "-g", "0.9", "-t", "5", "--json"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["algorithm"] == "dcfastqc"
        assert summary["maximal_count"] >= 1

    def test_enumerate_writes_output_file(self, graph_file, tmp_path, capsys):
        out_path = tmp_path / "mqcs.txt"
        main(["enumerate", "-i", str(graph_file), "-g", "0.9", "-t", "5",
              "-o", str(out_path)])
        capsys.readouterr()
        assert out_path.exists()
        assert out_path.read_text().strip()

    def test_enumerate_dataset_uses_defaults(self, capsys):
        code = main(["enumerate", "-d", "douban", "--json"])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["maximal_count"] >= 1

    def test_enumerate_missing_parameters(self, graph_file):
        with pytest.raises(SystemExit):
            main(["enumerate", "-i", str(graph_file)])

    def test_enumerate_missing_input(self):
        with pytest.raises(SystemExit):
            main(["enumerate", "-g", "0.9", "-t", "5"])


class TestOtherCommands:
    def test_stats_command(self, graph_file, capsys):
        code = main(["stats", "-i", str(graph_file)])
        assert code == 0
        stats = json.loads(capsys.readouterr().out)
        # Isolated vertices are not representable in an edge list, so the
        # round-tripped graph may be slightly smaller than the generated one.
        assert 20 <= stats["vertex_count"] <= 30
        assert stats["edge_count"] > 0

    def test_datasets_command(self, capsys):
        code = main(["datasets"])
        assert code == 0
        out = capsys.readouterr().out
        assert "enron" in out
        assert "uk2002" in out

    def test_table1_command_single_dataset(self, capsys):
        code = main(["table1", "douban", "--skip-quickplus"])
        assert code == 0
        out = capsys.readouterr().out
        assert "douban" in out
        assert "mqc_count" in out
