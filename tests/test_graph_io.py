"""Unit tests for edge-list I/O (repro.graph.io)."""

from __future__ import annotations

import io

import pytest

from repro import Graph, GraphError
from repro.graph import read_edge_list, write_edge_list
from repro.graph.io import iter_edge_list, read_quasi_cliques, write_quasi_cliques


EDGE_FILE = """\
% a KONECT-style comment
# another comment
1 2
2 3 17.5 1089382
3 1
4 4
"""


class TestReadEdgeList:
    def test_reads_basic_file(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text(EDGE_FILE)
        graph = read_edge_list(path)
        assert graph.vertex_count == 3
        assert graph.edge_count == 3

    def test_reads_file_object(self):
        graph = read_edge_list(io.StringIO(EDGE_FILE))
        assert graph.edge_count == 3

    def test_skips_comments_blanks_and_self_loops(self):
        graph = read_edge_list(io.StringIO("% c\n\n1 1\n1 2\n"))
        assert graph.edge_count == 1

    def test_extra_columns_ignored(self):
        graph = read_edge_list(io.StringIO("1 2 3.5 42\n"))
        assert graph.edge_count == 1
        assert graph.has_edge(1, 2)

    def test_integer_labels_by_default(self):
        graph = read_edge_list(io.StringIO("1 2\n"))
        assert 1 in graph
        assert "1" not in graph

    def test_string_labels_when_disabled(self):
        graph = read_edge_list(io.StringIO("1 2\n"), as_int=False)
        assert "1" in graph

    def test_mixed_labels(self):
        graph = read_edge_list(io.StringIO("a 2\n2 b\n"))
        assert graph.vertex_count == 3

    def test_comma_separated(self):
        graph = read_edge_list(io.StringIO("1,2\n2,3\n"))
        assert graph.edge_count == 2

    def test_malformed_line_raises(self):
        with pytest.raises(GraphError):
            read_edge_list(io.StringIO("justone\n"))

    def test_iter_edge_list_line_numbers_in_error(self):
        with pytest.raises(GraphError, match="line 2"):
            list(iter_edge_list(["1 2", "bad"]))


class TestWriteEdgeList:
    def test_roundtrip_via_path(self, tmp_path, paper_figure1):
        path = tmp_path / "out.txt"
        write_edge_list(paper_figure1, path, header="written by tests")
        back = read_edge_list(path)
        assert back.vertex_count == paper_figure1.vertex_count
        assert back.edge_count == paper_figure1.edge_count

    def test_roundtrip_via_file_object(self, triangle):
        buffer = io.StringIO()
        write_edge_list(triangle, buffer)
        back = read_edge_list(io.StringIO(buffer.getvalue()))
        assert back.edge_count == 3

    def test_header_written_as_comments(self, triangle):
        buffer = io.StringIO()
        write_edge_list(triangle, buffer, header="line1\nline2")
        text = buffer.getvalue()
        assert text.startswith("% line1\n% line2\n")


class TestQuasiCliqueFiles:
    def test_roundtrip(self, tmp_path):
        cliques = [frozenset({1, 2, 3}), frozenset({4, 5})]
        path = tmp_path / "qcs.txt"
        write_quasi_cliques(cliques, path)
        back = read_quasi_cliques(path)
        assert set(back) == set(cliques)

    def test_read_skips_comments(self, tmp_path):
        path = tmp_path / "qcs.txt"
        path.write_text("% comment\n1 2 3\n\n")
        assert read_quasi_cliques(path) == [frozenset({1, 2, 3})]


class TestLabelConversion:
    def test_zero_padded_labels_stay_distinct(self):
        # Regression: a bare int() merged "01", "+1", " 1" and "1" into the
        # single vertex 1, silently collapsing vertices and dropping edges.
        graph = read_edge_list(io.StringIO("01 2\n1 2\n+1 2\n"))
        assert set(graph.vertices()) == {"01", 1, "+1", 2}
        assert graph.edge_count == 3

    def test_canonical_integers_still_convert(self):
        graph = read_edge_list(io.StringIO("1 2\n-3 2\n10 2\n"))
        assert set(graph.vertices()) == {1, 2, -3, 10}

    def test_non_canonical_forms_stay_strings(self):
        from repro.graph.io import _maybe_int

        assert _maybe_int("1") == 1
        assert _maybe_int("-3") == -3
        for text in ("01", "+1", " 1", "1 ", "0x1", "1_0", ""):
            assert _maybe_int(text) == text


class TestDuplicateDetection:
    def test_duplicates_allowed_by_default(self):
        pairs = list(iter_edge_list(["1 2", "2 1", "1 2"]))
        assert pairs == [("1", "2"), ("2", "1"), ("1", "2")]

    def test_duplicate_same_orientation_rejected(self):
        with pytest.raises(GraphError, match="line 3: duplicate edge"):
            list(iter_edge_list(["1 2", "2 3", "1 2"],
                                directed_duplicates_ok=False))

    def test_duplicate_reversed_orientation_rejected(self):
        with pytest.raises(GraphError, match="line 2: duplicate edge '2' -- '1'"):
            list(iter_edge_list(["1 2", "2 1"], directed_duplicates_ok=False))

    def test_distinct_edges_pass_with_detection_on(self):
        pairs = list(iter_edge_list(["1 2", "2 3", "% 1 2", "3 1"],
                                    directed_duplicates_ok=False))
        assert pairs == [("1", "2"), ("2", "3"), ("3", "1")]


class TestStreamingIngestion:
    def test_ingest_matches_read_edge_list(self):
        from repro.graph.io import ingest_edge_list

        text = "% comment\n1 2 9.5\n2 3\n01 3\na b\n3 3\n"
        dict_graph = read_edge_list(io.StringIO(text))
        csr_graph = ingest_edge_list(io.StringIO(text))
        assert set(csr_graph.vertices()) == set(dict_graph.vertices())
        assert set(map(frozenset, csr_graph.edges())) == \
            set(map(frozenset, dict_graph.edges()))

    def test_ingest_respects_flags(self):
        from repro.graph.io import ingest_edge_list

        strings = ingest_edge_list(io.StringIO("1 2\n"), as_int=False)
        assert set(strings.vertices()) == {"1", "2"}
        with pytest.raises(GraphError, match="duplicate edge"):
            ingest_edge_list(io.StringIO("1 2\n2 1\n"),
                             directed_duplicates_ok=False)

    def test_ingest_malformed_line_reports_position(self):
        from repro.graph.io import ingest_edge_list

        with pytest.raises(GraphError, match="line 2"):
            ingest_edge_list(io.StringIO("1 2\nbroken\n"))

    def test_round_trip_at_one_hundred_thousand_edges(self, tmp_path):
        # The large-graph tier's contract: 10^5 edges stream through the
        # loader into CSR form and write back losslessly, never touching the
        # O(n^2)-bit representation.
        from repro.graph import gnm_edges
        from repro.graph.io import ingest_edge_list

        path = tmp_path / "large.txt"
        edge_count = 100_000
        with open(path, "w", encoding="utf-8") as handle:
            for u, v in gnm_edges(40_000, edge_count, seed=17):
                handle.write(f"{u} {v}\n")
        graph = ingest_edge_list(path)
        assert graph.edge_count == edge_count
        assert graph.vertex_count <= 40_000
        back = tmp_path / "back.txt"
        write_edge_list(graph, back)
        again = ingest_edge_list(back)
        assert again.vertex_count == graph.vertex_count
        assert again.edge_count == graph.edge_count
        assert set(map(frozenset, again.edges())) == \
            set(map(frozenset, graph.edges()))
