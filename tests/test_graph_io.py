"""Unit tests for edge-list I/O (repro.graph.io)."""

from __future__ import annotations

import io

import pytest

from repro import Graph, GraphError
from repro.graph import read_edge_list, write_edge_list
from repro.graph.io import iter_edge_list, read_quasi_cliques, write_quasi_cliques


EDGE_FILE = """\
% a KONECT-style comment
# another comment
1 2
2 3 17.5 1089382
3 1
4 4
"""


class TestReadEdgeList:
    def test_reads_basic_file(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text(EDGE_FILE)
        graph = read_edge_list(path)
        assert graph.vertex_count == 3
        assert graph.edge_count == 3

    def test_reads_file_object(self):
        graph = read_edge_list(io.StringIO(EDGE_FILE))
        assert graph.edge_count == 3

    def test_skips_comments_blanks_and_self_loops(self):
        graph = read_edge_list(io.StringIO("% c\n\n1 1\n1 2\n"))
        assert graph.edge_count == 1

    def test_extra_columns_ignored(self):
        graph = read_edge_list(io.StringIO("1 2 3.5 42\n"))
        assert graph.edge_count == 1
        assert graph.has_edge(1, 2)

    def test_integer_labels_by_default(self):
        graph = read_edge_list(io.StringIO("1 2\n"))
        assert 1 in graph
        assert "1" not in graph

    def test_string_labels_when_disabled(self):
        graph = read_edge_list(io.StringIO("1 2\n"), as_int=False)
        assert "1" in graph

    def test_mixed_labels(self):
        graph = read_edge_list(io.StringIO("a 2\n2 b\n"))
        assert graph.vertex_count == 3

    def test_comma_separated(self):
        graph = read_edge_list(io.StringIO("1,2\n2,3\n"))
        assert graph.edge_count == 2

    def test_malformed_line_raises(self):
        with pytest.raises(GraphError):
            read_edge_list(io.StringIO("justone\n"))

    def test_iter_edge_list_line_numbers_in_error(self):
        with pytest.raises(GraphError, match="line 2"):
            list(iter_edge_list(["1 2", "bad"]))


class TestWriteEdgeList:
    def test_roundtrip_via_path(self, tmp_path, paper_figure1):
        path = tmp_path / "out.txt"
        write_edge_list(paper_figure1, path, header="written by tests")
        back = read_edge_list(path)
        assert back.vertex_count == paper_figure1.vertex_count
        assert back.edge_count == paper_figure1.edge_count

    def test_roundtrip_via_file_object(self, triangle):
        buffer = io.StringIO()
        write_edge_list(triangle, buffer)
        back = read_edge_list(io.StringIO(buffer.getvalue()))
        assert back.edge_count == 3

    def test_header_written_as_comments(self, triangle):
        buffer = io.StringIO()
        write_edge_list(triangle, buffer, header="line1\nline2")
        text = buffer.getvalue()
        assert text.startswith("% line1\n% line2\n")


class TestQuasiCliqueFiles:
    def test_roundtrip(self, tmp_path):
        cliques = [frozenset({1, 2, 3}), frozenset({4, 5})]
        path = tmp_path / "qcs.txt"
        write_quasi_cliques(cliques, path)
        back = read_quasi_cliques(path)
        assert set(back) == set(cliques)

    def test_read_skips_comments(self, tmp_path):
        path = tmp_path / "qcs.txt"
        path.write_text("% comment\n1 2 3\n\n")
        assert read_quasi_cliques(path) == [frozenset({1, 2, 3})]
