"""Differential test harness: every execution path must produce identical answers.

One parametrized suite cross-checks the brute-force reference against every
MQCE-S1 algorithm (FastQC, DCFastQC, Quick+) and both engine delivery paths
(``MQCEEngine.query`` and ``MQCEEngine.stream``) on a grid of seeded random
graphs that varies the vertex count, the edge density, gamma and theta.  This
replaces ad-hoc pairwise comparisons: any divergence between any two paths
shows up as a failure against the same brute-force ground truth.
"""

from __future__ import annotations

import pytest

from repro import Graph, MQCEEngine
from repro.api import QuerySpec
from repro.graph.generators import erdos_renyi_gnm, planted_quasi_clique_graph
from repro.pipeline.mqce import canonical_order, run_enumeration
from repro.quasiclique import enumerate_maximal_quasi_cliques_bruteforce

#: (case id, graph builder, gamma, theta) — graphs stay <= 13 vertices so the
#: brute-force oracle runs in milliseconds.
CASES = [
    ("sparse-n8", lambda: erdos_renyi_gnm(8, 10, seed=11), 0.6, 2),
    ("sparse-n10", lambda: erdos_renyi_gnm(10, 14, seed=12), 0.7, 3),
    ("medium-n10", lambda: erdos_renyi_gnm(10, 22, seed=13), 0.8, 3),
    ("dense-n9", lambda: erdos_renyi_gnm(9, 28, seed=14), 0.9, 4),
    ("dense-n12", lambda: erdos_renyi_gnm(12, 40, seed=15), 0.9, 4),
    ("planted-n12", lambda: planted_quasi_clique_graph(12, 10, [5], 0.9, seed=16), 0.9, 4),
    ("planted-n13", lambda: planted_quasi_clique_graph(13, 12, [5, 4], 0.85, seed=17), 0.8, 3),
    ("half-gamma-n9", lambda: erdos_renyi_gnm(9, 16, seed=18), 0.5, 2),
    ("full-gamma-n10", lambda: erdos_renyi_gnm(10, 24, seed=19), 1.0, 3),
    ("tiny-theta1-n7", lambda: erdos_renyi_gnm(7, 8, seed=20), 0.75, 1),
]

#: Execution paths under test.  Each maps a (graph, gamma, theta) query to a
#: canonically ordered list of maximal quasi-cliques.  The FastQC-family
#: algorithms run under both execution kernels: ``ledger`` (incremental
#: branch states, compact DC subproblems — the default) and ``reference``
#: (the original mask/popcount implementation).
EXECUTORS = {
    "fastqc": lambda graph, gamma, theta: run_enumeration(
        graph, QuerySpec(gamma=gamma, theta=theta, algorithm="fastqc")
    ).maximal_quasi_cliques,
    "fastqc-reference": lambda graph, gamma, theta: run_enumeration(
        graph, QuerySpec(gamma=gamma, theta=theta, algorithm="fastqc",
                         kernel="reference")
    ).maximal_quasi_cliques,
    "dcfastqc": lambda graph, gamma, theta: run_enumeration(
        graph, QuerySpec(gamma=gamma, theta=theta, algorithm="dcfastqc")
    ).maximal_quasi_cliques,
    "dcfastqc-reference": lambda graph, gamma, theta: run_enumeration(
        graph, QuerySpec(gamma=gamma, theta=theta, algorithm="dcfastqc",
                         kernel="reference")
    ).maximal_quasi_cliques,
    "quickplus": lambda graph, gamma, theta: run_enumeration(
        graph, QuerySpec(gamma=gamma, theta=theta, algorithm="quickplus")
    ).maximal_quasi_cliques,
    "quickplus-reference": lambda graph, gamma, theta: run_enumeration(
        graph, QuerySpec(gamma=gamma, theta=theta, algorithm="quickplus",
                         kernel="reference")
    ).maximal_quasi_cliques,
    "engine-query": lambda graph, gamma, theta: MQCEEngine().query(
        graph, gamma, theta).maximal_quasi_cliques,
    "engine-stream": lambda graph, gamma, theta: canonical_order(
        list(MQCEEngine().stream(graph, gamma, theta))),
}

_ORACLE_CACHE: dict[str, tuple[Graph, list[frozenset]]] = {}


def _case(case_id: str) -> tuple[Graph, float, int, list[frozenset]]:
    """Build the case graph and its brute-force ground truth (memoized)."""
    name, builder, gamma, theta = next(c for c in CASES if c[0] == case_id)
    if name not in _ORACLE_CACHE:
        graph = builder()
        expected = canonical_order(
            enumerate_maximal_quasi_cliques_bruteforce(graph, gamma, theta))
        _ORACLE_CACHE[name] = (graph, expected)
    graph, expected = _ORACLE_CACHE[name]
    return graph, gamma, theta, expected


@pytest.mark.parametrize("executor", sorted(EXECUTORS))
@pytest.mark.parametrize("case_id", [case[0] for case in CASES])
def test_execution_path_matches_bruteforce(case_id, executor):
    graph, gamma, theta, expected = _case(case_id)
    produced = EXECUTORS[executor](graph, gamma, theta)
    assert canonical_order(produced) == expected, (
        f"{executor} diverged from brute force on {case_id} "
        f"(gamma={gamma}, theta={theta})")


@pytest.mark.parametrize("case_id", [case[0] for case in CASES])
def test_executors_agree_pairwise(case_id):
    """Redundant guard: all paths produce the same *set* of answers."""
    graph, gamma, theta, _ = _case(case_id)
    answers = {name: frozenset(EXECUTORS[name](graph, gamma, theta))
               for name in EXECUTORS}
    reference = answers["dcfastqc"]
    assert all(result == reference for result in answers.values()), answers


@pytest.mark.parametrize("branching", ["hybrid", "sym-se", "se"])
@pytest.mark.parametrize("algorithm", ["fastqc", "dcfastqc"])
@pytest.mark.parametrize("case_id", [case[0] for case in CASES])
def test_ledger_kernel_matches_reference_exactly(case_id, algorithm, branching):
    """The strongest parity claim: the ledger kernel is branch-for-branch
    equivalent to the mask-based reference, for every algorithm and branching
    method across the whole gamma/theta grid — identical *candidate
    sequences* (pre-MQCE-S2, in emission order), identical maximal answers,
    and identical search counters."""
    graph, gamma, theta, _ = _case(case_id)
    runs = {}
    for kernel in ("ledger", "reference"):
        spec = QuerySpec(gamma=gamma, theta=theta, algorithm=algorithm,
                         branching=branching, kernel=kernel)
        runs[kernel] = run_enumeration(graph, spec)
    ledger, reference = runs["ledger"], runs["reference"]
    assert ledger.candidate_quasi_cliques == reference.candidate_quasi_cliques
    assert ledger.maximal_quasi_cliques == reference.maximal_quasi_cliques
    for counter in ("branches_explored", "branches_pruned_by_condition",
                    "branches_terminated_t1", "branches_terminated_t2",
                    "candidates_removed_by_refinement", "outputs",
                    "outputs_suppressed_by_maximality"):
        assert (getattr(ledger.search_statistics, counter)
                == getattr(reference.search_statistics, counter)), counter
    # Only the ledger kernel performs incremental bookkeeping.  Vertices move
    # whenever a branch forks into children (a subproblem that terminates at
    # its root branch moves nothing), so compare against the subproblem count.
    assert reference.search_statistics.ledger_moves == 0
    stats = ledger.search_statistics
    if stats.branches_explored > stats.subproblems:
        assert stats.ledger_moves > 0


@pytest.mark.parametrize("branching", ["se", "sym-se", "hybrid"])
@pytest.mark.parametrize("case_id", [case[0] for case in CASES])
def test_quickplus_ledger_matches_reference_exactly(case_id, branching):
    """Quick+'s ledger kernel is branch-for-branch equivalent to its
    mask-based reference for every branching method across the whole
    gamma/theta grid: identical candidate sequences (pre-MQCE-S2, in
    emission order), identical maximal answers and identical Type I/II
    pruning counters."""
    graph, gamma, theta, _ = _case(case_id)
    runs = {}
    for kernel in ("ledger", "reference"):
        spec = QuerySpec(gamma=gamma, theta=theta, algorithm="quickplus",
                         branching=branching, kernel=kernel)
        runs[kernel] = run_enumeration(graph, spec)
    ledger, reference = runs["ledger"], runs["reference"]
    assert ledger.candidate_quasi_cliques == reference.candidate_quasi_cliques
    assert ledger.maximal_quasi_cliques == reference.maximal_quasi_cliques
    for counter in ("branches_explored", "branches_pruned_by_type2",
                    "candidates_removed_by_type1", "outputs"):
        assert (getattr(ledger.search_statistics, counter)
                == getattr(reference.search_statistics, counter)), counter
    assert reference.search_statistics.ledger_moves == 0
