"""Unit tests for the theoretical complexity helpers (Theorem 1)."""

from __future__ import annotations

import pytest

from repro.core import (
    branching_factor,
    characteristic_polynomial,
    dcfastqc_budget_bound,
    dcfastqc_worst_case_log2,
    fastqc_budget_bound,
    fastqc_worst_case_log2,
    quickplus_worst_case_log2,
)


class TestBranchingFactor:
    @pytest.mark.parametrize("k, expected", [(2, 1.769), (3, 1.899), (4, 1.953)])
    def test_paper_values(self, k, expected):
        assert branching_factor(k) == pytest.approx(expected, abs=1e-3)

    def test_k1_root_is_sqrt_two(self):
        # For k = 1 the polynomial factors as (x - 1)(x^2 - 2); the paper quotes
        # 1.445 from a refined analysis, which is an upper bound of this root.
        assert branching_factor(1) == pytest.approx(2 ** 0.5, abs=1e-6)
        assert branching_factor(1) < 1.445

    def test_root_satisfies_polynomial(self):
        for k in range(1, 8):
            alpha = branching_factor(k)
            assert characteristic_polynomial(alpha, k) == pytest.approx(0.0, abs=1e-6)

    def test_strictly_below_two_and_increasing(self):
        previous = 1.0
        for k in range(1, 10):
            alpha = branching_factor(k)
            assert previous < alpha < 2.0
            previous = alpha

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            branching_factor(0)


class TestBudgetBounds:
    def test_fastqc_budget(self):
        assert fastqc_budget_bound(100, 0.9) == 10
        assert fastqc_budget_bound(10, 1.0) == 1
        assert fastqc_budget_bound(0, 0.9) == 1

    def test_dcfastqc_budget(self):
        assert dcfastqc_budget_bound(0, 10, 0.9) == 1
        assert dcfastqc_budget_bound(10, 50, 0.9) >= 1
        # The core-based bound floor(omega * (1-gamma)/gamma + 1) dominates for
        # dense subgraphs.
        assert dcfastqc_budget_bound(9, 1000, 0.9) == 2


class TestWorstCaseBounds:
    def test_fastqc_beats_quickplus(self):
        for n, d, gamma in [(50, 10, 0.9), (200, 30, 0.95), (1000, 50, 0.9)]:
            assert fastqc_worst_case_log2(n, d, gamma) < quickplus_worst_case_log2(n, d)

    def test_dcfastqc_beats_fastqc_on_sparse_graphs(self):
        # omega * d << n for sparse graphs, so the DC bound is far smaller.
        n, d, omega, gamma = 10_000, 40, 8, 0.9
        assert dcfastqc_worst_case_log2(n, d, omega, gamma) < fastqc_worst_case_log2(n, d, gamma)

    def test_empty_graph_bounds(self):
        assert fastqc_worst_case_log2(0, 0, 0.9) == 0.0
        assert quickplus_worst_case_log2(0, 0) == 0.0
        assert dcfastqc_worst_case_log2(0, 0, 0, 0.9) == 0.0
