"""Unit tests for progressive branch refinement (Section 4.2)."""

from __future__ import annotations

import random

from repro.core import (
    Branch,
    apply_rule1,
    apply_rule2,
    delta_of_partial_plus,
    progressively_refine,
    tau_sigma,
)
from repro.graph.generators import erdos_renyi_gnp
from repro.quasiclique import enumerate_all_quasi_cliques, max_disconnections


def make_branch(graph, partial, candidates):
    return Branch(graph.mask_of(partial), graph.mask_of(candidates), 0)


class TestDeltaOfPartialPlus:
    def test_matches_direct_computation(self, paper_figure1):
        branch = make_branch(paper_figure1, [1, 2, 3], [4, 5, 6, 7])
        for candidate in [4, 5, 6, 7]:
            index = paper_figure1.index_of(candidate)
            expected = max_disconnections(paper_figure1, {1, 2, 3, candidate})
            assert delta_of_partial_plus(paper_figure1, branch, index) == expected


class TestRule1:
    def test_removes_exactly_overbudget_candidates(self, paper_figure1):
        branch = make_branch(paper_figure1, [1, 2, 3], [4, 5, 6, 7, 8, 9])
        budget = tau_sigma(paper_figure1, branch, 0.7)
        refined_mask = apply_rule1(paper_figure1, branch, budget)
        for candidate in [4, 5, 6, 7, 8, 9]:
            index = paper_figure1.index_of(candidate)
            kept = bool((refined_mask >> index) & 1)
            expected_kept = delta_of_partial_plus(paper_figure1, branch, index) <= budget
            assert kept == expected_kept

    def test_agrees_with_reference_on_random_branches(self):
        rng = random.Random(31)
        for trial in range(20):
            graph = erdos_renyi_gnp(9, rng.uniform(0.3, 0.8), seed=300 + trial)
            vertices = graph.vertices()
            partial = set(rng.sample(vertices, rng.randint(1, 4)))
            candidates = set(v for v in vertices if v not in partial)
            branch = make_branch(graph, partial, candidates)
            budget = rng.randint(1, 4)
            refined_mask = apply_rule1(graph, branch, budget)
            for candidate in candidates:
                index = graph.index_of(candidate)
                kept = bool((refined_mask >> index) & 1)
                assert kept == (delta_of_partial_plus(graph, branch, index) <= budget)

    def test_never_removes_members_of_a_qc_under_the_branch(self):
        rng = random.Random(37)
        for trial in range(15):
            graph = erdos_renyi_gnp(8, rng.uniform(0.4, 0.9), seed=400 + trial)
            gamma = rng.choice([0.5, 0.7, 0.9])
            vertices = graph.vertices()
            partial = set(rng.sample(vertices, rng.randint(1, 3)))
            candidates = set(v for v in vertices if v not in partial)
            branch = make_branch(graph, partial, candidates)
            budget = tau_sigma(graph, branch, gamma)
            refined_mask = apply_rule1(graph, branch, budget)
            kept = graph.labels_of_mask(refined_mask) | partial
            for clique in enumerate_all_quasi_cliques(graph, gamma):
                if partial <= clique:
                    assert clique <= kept


class TestRule2:
    def test_low_degree_candidates_removed(self, star5):
        branch = make_branch(star5, [0], [1, 2, 3, 4])
        # theta=4, budget 1: members need degree >= 3, leaves have degree 1.
        refined = apply_rule2(star5, branch, tau_value=1, theta=4)
        assert refined == 0

    def test_noop_when_requirement_non_positive(self, star5):
        branch = make_branch(star5, [0], [1, 2, 3, 4])
        assert apply_rule2(star5, branch, tau_value=5, theta=3) == branch.c_mask

    def test_keeps_members_of_large_qcs(self, clique5):
        branch = make_branch(clique5, [0], [1, 2, 3, 4])
        refined = apply_rule2(clique5, branch, tau_value=1, theta=5)
        assert refined == branch.c_mask


class TestProgressiveRefinement:
    def test_fixpoint_reached(self, paper_figure1):
        branch = make_branch(paper_figure1, [1], [2, 3, 4, 5, 6, 7, 8, 9])
        outcome = progressively_refine(paper_figure1, branch, gamma=0.9, theta=3)
        if not outcome.pruned:
            # Re-running on the result must not change anything.
            again = progressively_refine(paper_figure1, outcome.branch, gamma=0.9, theta=3)
            assert again.branch.c_mask == outcome.branch.c_mask
            assert not again.pruned

    def test_prunes_branch_with_bad_partial_set(self):
        graph = erdos_renyi_gnp(8, 0.0, seed=1)
        graph.add_edge(0, 1)
        branch = make_branch(graph, [2, 3, 4], [0, 1])
        outcome = progressively_refine(graph, branch, gamma=0.9, theta=2)
        assert outcome.pruned

    def test_counts_removed_candidates(self, star5):
        branch = make_branch(star5, [0], [1, 2, 3, 4])
        outcome = progressively_refine(star5, branch, gamma=0.9, theta=4)
        assert outcome.removed_by_rule1 + outcome.removed_by_rule2 > 0 or outcome.pruned

    def test_max_rounds_cap(self, paper_figure1):
        branch = Branch.initial(paper_figure1)
        outcome = progressively_refine(paper_figure1, branch, gamma=0.9, theta=4,
                                       max_rounds=1)
        assert outcome.rounds <= 1

    def test_refinement_preserves_large_qcs(self):
        # The crucial soundness property: a refined (non-pruned) branch still
        # covers every QC of size >= theta the original branch covered, and a
        # pruned branch covered none.
        rng = random.Random(41)
        for trial in range(20):
            graph = erdos_renyi_gnp(9, rng.uniform(0.3, 0.9), seed=500 + trial)
            gamma = rng.choice([0.5, 0.7, 0.9])
            theta = rng.randint(2, 4)
            vertices = graph.vertices()
            partial = set(rng.sample(vertices, rng.randint(0, 3)))
            candidates = set(v for v in vertices if v not in partial)
            branch = make_branch(graph, partial, candidates)
            outcome = progressively_refine(graph, branch, gamma, theta)
            large_qcs = [clique for clique in enumerate_all_quasi_cliques(graph, gamma, theta)
                         if partial <= clique]
            if outcome.pruned:
                assert not large_qcs, f"trial {trial}: pruned a branch holding a large QC"
            else:
                kept = graph.labels_of_mask(outcome.branch.union_mask)
                for clique in large_qcs:
                    assert clique <= kept, f"trial {trial}: refinement dropped a QC member"
