"""Tests for the dataset registry (synthetic analogues of Table 1)."""

from __future__ import annotations

import pytest

from repro.datasets import (
    DEFAULT_FIGURE_DATASETS,
    REGISTRY,
    dataset_names,
    default_parameters,
    get_spec,
    load_dataset,
)
from repro.graph import graph_statistics
from repro.quasiclique import is_quasi_clique


class TestRegistry:
    def test_fourteen_datasets_registered(self):
        assert len(REGISTRY) == 14

    def test_names_match_table1(self):
        expected = {"ca-grqc", "opsahl", "condmat", "enron", "douban", "wordnet",
                    "twitter", "hyves", "trec", "flixster", "pokec", "fullusa",
                    "kmer", "uk2002"}
        assert set(dataset_names()) == expected

    def test_default_figure_datasets_are_registered(self):
        assert set(DEFAULT_FIGURE_DATASETS) <= set(dataset_names())

    def test_get_spec_case_insensitive(self):
        assert get_spec("Enron").name == "enron"

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            get_spec("does-not-exist")

    def test_default_parameters(self):
        gamma, theta = default_parameters("enron")
        assert 0.5 <= gamma <= 1.0
        assert theta >= 1

    def test_paper_stats_recorded(self):
        spec = get_spec("uk2002")
        assert spec.paper.vertices == 18483186
        assert spec.paper.gamma_default == 0.96

    def test_specs_have_valid_parameters(self):
        for spec in REGISTRY.values():
            assert 0.5 <= spec.default_gamma <= 1.0
            assert spec.default_theta >= 1
            assert spec.planted_gamma >= spec.default_gamma - 1e-9
            assert spec.background in ("ba", "er")


class TestBuiltGraphs:
    @pytest.mark.parametrize("name", ["enron", "fullusa", "ca-grqc"])
    def test_build_is_deterministic(self, name):
        first = load_dataset(name)
        second = load_dataset(name)
        assert first.vertex_count == second.vertex_count
        assert set(map(frozenset, first.edges())) == set(map(frozenset, second.edges()))

    @pytest.mark.parametrize("name", dataset_names())
    def test_graphs_are_modest_but_nontrivial(self, name):
        graph = load_dataset(name)
        assert 100 <= graph.vertex_count <= 2000
        assert graph.edge_count > graph.vertex_count / 2

    @pytest.mark.parametrize("name", ["enron", "wordnet", "hyves", "pokec"])
    def test_planted_groups_are_quasi_cliques(self, name):
        spec = get_spec(name)
        graph = spec.build()
        start = 0
        for size in spec.planted_sizes:
            members = list(range(start, start + size))
            assert is_quasi_clique(graph, members, spec.planted_gamma)
            start += size + 3

    def test_statistics_reasonable(self):
        stats = graph_statistics(load_dataset("enron"))
        assert stats.degeneracy >= 5
        assert stats.max_degree >= stats.degeneracy
        assert stats.edge_density > 1.0

    def test_sparse_analogue_is_sparse(self):
        road = graph_statistics(load_dataset("fullusa"))
        social = graph_statistics(load_dataset("pokec"))
        assert road.edge_density < social.edge_density
