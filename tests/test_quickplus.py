"""Unit and randomized tests for the Quick+ baseline (Algorithm 1)."""

from __future__ import annotations

import random

import pytest

from repro import Graph, QuickPlus, filter_non_maximal
from repro.baselines import PruningConfig, apply_type1_rules, quickplus_enumerate, triggers_type2_rules
from repro.core import Branch
from repro.graph.generators import erdos_renyi_gnp
from repro.quasiclique import (
    enumerate_all_quasi_cliques,
    enumerate_maximal_quasi_cliques_bruteforce,
    is_quasi_clique,
)


class TestPruningRules:
    def _random_branch(self, graph, rng):
        vertices = graph.vertices()
        partial = set(rng.sample(vertices, rng.randint(0, 3)))
        candidates = set(v for v in vertices if v not in partial)
        return partial, Branch(graph.mask_of(partial), graph.mask_of(candidates), 0)

    def test_type1_never_removes_large_qc_members(self):
        rng = random.Random(201)
        for trial in range(20):
            graph = erdos_renyi_gnp(9, rng.uniform(0.3, 0.9), seed=1300 + trial)
            gamma = rng.choice([0.5, 0.7, 0.9])
            theta = rng.randint(2, 4)
            partial, branch = self._random_branch(graph, rng)
            pruned_mask = apply_type1_rules(graph, branch, gamma, theta)
            kept = graph.labels_of_mask(pruned_mask) | partial
            for clique in enumerate_all_quasi_cliques(graph, gamma, theta):
                if partial <= clique:
                    assert clique <= kept

    def test_type2_never_prunes_branch_with_large_qc(self):
        rng = random.Random(211)
        for trial in range(20):
            graph = erdos_renyi_gnp(9, rng.uniform(0.3, 0.9), seed=1400 + trial)
            gamma = rng.choice([0.5, 0.7, 0.9])
            theta = rng.randint(2, 4)
            partial, branch = self._random_branch(graph, rng)
            if triggers_type2_rules(graph, branch, gamma, theta):
                held = [clique for clique in enumerate_all_quasi_cliques(graph, gamma, theta)
                        if partial <= clique]
                assert not held, f"trial {trial}: pruned a branch holding {held[:3]}"

    def test_small_union_triggers_size_rule(self, triangle):
        branch = Branch(0, triangle.mask_of([1, 2]), 0)
        assert triggers_type2_rules(triangle, branch, gamma=0.9, theta=5)

    def test_disabled_rules_do_nothing(self, star5):
        config = PruningConfig(candidate_degree=False, candidate_diameter=False,
                               candidate_non_neighbor=False, branch_size=False,
                               branch_degree=False, branch_upper_bound=False,
                               branch_non_neighbor=False)
        branch = Branch(star5.mask_of([0]), star5.mask_of([1, 2, 3, 4]), 0)
        assert apply_type1_rules(star5, branch, 0.9, 4, config) == branch.c_mask
        assert not triggers_type2_rules(star5, branch, 0.9, 40, config)


class TestQuickPlus:
    def test_invalid_branching_rejected(self, triangle):
        with pytest.raises(ValueError):
            QuickPlus(triangle, gamma=0.9, theta=2, branching="bogus")

    def test_invalid_kernel_rejected(self, triangle):
        with pytest.raises(ValueError):
            QuickPlus(triangle, gamma=0.9, theta=2, kernel="bogus")

    def test_ledger_kernel_is_default_and_counts_moves(self):
        graph = erdos_renyi_gnp(14, 0.5, seed=404)
        ledger = QuickPlus(graph, 0.85, 3)
        reference = QuickPlus(graph, 0.85, 3, kernel="reference")
        assert ledger.kernel == "ledger"
        assert ledger.enumerate() == reference.enumerate()
        assert ledger.statistics.ledger_moves > 0
        assert reference.statistics.ledger_moves == 0

    @pytest.mark.parametrize("branching", ["se", "sym-se", "hybrid"])
    def test_ledger_matches_reference_with_partial_pruning(self, branching):
        """Kernel parity must hold for every PruningConfig subset, not only
        the default all-rules configuration."""
        rng = random.Random(77)
        configs = [
            PruningConfig(),
            PruningConfig(candidate_diameter=False),
            PruningConfig(candidate_degree=False, branch_non_neighbor=False),
            PruningConfig(critical_vertex=False, candidate_non_neighbor=False),
            PruningConfig(branch_degree=False, branch_upper_bound=False),
        ]
        for trial in range(6):
            graph = erdos_renyi_gnp(11, rng.uniform(0.3, 0.7), seed=4500 + trial)
            for config in configs:
                ledger = QuickPlus(graph, 0.8, 3, branching=branching,
                                   pruning=config, kernel="ledger")
                reference = QuickPlus(graph, 0.8, 3, branching=branching,
                                      pruning=config, kernel="reference")
                assert ledger.enumerate() == reference.enumerate(), config
                for counter in ("branches_explored",
                                "candidates_removed_by_type1",
                                "branches_pruned_by_type2", "outputs"):
                    assert (getattr(ledger.statistics, counter)
                            == getattr(reference.statistics, counter)), (
                        config, counter)

    def test_clique(self, clique5):
        assert frozenset(range(5)) in quickplus_enumerate(clique5, 1.0, 3)

    def test_empty_graph(self):
        assert quickplus_enumerate(Graph(), 0.9, 1) == []

    def test_outputs_are_quasi_cliques(self, paper_figure1):
        for gamma in (0.5, 0.75, 0.9):
            for clique in quickplus_enumerate(paper_figure1, gamma, 2):
                assert is_quasi_clique(paper_figure1, clique, gamma)

    def test_statistics(self, paper_figure1):
        algo = QuickPlus(paper_figure1, gamma=0.9, theta=2)
        algo.enumerate()
        assert algo.statistics.branches_explored > 0
        assert algo.statistics.outputs == len(algo.results)

    def test_superset_guarantee_on_random_graphs(self):
        rng = random.Random(221)
        for trial in range(25):
            graph = erdos_renyi_gnp(9, rng.uniform(0.25, 0.85), seed=1500 + trial)
            gamma = rng.choice([0.5, 0.6, 0.8, 0.9, 1.0])
            theta = rng.randint(1, 4)
            expected = set(enumerate_maximal_quasi_cliques_bruteforce(graph, gamma, theta))
            output = set(quickplus_enumerate(graph, gamma, theta))
            assert expected <= output

    def test_filtered_output_equals_mqcs(self):
        rng = random.Random(231)
        for trial in range(12):
            graph = erdos_renyi_gnp(8, rng.uniform(0.3, 0.8), seed=1600 + trial)
            gamma, theta = rng.choice([(0.5, 2), (0.7, 3), (0.9, 2)])
            expected = set(enumerate_maximal_quasi_cliques_bruteforce(graph, gamma, theta))
            output = quickplus_enumerate(graph, gamma, theta)
            assert set(filter_non_maximal(output, theta=theta)) == expected

    @pytest.mark.parametrize("branching", ["sym-se", "hybrid"])
    def test_codesign_ablation_branchings_remain_correct(self, branching):
        # Quick+ pruning with the new branching methods (the paper's ablation 1)
        # must still return a superset of all MQCs.
        rng = random.Random(241)
        for trial in range(12):
            graph = erdos_renyi_gnp(8, rng.uniform(0.3, 0.8), seed=1700 + trial)
            gamma, theta = rng.choice([(0.6, 2), (0.9, 2)])
            expected = set(enumerate_maximal_quasi_cliques_bruteforce(graph, gamma, theta))
            output = set(quickplus_enumerate(graph, gamma, theta, branching=branching))
            assert expected <= output

    def test_returns_more_candidates_than_fastqc(self):
        # Quick+ lacks the maximality necessary-condition filter, so its output
        # is (weakly) larger -- the effect Table 1 reports.
        from repro.core import fastqc_enumerate
        from repro.graph.generators import planted_quasi_clique_graph

        graph = planted_quasi_clique_graph(45, 60, [8, 7], 0.9, seed=3)
        quick = quickplus_enumerate(graph, 0.9, 5)
        fast = fastqc_enumerate(graph, 0.9, 5)
        assert len(quick) >= len(fast)
