"""Unit tests for the Branch representation and its degree bookkeeping."""

from __future__ import annotations

import pytest

from repro.core import (
    Branch,
    degree_in_partial,
    degree_in_union,
    disconnections_in_partial,
    disconnections_in_union,
    max_disconnections_in_partial,
    max_disconnections_in_union,
    min_partial_degree_in_union,
)
from repro.quasiclique import degree_within, disconnections_within, max_disconnections


class TestBranchConstruction:
    def test_initial_branch(self, paper_figure1):
        branch = Branch.initial(paper_figure1)
        assert branch.partial_size == 0
        assert branch.candidate_size == paper_figure1.vertex_count
        assert branch.d_mask == 0

    def test_from_labels_defaults(self, paper_figure1):
        branch = Branch.from_labels(paper_figure1, partial=[1], excluded=[9])
        assert branch.partial_size == 1
        assert branch.candidate_size == paper_figure1.vertex_count - 2

    def test_from_labels_explicit_candidates(self, paper_figure1):
        branch = Branch.from_labels(paper_figure1, partial=[1], candidates=[2, 3])
        assert branch.candidate_size == 2

    def test_overlapping_sets_rejected(self):
        with pytest.raises(ValueError):
            Branch(0b011, 0b010, 0)
        with pytest.raises(ValueError):
            Branch(0b001, 0b010, 0b010)

    def test_sizes(self):
        branch = Branch(0b0011, 0b1100, 0)
        assert branch.partial_size == 2
        assert branch.candidate_size == 2
        assert branch.union_size == 4
        assert branch.union_mask == 0b1111

    def test_vertex_lists(self):
        branch = Branch(0b0101, 0b1010, 0b10000)
        assert branch.partial_vertices() == [0, 2]
        assert branch.candidate_vertices() == [1, 3]
        assert branch.excluded_vertices() == [4]


class TestBranchDerivation:
    def test_with_candidates(self):
        branch = Branch(0b01, 0b110, 0)
        refined = branch.with_candidates(0b100)
        assert refined.s_mask == branch.s_mask
        assert refined.candidate_size == 1

    def test_include(self):
        branch = Branch(0b01, 0b110, 0)
        child = branch.include(0b010)
        assert child.partial_vertices() == [0, 1]
        assert child.candidate_vertices() == [2]

    def test_include_non_candidate_rejected(self):
        branch = Branch(0b01, 0b110, 0)
        with pytest.raises(ValueError):
            branch.include(0b1000)

    def test_exclude(self):
        branch = Branch(0b01, 0b110, 0)
        child = branch.exclude(0b100)
        assert child.excluded_vertices() == [2]
        assert child.candidate_vertices() == [1]

    def test_exclude_non_candidate_rejected(self):
        branch = Branch(0b01, 0b110, 0)
        with pytest.raises(ValueError):
            branch.exclude(0b01)

    def test_covers(self):
        branch = Branch(0b0001, 0b0110, 0b1000)
        assert branch.covers(0b0001)
        assert branch.covers(0b0111)
        assert not branch.covers(0b0110)   # missing S
        assert not branch.covers(0b1001)   # touches D
        assert not branch.covers(0b10001)  # outside S ∪ C


class TestDegreeBookkeeping:
    def test_matches_label_space_helpers(self, paper_figure1):
        partial = {1, 2, 3}
        candidates = {4, 5, 6}
        branch = Branch(paper_figure1.mask_of(partial), paper_figure1.mask_of(candidates), 0)
        union = partial | candidates
        for label in union:
            index = paper_figure1.index_of(label)
            assert degree_in_union(paper_figure1, index, branch) == degree_within(
                paper_figure1, label, union)
            assert degree_in_partial(paper_figure1, index, branch) == degree_within(
                paper_figure1, label, partial)
            assert disconnections_in_partial(paper_figure1, index, branch) == (
                disconnections_within(paper_figure1, label, partial))
            assert disconnections_in_union(paper_figure1, index, branch) == (
                disconnections_within(paper_figure1, label, union))

    def test_max_disconnections(self, paper_figure1):
        partial = {1, 2, 3}
        candidates = {4, 5}
        branch = Branch(paper_figure1.mask_of(partial), paper_figure1.mask_of(candidates), 0)
        assert max_disconnections_in_partial(paper_figure1, branch) == max_disconnections(
            paper_figure1, partial)
        assert max_disconnections_in_union(paper_figure1, branch) == max_disconnections(
            paper_figure1, partial | candidates)

    def test_max_disconnections_empty(self, paper_figure1):
        branch = Branch(0, paper_figure1.mask_of({1}), 0)
        assert max_disconnections_in_partial(paper_figure1, branch) == 0
        empty = Branch(0, 0, 0)
        assert max_disconnections_in_union(paper_figure1, empty) == 0

    def test_min_partial_degree(self, paper_figure1):
        partial = {1, 2}
        candidates = {3, 4, 5}
        branch = Branch(paper_figure1.mask_of(partial), paper_figure1.mask_of(candidates), 0)
        expected = min(degree_within(paper_figure1, v, partial | candidates) for v in partial)
        assert min_partial_degree_in_union(paper_figure1, branch) == expected
        assert min_partial_degree_in_union(paper_figure1, Branch(0, 0b1, 0)) == 0
