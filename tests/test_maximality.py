"""Unit tests for maximality checks (necessary condition and exact check)."""

from __future__ import annotations

from repro import Graph
from repro.quasiclique import (
    enumerate_maximal_quasi_cliques_bruteforce,
    extending_vertices,
    filter_by_necessary_condition,
    is_maximal_quasi_clique,
    is_quasi_clique,
    satisfies_maximality_necessary_condition,
)


class TestExtendingVertices:
    def test_triangle_inside_clique_extends(self, clique5):
        extensions = extending_vertices(clique5, {0, 1, 2}, 1.0)
        assert extensions == frozenset({3, 4})

    def test_maximal_clique_has_no_extension(self, clique5):
        assert extending_vertices(clique5, range(5), 1.0) == frozenset()

    def test_empty_subset(self, clique5):
        assert extending_vertices(clique5, set(), 1.0) == frozenset()

    def test_only_neighbors_considered(self, two_triangles):
        # The other triangle is not adjacent, so it can never extend.
        assert extending_vertices(two_triangles, {0, 1, 2}, 0.5) == frozenset()


class TestNecessaryCondition:
    def test_every_maximal_qc_passes(self, paper_figure1):
        for gamma in (0.5, 0.7, 0.9):
            for mqc in enumerate_maximal_quasi_cliques_bruteforce(paper_figure1, gamma):
                assert satisfies_maximality_necessary_condition(paper_figure1, mqc, gamma)

    def test_extendable_qc_fails(self, clique5):
        assert not satisfies_maximality_necessary_condition(clique5, {0, 1, 2}, 1.0)

    def test_filter_keeps_all_maximal(self, paper_figure1):
        gamma = 0.7
        maximal = enumerate_maximal_quasi_cliques_bruteforce(paper_figure1, gamma)
        candidates = list(maximal) + [frozenset({1, 2}), frozenset({2, 3})]
        kept = filter_by_necessary_condition(paper_figure1, candidates, gamma)
        assert set(maximal) <= set(kept)


class TestExactMaximality:
    def test_non_qc_is_not_maximal(self, path4):
        assert not is_maximal_quasi_clique(path4, {1, 4}, 0.9)

    def test_full_clique_is_maximal(self, clique5):
        assert is_maximal_quasi_clique(clique5, range(5), 1.0)

    def test_sub_clique_is_not_maximal(self, clique5):
        assert not is_maximal_quasi_clique(clique5, {0, 1, 2, 3}, 1.0)

    def test_size_limit_respected(self, clique5):
        # With a size limit equal to the subset size, no extension is searched,
        # so the subset is reported maximal.
        assert is_maximal_quasi_clique(clique5, {0, 1, 2, 3}, 1.0, size_limit=4)

    def test_agreement_with_bruteforce(self, paper_figure1):
        gamma = 0.6
        maximal = set(enumerate_maximal_quasi_cliques_bruteforce(paper_figure1, gamma))
        # Check a few QCs of both kinds.
        checked = 0
        from repro.quasiclique import enumerate_all_quasi_cliques

        for clique in enumerate_all_quasi_cliques(paper_figure1, gamma):
            if len(clique) < 3 or checked > 20:
                continue
            checked += 1
            assert is_maximal_quasi_clique(paper_figure1, clique, gamma) == (clique in maximal)

    def test_isolated_pair(self):
        graph = Graph(edges=[(0, 1), (2, 3)])
        assert is_maximal_quasi_clique(graph, {0, 1}, 0.9)
        assert is_quasi_clique(graph, {2, 3}, 0.9)
