#!/usr/bin/env python
"""Re-derive ``AUTO_ARRAY_MIN_WIDTH``: the list-vs-array ledger crossover.

The ``auto`` ledger backend (``repro.core.kernel``) stores branch-state
ledgers in plain Python lists below a width threshold and in flat
``array('i')`` buffers above it.  The tradeoff:

* a branch fork copies every ledger — one memcpy for an array, a
  pointer-by-pointer loop for a list — so copies favour arrays, more so the
  wider the state;
* shrink/refine rounds do indexed reads and ``buf[i] += 1`` style updates,
  where a list returns a cached small-int object directly while an array
  must box the int on every access — so element access favours lists at
  every width.

This script measures both costs per width (micro section) and reports, for
each width, the *break-even touch rate*: how many indexed updates per
copy/reset a workload can perform before the list backend wins.  The
kernel's real rate comes from its own counters — on a 10^4-vertex power-law
graph the shrink pass dominates and performs ~0.5 indexed updates per
full-width ledger reset (``shrink_ledger_updates / shrink_rounds``), far
below break-even at every width >= 96.  The end-to-end section
cross-checks the conclusion: cold DCFastQC wall-clock under the forced
``list`` / ``array`` backends and the ``auto`` default, where the DC
decomposition keeps subproblem states far below the threshold while
root-level shrink ledgers sit far above it.

Usage::

    PYTHONPATH=src python scripts/derive_backend_crossover.py [--quick]

The measured numbers land in the ``AUTO_ARRAY_MIN_WIDTH`` comment in
``src/repro/core/kernel.py``; re-run after touching the branch-state copy
path or the shrink ledgers.
"""

from __future__ import annotations

import argparse
import sys
import time
from array import array
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import kernel                                     # noqa: E402
from repro.core.dcfastqc import DCFastQC                          # noqa: E402
from repro.graph import barabasi_albert                           # noqa: E402

WIDTHS = (16, 32, 48, 64, 96, 128, 192, 256, 512, 1024, 4096, 16384)

#: Indexed touches timed per round when measuring per-touch cost (fixed, so
#: the per-touch number is width-independent and comparable across rows).
TOUCHES_PER_ROUND = 64


def _best_of(repeat, run):
    best = None
    for _ in range(repeat):
        start = time.perf_counter()
        run()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def measure_width(width: int, repeat: int = 5) -> dict:
    """Per-width copy cost and per-touch update cost (ns), per backend."""
    rounds = max(1, 2_000_000 // max(width, 64))
    as_list = list(range(width))
    as_array = array("i", as_list)
    step = max(1, width // TOUCHES_PER_ROUND)
    indices = (list(range(0, width, step)) * TOUCHES_PER_ROUND)[:TOUCHES_PER_ROUND]

    def copies(buffer):
        def run():
            for _ in range(rounds):
                buffer[:]
        return run

    def touches(buffer):
        def run():
            for _ in range(rounds):
                for i in indices:
                    buffer[i] += 1
        return run

    list_copy = _best_of(repeat, copies(as_list)) / rounds
    array_copy = _best_of(repeat, copies(as_array)) / rounds
    list_touch = _best_of(repeat, touches(as_list)) / rounds / TOUCHES_PER_ROUND
    array_touch = _best_of(repeat, touches(as_array)) / rounds / TOUCHES_PER_ROUND
    # The copy saving buys this many boxed array accesses before the list
    # backend breaks even; a workload touching fewer entries per copy/reset
    # than this is faster on arrays at this width.
    penalty = array_touch - list_touch
    break_even = ((list_copy - array_copy) / penalty
                  if penalty > 0 else float("inf"))
    return {
        "width": width,
        "list_copy_ns": list_copy * 1e9,
        "array_copy_ns": array_copy * 1e9,
        "list_touch_ns": list_touch * 1e9,
        "array_touch_ns": array_touch * 1e9,
        "break_even_touches": break_even,
    }


def run_micro(repeat: int) -> list[dict]:
    rows = [measure_width(width, repeat) for width in WIDTHS]
    print(f"{'width':>6} {'copy list/array ns':>22} "
          f"{'per-touch list/array ns':>24} {'break-even touches/copy':>24}")
    for row in rows:
        print(f"{row['width']:>6} "
              f"{row['list_copy_ns']:>10.0f}/{row['array_copy_ns']:<11.0f} "
              f"{row['list_touch_ns']:>12.1f}/{row['array_touch_ns']:<11.1f} "
              f"{row['break_even_touches']:>24.1f}")
    return rows


def run_end_to_end(vertices: int, repeat: int) -> dict:
    graph = barabasi_albert(vertices, 3, seed=5)
    gamma, theta = 0.9, 4
    timings = {}
    results = {}
    stats = {}
    for backend in ("list", "array", "auto"):
        previous = kernel.set_ledger_backend(backend)
        try:
            def run():
                algo = DCFastQC(graph, gamma, theta)
                results[backend] = algo.enumerate()
                stats[backend] = algo.statistics
            timings[backend] = _best_of(repeat, run)
        finally:
            kernel.set_ledger_backend(previous)
    assert results["list"] == results["array"] == results["auto"]
    measured = stats["auto"]
    rate = (measured.shrink_ledger_updates / measured.shrink_rounds
            if measured.shrink_rounds else float("nan"))
    print(f"\nend-to-end: cold DCFastQC, n={vertices} power-law, "
          f"gamma={gamma} theta={theta}, {len(results['auto'])} candidates")
    for backend, seconds in timings.items():
        print(f"  {backend:>6}: {seconds * 1000:8.1f} ms")
    print(f"measured kernel mix: {measured.shrink_rounds} shrink rounds, "
          f"{measured.shrink_ledger_updates} indexed ledger updates "
          f"(~{rate:.2f} touches per full-width reset; branch ledgers: "
          f"{measured.ledger_moves} moves / {measured.ledger_updates} updates "
          f"over {measured.branches_explored} branches)")
    return timings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller end-to-end graph, fewer repetitions")
    parser.add_argument("--vertices", type=int, default=None,
                        help="end-to-end graph size (default 12000; quick 3000)")
    args = parser.parse_args(argv)
    repeat = 3 if args.quick else 5
    vertices = args.vertices or (3000 if args.quick else 12000)

    run_micro(repeat)
    run_end_to_end(vertices, repeat)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
