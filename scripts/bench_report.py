#!/usr/bin/env python
"""Render the recorded perf trajectory (``BENCH_core.json``) as markdown.

``BENCH_core.json`` is committed after perf-relevant changes (see
``scripts/bench_trajectory.py``), so its git history *is* the repository's
perf trajectory.  This script walks every committed revision of the file,
extracts the per-suite speedup summaries, and prints a markdown trend table —
one row per recorded run, one column per suite — followed by a per-dataset
breakdown of the latest record.

Usage::

    PYTHONPATH=src python scripts/bench_report.py              # full trend
    python scripts/bench_report.py --latest                    # newest record only
    python scripts/bench_report.py --output BENCH_report.md

Outside a git checkout (or when ``git`` is unavailable) the report degrades
gracefully to the working-tree file alone.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = "BENCH_core.json"

#: Stable column order for the trend table (suites absent from a run show "—").
SUITE_ORDER = ("core-enumeration", "quickplus-kernel", "engine-cache",
               "dynamic-updates")
SUITE_HEADERS = {
    "core-enumeration": "core (ledger/ref)",
    "quickplus-kernel": "quickplus (ledger/ref)",
    "engine-cache": "cache (warm/cold)",
    "dynamic-updates": "dynamic (incr/rebuild)",
}


def _git(*argv: str) -> str | None:
    """Run one git command in the repo root; None on any failure."""
    try:
        completed = subprocess.run(
            ["git", "-C", str(REPO_ROOT), *argv],
            capture_output=True, text=True, timeout=30)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout


def committed_records() -> list[dict]:
    """Every committed revision of the bench file, oldest first.

    Each entry: ``{"commit", "subject", "date", "record"}``.  Unparseable
    revisions are skipped (a historical format change must not kill the report).
    """
    log = _git("log", "--reverse", "--format=%h%x09%ad%x09%s",
               "--date=short", "--", BENCH_FILE)
    if not log:
        return []
    entries = []
    for line in log.splitlines():
        parts = line.split("\t", 2)
        if len(parts) != 3:
            continue
        sha, date, subject = parts
        blob = _git("show", f"{sha}:{BENCH_FILE}")
        if blob is None:
            continue
        try:
            record = json.loads(blob)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and "suites" in record:
            entries.append({"commit": sha, "date": date,
                            "subject": subject, "record": record})
    return entries


def working_tree_record() -> dict | None:
    path = REPO_ROOT / BENCH_FILE
    try:
        record = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return record if isinstance(record, dict) and "suites" in record else None


def _suite_speedup(record: dict, suite: str) -> str:
    data = record.get("suites", {}).get(suite)
    if not data:
        return "—"
    speedup = data.get("summary", {}).get("geomean_speedup")
    return f"{speedup}x" if speedup is not None else "—"


def _markdown_row(cells) -> str:
    return "| " + " | ".join(str(cell) for cell in cells) + " |"


def trend_table(entries: list[dict]) -> list[str]:
    """One row per recorded run: commit, date, per-suite geomean speedups."""
    headers = (["run", "date"]
               + [SUITE_HEADERS[suite] for suite in SUITE_ORDER]
               + ["peak RSS"])
    lines = [_markdown_row(headers),
             _markdown_row(["---"] * len(headers))]
    for entry in entries:
        record = entry["record"]
        rss = record.get("peak_rss_bytes")
        rss_cell = f"{rss / 1e6:.0f} MB" if rss else "—"
        lines.append(_markdown_row(
            [entry["commit"], entry["date"]]
            + [_suite_speedup(record, suite) for suite in SUITE_ORDER]
            + [rss_cell]))
    return lines


def dataset_breakdown(record: dict) -> list[str]:
    """Per-dataset speedups of one record, one table per suite."""
    lines: list[str] = []
    for suite in SUITE_ORDER:
        data = record.get("suites", {}).get(suite)
        if not data:
            continue
        lines.append("")
        lines.append(f"### {suite}")
        lines.append("")
        lines.append(f"_{data.get('workload', '')}_")
        lines.append("")
        lines.append(_markdown_row(["dataset", "gamma", "theta", "speedup"]))
        lines.append(_markdown_row(["---"] * 4))
        for name, row in sorted(data.get("datasets", {}).items()):
            lines.append(_markdown_row(
                [name, row.get("gamma", "—"), row.get("theta", "—"),
                 f"{row.get('speedup', '—')}x"]))
    return lines


def build_report(latest_only: bool = False) -> str:
    entries = [] if latest_only else committed_records()
    working = working_tree_record()
    if working is not None:
        committed = entries[-1]["record"] if entries else None
        if committed != working:
            entries.append({"commit": "(worktree)", "date": "now",
                            "subject": "uncommitted run", "record": working})
    if not entries:
        return ("# Perf trajectory\n\nNo benchmark records found — run "
                "`PYTHONPATH=src python scripts/bench_trajectory.py` first.\n")
    lines = ["# Perf trajectory", "",
             f"Speedup trend across {len(entries)} recorded "
             f"run{'s' if len(entries) != 1 else ''} of `{BENCH_FILE}` "
             "(geometric mean over each suite's datasets; higher is better).",
             ""]
    lines += trend_table(entries)
    lines += ["", "## Latest record"]
    lines += dataset_breakdown(entries[-1]["record"])
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--latest", action="store_true",
                        help="skip the git history; report the working-tree "
                        "record only")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the markdown here instead of stdout")
    args = parser.parse_args(argv)
    report = build_report(latest_only=args.latest)
    if args.output is not None:
        args.output.write_text(report, encoding="utf-8")
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
