#!/usr/bin/env python
"""Chaos-smoke legs: kill workers mid-task and prove full recovery.

Leg 1 (spool): spools every compact subproblem of a generated graph, starts a
victim `repro worker` subprocess armed (via ``REPRO_FAULTS``) to stall forever
inside its first task, SIGKILLs it once it holds a claim, then lets a
surviving worker drain the spool.  The run passes only if the merged spool
answer is exactly the sequential DCFastQC answer, the dead-letter directory is
empty, and at least one task visibly went through the lease-reclaim machinery.

Leg 2 (branch-parallel): arms the same ``worker.task`` fault site to SIGKILL a
work-stealing branch-parallel worker mid-task, runs
``ParallelDCFastQC(mode="branch")`` and requires the crash to fall back to the
sequential path with an answer identical to a clean sequential run — and, the
point of the leg, that every ``/dev/shm`` shared-memory segment the steal
coordinator published was unlinked despite the crash.

Run from the repo root:  PYTHONPATH=src python scripts/chaos_worker_kill.py
"""

from __future__ import annotations

import glob
import os
import random
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, "src")

from repro import Graph
from repro.core.dcfastqc import DCFastQC
from repro.extensions.parallel import ParallelDCFastQC
from repro.extensions.stealing import SEGMENT_PREFIX
from repro.resilience.faults import install_plan, reset_plan
from repro.serve.worker import SpoolQueue, SpoolWorker, WorkTask
from repro.settrie.filter import filter_non_maximal

GAMMA, THETA = 0.85, 4


def _random_graph(seed: int = 11, vertices: int = 36, edges: int = 260) -> Graph:
    rng = random.Random(seed)
    graph = Graph()
    while graph.edge_count < edges:
        u, v = rng.randrange(vertices), rng.randrange(vertices)
        if u != v:
            graph.add_edge(u, v)
    return graph


def main() -> int:
    graph = _random_graph()
    sequential = set(filter_non_maximal(
        DCFastQC(graph, GAMMA, THETA).enumerate(), theta=THETA))

    with tempfile.TemporaryDirectory(prefix="chaos-spool-") as root:
        spool_dir = os.path.join(root, "spool")
        spool = SpoolQueue(spool_dir, lease_seconds=0.5, max_attempts=5)
        subproblems = tuple(
            DCFastQC(graph, GAMMA, THETA).iter_compact_subproblems())
        ids = spool.submit_subproblems(subproblems, GAMMA, THETA)
        tasks = {task_id: WorkTask(task_id=task_id, subproblem=subproblem,
                                   gamma=GAMMA, theta=THETA)
                 for task_id, subproblem in zip(ids, subproblems)}
        print(f"spooled {len(ids)} tasks under {spool_dir}")

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")]))
        env["REPRO_FAULTS"] = "worker.task:delay=600"
        victim = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", "--spool", spool_dir,
             "--lease-seconds", "0.5"],
            env=env)
        try:
            deadline = time.monotonic() + 30
            while not os.listdir(spool.claimed_dir):
                if time.monotonic() >= deadline:
                    raise SystemExit("victim worker never claimed a task")
                time.sleep(0.02)
            print(f"victim pid {victim.pid} holds a claim; sending SIGKILL")
            os.kill(victim.pid, signal.SIGKILL)
            victim.wait(timeout=10)
        finally:
            if victim.poll() is None:
                victim.kill()
                victim.wait(timeout=10)

        survivor = SpoolWorker(spool)
        survivor.run(idle_timeout=1.5)
        results = spool.collect(ids, timeout=60, tasks=tasks)

        candidates: set = set()
        for result in results:
            candidates.update(result.cliques)
        got = set(filter_non_maximal(
            sorted(candidates, key=lambda h: (-len(h), sorted(map(str, h)))),
            theta=THETA))

        if got != sequential:
            raise SystemExit(
                f"parity broken: spool answer {len(got)} cliques vs "
                f"sequential {len(sequential)}")
        dead = spool.dead_letters()
        if dead:
            raise SystemExit(f"dead-letter dir not empty: {dead}")
        reclaimed = [r for r in results if r.attempts > 0]
        if not reclaimed:
            raise SystemExit("no task carried a bumped attempt count; the "
                             "lease-reclaim path never ran")
        print(f"recovered: {len(got)} cliques match sequential parity, "
              f"{len(reclaimed)} task(s) reclaimed from the killed worker, "
              "dead-letter dir empty")

    branch_parallel_leg()
    return 0


def branch_parallel_leg() -> None:
    """SIGKILL a branch-parallel steal worker; require fallback parity and
    zero leaked shared-memory segments."""
    graph = _random_graph(seed=23)
    expected = set(filter_non_maximal(
        DCFastQC(graph, GAMMA, THETA).enumerate(), theta=THETA))
    install_plan("worker.task:kill:times=1")
    try:
        runner = ParallelDCFastQC(graph, GAMMA, THETA, workers=2, mode="branch")
        answers = set(runner.find_maximal())
    finally:
        reset_plan()
    if runner.mode_selected != "sequential":
        raise SystemExit("the killed branch worker did not trigger the "
                         f"sequential fallback (got {runner.mode_selected!r})")
    if answers != expected:
        raise SystemExit(
            f"branch-parallel fallback parity broken: {len(answers)} cliques "
            f"vs sequential {len(expected)}")
    leaked = glob.glob(f"/dev/shm/{SEGMENT_PREFIX}*")
    if leaked:
        raise SystemExit(f"leaked shared-memory segments after the worker "
                         f"kill: {leaked}")
    print(f"branch-parallel kill: sequential fallback matches parity "
          f"({len(answers)} cliques), /dev/shm clean")


if __name__ == "__main__":
    raise SystemExit(main())
