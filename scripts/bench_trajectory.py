#!/usr/bin/env python
"""Perf-trajectory harness: record every perf subsystem's speed over time.

Runs the repository's recorded benchmark suites and writes one combined
trajectory record to ``BENCH_core.json`` at the repository root:

* ``core-enumeration`` — cold DCFastQC enumeration (no result cache, no
  prepared-graph reuse) on registry dataset analogues at branch-heavy
  parameter points, under both execution kernels (``ledger`` vs the
  mask-based ``reference`` oracle), with output-parity checks;
* ``quickplus-kernel`` — the same ledger-vs-reference comparison for the
  Quick+ baseline (the paper's co-design ablation workhorse);
* ``engine-cache`` — cold vs warm `MQCEEngine.query` latency (result-cache
  serving path);
* ``dynamic-updates`` — one edge update + requery through the
  ``DynamicEngine`` (incremental) vs a full rebuild;
* ``large-graph`` — streaming CSR ingestion vs the dict/bitmask builder on a
  generated power-law edge list (10^5 vertices full, 2*10^4 quick), each in
  its own subprocess so peak RSS isolates one representation; the recorded
  ``speedup`` is the dict-over-CSR peak-RSS ratio and the row includes one
  budgeted enumerate query per backend;
* ``parallel`` — shard vs work-stealing branch parallelism at 4 workers on a
  planted-community graph whose one dominant subproblem serializes shard mode
  (10^5 vertices full, 2*10^4 quick), plus a steal-overhead row on an
  un-skewed multi-community graph.  The recorded ``speedup`` of the skewed
  row is the machine-independent *balance* speedup — largest subproblem's
  branch count over the busiest branch-parallel worker's branch count, i.e.
  the critical-path ratio — so the number is comparable across hosts with
  different core counts (wall-clock ratios are recorded next to it, flagged
  ``single_core`` when the host cannot physically show parallel wall-clock
  wins).  Both modes are parity-checked against the sequential ledger kernel
  and the row asserts the planner auto-selects the right mode from the
  observed branch histogram.

Committing the file after a perf-relevant change gives the repo a recorded
perf trajectory that later PRs can regress against — one file, every
subsystem.

Usage::

    PYTHONPATH=src python scripts/bench_trajectory.py              # all suites
    PYTHONPATH=src python scripts/bench_trajectory.py --suite core --quick
    PYTHONPATH=src python scripts/bench_trajectory.py --quick \\
        --assert-speedup 3.0 --assert-quickplus-speedup 1.5 --output -

``--assert-speedup X`` exits non-zero unless at least ``--assert-count``
core datasets beat the reference kernel by the given factor;
``--assert-quickplus-speedup``, ``--assert-warm-speedup``,
``--assert-dynamic-speedup`` and ``--assert-rss-speedup`` do the same for
the other suites (an RSS floor of 4 asserts CSR peaks under 25% of dict).  The CI
perf-smoke job runs the quick suites with floors so kernel, cache or
dynamic-path regressions fail the PR.  ``REPRO_BENCH_QUICK=1`` implies
``--quick``.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.baselines.quickplus import QuickPlus                   # noqa: E402
from repro.core.dcfastqc import DCFastQC                          # noqa: E402
from repro.datasets import (                                      # noqa: E402
    get_spec,
    load_dataset,
    load_dynamic,
    load_prepared,
)
from repro.engine import MQCEEngine, PreparedGraph                # noqa: E402
from repro.graph import preferential_attachment_edges             # noqa: E402

SUITES = ("core", "quickplus", "engine-cache", "dynamic-updates",
          "large-graph", "parallel")

#: Core suite: (dataset, gamma, theta) chosen so enumeration — not
#: preprocessing — dominates (hundreds to thousands of branches each).
CORE_FULL = (
    ("ca-grqc", 0.9, 5),
    ("enron", 0.85, 6),
    ("pokec", 0.9, 6),
    ("uk2002", 0.9, 7),
    ("uk2002-heavy", 0.85, 8),
)
CORE_QUICK = (
    ("enron", 0.85, 6),
    ("pokec", 0.9, 6),
    ("uk2002", 0.9, 7),
)

#: Quick+ suite: branch-heavy points where the baseline still terminates
#: quickly enough to benchmark both kernels.
QUICKPLUS_FULL = (
    ("trec", 0.96, 10),
    ("kmer", 0.51, 6),
    ("enron", 0.9, 9),
    ("flixster", 0.96, 10),
)
QUICKPLUS_QUICK = (
    ("trec", 0.96, 10),
    ("kmer", 0.51, 6),
)

ENGINE_CACHE_FULL = ("ca-grqc", "enron", "douban", "kmer")
ENGINE_CACHE_QUICK = ("ca-grqc",)

DYNAMIC_FULL = ("ca-grqc", "enron", "uk2002")
DYNAMIC_QUICK = ("ca-grqc",)

#: Large-graph suite rows: (name, vertices, attachment, gamma, theta,
#: time_limit).  Each row generates a power-law (preferential-attachment)
#: edge list, ingests it under both graph backends in separate subprocesses
#: and runs one budgeted enumerate query per backend; gamma/theta sit at the
#: graph's degeneracy (BA attachment 3) so the query does real branch work
#: instead of emptying the core.  The quick row completes untruncated and
#: also checks answer parity; the full 10^5-vertex row leans on the time
#: budget.
LARGE_GRAPH_FULL = (("powerlaw-100k", 100_000, 3, 0.9, 4, 30.0),)
LARGE_GRAPH_QUICK = (("powerlaw-20k", 20_000, 3, 0.9, 4, 120.0),)

#: Seed for the generated large-graph edge lists (fixed so the recorded
#: trajectory rows are comparable across commits).
LARGE_GRAPH_SEED = 13

#: Parallel suite rows: (name, vertices, background_edges, community_sizes,
#: seed, gamma, theta, kind).  "skewed" plants one dense community whose
#: subtree holds ~60% of all branches (a descending chain of similar-size
#: balls, so size proxies cannot see the skew — only branch counts can);
#: "uniform" plants several equal communities so shard mode load-balances and
#: the row measures pure steal-protocol overhead.
PARALLEL_FULL = (
    ("planted-skew-100k", 100_000, 200_000, (32,), 7, 0.9, 10, "skewed"),
    ("planted-uniform-20k", 20_000, 40_000, (24,) * 16, 9, 0.9, 10, "uniform"),
)
PARALLEL_QUICK = (
    ("planted-skew-20k", 20_000, 40_000, (32,), 7, 0.9, 10, "skewed"),
    ("planted-uniform-20k", 20_000, 40_000, (24,) * 16, 9, 0.9, 10, "uniform"),
)

#: Worker count for the parallel suite (the ISSUE acceptance point).
PARALLEL_WORKERS = 4

#: Benchmark rows may rename a dataset to carry distinct parameters.
DATASET_ALIASES = {"uk2002-heavy": "uk2002"}


def _best_of(repeat: int, build, run):
    """Best-of-``repeat`` timing; returns (seconds, instance, result)."""
    best = None
    for _ in range(repeat):
        instance = build()
        start = time.perf_counter()
        result = run(instance)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[0]:
            best = (elapsed, instance, result)
    return best


def _geomean(values) -> float:
    values = list(values)
    product = 1.0
    for value in values:
        product *= value
    return product ** (1 / len(values)) if values else 0.0


# ----------------------------------------------------------------------
# Suites
# ----------------------------------------------------------------------
def run_core_suite(suite, repeat: int = 1, verbose: bool = True) -> dict:
    """Cold DCFastQC enumeration under both kernels (with parity checks)."""
    rows = {}
    for name, gamma, theta in suite:
        graph = load_dataset(DATASET_ALIASES.get(name, name))
        ledger_s, ledger_algo, ledger_results = _best_of(
            repeat, lambda: DCFastQC(graph, gamma, theta, kernel="ledger"),
            lambda algo: algo.enumerate())
        reference_s, _, reference_results = _best_of(
            repeat, lambda: DCFastQC(graph, gamma, theta, kernel="reference"),
            lambda algo: algo.enumerate())
        if ledger_results != reference_results:
            raise AssertionError(
                f"{name}: kernel and reference outputs diverged "
                f"({len(ledger_results)} vs {len(reference_results)} candidates)")
        stats = ledger_algo.statistics
        branches = stats.branches_explored
        row = {
            "gamma": gamma,
            "theta": theta,
            "vertices": graph.vertex_count,
            "edges": graph.edge_count,
            "candidates": len(ledger_results),
            "branches": branches,
            "ledger_ms": round(ledger_s * 1000, 3),
            "reference_ms": round(reference_s * 1000, 3),
            "branches_per_sec": round(branches / ledger_s) if ledger_s else 0,
            "speedup": round(reference_s / ledger_s, 2) if ledger_s else float("inf"),
            "ledger_moves": stats.ledger_moves,
            "ledger_updates": stats.ledger_updates,
            "shrink_rounds": stats.shrink_rounds,
            "shrink_removed": (stats.shrink_removed_one_hop
                               + stats.shrink_removed_two_hop),
            "shrink_ledger_updates": stats.shrink_ledger_updates,
        }
        rows[name] = row
        if verbose:
            print(f"core       {name:14s} gamma={gamma} theta={theta}: "
                  f"ledger {row['ledger_ms']:.1f} ms vs reference "
                  f"{row['reference_ms']:.1f} ms -> {row['speedup']}x "
                  f"({row['branches']} branches)")
    return {
        "workload": "cold DCFastQC enumeration (no result cache)",
        "kernels": ["ledger", "reference"],
        "datasets": rows,
        "summary": {
            "geomean_speedup": round(
                _geomean(r["speedup"] for r in rows.values()), 2),
            "total_ledger_ms": round(sum(r["ledger_ms"] for r in rows.values()), 3),
            "total_reference_ms": round(
                sum(r["reference_ms"] for r in rows.values()), 3),
        },
    }


def run_quickplus_suite(suite, repeat: int = 1, verbose: bool = True) -> dict:
    """Cold Quick+ enumeration under both kernels (with parity checks)."""
    rows = {}
    for name, gamma, theta in suite:
        graph = load_dataset(DATASET_ALIASES.get(name, name))
        ledger_s, ledger_algo, ledger_results = _best_of(
            repeat, lambda: QuickPlus(graph, gamma, theta, kernel="ledger"),
            lambda algo: algo.enumerate())
        reference_s, _, reference_results = _best_of(
            repeat, lambda: QuickPlus(graph, gamma, theta, kernel="reference"),
            lambda algo: algo.enumerate())
        if ledger_results != reference_results:
            raise AssertionError(f"{name}: Quick+ kernel outputs diverged")
        row = {
            "gamma": gamma,
            "theta": theta,
            "branches": ledger_algo.statistics.branches_explored,
            "ledger_ms": round(ledger_s * 1000, 3),
            "reference_ms": round(reference_s * 1000, 3),
            "speedup": round(reference_s / ledger_s, 2) if ledger_s else float("inf"),
        }
        rows[name] = row
        if verbose:
            print(f"quickplus  {name:14s} gamma={gamma} theta={theta}: "
                  f"ledger {row['ledger_ms']:.1f} ms vs reference "
                  f"{row['reference_ms']:.1f} ms -> {row['speedup']}x")
    return {
        "workload": "cold Quick+ enumeration (SE branching, Type I/II pruning)",
        "kernels": ["ledger", "reference"],
        "datasets": rows,
        "summary": {
            "geomean_speedup": round(
                _geomean(r["speedup"] for r in rows.values()), 2),
        },
    }


def run_engine_cache_suite(names, repeat: int = 1, verbose: bool = True) -> dict:
    """Cold vs warm `MQCEEngine.query` latency per registry dataset."""
    rows = {}
    for name in names:
        spec = get_spec(name)
        gamma, theta = spec.default_gamma, spec.default_theta
        best = None
        for _ in range(repeat):
            prepared = load_prepared(name)
            engine = MQCEEngine()
            start = time.perf_counter()
            cold_result = engine.query(prepared, gamma, theta)
            cold = time.perf_counter() - start
            start = time.perf_counter()
            warm_result = engine.query(prepared, gamma, theta)
            warm = time.perf_counter() - start
            assert warm_result.maximal_quasi_cliques == cold_result.maximal_quasi_cliques
            assert engine.cache.stats.hits == 1
            if best is None or cold + warm < best[0] + best[1]:
                best = (cold, warm)
        cold, warm = best
        row = {
            "gamma": gamma,
            "theta": theta,
            "cold_ms": round(cold * 1000, 3),
            "warm_ms": round(warm * 1000, 3),
            "speedup": round(cold / warm, 1) if warm else float("inf"),
        }
        rows[name] = row
        if verbose:
            print(f"cache      {name:14s} cold {row['cold_ms']:.1f} ms vs warm "
                  f"{row['warm_ms']:.2f} ms -> {row['speedup']}x")
    return {
        "workload": "MQCEEngine.query cold vs warm (result-cache hit)",
        "datasets": rows,
        "summary": {
            "geomean_speedup": round(
                _geomean(r["speedup"] for r in rows.values()), 1),
        },
    }


def run_dynamic_suite(names, repeat: int = 1, verbose: bool = True) -> dict:
    """One edge update + requery: DynamicEngine vs full engine rebuild."""
    rows = {}
    for name in names:
        spec = get_spec(name)
        gamma, theta = spec.default_gamma, spec.default_theta
        best = None
        for _ in range(repeat):
            dynamic = load_dynamic(name)
            baseline = dynamic.query(gamma, theta)
            result_sets = (list(baseline.maximal_quasi_cliques)
                           + list(baseline.candidate_quasi_cliques))
            edge = next(((u, v) for u, v in dynamic.graph.edges()
                         if not any(u in s and v in s for s in result_sets)), None)
            assert edge is not None, f"{name}: no background edge available"
            start = time.perf_counter()
            report = dynamic.remove_edge(*edge)
            incremental_result = dynamic.query(gamma, theta)
            incremental = time.perf_counter() - start
            assert report.invalidated == 0 and report.retained >= 1, report
            start = time.perf_counter()
            rebuilt = MQCEEngine().query(PreparedGraph(dynamic.graph), gamma, theta)
            rebuild = time.perf_counter() - start
            assert rebuilt.maximal_quasi_cliques == incremental_result.maximal_quasi_cliques
            if best is None or incremental < best[0]:
                best = (incremental, rebuild)
        incremental, rebuild = best
        row = {
            "gamma": gamma,
            "theta": theta,
            "incremental_ms": round(incremental * 1000, 3),
            "rebuild_ms": round(rebuild * 1000, 3),
            "speedup": (round(rebuild / incremental, 1)
                        if incremental else float("inf")),
        }
        rows[name] = row
        if verbose:
            print(f"dynamic    {name:14s} incremental {row['incremental_ms']:.1f} ms "
                  f"vs rebuild {row['rebuild_ms']:.1f} ms -> {row['speedup']}x")
    return {
        "workload": "edge update + requery: DynamicEngine vs full rebuild",
        "datasets": rows,
        "summary": {
            "geomean_speedup": round(
                _geomean(r["speedup"] for r in rows.values()), 1),
        },
    }


def _ingest_subprocess(path: str, backend: str, gamma: float, theta: int,
                       time_limit: float) -> dict:
    """Run ``repro ingest`` in a child process and return its JSON report.

    Peak RSS is a process-wide high-water mark, so the two backends must be
    measured in separate interpreters; the child reports its post-import
    baseline so ``peak - baseline`` isolates representation + query memory.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    command = [sys.executable, "-m", "repro", "ingest", path,
               "--backend", backend, "--gamma", str(gamma),
               "--theta", str(theta), "--time-limit", str(time_limit),
               "--json"]
    completed = subprocess.run(command, env=env, capture_output=True,
                               text=True, check=True)
    report = json.loads(completed.stdout)
    report["rss_delta_bytes"] = (report["peak_rss_bytes"]
                                 - report["baseline_rss_bytes"])
    return report


def run_large_graph_suite(suite, repeat: int = 1, verbose: bool = True) -> dict:
    """Streaming CSR ingestion vs the dict/bitmask builder, per subprocess."""
    # Peak-RSS deltas are allocation high-water marks, not timings: they are
    # stable across runs, and the children are the most expensive thing the
    # trajectory launches — two repetitions bound the cost of --repeat 4.
    repeat = min(repeat, 2)
    rows = {}
    for name, vertices, attachment, gamma, theta, time_limit in suite:
        handle = tempfile.NamedTemporaryFile(
            "w", suffix=".edges", prefix="repro-large-", delete=False)
        try:
            with handle:
                for u, v in preferential_attachment_edges(
                        vertices, attachment, seed=LARGE_GRAPH_SEED):
                    handle.write(f"{u} {v}\n")
            reports = {}
            for backend in ("dict", "csr"):
                best = None
                for _ in range(repeat):
                    report = _ingest_subprocess(handle.name, backend, gamma,
                                                theta, time_limit)
                    if best is None or report["rss_delta_bytes"] < best["rss_delta_bytes"]:
                        best = report
                reports[backend] = best
        finally:
            os.unlink(handle.name)
        dict_report, csr_report = reports["dict"], reports["csr"]
        if not dict_report["truncated"] and not csr_report["truncated"]:
            if dict_report["maximal"] != csr_report["maximal"]:
                raise AssertionError(
                    f"{name}: backends disagree on the answer "
                    f"({dict_report['maximal']} vs {csr_report['maximal']})")
        dict_delta, csr_delta = (dict_report["rss_delta_bytes"],
                                 csr_report["rss_delta_bytes"])
        row = {
            "gamma": gamma,
            "theta": theta,
            "time_limit": time_limit,
            "vertices": csr_report["vertices"],
            "edges": csr_report["edges"],
            "dict_ingest_s": dict_report["ingest_seconds"],
            "csr_ingest_s": csr_report["ingest_seconds"],
            "dict_rss_mb": round(dict_delta / 1e6, 1),
            "csr_rss_mb": round(csr_delta / 1e6, 1),
            "maximal": csr_report["maximal"],
            "truncated": dict_report["truncated"] or csr_report["truncated"],
            "enumeration_s": csr_report["enumeration_seconds"],
            "speedup": round(dict_delta / csr_delta, 2) if csr_delta else float("inf"),
        }
        rows[name] = row
        if verbose:
            print(f"large      {name:14s} gamma={gamma} theta={theta}: "
                  f"dict {row['dict_rss_mb']:.1f} MB vs CSR "
                  f"{row['csr_rss_mb']:.1f} MB -> {row['speedup']}x "
                  f"({row['maximal']} maximal"
                  f"{', truncated' if row['truncated'] else ''})")
    return {
        "workload": ("power-law edge-list ingest + one budgeted query: "
                     "peak-RSS delta, dict/bitmask vs streaming CSR"),
        "backends": ["dict", "csr"],
        "datasets": rows,
        "summary": {
            "geomean_speedup": round(
                _geomean(r["speedup"] for r in rows.values()), 2),
        },
    }


def run_parallel_suite(suite, repeat: int = 1, verbose: bool = True) -> dict:
    """Shard vs work-stealing branch parallelism on planted-community graphs.

    Each row runs the same query three ways — sequential ledger DCFastQC
    (the parity oracle), shard mode and branch mode, both at
    :data:`PARALLEL_WORKERS` workers — and then replans the query from the
    observed branch histogram to check the planner picks the mode the
    measurements favour.  The skewed row's ``speedup`` is the critical-path
    (balance) ratio: the largest subproblem's branch count, which lower-bounds
    shard wall-clock, over the busiest branch-parallel worker's branch count.
    Branch counts are machine-independent, so the recorded trajectory is
    comparable across hosts; wall-clock ratios ride along, with
    ``single_core`` flagging hosts where parallel wall-clock wins are
    physically impossible.  The uniform row's ``speedup`` is the shard/branch
    wall ratio (>= 0.9 means stealing costs under 10% on un-skewed input).
    """
    from repro.engine.planner import PlannerConfig, QueryPlanner
    from repro.extensions.parallel import LAST_PARALLEL_RUN, ParallelDCFastQC
    from repro.graph.generators import planted_quasi_clique_graph

    def _canonical(results):
        return sorted(sorted(map(str, clique)) for clique in results)

    multicore = (os.cpu_count() or 1) >= PARALLEL_WORKERS
    rows = {}
    for name, vertices, background, communities, seed, gamma, theta, kind in suite:
        graph = planted_quasi_clique_graph(vertices, background,
                                           list(communities), gamma, seed=seed)
        sequential_s, driver, sequential_results = _best_of(
            repeat, lambda: DCFastQC(graph, gamma, theta, kernel="ledger"),
            lambda algo: algo.enumerate())
        branch_histogram = driver.statistics.subproblem_branches
        expected = _canonical(sequential_results)

        shard_s, _, shard_results = _best_of(
            repeat, lambda: ParallelDCFastQC(graph, gamma, theta,
                                             workers=PARALLEL_WORKERS,
                                             mode="shard"),
            lambda runner: runner.enumerate())
        branch_s, branch_runner, branch_results = _best_of(
            repeat, lambda: ParallelDCFastQC(graph, gamma, theta,
                                             workers=PARALLEL_WORKERS,
                                             mode="branch"),
            lambda runner: runner.enumerate())
        if _canonical(shard_results) != expected:
            raise AssertionError(f"{name}: shard answers diverged from sequential")
        if _canonical(branch_results) != expected:
            raise AssertionError(f"{name}: branch answers diverged from sequential")

        worker_branches = LAST_PARALLEL_RUN.get("worker_branches", {})
        steals = branch_runner.statistics.steals
        busiest = max(worker_branches.values()) if worker_branches else 0
        balance_speedup = (round(branch_histogram.max / busiest, 2)
                          if busiest else 0.0)
        wall_speedup = round(shard_s / branch_s, 2) if branch_s else float("inf")

        # Replan from the run's own evidence: the planner must pick branch
        # mode on the skewed row and keep shard on the uniform one.
        prepared = PreparedGraph(graph)
        prepared.record_subproblem_histogram(
            gamma, theta, driver.statistics.subproblem_sizes)
        prepared.record_subproblem_histogram(
            gamma, theta, branch_histogram, kind="branches")
        plan = QueryPlanner(PlannerConfig(max_workers=PARALLEL_WORKERS)).plan(
            prepared, gamma, theta, workers=PARALLEL_WORKERS)
        expected_mode = "branch" if kind == "skewed" else "shard"
        if plan.parallel_mode != expected_mode:
            raise AssertionError(
                f"{name}: planner picked {plan.parallel_mode!r} from the "
                f"observed branch histogram, expected {expected_mode!r} "
                f"(skew {plan.skew_ratio:.2f} vs threshold "
                f"{plan.skew_threshold:.2f})")

        row = {
            "gamma": gamma,
            "theta": theta,
            "kind": kind,
            "vertices": graph.vertex_count,
            "edges": graph.edge_count,
            "workers": PARALLEL_WORKERS,
            "branches": driver.statistics.branches_explored,
            "subproblems": branch_histogram.count,
            "largest_subproblem_branches": branch_histogram.max,
            "sequential_s": round(sequential_s, 3),
            "shard_s": round(shard_s, 3),
            "branch_s": round(branch_s, 3),
            "steals": steals,
            "busiest_worker_branches": busiest,
            "balance_speedup": balance_speedup,
            "wall_speedup": wall_speedup,
            "single_core": not multicore,
            "auto_mode": plan.parallel_mode,
            "skew_ratio": round(plan.skew_ratio, 3),
            "parity": True,
            "speedup": balance_speedup if kind == "skewed" else wall_speedup,
        }
        rows[name] = row
        if verbose:
            print(f"parallel   {name:18s} gamma={gamma} theta={theta} "
                  f"[{kind}]: shard {row['shard_s']:.2f}s vs branch "
                  f"{row['branch_s']:.2f}s, balance {balance_speedup}x "
                  f"({steals} steals, auto={plan.parallel_mode}"
                  f"{', single-core host' if not multicore else ''})")
    return {
        "workload": ("shard vs work-stealing branch parallelism at "
                     f"{PARALLEL_WORKERS} workers (planted-community graphs, "
                     "sequential-parity checked)"),
        "modes": ["shard", "branch"],
        "datasets": rows,
        "summary": {
            "geomean_speedup": round(
                _geomean(r["speedup"] for r in rows.values()
                         if r["kind"] == "skewed"), 2),
            "uniform_overhead_pct": next(
                (round((r["branch_s"] / r["shard_s"] - 1.0) * 100, 1)
                 for r in rows.values() if r["kind"] == "uniform"
                 and r["shard_s"]), None),
        },
    }


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _assert_floor(record: dict, suite_key: str, floor: float | None,
                  needed: int, failures: list[str]) -> None:
    if floor is None:
        return
    if suite_key not in record["suites"]:
        # A floor on a suite that did not run is a harness mistake (wrong
        # --suite selection, renamed key): fail loudly, never vacuously pass.
        failures.append(f"{suite_key}: floor {floor}x requested but the suite "
                        f"did not run (ran: {sorted(record['suites'])})")
        return
    rows = record["suites"][suite_key]["datasets"]
    passing = [name for name, row in rows.items() if row["speedup"] >= floor]
    required = min(needed, len(rows))
    if len(passing) < required:
        failures.append(
            f"{suite_key}: only {len(passing)} of {len(rows)} datasets reached "
            f"{floor}x (need {required}): "
            f"{ {name: row['speedup'] for name, row in rows.items()} }")
    else:
        print(f"OK: {suite_key} has {len(passing)}/{len(rows)} datasets at "
              f">= {floor}x ({', '.join(passing)})")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--suite", action="append", choices=SUITES + ("all",),
                        help="which suites to run (repeatable; default all)")
    parser.add_argument("--quick", action="store_true",
                        help="run the CI smoke subsets (also via REPRO_BENCH_QUICK=1)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="repetitions per measurement (best-of, default 1)")
    parser.add_argument("--output", type=Path, default=REPO_ROOT / "BENCH_core.json",
                        help="where to write the trajectory record "
                        "(default: BENCH_core.json at the repo root; '-' to skip)")
    parser.add_argument("--assert-speedup", type=float, default=None, metavar="FLOOR",
                        help="core suite: fail unless enough datasets beat the "
                        "reference kernel by this factor")
    parser.add_argument("--assert-quickplus-speedup", type=float, default=None,
                        metavar="FLOOR",
                        help="quickplus suite: same assertion for Quick+")
    parser.add_argument("--assert-warm-speedup", type=float, default=None,
                        metavar="FLOOR",
                        help="engine-cache suite: warm hits must beat cold queries")
    parser.add_argument("--assert-dynamic-speedup", type=float, default=None,
                        metavar="FLOOR",
                        help="dynamic-updates suite: incremental must beat rebuild")
    parser.add_argument("--assert-rss-speedup", type=float, default=None,
                        metavar="FLOOR",
                        help="large-graph suite: dict peak-RSS delta must exceed "
                        "the CSR delta by this factor (4 = CSR under 25%%)")
    parser.add_argument("--assert-branch-speedup", type=float, default=None,
                        metavar="FLOOR",
                        help="parallel suite: the skewed row's balance speedup "
                        "(branch mode's critical path vs shard's) must reach "
                        "this factor")
    parser.add_argument("--assert-count", type=int, default=2, metavar="N",
                        help="how many datasets must meet each floor (default 2)")
    args = parser.parse_args(argv)

    quick = args.quick or bool(os.environ.get("REPRO_BENCH_QUICK"))
    selected = set(args.suite or ["all"])
    if "all" in selected:
        selected = set(SUITES)

    from repro.obs.process import peak_rss_bytes

    record: dict = {"suites": {}, "quick": quick, "repeat": args.repeat}
    if "core" in selected:
        record["suites"]["core-enumeration"] = run_core_suite(
            CORE_QUICK if quick else CORE_FULL, repeat=args.repeat)
    if "quickplus" in selected:
        record["suites"]["quickplus-kernel"] = run_quickplus_suite(
            QUICKPLUS_QUICK if quick else QUICKPLUS_FULL, repeat=args.repeat)
    if "engine-cache" in selected:
        record["suites"]["engine-cache"] = run_engine_cache_suite(
            ENGINE_CACHE_QUICK if quick else ENGINE_CACHE_FULL, repeat=args.repeat)
    if "dynamic-updates" in selected:
        record["suites"]["dynamic-updates"] = run_dynamic_suite(
            DYNAMIC_QUICK if quick else DYNAMIC_FULL, repeat=args.repeat)
    if "large-graph" in selected:
        record["suites"]["large-graph"] = run_large_graph_suite(
            LARGE_GRAPH_QUICK if quick else LARGE_GRAPH_FULL,
            repeat=args.repeat)
    if "parallel" in selected:
        record["suites"]["parallel"] = run_parallel_suite(
            PARALLEL_QUICK if quick else PARALLEL_FULL, repeat=args.repeat)

    # Process high-water mark after every suite ran (None on platforms
    # without getrusage) — part of the recorded trajectory, like the timings.
    record["peak_rss_bytes"] = peak_rss_bytes()

    print()
    for key, suite in record["suites"].items():
        summary = suite["summary"]
        print(f"{key}: geomean speedup {summary['geomean_speedup']}x "
              f"over {len(suite['datasets'])} datasets")

    if str(args.output) != "-":
        args.output.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {args.output}")

    failures: list[str] = []
    _assert_floor(record, "core-enumeration", args.assert_speedup,
                  args.assert_count, failures)
    _assert_floor(record, "quickplus-kernel", args.assert_quickplus_speedup,
                  args.assert_count, failures)
    _assert_floor(record, "engine-cache", args.assert_warm_speedup,
                  1, failures)
    _assert_floor(record, "dynamic-updates", args.assert_dynamic_speedup,
                  1, failures)
    _assert_floor(record, "large-graph", args.assert_rss_speedup,
                  1, failures)
    _assert_floor(record, "parallel", args.assert_branch_speedup,
                  1, failures)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
