#!/usr/bin/env python
"""Perf-trajectory harness: record the enumeration core's speed over time.

Runs a fixed benchmark suite — cold DCFastQC enumeration (no result cache, no
prepared-graph reuse) on registry dataset analogues at branch-heavy parameter
points — under both execution kernels:

* ``ledger`` — the incremental degree-ledger kernel over compact subproblem
  index spaces (:mod:`repro.core.kernel`), the production default;
* ``reference`` — the original mask/popcount implementation, kept as the
  differential-testing oracle and as the perf baseline.

Per dataset it records latency, branch counts and branches/sec, and writes
the whole table to ``BENCH_core.json`` at the repository root.  Committing
that file after a perf-relevant change gives the repo a recorded perf
trajectory that later PRs can regress against.

Usage::

    PYTHONPATH=src python scripts/bench_trajectory.py            # full suite
    PYTHONPATH=src python scripts/bench_trajectory.py --quick    # CI smoke
    PYTHONPATH=src python scripts/bench_trajectory.py --assert-speedup 3.0

``--assert-speedup X`` exits non-zero unless at least ``--assert-count``
datasets (default 2) beat the reference kernel by the given factor — the CI
perf-smoke job runs ``--quick --assert-speedup 3.0`` so a kernel regression
fails the PR.  ``REPRO_BENCH_QUICK=1`` implies ``--quick``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.dcfastqc import DCFastQC                      # noqa: E402
from repro.datasets import load_dataset                       # noqa: E402

#: The fixed suite: (dataset, gamma, theta) chosen so enumeration — not
#: preprocessing — dominates (hundreds to thousands of branches each).
FULL_SUITE = (
    ("ca-grqc", 0.9, 5),
    ("enron", 0.85, 6),
    ("pokec", 0.9, 6),
    ("uk2002", 0.9, 7),
    ("uk2002-heavy", 0.85, 8),
)

#: Quick (CI smoke) subset: the three rows with the largest speedup margins.
QUICK_SUITE = (
    ("enron", 0.85, 6),
    ("pokec", 0.9, 6),
    ("uk2002", 0.9, 7),
)

#: Benchmark rows may rename a dataset to carry distinct parameters.
DATASET_ALIASES = {"uk2002-heavy": "uk2002"}


def _run_kernel(graph, gamma: float, theta: int, kernel: str, repeat: int):
    """Best-of-``repeat`` cold enumeration; returns (seconds, algo, results)."""
    best = None
    for _ in range(repeat):
        algo = DCFastQC(graph, gamma, theta, kernel=kernel)
        start = time.perf_counter()
        results = algo.enumerate()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[0]:
            best = (elapsed, algo, results)
    return best


def run_suite(suite, repeat: int = 1, verbose: bool = True) -> dict:
    """Run every suite row under both kernels; returns the trajectory record."""
    rows = {}
    for name, gamma, theta in suite:
        graph = load_dataset(DATASET_ALIASES.get(name, name))
        ledger_s, ledger_algo, ledger_results = _run_kernel(
            graph, gamma, theta, "ledger", repeat)
        reference_s, reference_algo, reference_results = _run_kernel(
            graph, gamma, theta, "reference", repeat)
        if ledger_results != reference_results:
            raise AssertionError(
                f"{name}: kernel and reference outputs diverged "
                f"({len(ledger_results)} vs {len(reference_results)} candidates)")
        branches = ledger_algo.statistics.branches_explored
        row = {
            "gamma": gamma,
            "theta": theta,
            "vertices": graph.vertex_count,
            "edges": graph.edge_count,
            "candidates": len(ledger_results),
            "branches": branches,
            "ledger_ms": round(ledger_s * 1000, 3),
            "reference_ms": round(reference_s * 1000, 3),
            "branches_per_sec": round(branches / ledger_s) if ledger_s else 0,
            "speedup": round(reference_s / ledger_s, 2) if ledger_s else float("inf"),
            "ledger_moves": ledger_algo.statistics.ledger_moves,
            "ledger_updates": ledger_algo.statistics.ledger_updates,
        }
        rows[name] = row
        if verbose:
            print(f"{name:14s} gamma={gamma} theta={theta}: "
                  f"ledger {row['ledger_ms']:.1f} ms vs reference "
                  f"{row['reference_ms']:.1f} ms -> {row['speedup']}x "
                  f"({row['branches']} branches, "
                  f"{row['branches_per_sec']} branches/s)")
    speedups = [row["speedup"] for row in rows.values()]
    geomean = 1.0
    for value in speedups:
        geomean *= value
    geomean **= 1 / len(speedups)
    return {
        "suite": "core-enumeration-v1",
        "workload": "cold DCFastQC enumeration (no result cache)",
        "kernels": ["ledger", "reference"],
        "datasets": rows,
        "summary": {
            "geomean_speedup": round(geomean, 2),
            "total_ledger_ms": round(sum(r["ledger_ms"] for r in rows.values()), 3),
            "total_reference_ms": round(sum(r["reference_ms"] for r in rows.values()), 3),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--quick", action="store_true",
                        help="run the CI smoke subset (also via REPRO_BENCH_QUICK=1)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="repetitions per measurement (best-of, default 1)")
    parser.add_argument("--output", type=Path, default=REPO_ROOT / "BENCH_core.json",
                        help="where to write the trajectory record "
                        "(default: BENCH_core.json at the repo root; '-' to skip)")
    parser.add_argument("--assert-speedup", type=float, default=None, metavar="FLOOR",
                        help="exit non-zero unless enough datasets beat the "
                        "reference kernel by this factor")
    parser.add_argument("--assert-count", type=int, default=2, metavar="N",
                        help="how many datasets must meet the floor (default 2)")
    args = parser.parse_args(argv)

    quick = args.quick or bool(os.environ.get("REPRO_BENCH_QUICK"))
    suite = QUICK_SUITE if quick else FULL_SUITE
    record = run_suite(suite, repeat=args.repeat)
    record["quick"] = quick
    print(f"\ngeomean speedup: {record['summary']['geomean_speedup']}x over "
          f"{len(record['datasets'])} datasets")

    if str(args.output) != "-":
        args.output.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {args.output}")

    if args.assert_speedup is not None:
        passing = [name for name, row in record["datasets"].items()
                   if row["speedup"] >= args.assert_speedup]
        needed = min(args.assert_count, len(record["datasets"]))
        if len(passing) < needed:
            print(f"FAIL: only {len(passing)} datasets reached "
                  f"{args.assert_speedup}x (need {needed}): {record['datasets']}",
                  file=sys.stderr)
            return 1
        print(f"OK: {len(passing)}/{len(record['datasets'])} datasets at "
              f">= {args.assert_speedup}x ({', '.join(passing)})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
