"""Vertex → cached-entry inverted index for selective cache invalidation.

A cached :class:`~repro.pipeline.results.EnumerationResult` concerns a
*vertex region*: the union of the vertices of its maximal quasi-cliques and
its MQCE-S1 candidates.  For γ >= 0.5 every quasi-clique has diameter at most
2 (the paper's Property 2), which localises the effect of a mutation: any
maximal quasi-clique that appears or disappears when an edge is touched lies
entirely inside the 2-hop neighbourhood of the touched endpoints.  The
:class:`CacheIndex` maps every vertex label to the cache entries whose region
contains it, so the dynamic engine can find the entries a mutation *might*
affect in time proportional to the touched neighbourhood — every other entry
provably still holds the exact answer and survives (re-addressed to the new
graph fingerprint).

The index stores metadata only; result lists are shared by reference with the
:class:`~repro.engine.cache.ResultCache` values, so memory overhead is one
posting set per distinct vertex plus one small record per entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from ..pipeline.results import EnumerationResult


@dataclass(frozen=True)
class EntryMeta:
    """What selective invalidation needs to know about one cached entry.

    ``gamma`` / ``theta`` are the entry's quasi-clique parameters (gamma as
    the exact fraction used in the cache key), ``result_sets`` the maximal and
    candidate vertex sets of the cached result (shared by reference), and
    ``region`` their union.
    """

    gamma: object
    theta: int
    result_sets: tuple[frozenset, ...]
    region: frozenset


class CacheIndex:
    """An inverted index from vertex labels to registered cache entries."""

    def __init__(self) -> None:
        self._entries: dict[Hashable, EntryMeta] = {}
        self._postings: dict[Hashable, set[Hashable]] = {}

    # ------------------------------------------------------------------
    def register(self, key: Hashable, result: EnumerationResult,
                 gamma, theta: int) -> EntryMeta:
        """Index one cached entry (idempotent for an already-registered key)."""
        existing = self._entries.get(key)
        if existing is not None:
            return existing
        result_sets = tuple(result.maximal_quasi_cliques) + tuple(
            result.candidate_quasi_cliques)
        region = frozenset().union(*result_sets) if result_sets else frozenset()
        meta = EntryMeta(gamma=gamma, theta=int(theta),
                         result_sets=result_sets, region=region)
        self._entries[key] = meta
        for label in region:
            self._postings.setdefault(label, set()).add(key)
        return meta

    def discard(self, key: Hashable) -> bool:
        """Drop one entry and its postings; returns True when it was present."""
        meta = self._entries.pop(key, None)
        if meta is None:
            return False
        for label in meta.region:
            postings = self._postings.get(label)
            if postings is not None:
                postings.discard(key)
                if not postings:
                    del self._postings[label]
        return True

    def rekey(self, old_key: Hashable, new_key: Hashable) -> bool:
        """Re-address one entry (used when the graph fingerprint changes)."""
        meta = self._entries.pop(old_key, None)
        if meta is None:
            return False
        self._entries[new_key] = meta
        for label in meta.region:
            postings = self._postings[label]
            postings.discard(old_key)
            postings.add(new_key)
        return True

    # ------------------------------------------------------------------
    def touching(self, labels: Iterable[Hashable]) -> set[Hashable]:
        """Keys of every entry whose region intersects ``labels``."""
        touched: set[Hashable] = set()
        for label in labels:
            touched |= self._postings.get(label, set())
        return touched

    def get(self, key: Hashable) -> EntryMeta | None:
        return self._entries.get(key)

    def items(self):
        return self._entries.items()

    def keys(self) -> list:
        return list(self._entries)

    def clear(self) -> None:
        self._entries.clear()
        self._postings.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __repr__(self) -> str:
        return f"CacheIndex(entries={len(self)}, vertices={len(self._postings)})"
