"""Dynamic graph updates with incremental engine maintenance.

This subsystem turns the batch reproduction into a servable system for graphs
that change: :class:`DynamicEngine` binds a mutable graph to an
:class:`~repro.engine.MQCEEngine`, patches the prepared-graph artifacts from
the graph's mutation changelog, and invalidates the result cache *selectively*
through a vertex → cached-entry inverted index — entries untouched by a
mutation survive (re-addressed to the new content fingerprint) and keep their
warm-hit speedup.

Quickstart
----------
>>> from repro import Graph
>>> from repro.dynamic import DynamicEngine
>>> graph = Graph(edges=[(1, 2), (1, 3), (2, 3), (2, 4), (3, 4), (1, 4)])
>>> dynamic = DynamicEngine(graph)
>>> dynamic.query(0.9, 3).maximal_quasi_cliques
[frozenset({1, 2, 3, 4})]
>>> report = dynamic.remove_edge(1, 4)
>>> sorted(sorted(h) for h in dynamic.query(0.9, 3).maximal_quasi_cliques)
[[1, 2, 3], [2, 3, 4]]
"""

from .engine import DynamicEngine, UpdateReport, UpdateStats
from .fingerprint import IncrementalFingerprint
from .index import CacheIndex, EntryMeta
from .prepared import DynamicPreparedGraph
from .updates import UpdateError, UpdateOp, normalise_update, parse_updates, read_update_script

__all__ = [
    "DynamicEngine",
    "DynamicPreparedGraph",
    "CacheIndex",
    "EntryMeta",
    "IncrementalFingerprint",
    "UpdateError",
    "UpdateOp",
    "UpdateReport",
    "UpdateStats",
    "normalise_update",
    "parse_updates",
    "read_update_script",
]
