"""The dynamic query engine: incremental maintenance under graph mutations.

:class:`DynamicEngine` binds one mutable :class:`~repro.graph.Graph` to one
:class:`~repro.engine.MQCEEngine` and keeps the whole serving stack coherent
while the graph changes:

1. **Artifact patching** — the engine's
   :class:`~repro.dynamic.prepared.DynamicPreparedGraph` consumes the graph's
   :class:`~repro.graph.delta.GraphDelta` records and patches its memoized
   preprocessing (fingerprint, degrees, components, core bounds) instead of
   recomputing it, so post-update queries skip the O(|V| + |E|) re-prepare.
2. **Selective cache invalidation** — a vertex → cached-entry inverted index
   (:class:`~repro.dynamic.index.CacheIndex`) confines invalidation to the
   entries a mutation can actually affect.  For γ >= 0.5 every quasi-clique
   has diameter <= 2, so any maximal quasi-clique that appears or disappears
   lies inside the 2-hop neighbourhood of a touched edge; the rules below are
   conservative (they may invalidate a still-valid entry) but never retain a
   stale one:

   * *edge removed* ``(u, v)`` — removing an edge cannot create a new
     quasi-clique, only kill answers containing both endpoints or promote
     their subsets to maximal; an entry is stale iff one of its result sets
     contains **both** ``u`` and ``v``.
   * *edge added* ``(u, v)`` — an entry is stale if its region intersects
     the 2-hop ball of ``{u, v}`` (an existing answer could be absorbed), or
     if a *new* answer could have appeared: both endpoints survive the
     ``ceil(gamma * (theta - 1))``-core of the subgraph induced by the ball
     and that core is at least ``theta`` strong.
   * *vertex removed* — stale iff the vertex is in the entry's region (its
     incident edge removals are handled by the rule above first).
   * *vertex added* — only entries with ``theta <= 1`` change (the new
     isolated vertex is itself a maximal quasi-clique).

3. **Entry re-addressing** — entries that survive are re-keyed from the old
   content fingerprint to the new one, so warm hits keep their speedup across
   updates instead of dying with the fingerprint.

Mutations may be applied through the engine (:meth:`DynamicEngine.add_edge`
and friends, or :meth:`DynamicEngine.apply` for a batch) or directly on the
graph — queries call :meth:`DynamicEngine.sync` first, which drains the
pending delta records.  When the graph's bounded changelog no longer reaches
back to the last synced version, the engine falls back to a full rebuild
(every entry invalidated, artifacts refreshed) and reports it.
"""

from __future__ import annotations

import time
from collections import Counter
from collections.abc import Iterable, Mapping
from dataclasses import asdict, dataclass, field

from ..api.spec import QuerySpec
from ..engine.cache import ResultCache
from ..engine.engine import MQCEEngine, QueryRequest
from ..engine.prepared import PreparedGraph
from ..errors import EngineError
from ..graph.core_decomposition import core_numbers
from ..graph.delta import GraphMutation
from ..graph.graph import Graph
from ..graph.subgraph import two_hop_mask
from ..obs.metrics import REGISTRY
from ..pipeline.results import EnumerationResult
from ..quasiclique.definitions import degree_threshold
from .index import CacheIndex
from .prepared import DynamicPreparedGraph
from .updates import UpdateOp, normalise_update

# Process-wide dynamic-maintenance metrics.  invalidated vs. retained is the
# invalidation *selectivity*: how much of the warm cache each sync preserved.
_SYNCS = REGISTRY.counter("repro_dynamic_syncs_total",
                          "Dynamic-engine syncs that drained pending mutations")
_MUTATIONS = REGISTRY.counter("repro_dynamic_mutations_total",
                              "Graph mutations reconciled by dynamic syncs, by op")
_INVALIDATED = REGISTRY.counter("repro_dynamic_entries_invalidated_total",
                                "Cache entries dropped by selective invalidation")
_RETAINED = REGISTRY.counter("repro_dynamic_entries_retained_total",
                             "Cache entries that survived a dynamic sync")
_REKEYED = REGISTRY.counter("repro_dynamic_entries_rekeyed_total",
                            "Surviving entries re-addressed to the new fingerprint")
_FULL_REBUILDS = REGISTRY.counter("repro_dynamic_full_rebuilds_total",
                                  "Syncs that fell back to a full rebuild")


@dataclass(frozen=True)
class UpdateReport:
    """What one :meth:`DynamicEngine.sync` accomplished."""

    mutations: int = 0
    added_vertices: int = 0
    removed_vertices: int = 0
    added_edges: int = 0
    removed_edges: int = 0
    entries_before: int = 0
    invalidated: int = 0
    retained: int = 0
    rekeyed: int = 0
    full_rebuild: bool = False
    old_fingerprint: str = ""
    new_fingerprint: str = ""
    seconds: float = 0.0

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass
class UpdateStats:
    """Cumulative counters across every sync of one dynamic engine."""

    syncs: int = 0
    mutations: int = 0
    entries_invalidated: int = 0
    entries_retained: int = 0
    entries_rekeyed: int = 0
    full_rebuilds: int = 0
    operations: Counter = field(default_factory=Counter)

    def absorb(self, report: UpdateReport, by_op: Counter) -> None:
        self.syncs += 1
        self.mutations += report.mutations
        self.entries_invalidated += report.invalidated
        self.entries_retained += report.retained
        self.entries_rekeyed += report.rekeyed
        self.full_rebuilds += 1 if report.full_rebuild else 0
        self.operations.update(by_op)
        _SYNCS.inc()
        for op, count in by_op.items():
            _MUTATIONS.inc(count, op=op)
        if report.invalidated:
            _INVALIDATED.inc(report.invalidated)
        if report.retained:
            _RETAINED.inc(report.retained)
        if report.rekeyed:
            _REKEYED.inc(report.rekeyed)
        if report.full_rebuild:
            _FULL_REBUILDS.inc()

    def as_dict(self) -> dict:
        return {
            "syncs": self.syncs,
            "mutations": self.mutations,
            "entries_invalidated": self.entries_invalidated,
            "entries_retained": self.entries_retained,
            "entries_rekeyed": self.entries_rekeyed,
            "full_rebuilds": self.full_rebuilds,
            "operations": dict(self.operations),
        }


class DynamicEngine:
    """A mutation-aware facade over one graph and one :class:`MQCEEngine`.

    Parameters
    ----------
    graph:
        The mutable graph this engine serves.
    engine:
        An optional shared :class:`MQCEEngine` (a fresh one is created by
        default).  Its result cache is consulted and maintained selectively.
    name:
        Optional human-readable name for the prepared graph.
    """

    def __init__(self, graph: Graph, engine: MQCEEngine | None = None,
                 name: str | None = None) -> None:
        self.graph = graph
        self.engine = engine or MQCEEngine()
        self.prepared = DynamicPreparedGraph(graph, name=name)
        self._index = CacheIndex()
        self._version = graph.version
        self.update_stats = UpdateStats()

    # ------------------------------------------------------------------
    # Mutation facade
    # ------------------------------------------------------------------
    def add_edge(self, u, v) -> UpdateReport:
        """Add one edge (creating endpoints as needed) and sync."""
        self.graph.add_edge(u, v)
        return self.sync()

    def remove_edge(self, u, v) -> UpdateReport:
        """Remove one edge and sync."""
        self.graph.remove_edge(u, v)
        return self.sync()

    def add_vertex(self, label) -> UpdateReport:
        """Add one (isolated) vertex and sync."""
        self.graph.add_vertex(label)
        return self.sync()

    def remove_vertex(self, label) -> UpdateReport:
        """Remove one vertex with its incident edges and sync."""
        self.graph.remove_vertex(label)
        return self.sync()

    def apply(self, updates: Iterable[UpdateOp | tuple]) -> UpdateReport:
        """Apply a batch of update operations, then sync once.

        ``updates`` entries are ``(op, u[, v])`` tuples or :class:`UpdateOp`
        records (see :mod:`repro.dynamic.updates` for accepted spellings).
        """
        for entry in updates:
            update = normalise_update(entry)
            mutator = getattr(self.graph, update.op)
            if update.v is None:
                mutator(update.u)
            else:
                mutator(update.u, update.v)
        return self.sync()

    # ------------------------------------------------------------------
    # Synchronisation (artifact patching + selective invalidation)
    # ------------------------------------------------------------------
    def sync(self) -> UpdateReport:
        """Bring artifacts and cache in line with the graph's current version."""
        start = time.perf_counter()
        if self.graph.version == self._version:
            fingerprint = self.prepared.fingerprint
            return UpdateReport(entries_before=len(self._index),
                                retained=len(self._index),
                                old_fingerprint=fingerprint,
                                new_fingerprint=fingerprint,
                                seconds=time.perf_counter() - start)
        pending = self.graph.delta.since(self._version)
        if pending is None:
            return self._full_rebuild(start)
        old_fingerprint = self.prepared.fingerprint
        self._reconcile(old_fingerprint)
        entries_before = len(self._index)
        self.prepared.apply(pending)
        self._version = self.graph.version
        new_fingerprint = self.prepared.fingerprint
        stale = self._stale_entries(pending)
        for key in stale:
            self.engine.cache.discard(key)
            self._index.discard(key)
        rekeyed = 0
        if old_fingerprint != new_fingerprint:
            for key in self._index.keys():
                new_key = (new_fingerprint,) + tuple(key[1:])
                if self.engine.cache.rekey(key, new_key):
                    rekeyed += 1
                    self._index.rekey(key, new_key)
                else:
                    self._index.discard(key)  # evicted by the LRU meanwhile
        by_op = Counter(mutation.op for mutation in pending)
        report = UpdateReport(
            mutations=len(pending),
            added_vertices=by_op.get("add_vertex", 0),
            removed_vertices=by_op.get("remove_vertex", 0),
            added_edges=by_op.get("add_edge", 0),
            removed_edges=by_op.get("remove_edge", 0),
            entries_before=entries_before,
            invalidated=len(stale),
            retained=len(self._index),
            rekeyed=rekeyed,
            old_fingerprint=old_fingerprint,
            new_fingerprint=new_fingerprint,
            seconds=time.perf_counter() - start,
        )
        self.update_stats.absorb(report, by_op)
        return report

    def _full_rebuild(self, start: float) -> UpdateReport:
        """Delta history lost: invalidate everything and refresh the artifacts."""
        old_fingerprint = self.prepared.fingerprint
        self._reconcile(old_fingerprint)
        entries_before = len(self._index)
        for key in self._index.keys():
            self.engine.cache.discard(key)
        self._index.clear()
        self.prepared.refresh()
        self._version = self.graph.version
        report = UpdateReport(
            entries_before=entries_before,
            invalidated=entries_before,
            full_rebuild=True,
            old_fingerprint=old_fingerprint,
            new_fingerprint=self.prepared.fingerprint,
            seconds=time.perf_counter() - start,
        )
        self.update_stats.absorb(report, Counter())
        return report

    def _reconcile(self, fingerprint: str) -> None:
        """Register cache entries for this graph that arrived since last sync.

        Entries appear in the shared cache through ``query``, ``query_batch``
        and completed ``stream`` runs; scanning the (bounded) cache for keys
        under the current fingerprint keeps the index complete no matter which
        path inserted them.  The spec-key layout puts gamma and theta right
        after the ``"spec"`` tag (see :meth:`QuerySpec.cache_key`).
        """
        for key in self.engine.cache.keys():
            if not (isinstance(key, tuple) and len(key) >= 4
                    and key[0] == fingerprint and key[1] == "spec"):
                continue
            if key in self._index:
                continue
            value = self.engine.cache.peek(key)
            if isinstance(value, EnumerationResult):
                gamma, theta = key[2], key[3]
                self._index.register(key, value, gamma, theta)

    # ------------------------------------------------------------------
    # Invalidation rules
    # ------------------------------------------------------------------
    def _stale_entries(self, pending: list[GraphMutation]) -> set:
        graph = self.graph
        stale: set = set()
        added_pairs = [(m.u, m.v) for m in pending if m.op == "add_edge"]
        removed_pairs = [(m.u, m.v) for m in pending if m.op == "remove_edge"]
        removed_vertices = [m.u for m in pending if m.op == "remove_vertex"]
        vertex_added = any(m.op == "add_vertex" for m in pending)

        # A new isolated vertex is itself a maximal quasi-clique when theta <= 1.
        if vertex_added:
            stale |= {key for key, meta in self._index.items() if meta.theta <= 1}

        # A removed vertex takes every answer that mentioned it.
        for label in removed_vertices:
            stale |= self._index.touching((label,))

        # Removal: answers only change where a result held both endpoints.
        for u, v in removed_pairs:
            for key in self._index.touching((u,)) & self._index.touching((v,)):
                if key in stale:
                    continue
                meta = self._index.get(key)
                if any(u in result and v in result for result in meta.result_sets):
                    stale.add(key)

        # Addition: region intersection with the 2-hop ball, plus the
        # new-answer test on the ball's core.
        for u, v in added_pairs:
            if u not in graph or v not in graph or not graph.has_edge(u, v):
                # The pair did not survive to the final graph; any transient
                # effect is covered by the records that undid it.
                continue
            ball = self._touched_ball(u, v)
            stale |= self._index.touching(ball)
            remaining = [(key, meta) for key, meta in self._index.items()
                         if key not in stale]
            if not remaining:
                continue
            ball_cores = core_numbers(graph.induced_subgraph(ball))
            for key, meta in remaining:
                threshold = degree_threshold(meta.gamma, meta.theta)
                if threshold <= 0:
                    stale.add(key)
                    continue
                if (ball_cores.get(u, 0) >= threshold
                        and ball_cores.get(v, 0) >= threshold
                        and sum(1 for core in ball_cores.values()
                                if core >= threshold) >= meta.theta):
                    stale.add(key)
        return stale

    def _touched_ball(self, u, v) -> frozenset:
        """Labels within distance 2 of either endpoint, in the current graph."""
        graph = self.graph
        full = graph.full_mask()
        iu, iv = graph.index_of(u), graph.index_of(v)
        mask = (two_hop_mask(graph, iu, full) | two_hop_mask(graph, iv, full)
                | (1 << iu) | (1 << iv))
        return graph.labels_of_mask(mask)

    # ------------------------------------------------------------------
    # Query facade (QuerySpec-compatible, graph-bound)
    # ------------------------------------------------------------------
    def _strip_graph(self, args: tuple) -> tuple:
        """Allow the MQCEEngine calling convention (graph first) for reuse.

        ``Q(graph).run(engine=dynamic_engine)`` and similar callers pass the
        graph positionally; it must be the graph (or prepared graph) this
        engine is bound to.
        """
        if args and isinstance(args[0], (Graph, PreparedGraph)):
            target = args[0]
            if target is not self.graph and target is not self.prepared:
                raise EngineError(
                    "a DynamicEngine is bound to one graph; "
                    "pass queries for other graphs to their own engine")
            return args[1:]
        return args

    def query(self, *args, spec: QuerySpec | None = None,
              use_cache: bool = True, **kwargs) -> EnumerationResult:
        """Serve one query against the current graph content (synced first).

        Accepts the same calling styles as :meth:`MQCEEngine.query`, minus the
        graph (optionally passed for compatibility): a :class:`QuerySpec`,
        ``spec=...``, or ``(gamma, theta, ...)``.
        """
        args = self._strip_graph(args)
        self.sync()
        return self.engine.query(self.prepared, *args, spec=spec,
                                 use_cache=use_cache, **kwargs)

    def stream(self, *args, spec: QuerySpec | None = None,
               use_cache: bool = True, **kwargs):
        """Stream one query's answers incrementally (synced first).

        The graph must not be mutated while the returned stream is being
        consumed; a stream that observes a mutation will refuse to populate
        the cache, and the next ``sync`` reconciles whatever completed.
        """
        args = self._strip_graph(args)
        self.sync()
        return self.engine.stream(self.prepared, *args, spec=spec,
                                  use_cache=use_cache, **kwargs)

    def explain(self, *args, spec: QuerySpec | None = None, **kwargs):
        """Return the plan the engine would use right now (synced first)."""
        args = self._strip_graph(args)
        self.sync()
        return self.engine.explain(self.prepared, *args, spec=spec, **kwargs)

    def query_batch(self, requests: Iterable[QuerySpec | QueryRequest | Mapping | tuple]
                    ) -> list[EnumerationResult]:
        """Run many queries against the current content, syncing once."""
        self.sync()
        return self.engine.query_batch(self.prepared, requests)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """The graph version this engine has synced up to."""
        return self._version

    @property
    def pending_mutations(self) -> int:
        """Mutations applied to the graph but not yet synced."""
        return self.graph.version - self._version

    def indexed_entries(self) -> int:
        """Cache entries currently tracked by the inverted index."""
        return len(self._index)

    def stats(self) -> dict:
        """Engine + update counters (see :meth:`MQCEEngine.stats`)."""
        data = self.engine.stats()
        data["dynamic"] = {
            "graph_version": self.graph.version,
            "synced_version": self._version,
            "indexed_entries": len(self._index),
            "updates": self.update_stats.as_dict(),
            "prepared_patches": dict(self.prepared.patch_counts),
            "core_drift": dict(zip(("inserts", "removals"), self.prepared.core_drift)),
        }
        return data

    def __repr__(self) -> str:
        return (f"DynamicEngine({self.prepared.name or self.graph!r}, "
                f"version={self._version}, indexed={len(self._index)}, "
                f"pending={self.pending_mutations})")


__all__ = ["DynamicEngine", "UpdateReport", "UpdateStats"]
