"""Parsing and normalisation of graph update operations.

The dynamic engine and the ``repro dynamic`` CLI accept updates in two forms:

* **tuples** — ``("add_edge", u, v)``, ``("remove_edge", u, v)``,
  ``("add_vertex", u)``, ``("remove_vertex", u)``, with the short aliases
  ``"+"`` / ``"-"`` for the edge operations, and
* **script lines** — one operation per line, e.g.::

      # comments and blank lines are ignored
      add 1 2
      remove 3 4
      add-vertex 99
      remove-vertex 7
      + 5 6
      - 1 2

Labels that parse as integers become ``int`` (matching the edge-list reader
used everywhere else); everything else stays a string.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import NamedTuple

from ..errors import ReproError


class UpdateError(ReproError, ValueError):
    """Raised for malformed update operations or scripts."""


class UpdateOp(NamedTuple):
    """One normalised update operation."""

    op: str
    u: object
    v: object = None


#: Accepted spellings for each operation (script tokens and tuple tags).
_ALIASES = {
    "add_edge": "add_edge", "add": "add_edge", "+": "add_edge",
    "remove_edge": "remove_edge", "remove": "remove_edge", "-": "remove_edge",
    "del": "remove_edge",
    "add_vertex": "add_vertex", "add-vertex": "add_vertex", "+v": "add_vertex",
    "remove_vertex": "remove_vertex", "remove-vertex": "remove_vertex",
    "-v": "remove_vertex",
}

_EDGE_OPS = ("add_edge", "remove_edge")


def _coerce_label(token):
    if isinstance(token, str):
        try:
            return int(token)
        except ValueError:
            return token
    return token


def normalise_update(entry) -> UpdateOp:
    """Normalise one tuple/list/UpdateOp entry into an :class:`UpdateOp`."""
    if isinstance(entry, UpdateOp):
        return entry
    try:
        tag, *operands = entry
    except TypeError as exc:
        raise UpdateError(f"an update must be a (op, ...) sequence, got {entry!r}") from exc
    op = _ALIASES.get(str(tag).lower())
    if op is None:
        raise UpdateError(f"unknown update operation {tag!r}; "
                          f"expected one of {sorted(set(_ALIASES.values()))}")
    expected = 2 if op in _EDGE_OPS else 1
    if len(operands) != expected:
        raise UpdateError(f"{op} takes {expected} operand(s), got {len(operands)}: {entry!r}")
    operands = [_coerce_label(token) for token in operands]
    return UpdateOp(op, *operands)


def parse_updates(lines: Iterable[str]) -> list[UpdateOp]:
    """Parse an update script (an iterable of lines) into operations."""
    updates: list[UpdateOp] = []
    for number, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            updates.append(normalise_update(line.split()))
        except UpdateError as exc:
            raise UpdateError(f"line {number}: {exc}") from None
    return updates


def read_update_script(path) -> list[UpdateOp]:
    """Read and parse an update script file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_updates(handle)
