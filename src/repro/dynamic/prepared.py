"""A :class:`~repro.engine.prepared.PreparedGraph` that survives mutations.

The static prepared graph assumes a frozen graph and recomputes everything
from scratch when the engine notices a mutation.  For a servable system that
absorbs a stream of edge/vertex updates that is the wrong trade-off:
re-preparing a graph is O(|V| + |E|) while a single mutation touches a
constant-size neighbourhood.  :class:`DynamicPreparedGraph` therefore patches
its memoized artifacts from the graph's :class:`~repro.graph.delta.GraphDelta`
records:

* **fingerprint** — an :class:`~repro.dynamic.fingerprint.IncrementalFingerprint`
  (XOR-homomorphic content hash), O(1) per mutation;
* **degrees** — a per-label counter, O(1) per mutation;
* **components** — merged on edge insertion (union of the two cells) and
  re-split locally on deletion (a BFS confined to the members of the single
  touched cell), so cost tracks the locality of the update;
* **core bounds** — exact core numbers from the last rebuild plus a drift
  term: one edge insertion raises any core number by at most 1 and a deletion
  never raises one, so ``core(v) <= min(base(v) + inserts_since, deg(v))``
  always holds.  The bounds are *upper* bounds, which keeps every consumer
  sound: the planner's core mask stays a superset of the true core (trivial
  detection never wrongly proves emptiness) and the degeneracy size bound
  stays an upper bound.  When the drift exceeds a threshold the exact
  decomposition is rebuilt once and the drift resets.

Order-dependent artifacts with no cheap patch (``degeneracy_order``,
``statistics``, exact ``core_numbers``) are recomputed lazily, memoized per
graph version.  :meth:`DynamicPreparedGraph.apply` also keeps the engine's
modification snapshot in step, so :class:`repro.engine.MQCEEngine` accepts the
prepared graph after every applied batch without re-preparing.
"""

from __future__ import annotations

from collections import Counter

from ..engine.prepared import ARTIFACTS, PreparedGraph
from ..graph.core_decomposition import _degeneracy_order_and_cores
from ..graph.delta import GraphMutation
from ..graph.graph import Graph, VertexLabel
from ..graph.statistics import GraphStatistics
from ..graph.subgraph import connected_components
from ..quasiclique.definitions import degree_threshold
from .fingerprint import IncrementalFingerprint

#: Edge insertions tolerated before the exact core decomposition is rebuilt.
DEFAULT_CORE_REBUILD_INSERTS = 16

#: Edge/vertex removals tolerated before a rebuild (removals only loosen the
#: bounds, they never make them wrong, so the leash can be longer).
DEFAULT_CORE_REBUILD_REMOVALS = 64


class DynamicPreparedGraph(PreparedGraph):
    """Prepared-graph artifacts maintained incrementally under mutations.

    Unlike the base class, ``core_numbers`` and ``degeneracy`` return
    conservative *upper bounds* between rebuilds (exact immediately after
    construction, :meth:`refresh`, or an automatic rebuild); everything the
    engine derives from them — core masks, the degeneracy size bound, trivial
    detection — only requires upper bounds to stay correct.
    """

    def __init__(self, graph: Graph, name: str | None = None,
                 core_rebuild_inserts: int = DEFAULT_CORE_REBUILD_INSERTS,
                 core_rebuild_removals: int = DEFAULT_CORE_REBUILD_REMOVALS) -> None:
        super().__init__(graph, name=name)
        # Attach the graph's (lazily created) changelog now: only mutations
        # recorded from this point on can be replayed into the artifacts.
        graph.delta
        self.core_rebuild_inserts = core_rebuild_inserts
        self.core_rebuild_removals = core_rebuild_removals
        #: Per-operation patch counters plus ``core_rebuilds`` / ``refreshes``
        #: (how often the incremental path fell back to exact recomputation).
        self.patch_counts: Counter = Counter()
        self._build_state()

    # ------------------------------------------------------------------
    # State construction / full refresh
    # ------------------------------------------------------------------
    def _build_state(self) -> None:
        graph = self.graph
        self._snapshot = graph.version
        self._fp = IncrementalFingerprint.from_graph(graph)
        self._degree_of: dict[VertexLabel, int] = {
            graph.label_of(i): len(graph.adjacency_set(i))
            for i in range(graph.vertex_count)}
        self._rebuild_cores()
        self._rebuild_components()
        self._core_masks = {}
        self._memo_version: dict[str, int] = {}
        self._memo_value: dict[str, object] = {}
        self.plan_cache.clear()

    def refresh(self) -> "DynamicPreparedGraph":
        """Discard every incremental artifact and rebuild exactly from the graph."""
        self.patch_counts["refreshes"] += 1
        self._build_state()
        return self

    def _rebuild_cores(self) -> None:
        order, cores = _degeneracy_order_and_cores(self.graph)
        del order
        self._core_base: dict[VertexLabel, int] = cores
        self._degeneracy_base = max(cores.values()) if cores else 0
        self._core_insert_drift = 0
        self._core_removal_drift = 0

    def _rebuild_components(self) -> None:
        self._comp_of: dict[VertexLabel, int] = {}
        self._comp_members: dict[int, set[VertexLabel]] = {}
        self._next_comp = 0
        for label in self.graph.vertices():
            self._comp_of[label] = self._new_component({label})
        for u, v in self.graph.edges():
            self._merge_components(u, v)

    # ------------------------------------------------------------------
    # Incremental application of a mutation batch
    # ------------------------------------------------------------------
    def apply(self, mutations: list[GraphMutation]) -> None:
        """Patch every artifact for a batch of already-applied graph mutations.

        ``mutations`` must be the graph's delta records between this prepared
        graph's last synced version and the graph's current version, in order.
        Component splits BFS the current (post-batch) adjacency, which yields
        the correct end-state partition for any mutation order because merges
        are processed for every insertion and every deletion re-derives its
        cell from final adjacency.
        """
        for mutation in mutations:
            handler = getattr(self, "_patch_" + mutation.op)
            handler(mutation)
            self.patch_counts[mutation.op] += 1
        self._snapshot = self.graph.version
        self.plan_cache.clear()
        # Version-memoized artifacts may have been read (and memoized under
        # the final graph version) between a direct graph mutation and this
        # sync; the memos must not outlive the patch.
        self._memo_version.clear()
        self._memo_value.clear()
        rebuilt = False
        if (self._core_insert_drift > self.core_rebuild_inserts
                or self._core_removal_drift > self.core_rebuild_removals):
            self.patch_counts["core_rebuilds"] += 1
            self._rebuild_cores()
            rebuilt = True
        self._patch_core_masks(mutations, rebuilt)

    def _patch_core_masks(self, mutations: list[GraphMutation], rebuilt: bool) -> None:
        """Keep the memoized per-threshold core masks usable across a batch.

        A pure edge-*removal* batch can only lower the core bounds of the
        touched endpoints (degrees drop; drift and index layout are
        untouched), so the memoized masks are patched bit-by-bit instead of
        rescanned — the hot path of a removal-heavy update stream.  Any other
        batch (insert drift moves every bound, vertex removal remaps indices)
        drops the memo and the next query rescans once.
        """
        removals_only = all(m.op == "remove_edge" for m in mutations)
        if rebuilt or not removals_only or not self._core_masks:
            self._core_masks.clear()
            return
        touched = {m.u for m in mutations} | {m.v for m in mutations}
        for threshold, mask in list(self._core_masks.items()):
            if threshold <= 0:
                continue  # the full mask: unchanged without vertex ops
            for label in touched:
                bit = 1 << self.graph.index_of(label)
                if self.core_bound(label) >= threshold:
                    mask |= bit
                else:
                    mask &= ~bit
            self._core_masks[threshold] = mask

    # -- per-operation patches ------------------------------------------
    def _patch_add_vertex(self, mutation: GraphMutation) -> None:
        label = mutation.u
        self._fp.toggle_vertex(label)
        self._degree_of[label] = 0
        self._comp_of[label] = self._new_component({label})

    def _patch_remove_vertex(self, mutation: GraphMutation) -> None:
        # Incident edges were removed (and patched) by the preceding
        # remove_edge records, so the vertex is isolated by now.
        label = mutation.u
        self._fp.toggle_vertex(label)
        self._degree_of.pop(label, None)
        self._core_base.pop(label, None)
        comp = self._comp_of.pop(label)
        members = self._comp_members[comp]
        members.discard(label)
        if not members:
            del self._comp_members[comp]

    def _patch_add_edge(self, mutation: GraphMutation) -> None:
        u, v = mutation.u, mutation.v
        self._fp.toggle_edge(u, v)
        self._degree_of[u] += 1
        self._degree_of[v] += 1
        self._core_insert_drift += 1
        self._merge_components(u, v)

    def _patch_remove_edge(self, mutation: GraphMutation) -> None:
        u, v = mutation.u, mutation.v
        self._fp.toggle_edge(u, v)
        self._degree_of[u] -= 1
        self._degree_of[v] -= 1
        self._core_removal_drift += 1
        if self._comp_of[u] == self._comp_of[v]:
            self._resplit_component(self._comp_of[u])

    # -- component partition helpers ------------------------------------
    def _new_component(self, members: set[VertexLabel]) -> int:
        comp = self._next_comp
        self._next_comp += 1
        self._comp_members[comp] = members
        for label in members:
            self._comp_of[label] = comp
        return comp

    def _merge_components(self, u: VertexLabel, v: VertexLabel) -> None:
        a, b = self._comp_of[u], self._comp_of[v]
        if a == b:
            return
        if len(self._comp_members[a]) < len(self._comp_members[b]):
            a, b = b, a
        absorbed = self._comp_members.pop(b)
        self._comp_members[a].update(absorbed)
        for label in absorbed:
            self._comp_of[label] = a

    def _resplit_component(self, comp: int) -> None:
        """Re-derive the connected components of one cell from current adjacency.

        Runs a bitmask BFS restricted to the cell's members (the same loop as
        :func:`~repro.graph.subgraph.connected_components`, confined to one
        cell), so the cost tracks the touched component, not the graph.
        """
        members = self._comp_members.pop(comp)
        graph = self.graph
        present = [label for label in members if label in graph]
        for label in set(members).difference(present):
            # Removed later in the batch than this record; isolated until its
            # own remove_vertex record drops it from the partition.
            self._new_component({label})
        for cell in connected_components(graph, within_mask=graph.mask_of(present)):
            self._new_component(set(cell))

    # ------------------------------------------------------------------
    # Artifact overrides (patched or version-memoized)
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:  # type: ignore[override]
        """Content fingerprint, maintained in O(1) per mutation."""
        return self._fp.hexdigest()

    @property
    def degrees(self) -> tuple[int, ...]:  # type: ignore[override]
        """Vertex degrees in current index order (patched per mutation)."""
        graph = self.graph
        return tuple(self._degree_of[graph.label_of(i)]
                     for i in range(graph.vertex_count))

    @property
    def components(self) -> tuple[frozenset[VertexLabel], ...]:  # type: ignore[override]
        """Connected components as label sets, largest first (patched)."""
        def compute():
            cells = [frozenset(members) for members in self._comp_members.values()]
            return tuple(sorted(cells,
                                key=lambda cell: (-len(cell), sorted(map(str, cell)))))
        return self._memoized("components", compute)

    def core_bound(self, label: VertexLabel) -> int:
        """A sound upper bound on the core number of one vertex."""
        degree = self._degree_of[label]
        base = self._core_base.get(label)
        if base is None:
            return degree  # added after the last rebuild: core <= degree
        return min(base + self._core_insert_drift, degree)

    @property
    def core_numbers(self) -> dict[VertexLabel, int]:  # type: ignore[override]
        """Upper bounds on every core number (exact right after a rebuild)."""
        return {label: self.core_bound(label) for label in self._degree_of}

    @property
    def degeneracy(self) -> int:  # type: ignore[override]
        """A sound upper bound on the degeneracy (exact right after a rebuild)."""
        max_degree = max(self._degree_of.values(), default=0)
        return min(self._degeneracy_base + self._core_insert_drift, max_degree)

    def core_mask(self, gamma: float, theta: int) -> int:  # type: ignore[override]
        """Superset mask of the ``ceil(gamma * (theta - 1))``-core (sound for pruning)."""
        threshold = degree_threshold(gamma, theta)
        mask = self._core_masks.get(threshold)
        if mask is None:
            if threshold <= 0:
                mask = self.graph.full_mask()
            else:
                kept = [label for label in self._degree_of
                        if self.core_bound(label) >= threshold]
                mask = self.graph.mask_of(kept)
            self._core_masks[threshold] = mask
        return mask

    def _memoized(self, artifact: str, compute):
        version = self.graph.version
        if self._memo_version.get(artifact) != version:
            self._memo_value[artifact] = compute()
            self._memo_version[artifact] = version
        return self._memo_value[artifact]

    @property
    def degeneracy_order(self) -> tuple[VertexLabel, ...]:  # type: ignore[override]
        """An exact degeneracy ordering, recomputed lazily per graph version."""
        def compute():
            order, cores = _degeneracy_order_and_cores(self.graph)
            del cores
            return tuple(order)
        return self._memoized("degeneracy_order", compute)

    @property
    def statistics(self) -> GraphStatistics:  # type: ignore[override]
        """Table-1 statistics with the *bounded* degeneracy (cheap under churn)."""
        def compute():
            graph = self.graph
            return GraphStatistics(
                vertex_count=graph.vertex_count,
                edge_count=graph.edge_count,
                edge_density=graph.density(),
                max_degree=max(self._degree_of.values(), default=0),
                degeneracy=self.degeneracy,
            )
        return self._memoized("statistics", compute)

    # ------------------------------------------------------------------
    def materialized_artifacts(self) -> tuple[str, ...]:
        """Every artifact is live under incremental maintenance."""
        return tuple(ARTIFACTS)

    @property
    def core_drift(self) -> tuple[int, int]:
        """(insertions, removals) absorbed since the last exact core rebuild."""
        return (self._core_insert_drift, self._core_removal_drift)

    def summary(self) -> dict:
        data = super().summary()
        inserts, removals = self.core_drift
        data["core_drift"] = {"inserts": inserts, "removals": removals}
        data["patch_counts"] = dict(self.patch_counts)
        data["version"] = self.graph.version
        return data

    def __repr__(self) -> str:
        return (f"DynamicPreparedGraph({self.name!r}, |V|={self.graph.vertex_count}, "
                f"|E|={self.graph.edge_count}, version={self.graph.version}, "
                f"patches={sum(self.patch_counts.values())})")
