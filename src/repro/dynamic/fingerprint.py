"""Incrementally maintainable content fingerprints for mutable graphs.

The engine's static :func:`repro.engine.fingerprint.graph_fingerprint` hashes
a canonical serialisation of the whole graph — O(|V| + |E|) per call, which is
exactly the cost a dynamic engine must not pay on every mutation.
:class:`IncrementalFingerprint` instead keeps an *order-independent* digest
that is homomorphic under set updates: each vertex label and each edge is
hashed independently (128 bits each) and the per-element hashes are combined
with XOR into two accumulators.  Adding or removing an element XORs its hash
in or out — O(1) per mutation — and two graphs with the same labelled content
always reach the same digest regardless of construction order or internal
index layout.  A mutation sequence that restores the original content (e.g.
remove an edge, add it back) restores the original digest, so cache entries
re-addressed by fingerprint stay consistent across reverts.

Labels are serialised with ``repr`` (as the static fingerprint does) and edge
endpoint order is canonicalised, so ``(u, v)`` and ``(v, u)`` hash equally.
Because the underlying graph is simple, every element is present 0 or 1
times, which makes XOR an exact multiset digest here; accidental cancellation
between *distinct* elements is a 2^-128 event, negligible for an in-process
result cache.
"""

from __future__ import annotations

import hashlib

from ..graph.graph import Graph

#: Hex digits kept in the digest, matching the static engine fingerprint.
FINGERPRINT_LENGTH = 16

#: Bytes per per-element hash / accumulator.
_ACC_BYTES = 16


def _element_hash(data: bytes) -> int:
    return int.from_bytes(hashlib.sha256(data).digest()[:_ACC_BYTES], "big")


class IncrementalFingerprint:
    """An XOR-of-hashes graph content digest with O(1) mutation cost."""

    __slots__ = ("_vertex_acc", "_edge_acc")

    def __init__(self) -> None:
        self._vertex_acc = 0
        self._edge_acc = 0

    @classmethod
    def from_graph(cls, graph: Graph) -> "IncrementalFingerprint":
        """Build the digest of a graph's current content (one full pass)."""
        fingerprint = cls()
        for label in graph.vertices():
            fingerprint.toggle_vertex(label)
        for u, v in graph.edges():
            fingerprint.toggle_edge(u, v)
        return fingerprint

    # ------------------------------------------------------------------
    def toggle_vertex(self, label) -> None:
        """XOR one vertex label in (when absent) or out (when present)."""
        self._vertex_acc ^= _element_hash(b"v\x00" + repr(label).encode())

    def toggle_edge(self, u, v) -> None:
        """XOR one undirected edge in or out (endpoint order canonicalised)."""
        a, b = sorted((repr(u), repr(v)))
        self._edge_acc ^= _element_hash(f"e\x00{a}\x00{b}".encode())

    # ------------------------------------------------------------------
    def hexdigest(self, length: int = FINGERPRINT_LENGTH) -> str:
        """The current content digest as a hex string."""
        payload = (self._vertex_acc.to_bytes(_ACC_BYTES, "big")
                   + self._edge_acc.to_bytes(_ACC_BYTES, "big"))
        return hashlib.sha256(payload).hexdigest()[:length]

    def copy(self) -> "IncrementalFingerprint":
        clone = IncrementalFingerprint()
        clone._vertex_acc = self._vertex_acc
        clone._edge_acc = self._edge_acc
        return clone

    def __eq__(self, other) -> bool:
        return (isinstance(other, IncrementalFingerprint)
                and self._vertex_acc == other._vertex_acc
                and self._edge_acc == other._edge_acc)

    def __repr__(self) -> str:
        return f"IncrementalFingerprint({self.hexdigest()})"
