"""Client-side retry machinery: capped decorrelated-jitter backoff, deadlines.

The backoff schedule is the "decorrelated jitter" variant: each delay is
drawn uniformly from ``[base, previous * 3]`` and capped at ``max_delay``.
Compared to plain exponential backoff it decorrelates a thundering herd of
retrying clients (each draws a different point of the widening window) while
keeping the expected delay growth exponential.  With ``seed`` set the
schedule is deterministic — tests assert exact sleep sequences.

:class:`Deadline` is the propagation half: a client-side wall-clock budget
that (a) bounds the retry loop and (b) rides the wire as the ``deadline``
request field, where the server folds the *remaining* seconds into its
budget clamp (:meth:`repro.serve.admission.AdmissionController.apply_budgets`)
so a query never runs longer server-side than the client will wait.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable, Iterator
from dataclasses import dataclass

from ..errors import DeadlineExceededError
from ..obs.metrics import REGISTRY

_RETRIES = REGISTRY.counter(
    "repro_client_retries_total",
    "Operations retried by resilience-aware clients, by operation")


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry and how long to back off in between.

    ``max_attempts`` counts *total* tries (1 = no retries).  ``seed`` makes
    the jitter deterministic; ``None`` draws from the process RNG.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay <= 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 < base_delay <= max_delay")

    def delays(self) -> Iterator[float]:
        """The backoff delays between successive attempts (len = attempts-1)."""
        rng = random.Random(self.seed)
        previous = self.base_delay
        for _ in range(self.max_attempts - 1):
            previous = min(self.max_delay,
                           rng.uniform(self.base_delay, previous * 3))
            yield previous


class Deadline:
    """A wall-clock budget: ``Deadline.after(2.5)`` expires 2.5s from now."""

    def __init__(self, expires_at: float, *,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self._expires_at = expires_at
        self._clock = clock

    @classmethod
    def after(cls, seconds: float, *,
              clock: Callable[[], float] = time.monotonic) -> "Deadline":
        return cls(clock() + seconds, clock=clock)

    def remaining(self) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self._expires_at - self._clock())

    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceededError` once the budget is gone."""
        if self.expired():
            raise DeadlineExceededError(f"deadline exceeded before {what}")


def call_with_retry(fn: Callable, *, policy: RetryPolicy,
                    retryable: tuple[type[BaseException], ...] | Callable,
                    deadline: Deadline | None = None,
                    operation: str = "call",
                    on_retry: Callable | None = None,
                    sleep: Callable[[float], None] = time.sleep):
    """Run ``fn()`` under ``policy``, retrying matching failures with backoff.

    ``retryable`` is an exception-type tuple or a predicate.  A deadline
    bounds the whole loop: a sleep never overruns it, and an expired deadline
    re-raises the last failure rather than burning a final doomed attempt.
    ``on_retry(attempt, exc, delay)`` observes each retry (logging, tests).
    """
    is_retryable = (retryable if callable(retryable) and
                    not isinstance(retryable, tuple)
                    else lambda exc: isinstance(exc, retryable))  # type: ignore[arg-type]
    delays = policy.delays()
    attempt = 1
    while True:
        try:
            return fn()
        except BaseException as exc:  # noqa: BLE001 - filtered just below
            if not is_retryable(exc):
                raise
            delay = next(delays, None)
            if delay is None:
                raise
            if deadline is not None:
                remaining = deadline.remaining()
                if remaining <= 0:
                    raise
                delay = min(delay, remaining)
            _RETRIES.inc(operation=operation)
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            sleep(delay)
            attempt += 1


__all__ = ["Deadline", "RetryPolicy", "call_with_retry"]
