"""Deterministic fault injection: a seeded, process-global fault plan.

Fail-fast code paths are easy to write and impossible to trust: the recovery
branches (lease expiry, retry, quarantine, circuit breaking) only run when
something actually dies, which in normal test runs is never.  This module
makes failure *schedulable*.  Hot paths register **named injection sites**::

    from repro.resilience.faults import fault_point

    def claim(self, worker_id):
        fault_point("spool.claim")          # raises / delays / kills on demand
        ...

    def _write(self, payload):
        data = encode(payload)
        if fault_point("serve.write_frame") == "truncate":
            data = data[: len(data) // 2]   # call site interprets the verdict
        ...

With no plan installed a site is a near-no-op (one global load and an
``is None`` test — guarded by ``benchmarks/bench_resilience_overhead.py``).
A :class:`FaultPlan` arms sites with rules parsed from the ``REPRO_FAULTS``
environment variable or built programmatically::

    REPRO_FAULTS="spool.claim:raise:after=2;serve.write_frame:drop:times=3"

Rule syntax: ``site:action[:key=value]...``, ``;``-separated.  Actions:

``raise``
    Raise :class:`~repro.errors.FaultInjectedError` at the site.
``delay=SECONDS``
    Sleep ``SECONDS`` at the site (stall a worker so a test can kill it).
``truncate`` / ``drop``
    Return the action string from :func:`fault_point`; the call site applies
    the domain-specific damage (truncate a payload write, drop a connection).
``kill``
    ``os._exit(137)`` — instant process death, no cleanup handlers, the
    in-process equivalent of ``SIGKILL``.

Modifiers: ``after=N`` (1-based hit at which the rule starts firing, default
1), ``times=N`` (how many hits fire, default 1, ``0`` = unlimited), ``p=F`` +
``seed=S`` (fire each eligible hit with probability ``F`` from a dedicated
``random.Random(seed)`` — *seeded*, so a chaos run replays identically).

Every fired fault increments ``repro_faults_injected_total{site=,action=}``,
so chaos tests assert the fault actually fired instead of silently passing
against a plan that never triggered.
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass, field

from ..errors import FaultInjectedError, ReproError
from ..obs.metrics import REGISTRY

_INJECTED = REGISTRY.counter(
    "repro_faults_injected_total",
    "Faults fired by the deterministic injection plan, by site and action")

#: The environment variable :func:`fault_point` arms itself from.
ENV_VAR = "REPRO_FAULTS"

#: Actions a rule may carry (``delay`` takes its seconds as ``delay=S``).
ACTIONS = ("raise", "delay", "truncate", "drop", "kill")

#: Injection sites registered at hot paths across the stack.  Unknown sites
#: are accepted by the parser (call sites evolve), but this tuple is the
#: canonical matrix chaos tests parametrize over.
KNOWN_SITES = (
    "spool.claim",          # SpoolQueue.claim, before scanning tasks/
    "spool.write",          # SpoolQueue payload writes (truncate => corrupt)
    "spool.heartbeat",      # SpoolWorker lease renewal
    "worker.task",          # SpoolWorker.run_once, after a successful claim
    "worker.enumerate",     # worker-side enumeration entry
    "engine.subproblem",    # run_compact_subproblem (pool + spool workers)
    "serve.enumerate",      # ReproService flight leader, before the stream
    "serve.write_frame",    # every protocol frame write (drop/truncate)
    "client.connect",       # ServeClient socket connect
)


@dataclass
class FaultRule:
    """One armed rule: fire ``action`` at ``site`` on scheduled hits."""

    site: str
    action: str
    after: int = 1
    times: int = 1
    delay: float = 0.0
    p: float = 1.0
    seed: int = 0
    hits: int = 0
    fired: int = 0
    _rng: random.Random | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ReproError(f"unknown fault action {self.action!r}; "
                             f"expected one of {ACTIONS}")
        if self.after < 1:
            raise ReproError("fault 'after' must be >= 1 (1-based hit number)")
        if self.times < 0:
            raise ReproError("fault 'times' must be >= 0 (0 = unlimited)")
        if not 0.0 < self.p <= 1.0:
            raise ReproError("fault 'p' must be in (0, 1]")
        if self.p < 1.0:
            self._rng = random.Random(self.seed)

    def decide(self) -> bool:
        """Record one hit; True when this hit fires (caller holds the lock)."""
        self.hits += 1
        if self.hits < self.after:
            return False
        if self.times and self.fired >= self.times:
            return False
        if self._rng is not None and self._rng.random() >= self.p:
            return False
        self.fired += 1
        return True


class FaultPlan:
    """A set of :class:`FaultRule`\\ s consulted by every injection site."""

    def __init__(self, rules: list[FaultRule] | None = None) -> None:
        self._rules: dict[str, list[FaultRule]] = {}
        self._lock = threading.Lock()
        for rule in rules or []:
            self.add(rule)

    def add(self, rule: FaultRule) -> "FaultPlan":
        self._rules.setdefault(rule.site, []).append(rule)
        return self

    def rule(self, site: str, action: str, **kwargs) -> "FaultPlan":
        """Fluent helper: ``plan.rule("spool.claim", "raise", after=2)``."""
        return self.add(FaultRule(site=site, action=action, **kwargs))

    def rules(self, site: str | None = None) -> list[FaultRule]:
        if site is not None:
            return list(self._rules.get(site, ()))
        return [rule for rules in self._rules.values() for rule in rules]

    def trigger(self, site: str) -> str | None:
        """One hit at ``site``: apply raise/delay/kill, report truncate/drop."""
        rules = self._rules.get(site)
        if not rules:
            return None
        fired: FaultRule | None = None
        with self._lock:
            for rule in rules:
                if rule.decide():
                    fired = rule
                    break
        if fired is None:
            return None
        _INJECTED.inc(site=site, action=fired.action)
        if fired.action == "delay":
            time.sleep(fired.delay)
            return None
        if fired.action == "kill":
            os._exit(137)
        if fired.action == "raise":
            raise FaultInjectedError(
                f"injected fault at {site} (hit {fired.hits})", site=site)
        return fired.action  # "truncate" | "drop" — the call site applies it

    def counts(self) -> dict[str, int]:
        """Fired-fault counts by site (for reports and assertions)."""
        return {site: sum(rule.fired for rule in rules)
                for site, rules in self._rules.items()
                if any(rule.fired for rule in rules)}


def parse_plan(text: str) -> FaultPlan:
    """Parse the ``REPRO_FAULTS`` syntax into a :class:`FaultPlan`."""
    plan = FaultPlan()
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) < 2:
            raise ReproError(f"malformed fault rule {chunk!r}; "
                             "expected site:action[:key=value...]")
        site, action, modifiers = parts[0], parts[1], parts[2:]
        kwargs: dict = {}
        if "=" in action:  # "delay=0.5" spelling
            action, _, value = action.partition("=")
            kwargs["delay"] = float(value)
        for modifier in modifiers:
            key, sep, value = modifier.partition("=")
            if not sep:
                raise ReproError(f"malformed fault modifier {modifier!r} "
                                 f"in rule {chunk!r}")
            if key in ("after", "times", "seed"):
                kwargs[key] = int(value)
            elif key in ("delay", "p"):
                kwargs[key] = float(value)
            else:
                raise ReproError(f"unknown fault modifier {key!r} "
                                 f"in rule {chunk!r}")
        plan.add(FaultRule(site=site, action=action, **kwargs))
    return plan


# ----------------------------------------------------------------------
# The process-global plan
# ----------------------------------------------------------------------
_UNSET = object()          # not yet resolved from the environment
_PLAN: object = _UNSET     # FaultPlan | None once resolved


def install_plan(plan: FaultPlan | str | None) -> FaultPlan | None:
    """Install the process-global plan (a plan, rule text, or ``None``)."""
    global _PLAN
    _PLAN = parse_plan(plan) if isinstance(plan, str) else plan
    return _PLAN  # type: ignore[return-value]


def reset_plan() -> None:
    """Forget the installed plan; the next site re-reads ``REPRO_FAULTS``."""
    global _PLAN
    _PLAN = _UNSET


def active_plan() -> FaultPlan | None:
    """The current plan, resolving ``REPRO_FAULTS`` on first use."""
    global _PLAN
    if _PLAN is _UNSET:
        text = os.environ.get(ENV_VAR)
        _PLAN = parse_plan(text) if text else None
    return _PLAN  # type: ignore[return-value]


def fault_point(site: str) -> str | None:
    """Consult the plan at one named site; the hot-path entry point.

    Returns ``None`` (no fault) or ``"truncate"``/``"drop"`` for the call
    site to apply; ``raise``/``delay``/``kill`` rules act right here.
    """
    plan = _PLAN
    if plan is None:
        return None
    if plan is _UNSET:
        plan = active_plan()
        if plan is None:
            return None
    return plan.trigger(site)  # type: ignore[union-attr]


__all__ = [
    "ACTIONS",
    "ENV_VAR",
    "KNOWN_SITES",
    "FaultPlan",
    "FaultRule",
    "active_plan",
    "fault_point",
    "install_plan",
    "parse_plan",
    "reset_plan",
]
