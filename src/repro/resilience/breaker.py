"""Circuit breaking: fail fast on a query that keeps blowing up.

A query that deterministically faults (poisoned data, a bug tickled by one
spec, an injected chaos rule) would otherwise burn an enumeration slot on
every arrival — the worst possible spend under load.  A :class:`CircuitBreaker`
tracks consecutive failures per key; once ``failure_threshold`` is reached it
**opens** and every caller fails fast with the typed
:class:`~repro.errors.CircuitOpenError` (cost: a dict lookup, not an
enumeration).  After ``reset_timeout`` seconds it **half-opens**: exactly one
probe is allowed through; success closes the circuit, failure re-opens it for
another full timeout.

The serve layer keys breakers on ``(graph, resolved spec)`` — one misbehaving
query cannot open the circuit for its neighbours — and mirrors each state
into the ``repro_serve_circuit_state`` gauge (0 closed, 1 half-open, 2 open).
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable

from ..errors import CircuitOpenError

#: Gauge values for the three states (Prometheus-friendly ordering).
CLOSED, HALF_OPEN, OPEN = 0, 1, 2
_STATE_NAMES = {CLOSED: "closed", HALF_OPEN: "half-open", OPEN: "open"}


class CircuitBreaker:
    """One key's failure tracker: closed -> open -> half-open -> closed."""

    def __init__(self, failure_threshold: int = 5, reset_timeout: float = 30.0,
                 *, clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def state(self) -> int:
        with self._lock:
            return self._state_locked()

    @property
    def state_name(self) -> str:
        return _STATE_NAMES[self.state]

    def _state_locked(self) -> int:
        if self._opened_at is None:
            return CLOSED
        if self._clock() - self._opened_at >= self.reset_timeout:
            return HALF_OPEN
        return OPEN

    # ------------------------------------------------------------------
    # The caller protocol: allow() before, record_*() after
    # ------------------------------------------------------------------
    def allow(self) -> None:
        """Admit one call or raise :class:`CircuitOpenError` immediately.

        In the half-open state exactly one caller is admitted as the probe;
        concurrent arrivals keep failing fast until the probe reports.
        """
        with self._lock:
            state = self._state_locked()
            if state == CLOSED:
                return
            if state == HALF_OPEN and not self._probing:
                self._probing = True
                return
            retry_after = (self.reset_timeout
                           - (self._clock() - (self._opened_at or 0.0)))
            raise CircuitOpenError(
                f"circuit open after {self._failures} consecutive failures; "
                f"probe in {max(0.0, retry_after):.3f}s",
                retry_after=max(0.0, retry_after))

    def record_success(self) -> None:
        """A call completed: close the circuit and clear the failure run."""
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        """A call faulted: count it; open (or re-open) past the threshold."""
        with self._lock:
            self._failures += 1
            self._probing = False
            if self._failures >= self.failure_threshold:
                self._opened_at = self._clock()

    def stats(self) -> dict:
        with self._lock:
            return {"state": _STATE_NAMES[self._state_locked()],
                    "consecutive_failures": self._failures,
                    "failure_threshold": self.failure_threshold,
                    "reset_timeout": self.reset_timeout}


class BreakerBoard:
    """A lazily-populated table of breakers, one per hashable key."""

    def __init__(self, failure_threshold: int = 5, reset_timeout: float = 30.0,
                 *, clock: Callable[[], float] = time.monotonic) -> None:
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: dict = {}

    def for_key(self, key) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = self._breakers[key] = CircuitBreaker(
                    self.failure_threshold, self.reset_timeout,
                    clock=self._clock)
            return breaker

    def stats(self) -> dict:
        """Non-closed breakers only (the interesting ones), by key repr."""
        with self._lock:
            items = list(self._breakers.items())
        return {repr(key): breaker.stats() for key, breaker in items
                if breaker.state != CLOSED}

    def __len__(self) -> int:
        return len(self._breakers)


__all__ = ["BreakerBoard", "CircuitBreaker", "CLOSED", "HALF_OPEN", "OPEN"]
