"""repro.resilience — the fault-tolerance layer.

Everything the serving stack needs to keep answering correctly while pieces
of it die, stall, or lie:

* :mod:`repro.resilience.faults` — **deterministic fault injection**: a
  seeded, process-global :class:`~repro.resilience.faults.FaultPlan`
  (``REPRO_FAULTS`` env or programmatic) with named sites registered at the
  hot paths (``spool.claim``, ``serve.write_frame``, ``engine.subproblem``,
  ...).  Rules raise, delay, truncate writes, drop connections, or kill the
  process on the Nth hit, and every fired fault is counted in
  ``repro_faults_injected_total{site=}`` so chaos tests can assert the fault
  actually happened.
* :mod:`repro.resilience.retry` — **client retry machinery**: capped
  decorrelated-jitter backoff (:class:`~repro.resilience.retry.RetryPolicy`),
  wall-clock :class:`~repro.resilience.retry.Deadline` budgets that propagate
  into the server-side budget clamp, and
  :func:`~repro.resilience.retry.call_with_retry`.
* :mod:`repro.resilience.breaker` — **circuit breaking**: per-key
  :class:`~repro.resilience.breaker.CircuitBreaker` (closed → open →
  half-open probe) failing fast with the typed
  :class:`~repro.errors.CircuitOpenError`.

The consumers live in :mod:`repro.serve`: lease-based worker recovery and
payload checksums in :mod:`repro.serve.worker`, retry + stream resume in
:mod:`repro.serve.client`, deadlines and per-``(graph, spec)`` breakers in
:mod:`repro.serve.service`.  The invariant every piece defends: under any
interleaving of worker kills, dropped connections, and corrupt payloads, a
recovered run's answers are **identical** to the fault-free sequential run —
faults may cost latency, never correctness.
"""

from .breaker import BreakerBoard, CircuitBreaker
from .faults import (FaultPlan, FaultRule, KNOWN_SITES, active_plan,
                     fault_point, install_plan, parse_plan, reset_plan)
from .retry import Deadline, RetryPolicy, call_with_retry

__all__ = [
    "BreakerBoard",
    "CircuitBreaker",
    "Deadline",
    "FaultPlan",
    "FaultRule",
    "KNOWN_SITES",
    "RetryPolicy",
    "active_plan",
    "call_with_retry",
    "fault_point",
    "install_plan",
    "parse_plan",
    "reset_plan",
]
