"""Content fingerprints for graphs, used as cache keys by the query engine.

A fingerprint is a SHA-256 digest over a canonical serialisation of the graph:
the vertex labels in index order followed by the edge list as sorted index
pairs.  Two :class:`~repro.graph.graph.Graph` objects that hold the same
labelled vertices and edges (regardless of insertion order of the *edges*)
produce the same fingerprint; graphs that differ in any vertex or edge do not,
up to hash collisions.

Labels are serialised with ``repr``, so labels must have a stable ``repr``
(true for the strings/ints used throughout the library).  Vertex *index*
order matters: the same edge set added in a different vertex order is a
different prepared object (its bitmask layout differs), and the fingerprint
reflects that.
"""

from __future__ import annotations

import hashlib

from ..graph.graph import Graph

#: Number of hex digits kept from the SHA-256 digest (64 bits of collision
#: resistance, plenty for a per-process result cache).
FINGERPRINT_LENGTH = 16


def graph_fingerprint(graph: Graph, length: int = FINGERPRINT_LENGTH) -> str:
    """Return a hex content fingerprint of ``graph``.

    The digest covers the vertex count, every label in index order and every
    edge as an ``i < j`` index pair in lexicographic order, so it is invariant
    to edge insertion order but sensitive to any content change.
    """
    hasher = hashlib.sha256()
    hasher.update(f"V:{graph.vertex_count};E:{graph.edge_count};".encode())
    for label in graph.vertices():
        hasher.update(repr(label).encode())
        hasher.update(b"\x00")
    for i in range(graph.vertex_count):
        for j in sorted(graph.adjacency_set(i)):
            if i < j:
                hasher.update(f"{i},{j};".encode())
    return hasher.hexdigest()[:length]
