"""Bounded LRU cache for MQCE query results.

Results are keyed by ``(fingerprint, gamma, theta, algorithm, branching,
framework)`` — everything that determines the *content* of an
:class:`~repro.pipeline.results.EnumerationResult`.  The gamma component is
normalised through :func:`~repro.quasiclique.definitions.gamma_fraction`, so
``0.9`` and ``Fraction(9, 10)`` address the same entry, exactly as they define
the same quasi-clique threshold.

The cache is a plain ``OrderedDict`` LRU with hit / miss / eviction / insert
counters; it stores whatever the engine puts in it and never copies — the
engine is responsible for handing out defensive copies of mutable results.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, asdict
from typing import Any, Hashable

from ..obs.metrics import REGISTRY
from ..quasiclique.definitions import gamma_fraction

DEFAULT_CAPACITY = 128

# Process-wide cache metrics (every ResultCache in the process feeds them;
# the per-instance CacheStats dataclass remains the per-cache view).
_HITS = REGISTRY.counter("repro_cache_hits_total",
                         "Result-cache lookups served from the cache")
_MISSES = REGISTRY.counter("repro_cache_misses_total",
                           "Result-cache lookups that found no entry")
_EVICTIONS = REGISTRY.counter("repro_cache_evictions_total",
                              "Entries evicted by the LRU capacity bound")
_INSERTS = REGISTRY.counter("repro_cache_inserts_total",
                            "Entries inserted into a result cache")
_DISCARDS = REGISTRY.counter("repro_cache_invalidations_total",
                             "Entries dropped by selective invalidation")
_REKEYS = REGISTRY.counter("repro_cache_rekeys_total",
                           "Entries re-addressed to a new graph fingerprint")


@dataclass
class CacheStats:
    """Counter snapshot of one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    inserts: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when never queried)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        data = asdict(self)
        data["hit_rate"] = self.hit_rate
        return data


class ResultCache:
    """A bounded least-recently-used mapping with usage counters."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be a positive integer")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.stats = CacheStats()

    @staticmethod
    def make_key(fingerprint: str, gamma: float, theta: int, algorithm: str,
                 branching: str, framework: str) -> tuple:
        """Build the PR-1 positional cache key (kept for backwards compatibility).

        The engine itself now keys on :meth:`spec_key`; this helper remains
        for callers that address the cache with bare parameters.
        """
        return (fingerprint, gamma_fraction(gamma), int(theta),
                algorithm, branching, framework)

    @staticmethod
    def spec_key(fingerprint: str, spec) -> tuple:
        """The canonical ``(fingerprint, spec)`` cache key.

        ``spec`` must be a *resolved* :class:`repro.api.QuerySpec` (no
        ``"auto"`` algorithm, no ``None`` branching/framework — see
        :meth:`QuerySpec.resolved`), so that a forced configuration and a
        planner-chosen identical configuration share one entry.  Budgets and
        output options are excluded by :meth:`QuerySpec.cache_key`.
        """
        return (fingerprint,) + spec.cache_key()

    # ------------------------------------------------------------------
    def peek(self, key: Hashable) -> Any | None:
        """Return the cached value without touching recency or the counters."""
        return self._entries.get(key)

    def get(self, key: Hashable) -> Any | None:
        """Return the cached value (refreshing recency) or None, counting the lookup."""
        try:
            value = self._entries[key]
        except KeyError:
            self.stats.misses += 1
            _MISSES.inc()
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        _HITS.inc()
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh an entry, evicting the least recently used on overflow."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        self.stats.inserts += 1
        _INSERTS.inc()
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            _EVICTIONS.inc()

    def discard(self, key: Hashable) -> bool:
        """Remove an entry without touching the hit/miss counters.

        Used by selective invalidation (:class:`repro.dynamic.DynamicEngine`):
        the entry is dropped because its graph changed, which is neither a
        lookup nor a capacity eviction.  Returns True when the key existed.
        """
        if self._entries.pop(key, None) is not None:
            _DISCARDS.inc()
            return True
        return False

    def rekey(self, old_key: Hashable, new_key: Hashable) -> bool:
        """Move an entry to a new key, preserving its value and recency.

        The dynamic engine re-addresses cache entries that *survive* a graph
        mutation from the old content fingerprint to the new one, so warm hits
        keep working without re-enumeration.  Returns True when the old key
        existed (the value now lives under ``new_key``); an existing entry at
        ``new_key`` is overwritten.
        """
        try:
            value = self._entries.pop(old_key)
        except KeyError:
            return False
        self._entries[new_key] = value
        _REKEYS.inc()
        return True

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        """Membership test; does not touch recency or the counters."""
        return key in self._entries

    def keys(self) -> list:
        """Keys from least to most recently used."""
        return list(self._entries)

    def clear(self, reset_stats: bool = False) -> None:
        """Drop every entry; optionally reset the counters too."""
        self._entries.clear()
        if reset_stats:
            self.stats = CacheStats()

    def __repr__(self) -> str:
        return (f"ResultCache(size={len(self)}/{self.capacity}, "
                f"hits={self.stats.hits}, misses={self.stats.misses}, "
                f"evictions={self.stats.evictions})")
