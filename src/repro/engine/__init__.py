"""repro.engine — a persistent MQCE query engine.

The one-shot pipeline (:func:`repro.find_maximal_quasi_cliques`) re-validates,
re-prunes and re-enumerates from scratch on every call.  This package adds
what a database engine adds on top of an algorithm:

* :class:`PreparedGraph` — per-graph preprocessing (core decomposition,
  degeneracy ordering, components, content fingerprint) computed once,
* :class:`QueryPlanner` / :class:`QueryPlan` — explainable cost-based
  selection of algorithm, branching rule and parallelism,
* :class:`ResultCache` — a bounded LRU over
  ``(fingerprint, gamma, theta, algorithm)`` with hit/miss/eviction counters,
* :class:`MQCEEngine` — the facade tying them together, with ``query()``,
  ``stream()`` (incremental delivery of a :class:`repro.api.QuerySpec`),
  ``query_batch()``, ``explain()`` and ``stats()``.

Quickstart
----------
>>> from repro import MQCEEngine
>>> from repro.datasets import load_dataset, get_spec
>>> engine = MQCEEngine()
>>> spec = get_spec("ca-grqc")
>>> result = engine.query(load_dataset("ca-grqc"), spec.default_gamma,
...                       spec.default_theta)        # cold: plans + enumerates
>>> result.maximal_count
6
"""

from .cache import CacheStats, ResultCache
from .engine import EngineError, MQCEEngine, QueryRecord, QueryRequest
from .fingerprint import graph_fingerprint
from .planner import PlannerConfig, QueryPlan, QueryPlanner
from .prepared import PreparedGraph, as_plain_graph, prepare_graph
from .stream import ResultStream

__all__ = [
    "CacheStats",
    "EngineError",
    "MQCEEngine",
    "PlannerConfig",
    "PreparedGraph",
    "QueryPlan",
    "QueryPlanner",
    "QueryRecord",
    "QueryRequest",
    "ResultCache",
    "ResultStream",
    "as_plain_graph",
    "graph_fingerprint",
    "prepare_graph",
]
