"""The MQCE query engine: prepared graphs + plan selection + result caching.

:class:`MQCEEngine` is the persistent facade the one-shot
:func:`repro.find_maximal_quasi_cliques` pipeline lacks.  A query flows
through three stages:

1. **Prepare** — the graph is wrapped in a
   :class:`~repro.engine.prepared.PreparedGraph` (memoized core decomposition,
   ordering, components, fingerprint).  A plain graph is prepared once and the
   preparation attached to the graph object itself, so it lives exactly as
   long as the graph does (and is shared by every engine that sees the graph).
2. **Plan** — the :class:`~repro.engine.planner.QueryPlanner` picks the
   MQCE-S1 algorithm, branching rule and (for large cores) process-level
   parallelism from the prepared statistics; :meth:`MQCEEngine.explain`
   returns this plan without enumerating anything.
3. **Execute or hit** — the plan key is looked up in the LRU
   :class:`~repro.engine.cache.ResultCache`; on a miss the plan is executed
   through the existing :mod:`repro.pipeline.mqce` internals (or
   :class:`~repro.extensions.parallel.ParallelDCFastQC` when the plan says
   so) and the result is cached.

Results are regular :class:`~repro.pipeline.results.EnumerationResult`
objects, bit-identical in content to what ``find_maximal_quasi_cliques``
returns for the same parameters; cache hits hand out defensive copies so
callers may mutate the lists they receive.
"""

from __future__ import annotations

import weakref
from collections import Counter, deque
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from ..api.execute import containment_search, shape_result, topk_search
from ..api.spec import QuerySpec, coerce_spec
from ..errors import EngineError
from ..extensions.parallel import LAST_PARALLEL_RUN, ParallelDCFastQC
from ..graph.graph import Graph
from ..obs.metrics import REGISTRY
from ..obs.trace import NULL_TRACER
from ..pipeline.mqce import canonical_order, run_enumeration
from ..pipeline.results import EnumerationResult
from ..settrie.filter import filter_non_maximal
from .cache import DEFAULT_CAPACITY, ResultCache
from .planner import PlannerConfig, QueryPlan, QueryPlanner
from .prepared import PreparedGraph
from .stream import ResultStream

_QUERIES = REGISTRY.counter(
    "repro_engine_queries_total",
    "Queries served by MQCEEngine.query, by how they were served")

#: How many per-query records the engine keeps for ``stats()``.
HISTORY_LIMIT = 1024

#: Attribute under which a Graph carries its own PreparedGraph.  Attaching the
#: preparation to the graph ties their lifetimes together: a WeakKeyDictionary
#: would never release entries (the PreparedGraph value strongly references
#: its Graph key), while the graph -> prepared -> graph reference cycle is
#: ordinary garbage for the cycle collector once the caller drops the graph.
_PREPARED_ATTRIBUTE = "_repro_prepared"


@dataclass(frozen=True)
class QueryRequest:
    """One entry of a :meth:`MQCEEngine.query_batch` workload."""

    gamma: float
    theta: int
    algorithm: str = "auto"
    branching: str | None = None

    @classmethod
    def coerce(cls, entry: "QueryRequest | Mapping | tuple") -> "QueryRequest":
        """Accept a QueryRequest, a ``{"gamma": .., "theta": ..}`` mapping or a tuple."""
        if isinstance(entry, cls):
            return entry
        if isinstance(entry, Mapping):
            return cls(**entry)
        gamma, theta, *rest = entry
        return cls(gamma, theta, *rest)


@dataclass(frozen=True)
class QueryRecord:
    """Bookkeeping for one served query (fed into ``stats()``)."""

    fingerprint: str
    gamma: float
    theta: int
    algorithm: str
    cached: bool
    seconds: float


class MQCEEngine:
    """A persistent, caching MQCE query engine over one or more graphs.

    Parameters
    ----------
    cache_size:
        Capacity of the LRU result cache (entries, not bytes).
    planner:
        A :class:`QueryPlanner`; defaults to one with the stock thresholds.
        Pass ``QueryPlanner(PlannerConfig(...))`` to tune plan selection.
    workers:
        Default worker budget offered to the planner for parallel plans
        (None: let the planner use the machine's CPU count).
    """

    def __init__(self, cache_size: int = DEFAULT_CAPACITY,
                 planner: QueryPlanner | None = None,
                 workers: int | None = None) -> None:
        self.planner = planner or QueryPlanner()
        self.cache = ResultCache(cache_size)
        self.workers = workers
        self.history: deque[QueryRecord] = deque(maxlen=HISTORY_LIMIT)
        # Stats-only view of the preparations this engine has touched; each
        # PreparedGraph is kept alive by its graph, never by the engine.
        self._prepared: "weakref.WeakSet[PreparedGraph]" = weakref.WeakSet()

    # ------------------------------------------------------------------
    # Stage 1: preparation
    # ------------------------------------------------------------------
    def prepare(self, graph: Graph | PreparedGraph,
                name: str | None = None) -> PreparedGraph:
        """Return (and remember) the :class:`PreparedGraph` for ``graph``.

        A plain :class:`Graph` is prepared on first sight and the preparation
        attached to the graph object, so every later call with the same object
        (from this or any other engine) reuses it; if the graph was mutated in
        between, it is transparently re-prepared.  An explicit
        :class:`PreparedGraph` is the caller's responsibility: passing one
        whose underlying graph changed raises :class:`EngineError`.
        """
        if isinstance(graph, PreparedGraph):
            if not graph.check_unmodified():
                raise EngineError(
                    "the underlying graph of the PreparedGraph was mutated after "
                    "preparation; build a new PreparedGraph for the new content")
            self._prepared.add(graph)
            return graph
        prepared = getattr(graph, _PREPARED_ATTRIBUTE, None)
        if not isinstance(prepared, PreparedGraph) or not prepared.check_unmodified():
            prepared = PreparedGraph(graph, name=name)
            setattr(graph, _PREPARED_ATTRIBUTE, prepared)
        self._prepared.add(prepared)
        return prepared

    # ------------------------------------------------------------------
    # Stage 2: planning
    # ------------------------------------------------------------------
    def explain(self, graph: Graph | PreparedGraph, gamma=None, theta: int | None = None,
                algorithm: str = "auto", branching: str | None = None, *,
                spec: QuerySpec | None = None) -> QueryPlan:
        """Return the plan a query would use, without running the enumeration.

        Accepts either the PR-1 parameters (``explain(graph, gamma, theta,
        ...)``) or a :class:`QuerySpec` (``explain(graph, spec)``).
        """
        spec = coerce_spec(gamma, theta, algorithm, branching, spec=spec)
        prepared = self.prepare(graph)
        return self.planner.plan_spec(prepared, spec, workers=self.workers)

    # ------------------------------------------------------------------
    # Stage 3: execution
    # ------------------------------------------------------------------
    def query(self, graph: Graph | PreparedGraph, gamma=None, theta: int | None = None,
              algorithm: str = "auto", branching: str | None = None,
              use_cache: bool = True, *,
              spec: QuerySpec | None = None,
              trace=None, progress=None) -> EnumerationResult:
        """Solve one query described by a :class:`QuerySpec`, serving repeats from cache.

        Both calling styles are supported — ``query(graph, spec)`` /
        ``query(graph, spec=spec)`` with a :class:`repro.api.QuerySpec`, and
        the PR-1 style ``query(graph, gamma, theta, algorithm=...,
        branching=...)`` which builds the equivalent spec internally (both
        styles address the same cache entries).

        For the plain enumerate workload the returned
        :class:`EnumerationResult` is content-identical to the one-shot
        pipeline's result for the same parameters; the ``algorithm`` may
        differ when the planner picked a cheaper exact one (all MQCE-S1
        algorithms agree after MQCE-S2 filtering).  Top-k and containment
        specs return the same envelope with their (ranked / constrained)
        answers as ``maximal_quasi_cliques``.  Results truncated by a
        ``time_limit`` are marked and never cached; ``max_results`` /
        ``include_candidates`` shape only the delivered copy, so warm
        identical queries still skip re-enumeration regardless of output
        options.

        ``trace`` is an optional :class:`repro.obs.Tracer`: the query becomes
        one ``query`` root span with ``prepare`` / ``plan`` / ``cache``
        children plus the execution-path spans (``enumerate`` / ``filter``,
        or the DC driver's ``decompose`` / ``shrink`` / ``subproblem``).
        ``progress`` is an optional :class:`repro.obs.ProgressTicker` fed by
        the branch loop (ignored on cache hits and parallel plans).
        """
        tracer = trace if trace is not None else NULL_TRACER
        with tracer.span("query") as query_span:
            spec = coerce_spec(gamma, theta, algorithm, branching, spec=spec)
            with tracer.span("prepare"):
                prepared = self.prepare(graph)
            with tracer.span("plan") as plan_span:
                plan = self.planner.plan_spec(prepared, spec, workers=self.workers)
                plan_span.annotate(algorithm=plan.algorithm,
                                   branching=plan.branching)
            resolved = spec.resolved(plan)
            key = ResultCache.spec_key(prepared.fingerprint, resolved)
            query_span.annotate(gamma=plan.gamma, theta=plan.theta,
                                algorithm=plan.algorithm,
                                workload=spec.workload)
            if use_cache and spec.cacheable:
                with tracer.span("cache") as cache_span:
                    cached = self.cache.get(key)
                    cache_span.annotate(hit=cached is not None)
                if cached is not None:
                    query_span.annotate(served="cache")
                    self._record(plan, cached=True,
                                 seconds=query_span.elapsed())
                    return shape_result(cached, spec)
            result = self._execute_spec(prepared, resolved, plan,
                                        tracer=tracer, progress=progress)
            if use_cache and spec.cacheable and not result.truncated:
                self.cache.put(key, result)
            query_span.annotate(served="execute")
            self._record(plan, cached=False, seconds=query_span.elapsed())
            return shape_result(result, spec)

    def stream(self, graph: Graph | PreparedGraph, gamma=None, theta: int | None = None,
               algorithm: str = "auto", branching: str | None = None,
               use_cache: bool = True, *,
               spec: QuerySpec | None = None,
               trace=None, progress=None) -> ResultStream:
        """Yield maximal quasi-cliques incrementally for one query.

        Returns a :class:`~repro.engine.stream.ResultStream` iterator.  Warm
        queries replay the cached answer; cold enumerate queries yield each
        maximal quasi-clique as soon as it is *confirmed* (for DCFastQC plans
        the first answers arrive long before the enumeration finishes) and
        populate the cache when they run to completion.  The spec's budgets
        (``time_limit``, ``max_results``) stop the underlying enumeration
        cooperatively, and :meth:`ResultStream.cancel` aborts mid-flight.
        Every set yielded by an incremental (DC) stream is genuinely maximal
        in the full answer, even when the stream is truncated.

        ``trace`` attaches a :class:`repro.obs.Tracer` to the stream (exposed
        as :attr:`ResultStream.tracer`): the live path records an
        ``enumerate`` span whose clock pauses while the stream is suspended
        at a yield.  ``progress`` forwards a branch-tick hook to the
        underlying enumeration.
        """
        spec = coerce_spec(gamma, theta, algorithm, branching, spec=spec)
        prepared = self.prepare(graph)
        plan = self.planner.plan_spec(prepared, spec, workers=self.workers)
        resolved = spec.resolved(plan)
        key = ResultCache.spec_key(prepared.fingerprint, resolved)
        return ResultStream(self, prepared, spec, plan, key, use_cache=use_cache,
                            trace=trace, progress=progress)

    def query_batch(self, graph: Graph | PreparedGraph,
                    requests: Iterable[QuerySpec | QueryRequest | Mapping | tuple]
                    ) -> list[EnumerationResult]:
        """Run many queries against one graph, preparing it exactly once.

        ``requests`` entries may be :class:`repro.api.QuerySpec` objects,
        :class:`QueryRequest` objects, ``(gamma, theta[, algorithm[,
        branching]])`` tuples or mappings with those keys.  Results come back
        in request order; duplicates within the batch are served from the
        cache.
        """
        prepared = self.prepare(graph)
        results = []
        for entry in requests:
            if isinstance(entry, QuerySpec):
                results.append(self.query(prepared, entry))
                continue
            request = QueryRequest.coerce(entry)
            results.append(self.query(prepared, request.gamma, request.theta,
                                      algorithm=request.algorithm,
                                      branching=request.branching))
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Engine counters: queries served, cache behaviour, plan mix."""
        algorithms = Counter(record.algorithm for record in self.history)
        cached = sum(1 for record in self.history if record.cached)
        stats = {
            "queries": len(self.history),
            "queries_cached": cached,
            "queries_executed": len(self.history) - cached,
            "prepared_graphs": len(self._prepared),
            "cache_entries": len(self.cache),
            "cache_capacity": self.cache.capacity,
            "cache": self.cache.stats.as_dict(),
            "plans_by_algorithm": dict(algorithms),
        }
        if LAST_PARALLEL_RUN:
            # Telemetry of the most recent parallel enumeration (mode, steal
            # count, worker utilization) — process-global, like the registry.
            stats["parallel"] = dict(LAST_PARALLEL_RUN)
        return stats

    def clear_cache(self) -> None:
        """Drop every cached result (the counters survive for ``stats()``)."""
        self.cache.clear()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _execute_spec(self, prepared: PreparedGraph, resolved: QuerySpec,
                      plan: QueryPlan, tracer=None,
                      progress=None) -> EnumerationResult:
        """Run one resolved spec through the right workload path."""
        tracer = tracer if tracer is not None else NULL_TRACER
        if plan.trivial:
            # Preprocessing proved no quasi-clique of size >= theta exists, so
            # every workload's answer is empty.
            return EnumerationResult(
                maximal_quasi_cliques=[], candidate_quasi_cliques=[],
                algorithm=plan.algorithm, gamma=plan.gamma, theta=plan.theta)
        graph = prepared.graph
        if resolved.contains:
            return containment_search(graph, resolved, tracer=tracer,
                                      progress=progress)
        if resolved.k is not None:
            return topk_search(graph, resolved,
                               size_bound=prepared.size_upper_bound(resolved.gamma),
                               tracer=tracer, progress=progress)
        if plan.parallel and resolved.time_limit is None:
            # The process-pool driver has no cooperative-cancellation channel,
            # so budgeted queries always take the sequential path.  (It has no
            # branch-tick channel either; `progress` only applies below.)
            runner = ParallelDCFastQC(graph, plan.gamma, plan.theta,
                                      branching=plan.branching, kernel=plan.kernel,
                                      workers=plan.workers, mode=plan.parallel_mode)
            with tracer.span("enumerate", algorithm=plan.algorithm,
                             parallel=True) as enumerate_span:
                candidates = runner.enumerate()
                enumerate_span.annotate(candidates=len(candidates),
                                        mode=runner.mode_selected)
            with tracer.span("filter") as filter_span:
                maximal = filter_non_maximal(candidates, theta=plan.theta)
                filter_span.annotate(maximal=len(maximal))
            # Feed the observed subproblem-size histogram back to the planner:
            # the next plan for this (gamma, theta) decides shard-vs-branch
            # from real evidence instead of the sampled estimate.
            prepared.record_subproblem_histogram(
                plan.gamma, plan.theta, runner.statistics.subproblem_sizes)
            prepared.record_subproblem_histogram(
                plan.gamma, plan.theta, runner.statistics.subproblem_branches,
                kind="branches")
            return EnumerationResult(
                maximal_quasi_cliques=canonical_order(maximal),
                candidate_quasi_cliques=list(candidates),
                algorithm=plan.algorithm, gamma=plan.gamma, theta=plan.theta,
                search_statistics=runner.statistics,
                enumeration_seconds=enumerate_span.seconds,
                filtering_seconds=filter_span.seconds)
        result = run_enumeration(graph, resolved, tracer=tracer, progress=progress)
        if result.search_statistics is not None:
            # Sequential DC runs observe the same decomposition; recording the
            # histogram (no-op when empty) lets the next plan for this
            # (gamma, theta) pick shard vs branch from evidence.
            prepared.record_subproblem_histogram(
                plan.gamma, plan.theta, result.search_statistics.subproblem_sizes)
            prepared.record_subproblem_histogram(
                plan.gamma, plan.theta,
                result.search_statistics.subproblem_branches, kind="branches")
        return result

    def _record(self, plan: QueryPlan, cached: bool, seconds: float) -> None:
        _QUERIES.inc(served="cache" if cached else "execute")
        self.history.append(QueryRecord(
            fingerprint=plan.fingerprint, gamma=plan.gamma, theta=plan.theta,
            algorithm=plan.algorithm, cached=cached, seconds=seconds))

    def __repr__(self) -> str:
        return (f"MQCEEngine(prepared={len(self._prepared)}, "
                f"cache={len(self.cache)}/{self.cache.capacity}, "
                f"queries={len(self.history)})")


# Re-exported here so `from repro.engine.engine import PlannerConfig` users see
# the full tuning surface next to the facade.
__all__ = ["EngineError", "MQCEEngine", "QueryRecord", "QueryRequest", "PlannerConfig"]
