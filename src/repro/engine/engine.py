"""The MQCE query engine: prepared graphs + plan selection + result caching.

:class:`MQCEEngine` is the persistent facade the one-shot
:func:`repro.find_maximal_quasi_cliques` pipeline lacks.  A query flows
through three stages:

1. **Prepare** — the graph is wrapped in a
   :class:`~repro.engine.prepared.PreparedGraph` (memoized core decomposition,
   ordering, components, fingerprint).  A plain graph is prepared once and the
   preparation attached to the graph object itself, so it lives exactly as
   long as the graph does (and is shared by every engine that sees the graph).
2. **Plan** — the :class:`~repro.engine.planner.QueryPlanner` picks the
   MQCE-S1 algorithm, branching rule and (for large cores) process-level
   parallelism from the prepared statistics; :meth:`MQCEEngine.explain`
   returns this plan without enumerating anything.
3. **Execute or hit** — the plan key is looked up in the LRU
   :class:`~repro.engine.cache.ResultCache`; on a miss the plan is executed
   through the existing :mod:`repro.pipeline.mqce` internals (or
   :class:`~repro.extensions.parallel.ParallelDCFastQC` when the plan says
   so) and the result is cached.

Results are regular :class:`~repro.pipeline.results.EnumerationResult`
objects, bit-identical in content to what ``find_maximal_quasi_cliques``
returns for the same parameters; cache hits hand out defensive copies so
callers may mutate the lists they receive.
"""

from __future__ import annotations

import dataclasses
import time
import weakref
from collections import Counter, deque
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from ..core.stats import SearchStatistics
from ..extensions.parallel import ParallelDCFastQC
from ..graph.graph import Graph
from ..pipeline.mqce import canonical_order, find_maximal_quasi_cliques
from ..pipeline.results import EnumerationResult
from ..settrie.filter import filter_non_maximal
from .cache import DEFAULT_CAPACITY, ResultCache
from .planner import PlannerConfig, QueryPlan, QueryPlanner
from .prepared import PreparedGraph

#: How many per-query records the engine keeps for ``stats()``.
HISTORY_LIMIT = 1024

#: Attribute under which a Graph carries its own PreparedGraph.  Attaching the
#: preparation to the graph ties their lifetimes together: a WeakKeyDictionary
#: would never release entries (the PreparedGraph value strongly references
#: its Graph key), while the graph -> prepared -> graph reference cycle is
#: ordinary garbage for the cycle collector once the caller drops the graph.
_PREPARED_ATTRIBUTE = "_repro_prepared"


class EngineError(ValueError):
    """Raised for invalid engine usage (e.g. querying a mutated prepared graph)."""


@dataclass(frozen=True)
class QueryRequest:
    """One entry of a :meth:`MQCEEngine.query_batch` workload."""

    gamma: float
    theta: int
    algorithm: str = "auto"
    branching: str | None = None

    @classmethod
    def coerce(cls, entry: "QueryRequest | Mapping | tuple") -> "QueryRequest":
        """Accept a QueryRequest, a ``{"gamma": .., "theta": ..}`` mapping or a tuple."""
        if isinstance(entry, cls):
            return entry
        if isinstance(entry, Mapping):
            return cls(**entry)
        gamma, theta, *rest = entry
        return cls(gamma, theta, *rest)


@dataclass(frozen=True)
class QueryRecord:
    """Bookkeeping for one served query (fed into ``stats()``)."""

    fingerprint: str
    gamma: float
    theta: int
    algorithm: str
    cached: bool
    seconds: float


class MQCEEngine:
    """A persistent, caching MQCE query engine over one or more graphs.

    Parameters
    ----------
    cache_size:
        Capacity of the LRU result cache (entries, not bytes).
    planner:
        A :class:`QueryPlanner`; defaults to one with the stock thresholds.
        Pass ``QueryPlanner(PlannerConfig(...))`` to tune plan selection.
    workers:
        Default worker budget offered to the planner for parallel plans
        (None: let the planner use the machine's CPU count).
    """

    def __init__(self, cache_size: int = DEFAULT_CAPACITY,
                 planner: QueryPlanner | None = None,
                 workers: int | None = None) -> None:
        self.planner = planner or QueryPlanner()
        self.cache = ResultCache(cache_size)
        self.workers = workers
        self.history: deque[QueryRecord] = deque(maxlen=HISTORY_LIMIT)
        # Stats-only view of the preparations this engine has touched; each
        # PreparedGraph is kept alive by its graph, never by the engine.
        self._prepared: "weakref.WeakSet[PreparedGraph]" = weakref.WeakSet()

    # ------------------------------------------------------------------
    # Stage 1: preparation
    # ------------------------------------------------------------------
    def prepare(self, graph: Graph | PreparedGraph,
                name: str | None = None) -> PreparedGraph:
        """Return (and remember) the :class:`PreparedGraph` for ``graph``.

        A plain :class:`Graph` is prepared on first sight and the preparation
        attached to the graph object, so every later call with the same object
        (from this or any other engine) reuses it; if the graph was mutated in
        between, it is transparently re-prepared.  An explicit
        :class:`PreparedGraph` is the caller's responsibility: passing one
        whose underlying graph changed raises :class:`EngineError`.
        """
        if isinstance(graph, PreparedGraph):
            if not graph.check_unmodified():
                raise EngineError(
                    "the underlying graph of the PreparedGraph was mutated after "
                    "preparation; build a new PreparedGraph for the new content")
            self._prepared.add(graph)
            return graph
        prepared = getattr(graph, _PREPARED_ATTRIBUTE, None)
        if not isinstance(prepared, PreparedGraph) or not prepared.check_unmodified():
            prepared = PreparedGraph(graph, name=name)
            setattr(graph, _PREPARED_ATTRIBUTE, prepared)
        self._prepared.add(prepared)
        return prepared

    # ------------------------------------------------------------------
    # Stage 2: planning
    # ------------------------------------------------------------------
    def explain(self, graph: Graph | PreparedGraph, gamma: float, theta: int,
                algorithm: str = "auto", branching: str | None = None) -> QueryPlan:
        """Return the plan a query would use, without running the enumeration."""
        prepared = self.prepare(graph)
        return self.planner.plan(prepared, gamma, theta, algorithm=algorithm,
                                 branching=branching, workers=self.workers)

    # ------------------------------------------------------------------
    # Stage 3: execution
    # ------------------------------------------------------------------
    def query(self, graph: Graph | PreparedGraph, gamma: float, theta: int,
              algorithm: str = "auto", branching: str | None = None,
              use_cache: bool = True) -> EnumerationResult:
        """Solve one MQCE query, serving repeats from the result cache.

        The returned :class:`EnumerationResult` is content-identical to
        ``find_maximal_quasi_cliques(graph, gamma, theta, ...)``; the
        ``algorithm`` may differ when the planner picked a cheaper exact one
        (all MQCE-S1 algorithms agree after MQCE-S2 filtering).
        """
        start = time.perf_counter()
        prepared = self.prepare(graph)
        plan = self.planner.plan(prepared, gamma, theta, algorithm=algorithm,
                                 branching=branching, workers=self.workers)
        key = ResultCache.make_key(prepared.fingerprint, gamma, theta,
                                   plan.algorithm, plan.branching, plan.framework)
        if use_cache:
            cached = self.cache.get(key)
            if cached is not None:
                self._record(plan, cached=True, seconds=time.perf_counter() - start)
                return self._copy_result(cached)
        result = self._execute(prepared, plan)
        if use_cache:
            self.cache.put(key, result)
        self._record(plan, cached=False, seconds=time.perf_counter() - start)
        return self._copy_result(result)

    def query_batch(self, graph: Graph | PreparedGraph,
                    requests: Iterable[QueryRequest | Mapping | tuple]
                    ) -> list[EnumerationResult]:
        """Run many queries against one graph, preparing it exactly once.

        ``requests`` entries may be :class:`QueryRequest` objects,
        ``(gamma, theta[, algorithm[, branching]])`` tuples or mappings with
        those keys.  Results come back in request order; duplicates within the
        batch are served from the cache.
        """
        prepared = self.prepare(graph)
        results = []
        for entry in requests:
            request = QueryRequest.coerce(entry)
            results.append(self.query(prepared, request.gamma, request.theta,
                                      algorithm=request.algorithm,
                                      branching=request.branching))
        return results

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Engine counters: queries served, cache behaviour, plan mix."""
        algorithms = Counter(record.algorithm for record in self.history)
        cached = sum(1 for record in self.history if record.cached)
        return {
            "queries": len(self.history),
            "queries_cached": cached,
            "queries_executed": len(self.history) - cached,
            "prepared_graphs": len(self._prepared),
            "cache_entries": len(self.cache),
            "cache_capacity": self.cache.capacity,
            "cache": self.cache.stats.as_dict(),
            "plans_by_algorithm": dict(algorithms),
        }

    def clear_cache(self) -> None:
        """Drop every cached result (the counters survive for ``stats()``)."""
        self.cache.clear()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _execute(self, prepared: PreparedGraph, plan: QueryPlan) -> EnumerationResult:
        """Run one plan through the pipeline (or the parallel driver)."""
        if plan.trivial:
            return EnumerationResult(
                maximal_quasi_cliques=[], candidate_quasi_cliques=[],
                algorithm=plan.algorithm, gamma=plan.gamma, theta=plan.theta)
        graph = prepared.graph
        if plan.parallel:
            runner = ParallelDCFastQC(graph, plan.gamma, plan.theta,
                                      branching=plan.branching, workers=plan.workers)
            start = time.perf_counter()
            candidates = runner.enumerate()
            enumeration_seconds = time.perf_counter() - start
            start = time.perf_counter()
            maximal = filter_non_maximal(candidates, theta=plan.theta)
            filtering_seconds = time.perf_counter() - start
            return EnumerationResult(
                maximal_quasi_cliques=canonical_order(maximal),
                candidate_quasi_cliques=list(candidates),
                algorithm=plan.algorithm, gamma=plan.gamma, theta=plan.theta,
                search_statistics=SearchStatistics(),
                enumeration_seconds=enumeration_seconds,
                filtering_seconds=filtering_seconds)
        return find_maximal_quasi_cliques(graph, plan.gamma, plan.theta,
                                          algorithm=plan.algorithm,
                                          branching=plan.branching,
                                          framework=plan.framework)

    @staticmethod
    def _copy_result(result: EnumerationResult) -> EnumerationResult:
        """Shallow-copy the result lists so callers cannot corrupt cache entries."""
        return dataclasses.replace(
            result,
            maximal_quasi_cliques=list(result.maximal_quasi_cliques),
            candidate_quasi_cliques=list(result.candidate_quasi_cliques))

    def _record(self, plan: QueryPlan, cached: bool, seconds: float) -> None:
        self.history.append(QueryRecord(
            fingerprint=plan.fingerprint, gamma=plan.gamma, theta=plan.theta,
            algorithm=plan.algorithm, cached=cached, seconds=seconds))

    def __repr__(self) -> str:
        return (f"MQCEEngine(prepared={len(self._prepared)}, "
                f"cache={len(self.cache)}/{self.cache.capacity}, "
                f"queries={len(self.history)})")


# Re-exported here so `from repro.engine.engine import PlannerConfig` users see
# the full tuning surface next to the facade.
__all__ = ["EngineError", "MQCEEngine", "QueryRecord", "QueryRequest", "PlannerConfig"]
