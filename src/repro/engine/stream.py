"""Engine-level streaming delivery: :class:`ResultStream`.

``MQCEEngine.stream(spec)`` returns a :class:`ResultStream` — an iterator of
maximal quasi-cliques that

* serves **warm** queries straight from the result cache (yielding the cached
  maximal sets in canonical order without re-enumerating),
* runs **cold** enumerate queries through the incremental
  :class:`~repro.pipeline.streaming.QuasiCliqueStream` (first answers arrive
  while the enumeration is still running), and — when the stream runs to
  completion un-truncated — assembles the full
  :class:`~repro.pipeline.results.EnumerationResult` and inserts it into the
  cache, so a later ``query()`` or ``stream()`` with the same spec is a hit,
* computes top-k / containment workloads eagerly (they have no incremental
  path) and yields their answers.

Progress is observable mid-iteration: ``delivered``, ``finished``,
``truncated`` and ``from_cache``.  :meth:`ResultStream.cancel` requests
cooperative cancellation.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections.abc import Iterator

from ..obs.metrics import REGISTRY
from ..obs.trace import NULL_TRACER
from ..pipeline.mqce import canonical_order
from ..pipeline.results import EnumerationResult
from ..pipeline.streaming import QuasiCliqueStream

_YIELDS = REGISTRY.counter(
    "repro_stream_yields_total",
    "Maximal quasi-cliques delivered by engine result streams, by path")


class ResultStream(Iterator[frozenset]):
    """An engine-managed stream of maximal quasi-cliques for one query.

    ``trace`` attaches a :class:`repro.obs.Tracer` (kept on :attr:`tracer`):
    the live path records an ``enumerate`` span whose clock pauses while the
    generator is suspended at a yield, so the span's seconds equal the old
    hand-rolled active-time accounting.  ``progress`` forwards a
    :class:`repro.obs.ProgressTicker` to the underlying enumeration.
    """

    def __init__(self, engine, prepared, spec, plan, key: tuple,
                 use_cache: bool = True, trace=None, progress=None) -> None:
        self.spec = spec
        self.plan = plan
        self.delivered = 0
        self.finished = False
        self.truncated = False
        self.from_cache = False
        self.tracer = trace if trace is not None else NULL_TRACER
        self._progress = progress
        self._engine = engine
        self._prepared = prepared
        self._key = key
        self._use_cache = use_cache
        self._inner: QuasiCliqueStream | None = None
        # cancel() may be called from any thread (the serve layer cancels
        # from the asyncio loop while an executor thread consumes the
        # stream), possibly before iteration has created the inner stream;
        # the lock makes the flag hand-off to _live() race-free.
        self._cancel_lock = threading.Lock()
        self._cancelled = False
        self._start = time.perf_counter()
        # The graph version the cache key was derived from.  Caching on
        # completion is gated on this exact version — not on the prepared
        # graph's own snapshot, which a dynamic prepared graph legitimately
        # advances while patching itself mid-stream.
        self._graph_version = prepared.graph.version

        if spec.contains or spec.k is not None:
            # Top-k / containment constraints (regardless of count_only) have
            # no incremental path; query() handles their caching (and its own
            # hit/miss accounting).
            self._iterator = self._eager()
            return
        cached = None
        if use_cache and spec.cacheable:
            cached = engine.cache.get(key)
        if cached is not None:
            self.from_cache = True
            self._iterator = self._replay(cached)
        elif plan.trivial:
            self._iterator = self._empty()
        else:
            self._iterator = self._live()

    # ------------------------------------------------------------------
    def __iter__(self) -> "ResultStream":
        return self

    def __next__(self) -> frozenset:
        return next(self._iterator)

    def cancel(self) -> None:
        """Request cooperative cancellation of the stream.

        Thread-safe and idempotent: safe to call from a thread other than the
        consumer's (the next yield boundary stops delivery), repeatedly, and
        even before iteration starts — a live enumeration created afterwards
        is born cancelled.
        """
        with self._cancel_lock:
            if self._cancelled:
                return
            self._cancelled = True
            inner = self._inner
        if inner is not None:
            inner.cancel()

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been requested (by any thread)."""
        return self._cancelled

    # ------------------------------------------------------------------
    def _deliver(self, cliques, path: str) -> Iterator[frozenset]:
        limit = self.spec.max_results
        for clique in cliques:
            if self._cancelled or (limit is not None and self.delivered >= limit):
                self.truncated = True
                return
            self.delivered += 1
            _YIELDS.inc(path=path)
            yield clique
        if self._cancelled:
            self.truncated = True
        self.finished = not self.truncated

    def _replay(self, result: EnumerationResult) -> Iterator[frozenset]:
        """Serve a cache hit: the canonical maximal list, budget-trimmed."""
        self._engine._record(self.plan, cached=True,
                             seconds=time.perf_counter() - self._start)
        yield from self._deliver(list(result.maximal_quasi_cliques), "replay")

    def _empty(self) -> Iterator[frozenset]:
        """A trivial plan: preprocessing proved the answer empty."""
        self._engine._record(self.plan, cached=False,
                             seconds=time.perf_counter() - self._start)
        self.finished = True
        return
        yield  # pragma: no cover - makes this a generator

    def _eager(self) -> Iterator[frozenset]:
        """Top-k / containment: no incremental path; compute, then yield."""
        # Fetch the un-trimmed answer (same cache entry: budgets are not part
        # of the key) so _deliver can apply max_results and flag truncation.
        base = dataclasses.replace(self.spec, max_results=None)
        result = self._engine.query(self._prepared, base,
                                    use_cache=self._use_cache,
                                    trace=self.tracer, progress=self._progress)
        self.truncated = result.truncated
        yield from self._deliver(list(result.maximal_quasi_cliques), "eager")

    def _live(self) -> Iterator[frozenset]:
        """Cold enumerate query: stream incrementally, cache on completion."""
        spec = self.spec
        inner = QuasiCliqueStream(
            self._prepared.graph, spec.gamma, spec.theta,
            algorithm=spec.algorithm if spec.algorithm != "auto" else self.plan.algorithm,
            branching=spec.branching or self.plan.branching,
            framework=spec.framework or self.plan.framework,
            max_rounds=spec.max_rounds, maximality_filter=spec.maximality_filter,
            time_limit=spec.time_limit, max_results=spec.max_results,
            progress=self._progress, tracer=self.tracer)
        with self._cancel_lock:
            self._inner = inner
            born_cancelled = self._cancelled
        if born_cancelled:
            inner.cancel()
        collected: list[frozenset] = []
        # Only time spent *inside* the enumerator counts; the span's clock
        # pauses while the generator is suspended at `yield`, so a slow
        # consumer does not inflate the cached timings or the engine history.
        with self.tracer.span("enumerate", stats=lambda: inner.statistics,
                              algorithm=inner.algorithm,
                              streaming=True) as span:
            span.pause()
            while True:
                span.resume()
                try:
                    clique = next(inner)
                except StopIteration:
                    span.pause()
                    break
                span.pause()
                collected.append(clique)
                self.delivered += 1
                _YIELDS.inc(path="live")
                yield clique
        active_seconds = span.seconds
        self.truncated = inner.truncated
        self.finished = inner.finished
        # A consumer may mutate the graph between yields; a stream that ran
        # across a mutation must not populate the cache under the pre-mutation
        # fingerprint (its content reflects neither snapshot cleanly).
        if (self.finished and self._use_cache and spec.cacheable
                and self._prepared.graph.version == self._graph_version):
            result = EnumerationResult(
                maximal_quasi_cliques=canonical_order(collected),
                candidate_quasi_cliques=list(inner.candidates),
                algorithm=self.plan.algorithm,
                gamma=spec.gamma,
                theta=spec.theta,
                search_statistics=inner.statistics,
                enumeration_seconds=active_seconds,
                filtering_seconds=0.0)
            self._engine.cache.put(self._key, result)
        self._engine._record(self.plan, cached=False, seconds=active_seconds)

    # ------------------------------------------------------------------
    @property
    def subproblems_completed(self) -> int:
        """DC subproblems fully processed by a live stream (0 otherwise)."""
        return self._inner.subproblems_completed if self._inner is not None else 0

    @property
    def candidates_seen(self) -> int:
        """MQCE-S1 candidates observed by a live stream (0 otherwise)."""
        return self._inner.candidates_seen if self._inner is not None else 0

    def __repr__(self) -> str:
        state = ("finished" if self.finished
                 else "truncated" if self.truncated else "running")
        return (f"ResultStream({self.spec.describe()!r}, {state}, "
                f"delivered={self.delivered}, from_cache={self.from_cache})")
