"""Prepared graphs: compute the expensive per-graph artifacts once, reuse forever.

``find_maximal_quasi_cliques`` recomputes the same per-graph preprocessing on
every call: core decomposition, degeneracy ordering, connected components and
degree arrays.  For a query engine serving many ``(gamma, theta)`` queries over
the same graph that work should be paid once.  :class:`PreparedGraph` wraps a
:class:`~repro.graph.graph.Graph` and memoizes

* the content :func:`~repro.engine.fingerprint.graph_fingerprint` (cache key),
* the core decomposition (core numbers, degeneracy, per-threshold core masks),
* the degeneracy ordering,
* the connected-component split, and
* the degree array and Table-1 style graph statistics.

Everything is computed lazily on first access; :meth:`PreparedGraph.prepare`
forces all artifacts eagerly (and records how long each took) for callers that
want the cost up front, e.g. at service start-up.

A prepared graph assumes the underlying graph is *frozen*.  Every graph
mutation bumps :attr:`repro.graph.Graph.version`, so :meth:`check_unmodified`
detects mutation exactly — including add/remove pairs that restore the vertex
and edge counts, which the historical count-based snapshot missed; the engine
re-prepares automatically when it trips.  For graphs that are *expected* to
change, :class:`repro.dynamic.DynamicPreparedGraph` patches these artifacts
incrementally instead of recomputing them.
"""

from __future__ import annotations

import math
import time
from functools import cached_property

from ..core.stats import SizeHistogram
from ..graph.core_decomposition import core_numbers, degeneracy_ordering
from ..graph.graph import Graph, VertexLabel
from ..graph.statistics import GraphStatistics, graph_statistics
from ..graph.subgraph import connected_components, two_hop_mask
from ..quasiclique.definitions import degree_threshold, gamma_fraction
from .fingerprint import graph_fingerprint

#: Names of the lazily computed artifacts, in the order ``prepare`` forces them.
ARTIFACTS = ("fingerprint", "degrees", "core_numbers", "degeneracy",
             "degeneracy_order", "components", "statistics")


class PreparedGraph:
    """A graph plus memoized preprocessing artifacts, ready for repeated queries.

    Parameters
    ----------
    graph:
        The graph to prepare.  It must not be mutated afterwards (see
        :meth:`check_unmodified`).
    name:
        Optional human-readable name (e.g. the registry dataset name), used in
        ``repr`` and the engine's explain output.
    """

    def __init__(self, graph: Graph, name: str | None = None) -> None:
        self.graph = graph
        self.name = name
        self._snapshot = graph.version
        self._core_masks: dict[int, int] = {}
        self.preparation_seconds: dict[str, float] = {}
        #: Memoized QueryPlans, populated by QueryPlanner.plan (plans are
        #: deterministic in the prepared graph and the query configuration).
        self.plan_cache: dict = {}
        #: Observed DC subproblem-size histograms from completed enumerations,
        #: keyed by ``(gamma_fraction, theta)``.  The planner's shard/branch
        #: decision prefers these over the sampled estimate; the version
        #: counter is part of the plan memo key, so recording a new histogram
        #: invalidates plans computed without it.
        self.observed_histograms: dict[tuple, SizeHistogram] = {}
        #: Observed per-subproblem *branch count* histograms — work measured
        #: directly rather than via the quadratic ball-size proxy.  The
        #: planner prefers these when present (``kind="branches"``).
        self.observed_branch_histograms: dict[tuple, SizeHistogram] = {}
        self.histogram_version = 0
        self._estimated_histograms: dict[tuple, SizeHistogram] = {}

    # ------------------------------------------------------------------
    # Lazily computed artifacts
    # ------------------------------------------------------------------
    @cached_property
    def fingerprint(self) -> str:
        """Content fingerprint of the graph (the cache-key component)."""
        return graph_fingerprint(self.graph)

    @cached_property
    def degrees(self) -> tuple[int, ...]:
        """Vertex degrees in index order (CSR-backed graphs read indptr diffs
        instead of materialising per-vertex sets)."""
        return tuple(self.graph.degree_sequence())

    @cached_property
    def core_numbers(self) -> dict[VertexLabel, int]:
        """Core number of every vertex (Batagelj–Zaversnik)."""
        return core_numbers(self.graph)

    @cached_property
    def degeneracy(self) -> int:
        """The degeneracy ``omega`` of the graph."""
        if not self.core_numbers:
            return 0
        return max(self.core_numbers.values())

    @cached_property
    def degeneracy_order(self) -> tuple[VertexLabel, ...]:
        """A degeneracy ordering of the whole graph."""
        return tuple(degeneracy_ordering(self.graph))

    @cached_property
    def components(self) -> tuple[frozenset[VertexLabel], ...]:
        """Connected components as label sets, largest first."""
        split = connected_components(self.graph)
        return tuple(sorted(split, key=len, reverse=True))

    @cached_property
    def statistics(self) -> GraphStatistics:
        """Table-1 style graph statistics (|V|, |E|, density, max degree, omega)."""
        return graph_statistics(self.graph)

    # ------------------------------------------------------------------
    # Parameter-dependent artifacts (memoized per threshold)
    # ------------------------------------------------------------------
    def core_mask(self, gamma: float, theta: int) -> int:
        """Bitmask of the ``ceil(gamma * (theta - 1))``-core (DCFastQC line 1).

        Distinct ``(gamma, theta)`` pairs often share the same degree
        threshold, so the mask is memoized per threshold, not per pair, and is
        derived from the memoized core numbers without re-running the bucket
        algorithm.
        """
        threshold = degree_threshold(gamma, theta)
        mask = self._core_masks.get(threshold)
        if mask is None:
            if threshold <= 0:
                mask = self.graph.full_mask()
            else:
                kept = [v for v, core in self.core_numbers.items() if core >= threshold]
                mask = self.graph.mask_of(kept)
            self._core_masks[threshold] = mask
        return mask

    def core_size(self, gamma: float, theta: int) -> int:
        """Number of vertices surviving the core reduction for ``(gamma, theta)``."""
        return self.core_mask(gamma, theta).bit_count()

    def size_upper_bound(self, gamma: float) -> int:
        """Largest possible gamma-quasi-clique size, from the degeneracy.

        A gamma-QC of size ``h`` has minimum internal degree
        ``ceil(gamma * (h - 1))``, which cannot exceed the degeneracy
        ``omega``; hence ``h <= floor(omega / gamma) + 1``.  Tighter than the
        generic ``2 * omega + 1`` bound for every gamma > 0.5.
        """
        if self.graph.vertex_count == 0:
            return 0
        bound = int(math.floor(self.degeneracy / gamma_fraction(gamma))) + 1
        return min(bound, self.graph.vertex_count)

    # ------------------------------------------------------------------
    # Subproblem-size histograms (the planner's shard/branch evidence)
    # ------------------------------------------------------------------
    def record_subproblem_histogram(self, gamma: float, theta: int,
                                    histogram: SizeHistogram,
                                    kind: str = "sizes") -> None:
        """Remember what a completed run actually observed about its subproblems.

        ``kind="sizes"`` records ball sizes; ``kind="branches"`` records the
        per-subproblem branch counts, which measure work directly and which
        the planner prefers.  Only non-empty histograms are kept (a trivial or
        non-DC run says nothing about subproblem skew).  The version counter
        bumps only when the stored evidence changes, so repeat queries do not
        churn the plan memo.
        """
        if kind not in ("sizes", "branches"):
            raise ValueError(f"kind must be 'sizes' or 'branches', got {kind!r}")
        if not histogram:
            return
        store = (self.observed_branch_histograms if kind == "branches"
                 else self.observed_histograms)
        key = (gamma_fraction(gamma), int(theta))
        previous = store.get(key)
        if previous is not None and (previous.count == histogram.count
                                     and previous.max == histogram.max
                                     and previous.total == histogram.total):
            return
        store[key] = histogram
        self.histogram_version += 1

    def subproblem_histogram(self, gamma: float, theta: int) -> SizeHistogram | None:
        """The observed subproblem-size histogram for ``(gamma, theta)``, if any."""
        return self.observed_histograms.get((gamma_fraction(gamma), int(theta)))

    def subproblem_branch_histogram(self, gamma: float,
                                    theta: int) -> SizeHistogram | None:
        """The observed per-subproblem branch-count histogram, if any."""
        return self.observed_branch_histograms.get(
            (gamma_fraction(gamma), int(theta)))

    def estimate_subproblem_histogram(self, gamma: float, theta: int,
                                      samples: int = 32) -> SizeHistogram:
        """A sampled estimate of the DC subproblem-size distribution.

        Mirrors DCFastQC's decomposition (2-hop ball of each root among the
        not-yet-processed core vertices, in degeneracy order) at ``samples``
        evenly spaced roots, without the per-subproblem shrinking — an upper
        estimate that preserves the skew shape the planner cares about.
        Memoized per ``(gamma, theta, samples)``.
        """
        key = (gamma_fraction(gamma), int(theta), int(samples))
        hit = self._estimated_histograms.get(key)
        if hit is not None:
            return hit
        histogram = SizeHistogram()
        core_mask = self.core_mask(gamma, theta)
        order = [v for v in self.degeneracy_order
                 if (core_mask >> self.graph.index_of(v)) & 1]
        if order:
            count = min(max(1, samples), len(order))
            step = len(order) / count
            positions = sorted({int(i * step) for i in range(count)})
            prior_mask = 0
            position = 0
            targets = iter(positions)
            target = next(targets)
            for position, root in enumerate(order):
                root_index = self.graph.index_of(root)
                if position == target:
                    remaining = core_mask & ~prior_mask
                    ball = two_hop_mask(self.graph, root_index, remaining)
                    histogram.record(ball.bit_count())
                    target = next(targets, None)
                    if target is None:
                        break
                prior_mask |= 1 << root_index
        self._estimated_histograms[key] = histogram
        return histogram

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def prepare(self) -> "PreparedGraph":
        """Force every artifact eagerly, recording per-artifact wall time."""
        for artifact in ARTIFACTS:
            start = time.perf_counter()
            getattr(self, artifact)
            self.preparation_seconds[artifact] = time.perf_counter() - start
        return self

    def materialized_artifacts(self) -> tuple[str, ...]:
        """Names of the artifacts that have been computed so far."""
        return tuple(a for a in ARTIFACTS if a in self.__dict__)

    def check_unmodified(self) -> bool:
        """Return True iff the underlying graph still matches the snapshot.

        Compares the graph's monotonically increasing mutation ``version``, so
        *any* mutation since preparation is caught — even a mutation sequence
        that restores the original vertex and edge counts (the stale-cache
        hazard of the historical count-based snapshot).
        """
        return self.graph.version == self._snapshot

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """A flat dictionary for CLI output and engine statistics."""
        stats = self.statistics
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "vertices": stats.vertex_count,
            "edges": stats.edge_count,
            "edge_density": stats.edge_density,
            "max_degree": stats.max_degree,
            "degeneracy": self.degeneracy,
            "components": len(self.components),
            "largest_component": len(self.components[0]) if self.components else 0,
            "artifacts": list(self.materialized_artifacts()),
        }

    def __repr__(self) -> str:
        label = f"{self.name!r}, " if self.name else ""
        return (f"PreparedGraph({label}|V|={self.graph.vertex_count}, "
                f"|E|={self.graph.edge_count}, "
                f"artifacts={len(self.materialized_artifacts())}/{len(ARTIFACTS)})")


def prepare_graph(graph: Graph | PreparedGraph, name: str | None = None) -> PreparedGraph:
    """Return ``graph`` as a :class:`PreparedGraph` (idempotent)."""
    if isinstance(graph, PreparedGraph):
        return graph
    return PreparedGraph(graph, name=name)


def as_plain_graph(graph: Graph | PreparedGraph) -> Graph:
    """Unwrap a :class:`PreparedGraph` to its underlying :class:`Graph`."""
    if isinstance(graph, PreparedGraph):
        return graph.graph
    return graph
