"""Cost-based query planning: choose how to execute one MQCE query.

Given a :class:`~repro.engine.prepared.PreparedGraph` and ``(gamma, theta)``,
:class:`QueryPlanner` inspects the memoized graph artifacts — never the
enumeration itself — and produces an explainable :class:`QueryPlan` that fixes

* the MQCE-S1 **algorithm** (``dcfastqc`` / ``fastqc`` / ``quickplus`` /
  ``naive``) and its **framework** (divide-and-conquer or not),
* the **branching** rule (``hybrid`` / ``sym-se`` / ``se``), and
* whether to fan the divide-and-conquer subproblems out to
  :class:`~repro.extensions.parallel.ParallelDCFastQC` and with how many
  workers.

Every choice is exact — all four MQCE-S1 algorithms enumerate the same maximal
quasi-cliques after MQCE-S2 filtering — so planning only affects cost, never
answers.  The decisions follow the paper's experiments: DCFastQC with hybrid
branching wins at scale (Figures 7 and 12), while its core reduction and
ordering overhead is wasted on cores too small to decompose.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, asdict

from ..api.spec import SPEC_PARALLEL_MODES
from ..core.kernel import KERNELS
from ..extensions.parallel import (BRANCH_OVERHEAD, branch_histogram_skew,
                                   branch_mode_wins, histogram_skew)
from ..obs.metrics import REGISTRY
from ..pipeline.mqce import ALGORITHMS
from ..quasiclique.definitions import gamma_fraction, validate_parameters
from .prepared import PreparedGraph

_PLANS = REGISTRY.counter(
    "repro_planner_plans_total",
    "Plans served by QueryPlanner.plan, by chosen algorithm and source")
_PARALLEL_PLANS = REGISTRY.counter(
    "repro_planner_parallel_plans_total",
    "Plans that fan divide-and-conquer subproblems out to a process pool")
_TRIVIAL_PLANS = REGISTRY.counter(
    "repro_planner_trivial_plans_total",
    "Plans where preprocessing proved the answer empty")

#: Planner decision thresholds, overridable per engine instance.
DEFAULT_SMALL_GRAPH_VERTICES = 64
DEFAULT_PARALLEL_MIN_VERTICES = 2048
DEFAULT_PARALLEL_MIN_BRANCHES = 4096
DEFAULT_MAX_WORKERS = 8

#: Cap on the exponent used by the relative cost estimate.
_COST_EXPONENT_CAP = 24


@dataclass(frozen=True)
class PlannerConfig:
    """Tunable thresholds of the cost model."""

    small_graph_vertices: int = DEFAULT_SMALL_GRAPH_VERTICES
    parallel_min_vertices: int = DEFAULT_PARALLEL_MIN_VERTICES
    #: Observed branch counts above this open the parallel gate even when the
    #: core is small — a 32-vertex core can still hold seconds of enumeration.
    parallel_min_branches: int = DEFAULT_PARALLEL_MIN_BRANCHES
    max_workers: int = DEFAULT_MAX_WORKERS


@dataclass(frozen=True)
class QueryPlan:
    """An explainable execution plan for one ``(graph, gamma, theta)`` query."""

    gamma: float
    theta: int
    algorithm: str
    branching: str
    framework: str
    kernel: str
    parallel: bool
    workers: int
    fingerprint: str
    graph_vertices: int
    graph_edges: int
    core_vertices_kept: int
    core_vertices_removed: int
    component_count: int
    eligible_components: int
    size_upper_bound: int
    estimated_cost: float
    #: How a parallel plan executes: "none" (serial), "shard" (whole-subproblem
    #: fan-out) or "branch" (work-stealing inside subproblems).  The skew
    #: fields record the decision's inputs: the largest subproblem's estimated
    #: share of the total work, the share above which branch mode wins at this
    #: worker count, the largest histogram entry itself, and where the
    #: histogram came from — "observed-branches" (per-subproblem branch counts
    #: from a completed run; work measured directly, linear weights),
    #: "observed-sizes" (ball sizes from a completed run; quadratic proxy) or
    #: "estimated" (the planner's sampled two-hop estimate; quadratic proxy).
    parallel_mode: str = "none"
    skew_ratio: float = 0.0
    skew_threshold: float = 0.0
    largest_subproblem: int = 0
    histogram_source: str = "none"
    reasons: tuple[str, ...] = field(default_factory=tuple)

    @property
    def trivial(self) -> bool:
        """True when preprocessing already proves the answer is empty."""
        return self.core_vertices_kept < self.theta or self.size_upper_bound < self.theta

    def as_dict(self) -> dict:
        return asdict(self)

    def describe(self) -> str:
        """Human-readable multi-line explanation (the ``explain`` output)."""
        mode = (f"parallel-{self.parallel_mode} x{self.workers}"
                if self.parallel else "serial")
        lines = [
            f"QueryPlan for gamma={self.gamma}, theta={self.theta} "
            f"on graph {self.fingerprint} "
            f"(|V|={self.graph_vertices}, |E|={self.graph_edges})",
            f"  algorithm:  {self.algorithm} (framework={self.framework}, "
            f"branching={self.branching}, kernel={self.kernel}, {mode})",
            f"  reduction:  core keeps {self.core_vertices_kept} of "
            f"{self.graph_vertices} vertices "
            f"({self.core_vertices_removed} pruned before enumeration)",
            f"  components: {self.eligible_components} of {self.component_count} "
            f"can hold a quasi-clique of size >= {self.theta}",
            f"  size bound: no gamma-quasi-clique larger than "
            f"{self.size_upper_bound} vertices (degeneracy bound)",
            f"  est. cost:  {self.estimated_cost:.3g} relative units",
        ]
        if self.parallel:
            unit = ("branches" if self.histogram_source == "observed-branches"
                    else "vertices")
            lines.append(
                f"  parallel:   {self.parallel_mode} mode — largest subproblem "
                f"({self.largest_subproblem} {unit}) holds "
                f"{self.skew_ratio:.0%} of the estimated work "
                f"(branch threshold {self.skew_threshold:.0%} at "
                f"{self.workers} workers, {self.histogram_source} histogram)")
        if self.trivial:
            lines.append("  verdict:    TRIVIAL — the answer is provably empty; "
                         "enumeration will be skipped")
        for reason in self.reasons:
            lines.append(f"  - {reason}")
        return "\n".join(lines)


class QueryPlanner:
    """Chooses an execution plan from prepared-graph statistics alone."""

    def __init__(self, config: PlannerConfig | None = None) -> None:
        self.config = config or PlannerConfig()

    def plan_spec(self, prepared: PreparedGraph, spec,
                  workers: int | None = None) -> QueryPlan:
        """Plan one :class:`repro.api.QuerySpec` (the engine's planning entry).

        Only the spec fields that influence plan selection are consulted
        (gamma, theta, algorithm, branching, kernel, parallel); workload
        modifiers and budgets do not change how the enumeration itself is best
        executed.
        """
        return self.plan(prepared, spec.gamma, spec.theta,
                         algorithm=spec.algorithm, branching=spec.branching,
                         kernel=spec.kernel, workers=workers,
                         parallel=spec.parallel)

    def plan(self, prepared: PreparedGraph, gamma: float, theta: int,
             algorithm: str = "auto", branching: str | None = None,
             kernel: str = "ledger", workers: int | None = None,
             parallel: str = "auto") -> QueryPlan:
        """Return the :class:`QueryPlan` for one query.

        ``algorithm="auto"`` lets the planner decide; naming one of
        :data:`~repro.pipeline.mqce.ALGORITHMS` forces it.  ``branching``,
        ``kernel`` and ``workers`` likewise override the planner when given.
        ``parallel`` requests an execution mode
        (:data:`~repro.api.spec.SPEC_PARALLEL_MODES`): with ``"auto"`` the
        planner reads the subproblem-size histogram — a completed run's
        observed one if the prepared graph has it, else a sampled two-hop
        estimate — and picks work-stealing branch parallelism when the largest
        subproblem dominates.  Planning never runs the enumeration: it reads
        only memoized artifacts.
        """
        validate_parameters(gamma, theta)
        if algorithm != "auto" and algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; expected 'auto' or one of {ALGORITHMS}")
        if kernel not in KERNELS:
            raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
        if parallel not in SPEC_PARALLEL_MODES:
            raise ValueError(f"unknown parallel mode {parallel!r}; "
                             f"expected one of {SPEC_PARALLEL_MODES}")
        # Plans are deterministic in the prepared graph and this configuration,
        # so they are memoized alongside the other prepared artifacts; repeated
        # (and cache-hit) queries skip the per-component eligibility scan.
        # The histogram version is part of the key: a completed run that
        # records fresh subproblem-size evidence re-opens the shard/branch
        # decision instead of serving a plan made from the sampled estimate.
        cache_key = (self.config, gamma_fraction(gamma), int(theta),
                     algorithm, branching, kernel, workers, parallel,
                     prepared.histogram_version)
        memoized = prepared.plan_cache.get(cache_key)
        if memoized is not None:
            _PLANS.inc(algorithm=memoized.algorithm, source="memoized")
            return memoized
        reasons: list[str] = []

        core_kept = prepared.core_size(gamma, theta)
        core_removed = prepared.graph.vertex_count - core_kept
        core_mask = prepared.core_mask(gamma, theta)
        eligible = 0
        for component in prepared.components:
            component_core = sum(
                1 for v in component if (core_mask >> prepared.graph.index_of(v)) & 1)
            if component_core >= theta:
                eligible += 1
        bound = prepared.size_upper_bound(gamma)

        chosen = algorithm
        if algorithm == "auto":
            if prepared.graph.vertex_count <= self.config.small_graph_vertices:
                chosen = "fastqc"
                reasons.append(
                    f"graph has only {prepared.graph.vertex_count} vertices "
                    f"(<= {self.config.small_graph_vertices}): plain FastQC avoids "
                    "the divide-and-conquer ordering overhead")
            else:
                chosen = "dcfastqc"
                reasons.append(
                    f"core reduction keeps {core_kept} of "
                    f"{prepared.graph.vertex_count} vertices: divide-and-conquer "
                    "confines each subproblem to a 2-hop ball of the core")
        else:
            reasons.append(f"algorithm {chosen!r} forced by the caller")

        framework = "dc" if chosen == "dcfastqc" else "none"

        if branching is None:
            branching = "se" if chosen in ("quickplus", "naive") else "hybrid"
            if chosen in ("dcfastqc", "fastqc"):
                reasons.append("hybrid branching: best overall in the paper's "
                               "Figure 11 ablation")
        else:
            reasons.append(f"branching {branching!r} forced by the caller")

        if kernel == "ledger" and chosen in ("dcfastqc", "fastqc", "quickplus"):
            reasons.append("ledger kernel: incremental O(deg) degree ledgers "
                           "(kernelized shrinking, refinement and Type I/II "
                           "pruning — no popcount rescans)")
        elif kernel == "reference":
            reasons.append("reference kernel forced: mask/popcount implementation "
                           "(differential-testing oracle)")

        # An explicit worker count is honoured as-is; the default derives from
        # the machine (CPU count, capped by the planner configuration).
        available = min(self.config.max_workers, os.cpu_count() or 1)
        requested = workers if workers is not None else available
        # The parallel gate opens on any of: a core big enough that fan-out is
        # worth it on size alone, observed work (branch counts from a completed
        # run — a tiny core can still hold seconds of enumeration), or an
        # explicitly forced mode.
        branch_evidence = prepared.subproblem_branch_histogram(gamma, theta)
        observed_branches = branch_evidence.total if branch_evidence else 0
        fan_out = (chosen == "dcfastqc"
                   and requested > 1
                   and parallel != "none"
                   and (core_kept >= self.config.parallel_min_vertices
                        or observed_branches >= self.config.parallel_min_branches
                        or parallel in ("shard", "branch")))
        effective_workers = requested if fan_out else 1
        if fan_out:
            if core_kept >= self.config.parallel_min_vertices:
                reasons.append(
                    f"core of {core_kept} vertices exceeds the parallel threshold "
                    f"({self.config.parallel_min_vertices}): fanning DC subproblems "
                    f"out to {effective_workers} workers")
            elif observed_branches >= self.config.parallel_min_branches:
                reasons.append(
                    f"an observed run explored {observed_branches} branches "
                    f"(>= {self.config.parallel_min_branches}): enough work to "
                    f"fan out to {effective_workers} workers despite the "
                    f"{core_kept}-vertex core")
        elif parallel == "none" and requested > 1 and chosen == "dcfastqc":
            reasons.append("parallelism disabled by the caller (parallel='none')")
        elif workers is not None and workers > 1:
            reasons.append(
                f"parallelism declined despite workers={workers}: core of "
                f"{core_kept} vertices is below the threshold "
                f"({self.config.parallel_min_vertices}) or the algorithm is "
                "not divide-and-conquer")

        # Shard vs branch: the skew rule shared with the runtime.  Even a
        # forced mode records the histogram evidence so explain() shows what
        # the planner knew.
        parallel_mode = "none"
        skew_ratio = 0.0
        skew_threshold = 0.0
        largest_subproblem = 0
        histogram_source = "none"
        if fan_out:
            skew_threshold = (1.0 + BRANCH_OVERHEAD) / effective_workers
            # Evidence quality ladder: per-subproblem branch counts from a
            # completed run measure the work directly (linear weights); ball
            # sizes — observed or sampled — only proxy it quadratically, and a
            # descending chain of similar-size balls can hide a dominant
            # subtree that branch counts expose.
            histogram = branch_evidence
            if histogram is not None:
                histogram_source = "observed-branches"
                largest_work, total_work = branch_histogram_skew(histogram)
            else:
                histogram = prepared.subproblem_histogram(gamma, theta)
                if histogram is not None:
                    histogram_source = "observed-sizes"
                else:
                    histogram = prepared.estimate_subproblem_histogram(gamma, theta)
                    histogram_source = "estimated"
                largest_work, total_work = histogram_skew(histogram)
            skew_ratio = largest_work / total_work if total_work else 0.0
            largest_subproblem = histogram.max
            unit = ("branches" if histogram_source == "observed-branches"
                    else "vertices")
            if parallel in ("shard", "branch"):
                parallel_mode = parallel
                reasons.append(f"parallel mode {parallel!r} forced by the caller")
            elif branch_mode_wins(largest_work, total_work, effective_workers):
                parallel_mode = "branch"
                reasons.append(
                    f"largest subproblem ({largest_subproblem} {unit}, "
                    f"{histogram_source} histogram) holds {skew_ratio:.0%} of "
                    f"the estimated work >= threshold {skew_threshold:.0%}: "
                    "sharding would serialize on it, so work-stealing branch "
                    "parallelism splits inside it")
            else:
                parallel_mode = "shard"
                reasons.append(
                    f"subproblem sizes are even (largest holds "
                    f"{skew_ratio:.0%} of the estimated work < threshold "
                    f"{skew_threshold:.0%}, {histogram_source} histogram): "
                    "whole-subproblem sharding parallelises without steal "
                    "overhead")

        estimated_cost = self._estimate_cost(prepared, core_kept, chosen)
        if core_kept < theta or bound < theta:
            reasons.append(
                f"trivial: the {'core reduction' if core_kept < theta else 'size bound'} "
                f"proves no quasi-clique of size >= {theta} exists")
            estimated_cost = 0.0

        plan = QueryPlan(
            gamma=gamma, theta=theta, algorithm=chosen, branching=branching,
            framework=framework, kernel=kernel,
            parallel=fan_out, workers=effective_workers,
            parallel_mode=parallel_mode, skew_ratio=skew_ratio,
            skew_threshold=skew_threshold,
            largest_subproblem=largest_subproblem,
            histogram_source=histogram_source,
            fingerprint=prepared.fingerprint,
            graph_vertices=prepared.graph.vertex_count,
            graph_edges=prepared.graph.edge_count,
            core_vertices_kept=core_kept, core_vertices_removed=core_removed,
            component_count=len(prepared.components),
            eligible_components=eligible,
            size_upper_bound=bound,
            estimated_cost=estimated_cost,
            reasons=tuple(reasons),
        )
        prepared.plan_cache[cache_key] = plan
        _PLANS.inc(algorithm=plan.algorithm, source="computed")
        if plan.parallel:
            _PARALLEL_PLANS.inc(mode=plan.parallel_mode)
        if plan.trivial:
            _TRIVIAL_PLANS.inc()
        return plan

    # ------------------------------------------------------------------
    def _estimate_cost(self, prepared: PreparedGraph, core_kept: int,
                       algorithm: str) -> float:
        """A relative cost figure in the spirit of the paper's O(n * 2^(a*w*d)) bound.

        Only meaningful for comparing plans on the same graph; the exponent is
        capped so the figure stays printable.
        """
        if core_kept == 0:
            return 0.0
        omega = prepared.degeneracy
        exponent = min(omega, _COST_EXPONENT_CAP)
        base = core_kept * float(2 ** exponent)
        if algorithm in ("quickplus", "naive"):
            # No divide-and-conquer confinement: the whole core is one subproblem.
            base *= max(1, core_kept // max(1, omega + 1))
        return base
