"""Quick+ (Algorithm 1): the state-of-the-art baseline reproduced from Section 3.

Quick+ explores the search space with the classic set-enumeration (SE)
branching and applies Type I (candidate) and Type II (branch) pruning rules
before each recursion.  A branch outputs its partial set ``G[S]`` only when no
sub-branch found a quasi-clique (the non-hereditary bookkeeping of
Algorithm 1).  The worst case explores ``O(2^n)`` branches.

For the paper's "co-design" ablation the branching method is configurable: the
same pruning rules can be combined with the Sym-SE or Hybrid-SE branch
generators (driven by the FastQC pivot machinery), which isolates the
contribution of the branching part.

Like the FastQC family, Quick+ runs on one of two interchangeable execution
kernels (``kernel=``):

* ``"ledger"`` (default) — branches are :class:`repro.core.kernel.BranchState`
  objects whose per-vertex degree ledgers make every Type I/II rule, the
  critical-vertex rule and the terminal quasi-clique check O(|S|) / O(|C|)
  flat-array scans with integer threshold arithmetic
  (:mod:`repro.baselines.pruning_rules` ``*_state`` forms);
* ``"reference"`` — the original mask/popcount implementation, kept as the
  differential-testing oracle.  Both kernels visit the identical branch tree
  and emit identical outputs in the same order.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from ..graph.graph import Graph, VertexLabel, iter_bits
from ..quasiclique.definitions import mask_is_quasi_clique, validate_parameters
from ..core.branch import Branch
from ..core.branching import BRANCHING_METHODS, generate_branches, select_pivot
from ..core.conditions import tau_sigma
from ..core.kernel import (
    KERNELS,
    BranchState,
    depth_first_enumerate,
    generate_child_states,
    partial_is_quasi_clique_state,
    pivot_from_state,
    se_children,
    tau_sigma_state,
    union_min_degree,
)
from ..core.stats import SearchStatistics
from .pruning_rules import (
    PruningConfig,
    apply_type1_rules,
    critical_vertex_forced_mask,
    critical_vertex_forced_mask_state,
    triggers_type2_rules,
    triggers_type2_rules_state,
    type1_removals_mask_state,
)


class QuickPlus:
    """Branch-and-bound enumerator for MQCE-S1 with SE branching and Type I/II pruning.

    Parameters mirror :class:`repro.core.fastqc.FastQC`; ``branching="se"`` is
    the faithful Quick+ configuration, while ``"sym-se"`` / ``"hybrid"``
    reproduce the paper's ablation that pairs the old pruning rules with the
    new branching methods.  ``kernel`` selects the execution kernel
    (incremental ``"ledger"`` branch states or the mask-based
    ``"reference"``); both produce identical outputs on the identical branch
    tree.
    """

    def __init__(self, graph: Graph, gamma: float, theta: int,
                 branching: str = "se", pruning: PruningConfig = PruningConfig(),
                 kernel: str = "ledger",
                 on_output: Callable[[frozenset], None] | None = None,
                 should_stop: Callable[[], bool] | None = None,
                 progress=None) -> None:
        validate_parameters(gamma, theta)
        if branching not in BRANCHING_METHODS:
            raise ValueError(f"branching must be one of {BRANCHING_METHODS}, got {branching!r}")
        if kernel not in KERNELS:
            raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
        self.graph = graph
        self.gamma = gamma
        self.theta = theta
        self.branching = branching
        self.pruning = pruning
        self.kernel = kernel
        self.on_output = on_output
        self.should_stop = should_stop
        self.progress = progress
        self.stopped = False
        self.statistics = SearchStatistics()
        if progress is not None:
            progress.attach_statistics(self.statistics)
        self._results: list[frozenset] = []
        self._seen_masks: set[int] = set()

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def enumerate(self) -> list[frozenset]:
        """Run Quick+ on the whole graph: ``Quick-Rec(∅, V, ∅)``."""
        return self.enumerate_branch(Branch.initial(self.graph))

    def enumerate_from(self, partial: Iterable[VertexLabel],
                       candidates: Iterable[VertexLabel],
                       excluded: Iterable[VertexLabel] = ()) -> list[frozenset]:
        """Run Quick+ from an explicit starting branch given by vertex labels."""
        branch = Branch(
            self.graph.mask_of(partial),
            self.graph.mask_of(candidates),
            self.graph.mask_of(excluded),
        )
        return self.enumerate_branch(branch)

    def enumerate_branch(self, branch: Branch) -> list[frozenset]:
        """Run Quick+ starting from a prepared bitmask branch."""
        self.statistics.subproblems += 1
        self.statistics.subproblem_sizes.record(branch.union_size)
        start = len(self._results)
        if self.kernel == "ledger":
            root = BranchState.from_branch(self.graph, branch, self.statistics)
            depth_first_enumerate(root, self._expand_ledger, self._close,
                                  should_stop=self._poll_stop,
                                  ticker=self.progress)
        else:
            depth_first_enumerate(branch, self._expand_reference, self._close,
                                  should_stop=self._poll_stop,
                                  ticker=self.progress)
        if self.progress is not None and self.progress.cancelled:
            self.stopped = True
        return self._results[start:]

    @property
    def results(self) -> list[frozenset]:
        return list(self._results)

    # ------------------------------------------------------------------
    # Search core (Algorithm 1 on an explicit work stack)
    # ------------------------------------------------------------------
    def _poll_stop(self) -> bool:
        """Cooperative cancellation: claims a QC was found so no ancestor
        emits its partial set G[S] while the work stack unwinds."""
        if self.stopped or (self.should_stop is not None and self.should_stop()):
            self.stopped = True
            return True
        return False

    def _expand_ledger(self, state: BranchState):
        """One branch visit under the incremental degree-ledger kernel."""
        self.statistics.branches_explored += 1

        # Termination: no candidates left (lines 3-6).
        if state.c_mask == 0:
            if state.s_mask and partial_is_quasi_clique_state(state, self.gamma):
                self._emit(state.s_mask)
                return True
            return False

        # Critical-vertex rule: candidates that every large QC under the branch
        # must contain are moved into S before branching.
        if self.pruning.critical_vertex:
            forced = critical_vertex_forced_mask_state(state, self.gamma, self.theta)
            while forced:
                low = forced & -forced
                forced ^= low
                state.include(low.bit_length() - 1)

        children = self._create_child_states(state)
        kept = []
        for child in children:
            # Pruning before the next recursion (lines 9-10).
            removal_mask = type1_removals_mask_state(child, self.gamma,
                                                     self.theta, self.pruning)
            if removal_mask:
                self.statistics.candidates_removed_by_type1 += removal_mask.bit_count()
                child.remove_mask(removal_mask)
            if triggers_type2_rules_state(child, self.gamma, self.theta,
                                          self.pruning):
                self.statistics.branches_pruned_by_type2 += 1
                continue
            kept.append(child)
        return kept, state.s_mask

    def _expand_reference(self, branch: Branch):
        """One branch visit under the original mask/popcount implementation."""
        self.statistics.branches_explored += 1

        # Termination: no candidates left (lines 3-6).
        if branch.c_mask == 0:
            if branch.s_mask and mask_is_quasi_clique(self.graph, branch.s_mask, self.gamma):
                self._emit(branch.s_mask)
                return True
            return False

        # Critical-vertex rule: candidates that every large QC under the branch
        # must contain are moved into S before branching.
        if self.pruning.critical_vertex:
            forced = critical_vertex_forced_mask(self.graph, branch, self.gamma, self.theta)
            if forced:
                branch = branch.include(forced)

        children = []
        for child in self._create_children(branch):
            # Pruning before the next recursion (lines 9-10).
            pruned_c = apply_type1_rules(self.graph, child, self.gamma, self.theta, self.pruning)
            self.statistics.candidates_removed_by_type1 += (child.c_mask ^ pruned_c).bit_count()
            child = child.with_candidates(pruned_c)
            if triggers_type2_rules(self.graph, child, self.gamma, self.theta, self.pruning):
                self.statistics.branches_pruned_by_type2 += 1
                continue
            children.append(child)
        return children, branch.s_mask

    def _close(self, s_mask: int, found_any: bool) -> bool:
        """Additional step (lines 12-14): output G[S] if no sub-branch found a QC."""
        if found_any:
            return True
        if s_mask and mask_is_quasi_clique(self.graph, s_mask, self.gamma):
            self._emit(s_mask)
            return True
        return False

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _create_children(self, branch: Branch) -> list[Branch]:
        """SE branching over the natural candidate order, or the ablation branchings."""
        if self.branching == "se":
            ordering = list(iter_bits(branch.c_mask))
            children = []
            preceding = 0
            for vertex in ordering:
                bit = 1 << vertex
                children.append(Branch(branch.s_mask | bit,
                                       branch.c_mask & ~(preceding | bit),
                                       branch.d_mask | preceding))
                preceding |= bit
            return children
        # Ablation configurations: pair the Quick+ pruning rules with the new
        # pivot-driven branch generators.  The pivot needs the disconnection
        # budget tau(sigma(B)) from the FastQC framework.
        tau_value = tau_sigma(self.graph, branch, self.gamma)
        pivot = select_pivot(self.graph, branch, tau_value)
        if pivot is None:
            # The whole branch is a QC; emit it and stop descending.
            self._emit(branch.union_mask)
            return []
        return generate_branches(self.graph, branch, pivot, self.branching)

    def _create_child_states(self, state: BranchState) -> list[BranchState]:
        """Ledger counterpart of :meth:`_create_children` (same children)."""
        if self.branching == "se":
            return se_children(state, list(iter_bits(state.c_mask)))
        tau_value = tau_sigma_state(state, self.gamma)
        min_deg, pivot_vertex = union_min_degree(state)
        if state.s_size + state.c_size - min_deg <= tau_value:
            # select_pivot would find no qualifying vertex: the whole branch
            # is a QC; emit it and stop descending.
            self._emit(state.s_mask | state.c_mask)
            return []
        pivot = pivot_from_state(state, pivot_vertex, tau_value)
        return generate_child_states(state, pivot, self.branching)

    def _emit(self, subset_mask: int) -> None:
        if subset_mask.bit_count() < self.theta:
            return
        if subset_mask in self._seen_masks:
            return
        self._seen_masks.add(subset_mask)
        labels = self.graph.labels_of_mask(subset_mask)
        self._results.append(labels)
        self.statistics.outputs += 1
        if self.on_output is not None:
            self.on_output(labels)


def quickplus_enumerate(graph: Graph, gamma: float, theta: int,
                        branching: str = "se",
                        kernel: str = "ledger") -> list[frozenset]:
    """Functional convenience wrapper around :class:`QuickPlus`."""
    return QuickPlus(graph, gamma, theta, branching=branching,
                     kernel=kernel).enumerate()
