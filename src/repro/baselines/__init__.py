"""Baseline algorithms: Quick+ (Algorithm 1) and the naive exhaustive enumerator."""

from .pruning_rules import (
    PruningConfig,
    apply_type1_rules,
    branch_size_upper_bound,
    critical_vertex_forced_mask,
    max_tolerable_non_neighbors,
    triggers_type2_rules,
)
from .quickplus import QuickPlus, quickplus_enumerate
from .naive import NaiveEnumerator

__all__ = [
    "PruningConfig",
    "apply_type1_rules",
    "branch_size_upper_bound",
    "critical_vertex_forced_mask",
    "max_tolerable_non_neighbors",
    "triggers_type2_rules",
    "QuickPlus",
    "quickplus_enumerate",
    "NaiveEnumerator",
]
