"""Naive exhaustive baseline.

Wraps the brute-force reference enumerator behind the same calling convention
as the branch-and-bound algorithms so the experiment harness and the benchmark
ablations can include it on tiny inputs.
"""

from __future__ import annotations

from ..graph.graph import Graph
from ..quasiclique.bruteforce import (
    enumerate_all_quasi_cliques,
    enumerate_maximal_quasi_cliques_bruteforce,
)
from ..quasiclique.definitions import validate_parameters
from ..core.stats import SearchStatistics


class NaiveEnumerator:
    """Exhaustive subset enumeration; usable only on graphs with ~20 vertices."""

    def __init__(self, graph: Graph, gamma: float, theta: int,
                 maximal_only: bool = False) -> None:
        validate_parameters(gamma, theta)
        self.graph = graph
        self.gamma = gamma
        self.theta = theta
        self.maximal_only = maximal_only
        self.statistics = SearchStatistics()

    def enumerate(self) -> list[frozenset]:
        """Enumerate all (or all maximal) large gamma-quasi-cliques exhaustively."""
        if self.maximal_only:
            result = enumerate_maximal_quasi_cliques_bruteforce(
                self.graph, self.gamma, self.theta)
        else:
            result = enumerate_all_quasi_cliques(self.graph, self.gamma, self.theta)
        self.statistics.outputs = len(result)
        self.statistics.subproblems = 1
        self.statistics.branches_explored = 2 ** self.graph.vertex_count
        return result
