"""Type I and Type II pruning rules used by the Quick+ baseline (Section 3).

The paper defers the exact rule list to Quick/Quick+ [24, 28]; this module
implements the provably-safe degree-, size- and diameter-based rules that those
algorithms build on, phrased directly against a branch ``B = (S, C, D)``:

* **Type I rules** remove from the candidate set ``C`` vertices that cannot
  belong to any gamma-quasi-clique of size >= theta under the branch.
* **Type II rules** prune the entire branch when some vertex of the partial
  set ``S`` (or the branch as a whole) makes such a quasi-clique impossible.

Every rule only relies on upper bounds of achievable degrees and lower bounds
of required degrees, so applying them never removes a vertex of — or a branch
containing — a large maximal quasi-clique.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from ..graph.graph import Graph, iter_bits
from ..quasiclique.definitions import degree_threshold, gamma_fraction, gamma_pq
from ..core.branch import Branch


@dataclass(frozen=True)
class PruningConfig:
    """Which Quick+ pruning rules are active (all by default)."""

    candidate_degree: bool = True
    candidate_diameter: bool = True
    candidate_non_neighbor: bool = True
    branch_size: bool = True
    branch_degree: bool = True
    branch_upper_bound: bool = True
    branch_non_neighbor: bool = True
    critical_vertex: bool = True


def minimum_required_degree(gamma: float, theta: int, partial_size: int,
                            include_candidate: bool) -> int:
    """Return the minimum degree any member of a large QC under the branch needs.

    Any quasi-clique ``H`` under the branch has ``|H| >= max(theta, |S|)`` (or
    ``|S| + 1`` when the vertex in question is a candidate still outside
    ``S``), and each member needs degree ``ceil(gamma * (|H| - 1))`` which is
    non-decreasing in ``|H|``.
    """
    lower_size = max(theta, partial_size + (1 if include_candidate else 0), 1)
    return degree_threshold(gamma, lower_size)


def branch_size_upper_bound(graph: Graph, branch: Branch, gamma: float) -> int:
    """Return an upper bound on the size of any QC under the branch.

    Each ``u ∈ S`` needs ``delta(u, H) >= ceil(gamma * (|H| - 1))`` and can have
    at most ``delta(u, S ∪ C)`` neighbours, so
    ``|H| <= floor(delta(u, S ∪ C) / gamma) + 1``; the bound is also capped by
    ``|S ∪ C|``.  (This is the Quick-style counterpart of the paper's Lemma 2.)
    """
    union = branch.union_mask
    bound = union.bit_count()
    gamma_exact = gamma_fraction(gamma)
    for u in iter_bits(branch.s_mask):
        degree = (graph.adjacency_mask(u) & union).bit_count()
        bound = min(bound, math.floor(Fraction(degree) / gamma_exact) + 1)
    return bound


def max_tolerable_non_neighbors(gamma: float, size_upper_bound: int) -> int:
    """Return the most non-neighbours (excluding itself) a QC member may have.

    In a QC ``H``, ``|H| - 1 - delta(v, H) <= floor((1 - gamma) * (|H| - 1))``,
    and the right-hand side is non-decreasing in ``|H|``, so evaluating it at
    the branch's size upper bound is safe.
    """
    gamma_exact = gamma_fraction(gamma)
    return math.floor((1 - gamma_exact) * max(0, size_upper_bound - 1))


def apply_type1_rules(graph: Graph, branch: Branch, gamma: float, theta: int,
                      config: PruningConfig = PruningConfig()) -> int:
    """Return the candidate mask after the Type I rules.

    Rule I.a (degree): drop ``v ∈ C`` whose degree within ``G[S ∪ C]`` is below
    the minimum degree required of a member of a large QC under the branch.

    Rule I.b (diameter): for gamma >= 0.5 quasi-cliques have diameter <= 2, so
    drop ``v ∈ C`` that is at distance > 2 (within ``G[S ∪ C]``) from some
    vertex of ``S``.

    Rule I.c (non-neighbours): drop ``v ∈ C`` whose non-neighbours within ``S``
    alone already exceed the number of non-neighbours any member of a QC under
    the branch may have.
    """
    union = branch.union_mask
    new_c_mask = branch.c_mask
    required = minimum_required_degree(gamma, theta, branch.partial_size, True)
    partial_vertices = list(iter_bits(branch.s_mask))
    non_neighbor_budget = max_tolerable_non_neighbors(
        gamma, branch_size_upper_bound(graph, branch, gamma))
    for v in iter_bits(branch.c_mask):
        adjacency = graph.adjacency_mask(v)
        if config.candidate_degree and (adjacency & union).bit_count() < required:
            new_c_mask &= ~(1 << v)
            continue
        if config.candidate_non_neighbor:
            non_neighbors_in_s = (branch.s_mask & ~adjacency).bit_count()
            if non_neighbors_in_s > non_neighbor_budget:
                new_c_mask &= ~(1 << v)
                continue
        if config.candidate_diameter and gamma >= 0.5:
            for u in partial_vertices:
                u_adjacency = graph.adjacency_mask(u)
                if not (u_adjacency >> v) & 1 and not (adjacency & u_adjacency & union):
                    new_c_mask &= ~(1 << v)
                    break
    return new_c_mask


def triggers_type2_rules(graph: Graph, branch: Branch, gamma: float, theta: int,
                         config: PruningConfig = PruningConfig()) -> bool:
    """Return True when a Type II rule prunes the whole branch.

    Rule II.a (size): ``|S ∪ C| < theta``.

    Rule II.b (degree): some ``u ∈ S`` has degree within ``G[S ∪ C]`` below the
    minimum degree required of a member of a large QC under the branch.

    Rule II.c (upper bound): the size upper bound derived from the minimum
    degree of a partial vertex, ``floor(d_min / gamma) + 1``, is below the size
    lower bound ``max(theta, |S|)``.

    Rule II.d (non-neighbours): some ``u ∈ S`` has more non-neighbours within
    ``S`` than any member of a QC bounded by the branch's size upper bound may
    tolerate.
    """
    union = branch.union_mask
    union_size = union.bit_count()
    if config.branch_size and union_size < theta:
        return True
    if not branch.s_mask:
        return False
    required = minimum_required_degree(gamma, theta, branch.partial_size, False)
    min_degree = None
    for u in iter_bits(branch.s_mask):
        degree = (graph.adjacency_mask(u) & union).bit_count()
        if config.branch_degree and degree < required:
            return True
        if min_degree is None or degree < min_degree:
            min_degree = degree
    size_upper_bound = union_size
    if min_degree is not None:
        size_upper_bound = min(size_upper_bound,
                               math.floor(Fraction(min_degree) / gamma_fraction(gamma)) + 1)
    if config.branch_upper_bound and size_upper_bound < max(theta, branch.partial_size):
        return True
    if config.branch_non_neighbor:
        budget = max_tolerable_non_neighbors(gamma, size_upper_bound)
        for u in iter_bits(branch.s_mask):
            non_neighbors_in_s = (branch.s_mask & ~graph.adjacency_mask(u)).bit_count() - 1
            if non_neighbors_in_s > budget:
                return True
    return False


# ----------------------------------------------------------------------
# Ledger-kernel forms: the same rules phrased against a BranchState
# ----------------------------------------------------------------------
# Each *_state function decides exactly like its mask counterpart above but
# reads the per-vertex degree ledgers of a :class:`repro.core.kernel.BranchState`
# instead of popcounting full-width bitmasks, and evaluates every threshold
# in integer arithmetic over ``gamma = p/q`` (no Fraction allocations):
# ``floor(deg / gamma) = deg*q // p`` and
# ``floor((1-gamma) * x) = (q-p)*x // q``.

def _size_upper_bound_state(state, p: int, q: int) -> int:
    """Ledger form of :func:`branch_size_upper_bound`."""
    bound = state.s_size + state.c_size
    deg_in_union = state.deg_in_union
    bit_length = int.bit_length
    remaining = state.s_mask
    while remaining:
        low = remaining & -remaining
        remaining ^= low
        candidate = deg_in_union[bit_length(low) - 1] * q // p + 1
        if candidate < bound:
            bound = candidate
    return bound


def type1_removals_mask_state(state, gamma: float, theta: int,
                              config: PruningConfig = PruningConfig()) -> int:
    """Ledger form of :func:`apply_type1_rules`: the candidate bits to remove.

    Decides exactly ``c_mask & ~apply_type1_rules(...)``.  Rules I.a (degree)
    and I.c (non-neighbours) are one fused ledger-read scan over the
    candidates; rule I.b (diameter) is evaluated in bulk per *partial* vertex
    ``u``: the candidates at distance > 2 from ``u`` within ``G[S ∪ C]`` are
    ``C \\ Γ(u) \\ N(Γ(u) ∩ (S ∪ C))``, three mask operations after one
    neighbourhood-union sweep — no per-candidate inner loop at all.
    """
    p, q = gamma_pq(gamma)
    s_size = state.s_size
    required = minimum_required_degree(gamma, theta, s_size, True)
    non_neighbor_budget = (q - p) * max(0, _size_upper_bound_state(state, p, q) - 1) // q
    deg_in_s = state.deg_in_s
    deg_in_union = state.deg_in_union
    bit_length = int.bit_length
    check_degree = config.candidate_degree
    check_non_neighbor = config.candidate_non_neighbor
    removal_mask = 0
    if check_degree and check_non_neighbor:
        # Common all-rules configuration: branch-free fused scan.
        s_minus_budget = s_size - non_neighbor_budget
        remaining = state.c_mask
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            v = bit_length(low) - 1
            if deg_in_union[v] < required or deg_in_s[v] < s_minus_budget:
                removal_mask |= low
    elif check_degree or check_non_neighbor:
        remaining = state.c_mask
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            v = bit_length(low) - 1
            if (check_degree and deg_in_union[v] < required) or (
                    check_non_neighbor
                    and s_size - deg_in_s[v] > non_neighbor_budget):
                removal_mask |= low
    if config.candidate_diameter and gamma >= 0.5 and state.s_mask:
        masks = state.graph.adjacency_masks()
        union = state.s_mask | state.c_mask
        c_mask = state.c_mask
        remaining = state.s_mask
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            u_adjacency = masks[bit_length(low) - 1]
            distant = c_mask & ~u_adjacency & ~removal_mask
            if not distant:
                continue
            reach = 0
            middle = u_adjacency & union
            while middle:
                middle_low = middle & -middle
                middle ^= middle_low
                reach |= masks[middle_low.bit_length() - 1]
                distant &= ~reach
                if not distant:
                    break
            removal_mask |= distant
    return removal_mask


def triggers_type2_rules_state(state, gamma: float, theta: int,
                               config: PruningConfig = PruningConfig()) -> bool:
    """Ledger form of :func:`triggers_type2_rules` (identical decisions)."""
    union_size = state.s_size + state.c_size
    if config.branch_size and union_size < theta:
        return True
    s_mask = state.s_mask
    if not s_mask:
        return False
    p, q = gamma_pq(gamma)
    s_size = state.s_size
    required = minimum_required_degree(gamma, theta, s_size, False)
    deg_in_union = state.deg_in_union
    bit_length = int.bit_length
    min_degree = None
    remaining = s_mask
    while remaining:
        low = remaining & -remaining
        remaining ^= low
        degree = deg_in_union[bit_length(low) - 1]
        if config.branch_degree and degree < required:
            return True
        if min_degree is None or degree < min_degree:
            min_degree = degree
    size_upper_bound = union_size
    if min_degree is not None:
        size_upper_bound = min(size_upper_bound, min_degree * q // p + 1)
    if config.branch_upper_bound and size_upper_bound < max(theta, s_size):
        return True
    if config.branch_non_neighbor:
        budget = (q - p) * max(0, size_upper_bound - 1) // q
        deg_in_s = state.deg_in_s
        remaining = s_mask
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            if s_size - deg_in_s[bit_length(low) - 1] - 1 > budget:
                return True
    return False


def critical_vertex_forced_mask_state(state, gamma: float, theta: int) -> int:
    """Ledger form of :func:`critical_vertex_forced_mask`."""
    s_mask = state.s_mask
    if not s_mask:
        return 0
    required = minimum_required_degree(gamma, theta, state.s_size, False)
    deg_in_union = state.deg_in_union
    masks = state.graph.adjacency_masks()
    bit_length = int.bit_length
    forced = 0
    remaining = s_mask
    while remaining:
        low = remaining & -remaining
        remaining ^= low
        u = bit_length(low) - 1
        if deg_in_union[u] == required:
            forced |= masks[u] & state.c_mask
    return forced


def critical_vertex_forced_mask(graph: Graph, branch: Branch, gamma: float, theta: int) -> int:
    """Return the candidates forced into ``S`` by the critical-vertex rule.

    A vertex ``u ∈ S`` is *critical* when its degree within ``G[S ∪ C]`` equals
    exactly the minimum degree any member of a large QC under the branch needs:
    then every large QC under the branch must contain *all* of ``u``'s
    neighbours in ``C``, so they can be moved into the partial set wholesale
    (Quick's critical-vertex technique).  The returned bitmask is a subset of
    the candidate set; an empty mask means the rule does not apply.
    """
    if not branch.s_mask:
        return 0
    union = branch.union_mask
    required = minimum_required_degree(gamma, theta, branch.partial_size, False)
    forced = 0
    for u in iter_bits(branch.s_mask):
        adjacency = graph.adjacency_mask(u)
        if (adjacency & union).bit_count() == required:
            forced |= adjacency & branch.c_mask
    return forced
