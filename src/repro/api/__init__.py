"""repro.api — the unified, declarative query surface.

One hashable value object, :class:`QuerySpec`, describes every workload the
library serves (enumerate / top-k / containment / count), its execution knobs,
budgets and output options.  Everything else keys on it:

* :class:`repro.engine.MQCEEngine` plans, caches and streams from a spec,
* the fluent builder :class:`Q` assembles one readably::

      from repro.api import Q
      top = Q(graph).gamma(0.9).theta(5).top(10).run()
      for community in Q(graph).gamma(0.9).theta(5).stream():
          print(sorted(community))

* the CLI's ``repro query`` parses one from flags or a JSON file, and
* :func:`execute` / :func:`shape_result` / :func:`result_value` run a spec
  without an engine (one-shot).

The PR-1 kwargs entry points (``find_maximal_quasi_cliques``,
``extensions.topk`` / ``extensions.query``) remain as deprecated shims that
build a spec and delegate here.
"""

from .builder import Q, QueryBuilder
from .execute import containment_search, execute, result_value, shape_result, topk_search
from .spec import SPEC_ALGORITHMS, WORKLOADS, QuerySpec, coerce_spec

__all__ = [
    "Q",
    "QueryBuilder",
    "QuerySpec",
    "SPEC_ALGORITHMS",
    "WORKLOADS",
    "coerce_spec",
    "containment_search",
    "execute",
    "result_value",
    "shape_result",
    "topk_search",
]
