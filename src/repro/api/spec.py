"""`QuerySpec` — the one declarative description of every MQCE workload.

A :class:`QuerySpec` is a frozen, hashable value object that fully describes a
query *except for the graph it runs on*: the workload (enumerate / top-k /
containment / count), the MQCE parameters, the execution knobs, the budgets and
the output options.  Everything downstream keys on it — the
:class:`~repro.engine.planner.QueryPlanner` plans from a spec, the
:class:`~repro.engine.cache.ResultCache` keys on ``(fingerprint, spec)``, the
CLI parses one from flags or JSON, and streaming delivery enforces its budgets.

Workloads are compositional rather than mutually exclusive:

* ``contains`` restricts the answer to maximal quasi-cliques containing the
  given vertices (the query-driven variant of [11, 12, 25]),
* ``k`` keeps only the ``k`` largest answers (the top-k variant of [34, 35]),
* ``count_only`` asks only for the number of answers, and
* none of the above is the plain MQCE enumeration.

``spec.workload`` names the primary workload for routing and display.
"""

from __future__ import annotations

import dataclasses
import json
from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import Any

from ..core.branching import BRANCHING_METHODS
from ..core.dcfastqc import DC_FRAMEWORKS, DEFAULT_MAX_ROUNDS
from ..core.kernel import KERNELS
from ..errors import SpecError
from ..pipeline.mqce import ALGORITHMS
from ..quasiclique.definitions import gamma_fraction, validate_parameters

#: The workload names ``QuerySpec.workload`` can report.
WORKLOADS = ("enumerate", "topk", "containment", "count")

#: ``algorithm`` values a spec accepts ("auto" defers to the planner).
SPEC_ALGORITHMS = ("auto",) + ALGORITHMS

#: ``parallel`` values a spec accepts: "auto" lets the planner pick between
#: sharding whole DC subproblems and work-stealing branch parallelism from the
#: subproblem-size skew, "none" forces the sequential driver, and
#: "shard"/"branch" force one parallel mode.
SPEC_PARALLEL_MODES = ("auto", "none", "shard", "branch")


@dataclass(frozen=True)
class QuerySpec:
    """A complete, graph-independent description of one MQCE query.

    Parameters
    ----------
    gamma, theta:
        The MQCE parameters: degree fraction in ``[0.5, 1]`` and minimum
        quasi-clique size.  For top-k queries ``theta`` doubles as the
        smallest size the shrinking-threshold search may drop to.
    algorithm, branching, framework, max_rounds, maximality_filter:
        Execution knobs.  ``algorithm="auto"`` (default) lets the engine's
        planner choose; ``branching=None`` / ``framework=None`` likewise defer
        to the algorithm's default.
    kernel:
        Enumeration kernel shared by FastQC, DCFastQC and Quick+:
        ``"ledger"`` (default — incremental degree-ledger branch states,
        kernelized subproblem shrinking and ledger-based Type I/II pruning
        over compact subproblem index spaces) or ``"reference"`` (the
        original mask/popcount implementation).  Both are exact and produce
        identical answers on identical branch trees.
    parallel:
        Parallel execution mode for divide-and-conquer plans: ``"auto"``
        (default — the planner picks shard- or branch-parallelism from the
        subproblem-size skew, or stays serial), ``"none"``, ``"shard"`` or
        ``"branch"``.  Like worker counts this is an execution-resource knob:
        every mode computes identical answers, so it does not participate in
        the cache key.
    k:
        When given, return only the ``k`` largest answers (ranked by size,
        ties broken by sorted labels).
    contains:
        Vertex labels every answer must contain (normalised to a sorted
        tuple).  Empty tuple: no containment constraint.
    require_maximal:
        Containment queries only: when False, every quasi-clique found for
        the containment seed is returned, not just the maximal ones.
    count_only:
        Ask only for the number of answers (output shaping; the builder's
        ``.run()`` and the CLI return a bare count).
    time_limit:
        Soft wall-clock budget in seconds.  Enumeration stops cooperatively
        once it is exceeded; delivered results are best-effort (and the
        streaming DC path yields only confirmed-maximal sets).  Budgeted
        results are never cached.
    max_results:
        Deliver at most this many answers.  Streaming stops enumeration as
        soon as the quota is reached; ``query()`` trims the delivered copy.
    include_candidates:
        When False the delivered :class:`~repro.pipeline.results.EnumerationResult`
        drops the (possibly large) MQCE-S1 candidate list.
    """

    gamma: float
    theta: int = 1
    algorithm: str = "auto"
    branching: str | None = None
    framework: str | None = None
    kernel: str = "ledger"
    parallel: str = "auto"
    max_rounds: int = DEFAULT_MAX_ROUNDS
    maximality_filter: bool = True
    k: int | None = None
    contains: tuple = ()
    require_maximal: bool = True
    count_only: bool = False
    time_limit: float | None = None
    max_results: int | None = None
    include_candidates: bool = True

    def __post_init__(self) -> None:
        validate_parameters(self.gamma, self.theta)
        if self.algorithm not in SPEC_ALGORITHMS:
            raise SpecError(f"unknown algorithm {self.algorithm!r}; "
                            f"expected one of {SPEC_ALGORITHMS}")
        if self.branching is not None and self.branching not in BRANCHING_METHODS:
            raise SpecError(f"unknown branching {self.branching!r}; "
                            f"expected one of {BRANCHING_METHODS}")
        if self.framework is not None and self.framework not in DC_FRAMEWORKS:
            raise SpecError(f"unknown framework {self.framework!r}; "
                            f"expected one of {DC_FRAMEWORKS}")
        if self.kernel not in KERNELS:
            raise SpecError(f"unknown kernel {self.kernel!r}; "
                            f"expected one of {KERNELS}")
        if self.parallel not in SPEC_PARALLEL_MODES:
            raise SpecError(f"unknown parallel mode {self.parallel!r}; "
                            f"expected one of {SPEC_PARALLEL_MODES}")
        if self.max_rounds < 0:
            raise SpecError("max_rounds must be non-negative")
        if self.k is not None and self.k < 1:
            raise SpecError("k must be a positive integer")
        if self.time_limit is not None and self.time_limit <= 0:
            raise SpecError("time_limit must be a positive number of seconds")
        if self.max_results is not None and self.max_results < 1:
            raise SpecError("max_results must be a positive integer")
        # Normalise any iterable of labels to a canonical sorted tuple so
        # equal constraints compare and hash equally.
        object.__setattr__(self, "contains", _normalise_contains(self.contains))

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def workload(self) -> str:
        """The primary workload this spec describes (one of :data:`WORKLOADS`)."""
        if self.count_only:
            return "count"
        if self.contains:
            return "containment"
        if self.k is not None:
            return "topk"
        return "enumerate"

    def resolved(self, plan) -> "QuerySpec":
        """Return a copy with algorithm / branching / framework fixed by ``plan``.

        The result has no ``"auto"`` or ``None`` execution knobs left, so it
        identifies the exact computation — which is why cache keys are built
        from resolved specs: a forced ``algorithm="dcfastqc"`` and an ``auto``
        plan that chose DCFastQC address the same cache entry.  An explicitly
        forced ``framework`` survives (the planner only derives a default).
        """
        return dataclasses.replace(
            self, algorithm=plan.algorithm, branching=plan.branching,
            framework=self.framework if self.framework is not None else plan.framework)

    def cache_key(self) -> tuple:
        """The semantic identity of this query: every field that changes the answer.

        Budgets and output options are deliberately excluded — they shape the
        delivered copy, not the cached full result (budget-truncated results
        are never cached at all).  ``parallel`` is excluded too: execution
        resources never change the answer, so a shard-parallel and a
        branch-parallel run of the same query share one cache entry.  Gamma is
        normalised to an exact fraction so ``0.9`` and ``Fraction(9, 10)``
        address the same entry.
        """
        return ("spec", gamma_fraction(self.gamma), int(self.theta),
                self.algorithm, self.branching, self.framework, self.kernel,
                int(self.max_rounds), bool(self.maximality_filter),
                self.k, self.contains, bool(self.require_maximal))

    @property
    def cacheable(self) -> bool:
        """True when results computed for this spec may be cached (no time budget)."""
        return self.time_limit is None

    # ------------------------------------------------------------------
    # Serialisation (CLI --spec files, logging)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready dictionary with default-valued fields omitted."""
        data = dataclasses.asdict(self)
        data["contains"] = list(data["contains"])
        defaults = {f.name: f.default for f in dataclasses.fields(QuerySpec)
                    if f.default is not dataclasses.MISSING}
        defaults["contains"] = []
        return {key: value for key, value in data.items()
                if key == "gamma" or key == "theta" or defaults.get(key) != value}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QuerySpec":
        """Build a spec from a mapping, rejecting unknown keys with :class:`SpecError`."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SpecError(f"unknown QuerySpec fields: {sorted(unknown)}; "
                            f"expected a subset of {sorted(known)}")
        if "gamma" not in data:
            raise SpecError("a QuerySpec requires at least 'gamma'")
        return cls(**dict(data))

    def to_json(self) -> str:
        """The canonical JSON serialisation of this spec.

        Sorted keys, no whitespace, default-valued fields omitted — so two
        equal specs always serialise to the same bytes (the ``repro serve``
        wire format and the CLI ``--spec`` files both rely on this), and
        ``QuerySpec.from_json(spec.to_json()) == spec`` round-trips exactly.
        """
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @staticmethod
    def fields_from_json(text: str) -> dict[str, Any]:
        """Parse a JSON object string into a QuerySpec field mapping.

        Shared by :meth:`from_json`, the CLI ``--spec`` reader (which overlays
        flag overrides before construction) and the serve protocol; raises
        :class:`SpecError` for malformed documents.
        """
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid JSON for QuerySpec: {exc}") from exc
        if not isinstance(payload, Mapping):
            raise SpecError("a QuerySpec JSON document must be an object")
        return dict(payload)

    @classmethod
    def from_json(cls, text: str) -> "QuerySpec":
        """Parse a spec from a JSON object string (inverse of :meth:`to_json`)."""
        return cls.from_dict(cls.fields_from_json(text))

    def describe(self) -> str:
        """A compact one-line description for logs and CLI headers."""
        parts = [f"{self.workload} gamma={self.gamma} theta={self.theta}"]
        if self.algorithm != "auto":
            parts.append(f"algorithm={self.algorithm}")
        if self.parallel != "auto":
            parts.append(f"parallel={self.parallel}")
        if self.contains:
            parts.append(f"containing={','.join(map(str, self.contains))}")
        if self.k is not None:
            parts.append(f"k={self.k}")
        if self.time_limit is not None:
            parts.append(f"time_limit={self.time_limit}s")
        if self.max_results is not None:
            parts.append(f"max_results={self.max_results}")
        return " ".join(parts)


def _normalise_contains(labels: Iterable) -> tuple:
    """Deduplicate and order containment labels deterministically."""
    return tuple(sorted(set(labels), key=lambda label: (str(type(label)), str(label))))


def coerce_spec(gamma, theta=None, algorithm: str = "auto",
                branching: str | None = None, *, spec: QuerySpec | None = None,
                **extra) -> QuerySpec:
    """Accept either a ready :class:`QuerySpec` or the PR-1 kwargs calling style.

    ``coerce_spec(spec)`` and ``coerce_spec(gamma, theta, ...)`` both return a
    spec; mixing the two styles raises :class:`SpecError`.
    """
    if isinstance(gamma, QuerySpec):
        if theta is not None or spec is not None:
            raise SpecError("pass either a QuerySpec or (gamma, theta, ...), not both")
        if algorithm != "auto" or branching is not None or extra:
            raise SpecError("keyword parameters cannot override an explicit QuerySpec; "
                            "use dataclasses.replace(spec, ...) instead")
        return gamma
    if spec is not None:
        if gamma is not None or theta is not None:
            raise SpecError("pass either spec=... or (gamma, theta, ...), not both")
        return spec
    if gamma is None or theta is None:
        raise SpecError("a query needs gamma and theta (or an explicit QuerySpec)")
    return QuerySpec(gamma=gamma, theta=theta, algorithm=algorithm,
                     branching=branching, **extra)
