"""Workload execution for :class:`~repro.api.spec.QuerySpec` (engine-free).

This module is the single place that knows how to turn a spec into an
:class:`~repro.pipeline.results.EnumerationResult`:

* ``enumerate`` / ``count`` — the classic MQCE pipeline
  (:func:`repro.pipeline.mqce.run_enumeration`),
* ``containment`` — the query-driven variant: seed FastQC with the required
  vertices, restrict to their joint 2-hop neighbourhood (legal for
  gamma >= 0.5 by the diameter-2 property), filter for global maximality,
* ``topk`` — the shrinking-size-threshold search for the k largest maximal
  quasi-cliques (optionally started from a prepared graph's degeneracy bound).

The persistent :class:`repro.engine.MQCEEngine` calls these same functions
after planning and consults its cache around them; the one-shot helpers here
(:func:`execute`, :func:`shape_result`, :func:`result_value`) are what the
fluent builder and the deprecated kwargs shims use directly.
"""

from __future__ import annotations

import dataclasses
from functools import reduce

from ..core.branch import Branch
from ..core.fastqc import FastQC
from ..core.stats import SearchStatistics
from ..errors import QueryError
from ..graph.graph import Graph
from ..graph.subgraph import two_hop_mask
from ..obs.trace import NULL_TRACER
from ..pipeline.mqce import build_enumerator, canonical_order, resolve_algorithm, run_enumeration
from ..pipeline.results import EnumerationResult
from ..pipeline.streaming import QueryBudget
from ..quasiclique.definitions import degree_threshold
from ..quasiclique.maximality import satisfies_maximality_necessary_condition
from ..settrie.filter import filter_non_maximal
from .spec import QuerySpec


def execute(graph: Graph, spec: QuerySpec) -> EnumerationResult:
    """Run one spec against a graph, without planner or cache.

    ``algorithm="auto"`` resolves to the paper's default (DCFastQC).  The
    returned envelope is *unshaped*: budgets stopped the enumeration early if
    they fired (``result.truncated``), but ``max_results`` trimming and
    ``include_candidates`` dropping are left to :func:`shape_result` so a
    caching layer can store the full result.
    """
    if spec.contains:
        return containment_search(graph, spec)
    if spec.k is not None:
        return topk_search(graph, spec)
    return run_enumeration(graph, spec)


def shape_result(result: EnumerationResult, spec: QuerySpec) -> EnumerationResult:
    """Apply the spec's output options to a (possibly shared) result.

    Returns a defensively copied envelope: the maximal list trimmed to
    ``max_results`` (it is already in canonical order, so trimming keeps the
    largest), ranked and trimmed to ``k`` when the spec asks for top-k, and
    the candidate list emptied when ``include_candidates`` is off.
    """
    maximal = list(result.maximal_quasi_cliques)
    if spec.k is not None:
        maximal = canonical_order(maximal)[:spec.k]
    if spec.max_results is not None:
        maximal = maximal[:spec.max_results]
    candidates = list(result.candidate_quasi_cliques) if spec.include_candidates else []
    return dataclasses.replace(result, maximal_quasi_cliques=maximal,
                               candidate_quasi_cliques=candidates)


def result_value(result: EnumerationResult, spec: QuerySpec):
    """The workload-shaped value of a result (what ``Q(...).run()`` returns).

    ``count`` -> int, ``topk`` / ``containment`` -> list of frozensets,
    ``enumerate`` -> the full :class:`EnumerationResult` envelope.
    """
    if spec.count_only:
        return result.maximal_count
    if spec.workload in ("topk", "containment"):
        return list(result.maximal_quasi_cliques)
    return result


# ----------------------------------------------------------------------
# Containment workload
# ----------------------------------------------------------------------
def _query_candidate_mask(graph: Graph, query_indices: list[int], gamma: float,
                          theta: int) -> int:
    """Candidate region for a containment query: intersection of 2-hop balls."""
    full = graph.full_mask()
    balls = [two_hop_mask(graph, index, full) | (1 << index) for index in query_indices]
    region = reduce(lambda a, b: a & b, balls, full)
    # Degree-based shrinking, as in the DC framework's one-hop pruning.
    required = degree_threshold(gamma, theta)
    query_bits = 0
    for index in query_indices:
        query_bits |= 1 << index
    changed = True
    while changed:
        changed = False
        for vertex in list(graph.labels_of_mask(region)):
            index = graph.index_of(vertex)
            if (1 << index) & query_bits:
                continue
            if (graph.adjacency_mask(index) & region).bit_count() < required:
                region &= ~(1 << index)
                changed = True
    return region | query_bits


def containment_search(graph: Graph, spec: QuerySpec, *,
                       tracer=None, progress=None) -> EnumerationResult:
    """Find the (maximal) quasi-cliques containing every ``spec.contains`` vertex."""
    query_set = frozenset(spec.contains)
    if not query_set:
        raise QueryError("the query must contain at least one vertex")
    effective_theta = max(spec.theta, len(query_set))
    query_indices = [graph.index_of(v) for v in query_set]
    obs = tracer if tracer is not None else NULL_TRACER

    budget = QueryBudget(spec.time_limit)
    found: list[frozenset] = []
    engine = None
    with obs.span("enumerate", workload="containment",
                  query_size=len(query_set)) as enumerate_span:
        region = _query_candidate_mask(graph, query_indices, spec.gamma,
                                       effective_theta)
        query_mask = 0
        for index in query_indices:
            query_mask |= 1 << index
        if region & query_mask == query_mask:
            engine = FastQC(graph, spec.gamma, effective_theta, kernel=spec.kernel,
                            maximality_filter=False, progress=progress,
                            should_stop=budget.expired if spec.time_limit is not None else None)
            branch = Branch(query_mask, region & ~query_mask, 0)
            with obs.span("subproblem", stats=engine.statistics,
                          size=region.bit_count()):
                found = [clique for clique in engine.enumerate_branch(branch)
                         if query_set <= clique]
        enumerate_span.annotate(candidates=len(found))
    enumeration_seconds = enumerate_span.seconds

    with obs.span("filter", theta=spec.theta,
                  require_maximal=spec.require_maximal) as filter_span:
        if spec.require_maximal:
            matches = [clique for clique in filter_non_maximal(found, theta=spec.theta)
                       if satisfies_maximality_necessary_condition(graph, clique, spec.gamma)]
        else:
            matches = list(found)
        filter_span.annotate(maximal=len(matches))
    filtering_seconds = filter_span.seconds

    return EnumerationResult(
        maximal_quasi_cliques=canonical_order(matches),
        candidate_quasi_cliques=list(found),
        algorithm=resolve_algorithm(spec.algorithm),
        gamma=spec.gamma,
        theta=spec.theta,
        search_statistics=engine.statistics if engine is not None else SearchStatistics(),
        enumeration_seconds=enumeration_seconds,
        filtering_seconds=filtering_seconds,
        truncated=engine.stopped if engine is not None else False,
    )


# ----------------------------------------------------------------------
# Top-k workload
# ----------------------------------------------------------------------
def topk_search(graph: Graph, spec: QuerySpec, size_bound: int | None = None,
                *, tracer=None, progress=None) -> EnumerationResult:
    """The k largest maximal quasi-cliques, via a shrinking size threshold.

    The search runs the spec's MQCE-S1 algorithm with a size threshold that
    starts high (``|V| / 2``, or ``size_bound`` — e.g. a prepared graph's
    degeneracy bound — when that is lower) and halves until at least ``k``
    maximal quasi-cliques of that size exist or the threshold reaches
    ``spec.theta``.  Every threshold that returns >= k answers provably
    contains the true top-k, so the ranked prefix is exact.
    """
    k = spec.k if spec.k is not None else 1
    minimum_size = max(spec.theta, 1)
    if graph.vertex_count == 0:
        return EnumerationResult(
            maximal_quasi_cliques=[], candidate_quasi_cliques=[],
            algorithm=resolve_algorithm(spec.algorithm),
            gamma=spec.gamma, theta=spec.theta)

    threshold = max(minimum_size, graph.vertex_count // 2)
    if size_bound is not None:
        # No gamma-QC can exceed the bound; starting the halving schedule
        # there skips rounds that provably return nothing.
        threshold = max(minimum_size, min(threshold, size_bound))

    budget = QueryBudget(spec.time_limit)
    should_stop = budget.expired if spec.time_limit is not None else None
    algorithm = resolve_algorithm(spec.algorithm)
    framework = spec.framework if spec.framework is not None else "dc"
    obs = tracer if tracer is not None else NULL_TRACER
    candidates: list[frozenset] = []
    maximal: list[frozenset] = []
    statistics = SearchStatistics()
    truncated = False
    rounds = 0
    with obs.span("enumerate", workload="topk", k=k,
                  algorithm=algorithm) as enumerate_span:
        while True:
            rounds += 1
            enumerator = build_enumerator(
                graph, spec.gamma, threshold, algorithm=algorithm,
                branching=spec.branching, framework=framework, kernel=spec.kernel,
                max_rounds=spec.max_rounds, maximality_filter=spec.maximality_filter,
                should_stop=should_stop, progress=progress)
            with obs.span("threshold_round",
                          stats=lambda: enumerator.statistics,
                          threshold=threshold) as round_span:
                candidates = enumerator.enumerate()
                statistics = enumerator.statistics
                with obs.span("filter", theta=threshold):
                    maximal = filter_non_maximal(candidates, theta=threshold)
                round_span.annotate(candidates=len(candidates),
                                    maximal=len(maximal))
            truncated = getattr(enumerator, "stopped", False)
            if truncated or len(maximal) >= k or threshold <= minimum_size:
                break
            threshold = max(minimum_size, threshold // 2)
        enumerate_span.annotate(rounds=rounds, final_threshold=threshold)
    enumeration_seconds = enumerate_span.seconds

    return EnumerationResult(
        maximal_quasi_cliques=canonical_order(maximal)[:k],
        candidate_quasi_cliques=list(candidates),
        algorithm=algorithm,
        gamma=spec.gamma,
        theta=spec.theta,
        search_statistics=statistics,
        enumeration_seconds=enumeration_seconds,
        filtering_seconds=0.0,
        truncated=truncated,
    )
