"""The fluent query builder: ``Q(graph).gamma(0.9).theta(5).top(10).run()``.

:class:`Q` binds a graph (or a prepared graph) and accumulates
:class:`~repro.api.spec.QuerySpec` fields through chainable, *immutable*
steps — every call returns a new builder, so partial chains can be reused::

    base = Q(graph).gamma(0.9).theta(5)
    communities = base.containing("alice").run()
    biggest = base.top(3).run()

Terminal operations:

``spec()``
    The accumulated :class:`QuerySpec` (validated).
``run(engine=None)``
    Execute and return the workload-shaped value: an
    :class:`~repro.pipeline.results.EnumerationResult` for enumerate, a list
    of frozensets for top-k / containment, an int for count.  With an
    ``engine`` — an :class:`~repro.engine.MQCEEngine` or, for mutable graphs,
    a :class:`repro.dynamic.DynamicEngine` bound to this graph — the query is
    planned and served through its cache.
``result(engine=None)``
    Always the full :class:`EnumerationResult` envelope.
``stream(engine=None)``
    An iterator of maximal quasi-cliques, yielding incrementally (see
    :mod:`repro.pipeline.streaming`).
``explain(engine=None)``
    The :class:`~repro.engine.planner.QueryPlan` the engine would use.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from ..graph.graph import Graph
from .execute import execute, result_value, shape_result
from .spec import QuerySpec


class Q:
    """An immutable fluent builder over one graph and one growing spec."""

    __slots__ = ("_graph", "_fields")

    def __init__(self, graph: Graph, **fields: Any) -> None:
        self._graph = graph
        self._fields = fields

    def _with(self, **updates: Any) -> "Q":
        merged = dict(self._fields)
        merged.update(updates)
        return Q(self._graph, **merged)

    # ------------------------------------------------------------------
    # Parameters
    # ------------------------------------------------------------------
    def gamma(self, value: float) -> "Q":
        """Degree fraction threshold in ``[0.5, 1]``."""
        return self._with(gamma=value)

    def theta(self, value: int) -> "Q":
        """Minimum quasi-clique size (for top-k: the smallest threshold tried)."""
        return self._with(theta=value)

    def algorithm(self, name: str) -> "Q":
        """Force the MQCE-S1 algorithm (default ``"auto"``)."""
        return self._with(algorithm=name)

    def branching(self, name: str) -> "Q":
        """Force the branching rule (``"hybrid"``, ``"sym-se"`` or ``"se"``)."""
        return self._with(branching=name)

    def framework(self, name: str) -> "Q":
        """Force the divide-and-conquer framework (``"dc"``, ``"basic-dc"``, ``"none"``)."""
        return self._with(framework=name)

    def max_rounds(self, value: int) -> "Q":
        """Number of subproblem shrinking rounds (MAX_ROUND)."""
        return self._with(max_rounds=value)

    def no_maximality_filter(self) -> "Q":
        """Disable FastQC's necessary-condition output filter (ablation knob)."""
        return self._with(maximality_filter=False)

    # ------------------------------------------------------------------
    # Workloads
    # ------------------------------------------------------------------
    def containing(self, *vertices) -> "Q":
        """Restrict answers to quasi-cliques containing every given vertex."""
        return self._with(contains=tuple(vertices))

    def top(self, k: int) -> "Q":
        """Keep only the ``k`` largest answers."""
        return self._with(k=k)

    def count(self) -> "Q":
        """Ask only for the number of answers (``run()`` returns an int)."""
        return self._with(count_only=True)

    def any_quasi_clique(self) -> "Q":
        """Containment queries: return every found QC, not just maximal ones."""
        return self._with(require_maximal=False)

    # ------------------------------------------------------------------
    # Budgets and output options
    # ------------------------------------------------------------------
    def within(self, seconds: float) -> "Q":
        """Soft wall-clock budget; enumeration stops cooperatively when exceeded."""
        return self._with(time_limit=seconds)

    def limit(self, n: int) -> "Q":
        """Deliver at most ``n`` answers (streaming stops enumeration early)."""
        return self._with(max_results=n)

    def no_candidates(self) -> "Q":
        """Drop the MQCE-S1 candidate list from the delivered envelope."""
        return self._with(include_candidates=False)

    # ------------------------------------------------------------------
    # Terminals
    # ------------------------------------------------------------------
    def spec(self) -> QuerySpec:
        """Build (and validate) the accumulated :class:`QuerySpec`."""
        return QuerySpec(**self._fields)

    def replace(self, **updates: Any) -> "Q":
        """Escape hatch: set any :class:`QuerySpec` field by name."""
        return self._with(**updates)

    def result(self, engine=None):
        """Execute and return the full :class:`EnumerationResult` envelope."""
        spec = self.spec()
        if engine is not None:
            return engine.query(self._graph, spec)
        return shape_result(execute(self._plain_graph(), spec), spec)

    def run(self, engine=None):
        """Execute and return the workload-shaped value (see module docstring)."""
        spec = self.spec()
        return result_value(self.result(engine), spec)

    def stream(self, engine=None):
        """Execute incrementally: an iterator of maximal quasi-cliques."""
        spec = self.spec()
        if engine is not None:
            return engine.stream(self._graph, spec)
        from ..pipeline.streaming import QuasiCliqueStream

        if spec.contains or spec.k is not None:
            # No incremental path without the DC subproblem structure over the
            # whole graph; deliver the computed answer as an iterator.
            return iter(list(self.result().maximal_quasi_cliques))
        return QuasiCliqueStream(
            self._plain_graph(), spec.gamma, spec.theta, algorithm=spec.algorithm,
            branching=spec.branching, framework=spec.framework,
            max_rounds=spec.max_rounds, maximality_filter=spec.maximality_filter,
            time_limit=spec.time_limit, max_results=spec.max_results)

    def explain(self, engine=None):
        """Return the :class:`QueryPlan` an engine would choose for this spec."""
        from ..engine import MQCEEngine

        engine = engine or MQCEEngine()
        return engine.explain(self._graph, self.spec())

    def _plain_graph(self) -> Graph:
        """Unwrap an engine ``PreparedGraph`` for the engine-free paths."""
        graph = self._graph
        return graph.graph if hasattr(graph, "graph") and not isinstance(graph, Graph) else graph

    def __repr__(self) -> str:
        fields = ", ".join(f"{key}={value!r}" for key, value in self._fields.items())
        return f"Q({self._graph!r}).with({fields})"


#: Alias for readers who prefer a full word over the terse ``Q``.
QueryBuilder = Q

# `replace` is re-exported so builder users can tweak specs without importing
# dataclasses themselves.
__all__ = ["Q", "QueryBuilder", "replace"]
