"""Plain-text reporting: ASCII charts and Markdown tables for the experiments.

The paper presents its evaluation as bar/line charts (Figures 7–12); without a
plotting dependency this module renders the same series as ASCII bar charts and
Markdown tables, which is what EXPERIMENTS.md and the benchmark output use.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def markdown_table(rows: Sequence[Mapping], columns: Sequence[str] | None = None,
                   float_format: str = "{:.4g}") -> str:
    """Render rows as a GitHub-flavoured Markdown table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    lines = ["| " + " | ".join(str(column) for column in columns) + " |",
             "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def ascii_bar_chart(values: Mapping[str, float], width: int = 50, unit: str = "",
                    log_scale: bool = False) -> str:
    """Render a horizontal ASCII bar chart of label -> value.

    With ``log_scale=True`` the bars are proportional to ``log10`` of the
    values (the paper's running-time figures are log-scale), values <= 0 are
    drawn as empty bars.
    """
    import math

    if not values:
        return "(no data)"
    labels = list(values)
    label_width = max(len(str(label)) for label in labels)

    def transform(value: float) -> float:
        if log_scale:
            return math.log10(value) if value > 0 else 0.0
        return max(0.0, value)

    transformed = {label: transform(value) for label, value in values.items()}
    low = min(transformed.values())
    high = max(transformed.values())
    span = (high - low) or 1.0
    lines = []
    for label in labels:
        value = values[label]
        if log_scale:
            filled = int(round(width * (transformed[label] - low + 0.05 * span) / (1.1 * span)))
        else:
            filled = int(round(width * transformed[label] / (high or 1.0)))
        filled = max(0, min(width, filled))
        bar = "#" * filled
        lines.append(f"{str(label).ljust(label_width)} | {bar} {value:.4g}{unit}")
    return "\n".join(lines)


def series_chart(rows: Sequence[Mapping], x_key: str, y_key: str, group_key: str,
                 width: int = 40, unit: str = "s") -> str:
    """Render grouped series (e.g. per-algorithm times across a sweep) as text.

    Each distinct ``group_key`` value becomes a block, with one bar per
    ``x_key`` value — a textual rendering of the paper's line charts.
    """
    groups: dict = {}
    for row in rows:
        groups.setdefault(row[group_key], {})[row[x_key]] = row[y_key]
    blocks = []
    for group, values in groups.items():
        blocks.append(f"[{group_key}={group}]")
        blocks.append(ascii_bar_chart(values, width=width, unit=unit))
    return "\n".join(blocks)


def speedup_summary(rows: Sequence[Mapping], subject: str = "dcfastqc",
                    baseline: str = "quickplus", key: str = "enumeration_seconds",
                    group_key: str = "dataset") -> list[dict]:
    """Per-group speedup of ``subject`` over ``baseline`` (e.g. per dataset)."""
    groups: dict = {}
    for row in rows:
        groups.setdefault(row.get(group_key, "all"), []).append(row)
    summary = []
    for group, group_rows in groups.items():
        subject_time = sum(r[key] for r in group_rows if r["algorithm"] == subject)
        baseline_time = sum(r[key] for r in group_rows if r["algorithm"] == baseline)
        speedup = baseline_time / subject_time if subject_time > 0 else float("inf")
        summary.append({group_key: group, f"{subject}_{key}": subject_time,
                        f"{baseline}_{key}": baseline_time, "speedup": speedup})
    return summary


def render_figure(rows: Sequence[Mapping], title: str, x_key: str, y_key: str,
                  group_key: str) -> str:
    """Render one paper-style figure: a title, the series chart and a table."""
    parts = [f"== {title} ==", series_chart(rows, x_key, y_key, group_key),
             "", markdown_table(rows, columns=[group_key, x_key, y_key])]
    return "\n".join(parts)
