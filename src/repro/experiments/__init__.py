"""Experiment harness and the per-table / per-figure reproduction drivers."""

from .harness import (
    compare_algorithms,
    format_table,
    run_algorithm,
    speedup_over_baseline,
    sweep_parameter,
)
from .tables import table1_row, table1_rows
from .report import (
    ascii_bar_chart,
    markdown_table,
    render_figure,
    series_chart,
    speedup_summary,
)
from .figures import (
    codesign_ablation_rows,
    dc_reduction_rows,
    default_gamma_values,
    default_theta_values,
    figure7_rows,
    figure8_rows,
    figure9_rows,
    figure10a_rows,
    figure10b_rows,
    figure11_rows,
    figure12_rows,
    max_round_rows,
    settrie_filtering_rows,
    synthetic_default_graph,
)

__all__ = [
    "compare_algorithms",
    "format_table",
    "run_algorithm",
    "speedup_over_baseline",
    "sweep_parameter",
    "table1_row",
    "table1_rows",
    "codesign_ablation_rows",
    "dc_reduction_rows",
    "default_gamma_values",
    "default_theta_values",
    "figure7_rows",
    "figure8_rows",
    "figure9_rows",
    "figure10a_rows",
    "figure10b_rows",
    "figure11_rows",
    "figure12_rows",
    "max_round_rows",
    "settrie_filtering_rows",
    "synthetic_default_graph",
    "ascii_bar_chart",
    "markdown_table",
    "render_figure",
    "series_chart",
    "speedup_summary",
]
