"""Reproduction of the paper's Figures 7–12 and the ablation experiments.

Each function returns a list of rows (dictionaries) carrying the same series
the paper plots: which algorithm / variant, which dataset or parameter value,
the running time and — because wall-clock seconds of a pure-Python engine are
not comparable with the paper's C++ numbers — the explored-branch counts.  The
*shape* of the results (who wins, how speedups move with gamma / theta /
density) is what is reproduced; EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

from ..core.dcfastqc import DCFastQC
from ..datasets.registry import DEFAULT_FIGURE_DATASETS, REGISTRY, get_spec
from ..graph.generators import erdos_renyi_by_density
from ..graph.graph import Graph
from .harness import compare_algorithms, run_algorithm, sweep_parameter


# ----------------------------------------------------------------------
# Figure 7: all datasets at their default settings
# ----------------------------------------------------------------------
def figure7_rows(names: Sequence[str] | None = None,
                 algorithms: Sequence[str] = ("dcfastqc", "quickplus")) -> list[dict]:
    """Running time of DCFastQC vs Quick+ on every dataset analogue (defaults)."""
    if names is None:
        names = list(REGISTRY)
    rows = []
    for name in names:
        spec = get_spec(name)
        graph = spec.build()
        for row in compare_algorithms(graph, spec.default_gamma, spec.default_theta,
                                      algorithms=algorithms):
            row["dataset"] = name
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figures 8 and 9: gamma and theta sweeps on the default datasets
# ----------------------------------------------------------------------
def default_gamma_values(name: str) -> list[float]:
    """Gamma sweep values for a dataset: its default and a few values around it."""
    gamma = get_spec(name).default_gamma
    values = [gamma - 0.05, gamma - 0.025, gamma, min(0.99, gamma + 0.025)]
    return [round(max(0.5, value), 3) for value in values]


def default_theta_values(name: str) -> list[int]:
    """Theta sweep values for a dataset: its default and a few values around it."""
    theta = get_spec(name).default_theta
    return [max(2, theta - 2), max(2, theta - 1), theta, theta + 1]


def figure8_rows(names: Sequence[str] = DEFAULT_FIGURE_DATASETS,
                 algorithms: Sequence[str] = ("dcfastqc", "quickplus"),
                 gamma_values: Sequence[float] | None = None) -> list[dict]:
    """Running time while varying gamma (Figure 8)."""
    rows = []
    for name in names:
        spec = get_spec(name)
        graph = spec.build()
        values = gamma_values if gamma_values is not None else default_gamma_values(name)
        for row in sweep_parameter(graph, "gamma", values, spec.default_gamma,
                                   spec.default_theta, algorithms=algorithms):
            row["dataset"] = name
            rows.append(row)
    return rows


def figure9_rows(names: Sequence[str] = DEFAULT_FIGURE_DATASETS,
                 algorithms: Sequence[str] = ("dcfastqc", "quickplus"),
                 theta_values: Sequence[int] | None = None) -> list[dict]:
    """Running time while varying theta (Figure 9)."""
    rows = []
    for name in names:
        spec = get_spec(name)
        graph = spec.build()
        values = theta_values if theta_values is not None else default_theta_values(name)
        for row in sweep_parameter(graph, "theta", values, spec.default_gamma,
                                   spec.default_theta, algorithms=algorithms):
            row["dataset"] = name
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 10: synthetic Erdos–Renyi scalability
# ----------------------------------------------------------------------
def figure10a_rows(vertex_counts: Sequence[int] = (100, 200, 400, 800),
                   edge_density: float = 8.0, gamma: float = 0.9, theta: int = 6,
                   algorithms: Sequence[str] = ("dcfastqc", "quickplus"),
                   seed: int = 2024) -> list[dict]:
    """Running time while varying the number of vertices (Figure 10a)."""
    rows = []
    for vertex_count in vertex_counts:
        graph = erdos_renyi_by_density(vertex_count, edge_density, seed=seed + vertex_count)
        for row in compare_algorithms(graph, gamma, theta, algorithms=algorithms):
            row["vertex_count"] = vertex_count
            row["edge_density"] = edge_density
            rows.append(row)
    return rows


def figure10b_rows(edge_densities: Sequence[float] = (4.0, 8.0, 12.0, 16.0),
                   vertex_count: int = 300, gamma: float = 0.9, theta: int = 6,
                   algorithms: Sequence[str] = ("dcfastqc", "quickplus"),
                   seed: int = 2025) -> list[dict]:
    """Running time while varying the edge density (Figure 10b)."""
    rows = []
    for density in edge_densities:
        graph = erdos_renyi_by_density(vertex_count, density, seed=seed + int(density * 10))
        for row in compare_algorithms(graph, gamma, theta, algorithms=algorithms):
            row["vertex_count"] = vertex_count
            row["edge_density"] = density
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 11: branching-strategy ablation (Hybrid-SE vs Sym-SE vs SE)
# ----------------------------------------------------------------------
def figure11_rows(names: Sequence[str] = ("enron", "hyves"),
                  branchings: Sequence[str] = ("hybrid", "sym-se", "se"),
                  vary: str = "gamma") -> list[dict]:
    """Running time of DCFastQC with different branching strategies (Figure 11)."""
    rows = []
    for name in names:
        spec = get_spec(name)
        graph = spec.build()
        values = (default_gamma_values(name) if vary == "gamma"
                  else default_theta_values(name))
        for value in values:
            gamma = value if vary == "gamma" else spec.default_gamma
            theta = value if vary == "theta" else spec.default_theta
            for branching in branchings:
                row = run_algorithm(graph, gamma, theta, "dcfastqc", branching=branching)
                row.update({"dataset": name, "branching": branching,
                            "swept_parameter": vary, "swept_value": value})
                rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 12: divide-and-conquer framework ablation
# ----------------------------------------------------------------------
def figure12_rows(names: Sequence[str] = ("enron", "hyves"),
                  frameworks: Sequence[tuple[str, str]] = (
                      ("DCFastQC", "dc"), ("BDCFastQC", "basic-dc"), ("FastQC", "none")),
                  vary: str = "gamma") -> list[dict]:
    """Running time of the DC frameworks: DCFastQC vs BDCFastQC vs FastQC (Figure 12)."""
    rows = []
    for name in names:
        spec = get_spec(name)
        graph = spec.build()
        values = (default_gamma_values(name) if vary == "gamma"
                  else default_theta_values(name))
        for value in values:
            gamma = value if vary == "gamma" else spec.default_gamma
            theta = value if vary == "theta" else spec.default_theta
            for label, framework in frameworks:
                row = run_algorithm(graph, gamma, theta, "dcfastqc", framework=framework)
                row.update({"dataset": name, "variant": label,
                            "swept_parameter": vary, "swept_value": value})
                rows.append(row)
    return rows


# ----------------------------------------------------------------------
# "Other experiments": ablations reported in Section 6.2
# ----------------------------------------------------------------------
def codesign_ablation_rows(names: Sequence[str] = ("enron",),
                           ) -> list[dict]:
    """Old pruning + new branching vs the full co-design (ablation 1).

    Runs Quick+ with SE / Sym-SE / Hybrid-SE branching next to DCFastQC to show
    that the new branching only pays off together with the new pruning rules.
    """
    rows = []
    for name in names:
        spec = get_spec(name)
        graph = spec.build()
        gamma, theta = spec.default_gamma, spec.default_theta
        for branching in ("se", "sym-se", "hybrid"):
            row = run_algorithm(graph, gamma, theta, "quickplus", branching=branching)
            row.update({"dataset": name, "variant": f"quickplus+{branching}"})
            rows.append(row)
        row = run_algorithm(graph, gamma, theta, "dcfastqc", branching="hybrid")
        row.update({"dataset": name, "variant": "dcfastqc+hybrid"})
        rows.append(row)
    return rows


def dc_reduction_rows(names: Sequence[str] | None = None) -> list[dict]:
    """Effect of the DC framework on subgraph size (ablation 2)."""
    if names is None:
        names = list(DEFAULT_FIGURE_DATASETS)
    rows = []
    for name in names:
        spec = get_spec(name)
        graph = spec.build()
        enumerator = DCFastQC(graph, spec.default_gamma, spec.default_theta)
        start = time.perf_counter()
        enumerator.enumerate()
        elapsed = time.perf_counter() - start
        records = enumerator.dc_statistics.subproblem_records
        refined_sizes = [record.refined_size for record in records]
        initial_sizes = [record.initial_size for record in records]
        rows.append({
            "dataset": name,
            "vertices": graph.vertex_count,
            "subproblems": len(records),
            "avg_initial_size": sum(initial_sizes) / len(initial_sizes) if records else 0.0,
            "avg_refined_size": sum(refined_sizes) / len(refined_sizes) if records else 0.0,
            "max_refined_size": max(refined_sizes, default=0),
            "reduction_ratio": enumerator.dc_statistics.reduction_ratio(),
            "enumeration_seconds": elapsed,
        })
    return rows


def max_round_rows(names: Sequence[str] = ("enron", "hyves"),
                   rounds: Sequence[int] = (1, 2, 3, 4)) -> list[dict]:
    """Effect of MAX_ROUND on DCFastQC (ablation 3)."""
    rows = []
    for name in names:
        spec = get_spec(name)
        graph = spec.build()
        for max_rounds in rounds:
            row = run_algorithm(graph, spec.default_gamma, spec.default_theta,
                                "dcfastqc", max_rounds=max_rounds)
            row.update({"dataset": name, "max_rounds": max_rounds})
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Section 2.2: MQCE-S2 post-processing cost
# ----------------------------------------------------------------------
def settrie_filtering_rows(names: Sequence[str] | None = None) -> list[dict]:
    """Time spent in the set-trie filter compared with the enumeration time."""
    if names is None:
        names = list(DEFAULT_FIGURE_DATASETS)
    rows = []
    for name in names:
        spec = get_spec(name)
        graph = spec.build()
        row = run_algorithm(graph, spec.default_gamma, spec.default_theta, "dcfastqc",
                            include_filtering=True)
        row["dataset"] = name
        row["filtering_fraction"] = (
            row["filtering_seconds"] / row["enumeration_seconds"]
            if row["enumeration_seconds"] > 0 else 0.0)
        rows.append(row)
    return rows


def synthetic_default_graph(seed: int = 7) -> Graph:
    """The default synthetic graph of Section 6 (scaled down from 100k vertices)."""
    return erdos_renyi_by_density(400, 20.0, seed=seed)
