"""Reproduction of the paper's Table 1 on the synthetic dataset analogues.

Table 1 reports, per dataset: |V|, |E|, |E|/|V|, d, omega, the defaults
theta_d / gamma_d, the number of MQCs, the number of QCs returned by DCFastQC
and by Quick+ before the maximality filter, and the minimum / maximum / average
MQC size.  This module regenerates those rows (on the scaled-down analogues)
and also reports the original paper values for side-by-side comparison.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..datasets.registry import REGISTRY, get_spec
from ..graph.statistics import graph_statistics, quasi_clique_statistics
from ..pipeline.mqce import enumerate_candidate_quasi_cliques
from ..settrie.filter import filter_non_maximal


def table1_row(name: str, include_quickplus: bool = True) -> dict:
    """Compute one Table 1 row for a registered dataset analogue."""
    spec = get_spec(name)
    graph = spec.build()
    stats = graph_statistics(graph)
    gamma, theta = spec.default_gamma, spec.default_theta

    dcfastqc_candidates, _ = enumerate_candidate_quasi_cliques(
        graph, gamma, theta, algorithm="dcfastqc")
    maximal = filter_non_maximal(dcfastqc_candidates, theta=theta)
    sizes = quasi_clique_statistics(maximal)

    row = {
        "dataset": spec.name,
        "vertices": stats.vertex_count,
        "edges": stats.edge_count,
        "edge_density": stats.edge_density,
        "max_degree": stats.max_degree,
        "degeneracy": stats.degeneracy,
        "theta_default": theta,
        "gamma_default": gamma,
        "mqc_count": sizes.count,
        "dcfastqc_count": len(dcfastqc_candidates),
        "min_size": sizes.min_size,
        "max_size": sizes.max_size,
        "avg_size": sizes.avg_size,
        "paper_vertices": spec.paper.vertices,
        "paper_edges": spec.paper.edges,
        "paper_mqc_count": spec.paper.mqc_count,
    }
    if include_quickplus:
        quickplus_candidates, _ = enumerate_candidate_quasi_cliques(
            graph, gamma, theta, algorithm="quickplus")
        row["quickplus_count"] = len(quickplus_candidates)
    return row


def table1_rows(names: Sequence[str] | None = None, include_quickplus: bool = True) -> list[dict]:
    """Compute Table 1 rows for the requested datasets (all analogues by default)."""
    if names is None:
        names = list(REGISTRY)
    return [table1_row(name, include_quickplus=include_quickplus) for name in names]
