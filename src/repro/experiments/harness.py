"""Experiment harness: timed runs, algorithm comparisons and parameter sweeps.

The harness produces plain dictionaries ("rows") so the benchmark targets can
both print paper-style tables and feed pytest-benchmark.  Wall-clock seconds
are machine-dependent; the rows therefore also carry the explored-branch
counts, which are the quantity the paper's analysis actually bounds.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..graph.graph import Graph
from ..obs.trace import NULL_TRACER
from ..pipeline.mqce import build_enumerator
from ..settrie.filter import filter_non_maximal


def run_algorithm(graph: Graph, gamma: float, theta: int, algorithm: str,
                  include_filtering: bool = True, tracer=None, **kwargs) -> dict:
    """Run one MQCE-S1 algorithm (plus optional MQCE-S2 filter) and return a row.

    ``tracer`` attaches a :class:`repro.obs.Tracer`: the run records an
    ``enumerate`` span (with branch-counter deltas) and, when filtering is on,
    a ``filter`` span; their seconds are the row's timing fields.
    """
    obs = tracer if tracer is not None else NULL_TRACER
    enumerator = build_enumerator(graph, gamma, theta, algorithm=algorithm, **kwargs)
    with obs.span("enumerate", stats=lambda: enumerator.statistics,
                  algorithm=algorithm) as enumerate_span:
        candidates = enumerator.enumerate()
        enumerate_span.annotate(candidates=len(candidates))
    enumeration_seconds = enumerate_span.seconds
    filtering_seconds = 0.0
    maximal: list[frozenset] = []
    if include_filtering:
        with obs.span("filter", theta=theta) as filter_span:
            maximal = filter_non_maximal(candidates, theta=theta)
            filter_span.annotate(maximal=len(maximal))
        filtering_seconds = filter_span.seconds
    statistics = enumerator.statistics
    return {
        "algorithm": algorithm,
        "gamma": gamma,
        "theta": theta,
        "vertices": graph.vertex_count,
        "edges": graph.edge_count,
        "candidate_count": len(candidates),
        "maximal_count": len(maximal),
        "enumeration_seconds": enumeration_seconds,
        "filtering_seconds": filtering_seconds,
        "branches_explored": statistics.branches_explored,
        "branches_pruned": (statistics.branches_pruned_by_condition
                            + statistics.branches_pruned_by_type2),
        "subproblems": statistics.subproblems,
        **{f"option_{key}": value for key, value in kwargs.items()},
    }


def compare_algorithms(graph: Graph, gamma: float, theta: int,
                       algorithms: Sequence[str] = ("dcfastqc", "quickplus"),
                       **kwargs) -> list[dict]:
    """Run several algorithms on the same input and return one row per algorithm."""
    return [run_algorithm(graph, gamma, theta, algorithm, **kwargs)
            for algorithm in algorithms]


def sweep_parameter(graph: Graph, parameter: str, values: Iterable,
                    gamma: float, theta: int,
                    algorithms: Sequence[str] = ("dcfastqc", "quickplus"),
                    **kwargs) -> list[dict]:
    """Sweep gamma or theta and compare algorithms at every value (Figures 8 and 9)."""
    if parameter not in ("gamma", "theta"):
        raise ValueError("parameter must be 'gamma' or 'theta'")
    rows = []
    for value in values:
        swept_gamma = value if parameter == "gamma" else gamma
        swept_theta = value if parameter == "theta" else theta
        for algorithm in algorithms:
            row = run_algorithm(graph, swept_gamma, swept_theta, algorithm, **kwargs)
            row["swept_parameter"] = parameter
            row["swept_value"] = value
            rows.append(row)
    return rows


def speedup_over_baseline(rows: list[dict], subject: str = "dcfastqc",
                          baseline: str = "quickplus",
                          key: str = "enumeration_seconds") -> float:
    """Return ``baseline_time / subject_time`` over matched rows (>1 means subject wins)."""
    subject_total = sum(r[key] for r in rows if r["algorithm"] == subject)
    baseline_total = sum(r[key] for r in rows if r["algorithm"] == baseline)
    if subject_total <= 0:
        return float("inf")
    return baseline_total / subject_total


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None,
                 float_format: str = "{:.4g}") -> str:
    """Render rows as a fixed-width text table (the harness's printable output)."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered: list[list[str]] = [[str(column) for column in columns]]
    for row in rows:
        cells = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [max(len(line[i]) for line in rendered) for i in range(len(columns))]
    lines = []
    for line_number, cells in enumerate(rendered):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(cells, widths)))
        if line_number == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)
