"""Single-flight coalescing: one enumeration per identical in-flight query.

A stampede — many clients asking the same cold question at once — is the
classic cache failure mode: every request misses (the first has not finished,
so nothing is cached yet) and the server runs N identical enumerations.  The
:class:`SingleFlight` table keys in-flight queries on
``(graph name, content fingerprint, resolved QuerySpec)``; the first arrival
becomes the **leader** and actually enumerates, every later identical arrival
becomes a **waiter** on the same :class:`Flight` and receives the leader's
batches — one enumeration total, all clients served the complete,
byte-identical result frames.

Delivery mechanics (all on the server's event loop, so bookkeeping needs no
locks):

* the leader's executor thread publishes each batch via
  :meth:`Flight.publish` (scheduled onto the loop), which appends it to the
  flight history and puts it into every subscriber's **bounded**
  ``asyncio.Queue`` — the slowest consumer in a flight therefore
  backpressures the producing enumeration instead of buffering unboundedly;
* a subscriber that joins mid-flight first replays the history snapshot taken
  atomically at :meth:`Flight.subscribe` time, then drains its queue — no
  batch is missed or duplicated;
* a subscriber that disconnects calls :meth:`Flight.leave`, which drains its
  queue (unblocking a publisher waiting on it); when the *last* subscriber
  leaves an unfinished flight, the attached
  :class:`~repro.engine.stream.ResultStream` is cancelled (thread-safely) so
  abandoned work stops burning CPU.
"""

from __future__ import annotations

import asyncio

from ..obs.metrics import REGISTRY

_FLIGHTS = REGISTRY.counter(
    "repro_serve_flights_total",
    "Single-flight enumerations started by the serve layer, by outcome")
_COALESCED = REGISTRY.counter(
    "repro_serve_coalesced_waiters_total",
    "Query requests coalesced onto an already-in-flight identical query")

#: A queue item is ("batch", payload) or ("end",); subscribers read the
#: flight's summary/error attributes after seeing "end".
_END = ("end",)


class Flight:
    """One in-flight enumeration and its subscribers."""

    def __init__(self, key: tuple, queue_size: int = 8) -> None:
        self.key = key
        self.queue_size = queue_size
        self.history: list[list] = []      # batches already published
        self.subscribers: list[asyncio.Queue] = []
        self.done = False
        self.summary: dict | None = None
        self.error: dict | None = None
        self.outcome = "ok"
        self.stream = None                 # the leader's ResultStream, if any
        self.task: asyncio.Task | None = None
        self.joined = 0
        # Stream identity for resume: two flights may only honor each
        # other's ``resume_from`` offsets when they share a token, i.e. when
        # both replay the same deterministic batch sequence.  The leader sets
        # it once the stream's provenance (cache replay vs live enumeration)
        # is known and then fires ``token_ready``; error paths fire it via
        # :meth:`finish` so subscribers never wait forever.
        self.stream_token: str | None = None
        self.token_ready = asyncio.Event()

    # -- subscriber side (event loop) ----------------------------------
    def subscribe(self) -> tuple[list[list], asyncio.Queue | None]:
        """Join the flight: (history snapshot, live queue or None if done).

        The snapshot and the registration happen in one event-loop step, so
        together they deliver exactly the full batch sequence.
        """
        self.joined += 1
        if self.done:
            return list(self.history), None
        queue: asyncio.Queue = asyncio.Queue(self.queue_size)
        self.subscribers.append(queue)
        return list(self.history), queue

    def leave(self, queue: asyncio.Queue | None) -> None:
        """Detach one subscriber (idempotent), draining its queue.

        Draining unblocks a publisher currently awaiting this queue's
        capacity; abandoning the last subscriber cancels the enumeration.
        """
        if queue is None:
            return
        try:
            self.subscribers.remove(queue)
        except ValueError:
            return
        while not queue.empty():
            queue.get_nowait()
        if not self.subscribers and not self.done and self.stream is not None:
            self.stream.cancel()

    @property
    def abandoned(self) -> bool:
        """True when every subscriber has left an unfinished flight."""
        return not self.subscribers and not self.done and self.joined > 0

    # -- leader side (scheduled onto the event loop) -------------------
    async def publish(self, batch: list) -> None:
        """Record one batch and fan it out to every live subscriber."""
        self.history.append(batch)
        for queue in list(self.subscribers):
            if queue in self.subscribers:   # may leave() while we await
                await queue.put(("batch", batch))

    async def finish(self, summary: dict | None = None,
                     error: dict | None = None, outcome: str = "ok") -> None:
        """Mark the flight complete and wake every subscriber."""
        self.done = True
        self.token_ready.set()
        self.summary = summary
        self.error = error
        self.outcome = outcome if error is None or outcome != "ok" else "error"
        _FLIGHTS.inc(outcome=self.outcome)
        for queue in list(self.subscribers):
            if queue in self.subscribers:
                await queue.put(_END)


class SingleFlight:
    """The in-flight query table: one :class:`Flight` per live key."""

    def __init__(self, queue_size: int = 8) -> None:
        self.queue_size = queue_size
        self._flights: dict[tuple, Flight] = {}

    def get_or_create(self, key: tuple) -> tuple[Flight, bool]:
        """Return (flight, created): join the live flight or lead a new one."""
        flight = self._flights.get(key)
        if flight is not None and not flight.done:
            _COALESCED.inc()
            return flight, False
        flight = Flight(key, queue_size=self.queue_size)
        self._flights[key] = flight
        return flight, True

    def discard(self, flight: Flight) -> None:
        """Drop a finished flight from the table (if still registered)."""
        if self._flights.get(flight.key) is flight:
            del self._flights[flight.key]

    def __len__(self) -> int:
        return len(self._flights)


__all__ = ["Flight", "SingleFlight"]
