"""A blocking client for the ``repro serve`` wire protocol.

:class:`ServeClient` is deliberately synchronous — plain sockets, no asyncio —
so tests, benchmarks and the ``repro client`` CLI can drive the server from
ordinary threads.  One client holds one connection and may issue any number
of sequential requests over it; error frames come back as the matching typed
:class:`repro.errors.ReproError` subclass (see
:func:`repro.serve.protocol.exception_from_payload`), so
``except ServiceOverloadedError`` works across the wire.

>>> with ServeClient(port=service.port) as client:
...     cliques, done = client.query({"gamma": 0.9, "theta": 3})
...     client.mutate([("add_edge", "a", "b")])
...     cliques2, _ = client.query({"gamma": 0.9, "theta": 3})
"""

from __future__ import annotations

import socket
from collections.abc import Iterable, Iterator, Mapping

from ..api.spec import QuerySpec
from ..errors import ReproError
from .protocol import (decode_frame, encode_frame, exception_from_payload,
                       wire_to_clique)


class ServeClient:
    """One blocking protocol connection to a :class:`ReproService`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float | None = 60.0) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _send(self, request: dict) -> None:
        self._sock.sendall(encode_frame(request))

    def _recv(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ReproError("server closed the connection mid-request")
        return decode_frame(line)

    def _recv_terminal(self) -> dict:
        frame = self._recv()
        if frame.get("type") == "error":
            raise exception_from_payload(frame)
        return frame

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_stream(self, spec: QuerySpec | Mapping, *,
                     graph: str | None = None,
                     batch: int | None = None) -> Iterator[dict]:
        """Run one query, yielding every frame (``batch`` then ``done``).

        Raises the reconstructed typed exception on an ``error`` frame.  The
        generator must be consumed fully (or the connection abandoned) before
        the next request on this client.
        """
        if isinstance(spec, QuerySpec):
            spec = spec.to_dict()
        request: dict = {"op": "query", "spec": dict(spec)}
        if graph is not None:
            request["graph"] = graph
        if batch is not None:
            request["batch"] = batch
        self._send(request)
        while True:
            frame = self._recv()
            kind = frame.get("type")
            if kind == "error":
                raise exception_from_payload(frame)
            yield frame
            if kind != "batch":
                return

    def query(self, spec: QuerySpec | Mapping, *, graph: str | None = None,
              batch: int | None = None) -> tuple[list[frozenset], dict]:
        """Run one query to completion: ``(cliques, done_frame)``."""
        cliques: list[frozenset] = []
        done: dict = {}
        for frame in self.query_stream(spec, graph=graph, batch=batch):
            if frame["type"] == "batch":
                cliques.extend(wire_to_clique(entry)
                               for entry in frame["cliques"])
            else:
                done = frame
        return cliques, done

    # ------------------------------------------------------------------
    # Mutations and control
    # ------------------------------------------------------------------
    def mutate(self, updates: Iterable | None = None, *,
               script: str | None = None, graph: str | None = None) -> dict:
        """Apply a mutation batch; returns the server's ``report`` frame."""
        request: dict = {"op": "mutate"}
        if updates is not None:
            request["updates"] = [list(entry) for entry in updates]
        if script is not None:
            request["script"] = script
        if graph is not None:
            request["graph"] = graph
        self._send(request)
        return self._recv_terminal()

    def graphs(self) -> dict:
        self._send({"op": "graphs"})
        return self._recv_terminal()["graphs"]

    def stats(self) -> dict:
        self._send({"op": "stats"})
        return self._recv_terminal()

    def ping(self) -> bool:
        self._send({"op": "ping"})
        return self._recv_terminal().get("type") == "pong"

    def flush(self, graph: str | None = None) -> int:
        """Drop the server's cached results; returns entries flushed."""
        request: dict = {"op": "flush"}
        if graph is not None:
            request["graph"] = graph
        self._send(request)
        return int(self._recv_terminal().get("entries", 0))

    def shutdown(self) -> None:
        """Ask the server to stop (needs ``allow_shutdown=True`` server-side)."""
        self._send({"op": "shutdown"})
        self._recv_terminal()


def fetch_http(path: str, host: str = "127.0.0.1", port: int = 0, *,
               timeout: float | None = 10.0) -> tuple[int, str]:
    """One plain ``GET`` against the server's HTTP shim: ``(status, body)``.

    Used by tests, the benchmark and the CI smoke job to scrape
    ``/metrics`` without an HTTP client dependency.
    """
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n"
                     .encode("latin-1"))
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    response = b"".join(chunks).decode("utf-8", errors="replace")
    head, _, body = response.partition("\r\n\r\n")
    try:
        status = int(head.split()[1])
    except (IndexError, ValueError):
        raise ReproError(f"malformed HTTP response: {head[:120]!r}")
    return status, body


__all__ = ["ServeClient", "fetch_http"]
