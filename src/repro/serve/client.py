"""A blocking client for the ``repro serve`` wire protocol.

:class:`ServeClient` is deliberately synchronous — plain sockets, no asyncio —
so tests, benchmarks and the ``repro client`` CLI can drive the server from
ordinary threads.  One client holds one connection and may issue any number
of sequential requests over it; error frames come back as the matching typed
:class:`repro.errors.ReproError` subclass (see
:func:`repro.serve.protocol.exception_from_payload`), so
``except ServiceOverloadedError`` works across the wire.

Fault tolerance (see :mod:`repro.resilience`):

* a transport failure (reset, EOF, truncated frame) **closes the dead socket
  immediately** and surfaces as the typed
  :class:`~repro.errors.ConnectionLostError`; the client transparently
  redials on the next request instead of hammering a dead file object;
* :meth:`query` accepts a :class:`~repro.resilience.retry.RetryPolicy` and
  retries transient failures with capped decorrelated-jitter backoff,
  **resuming** an interrupted stream from the last fully-received batch via
  the protocol's ``resume_from`` field — already-delivered batches are never
  re-transferred and the reassembled stream is byte-identical to an
  uninterrupted run;
* a ``deadline`` (seconds) bounds the whole retry loop client-side *and*
  rides the wire, where the server clamps the enumeration budget to the
  remaining time — a query never runs server-side longer than the client
  will wait.

>>> with ServeClient(port=service.port) as client:
...     cliques, done = client.query({"gamma": 0.9, "theta": 3},
...                                  retry=RetryPolicy(max_attempts=4),
...                                  deadline=30.0)
"""

from __future__ import annotations

import socket
import time
from collections.abc import Iterable, Iterator, Mapping

from ..api.spec import QuerySpec
from ..errors import (CircuitOpenError, ConnectionLostError,
                      FaultInjectedError, ReproError, ServiceOverloadedError)
from ..resilience.faults import fault_point
from ..resilience.retry import Deadline, RetryPolicy
from .protocol import (decode_frame, encode_frame, exception_from_payload,
                       wire_to_clique)

#: Failures worth a redial: the transport died under us.
TRANSPORT_ERRORS = (ConnectionLostError, ConnectionError, TimeoutError, OSError)

#: Server-signalled conditions a backoff retry can outwait.
BACKOFF_ERRORS = (ServiceOverloadedError, CircuitOpenError, FaultInjectedError)


class ServeClient:
    """One blocking protocol connection to a :class:`ReproService`."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float | None = 60.0,
                 retry: RetryPolicy | None = None) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry
        self._sock: socket.socket | None = None
        self._file = None
        self._connect()

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self._sock is not None

    def _connect(self) -> None:
        fault_point("client.connect")
        self._sock = socket.create_connection((self.host, self.port),
                                              timeout=self.timeout)
        self._file = self._sock.makefile("rb")

    def _teardown(self) -> None:
        """Drop a dead connection *now* so nothing reuses the stale socket."""
        sock, file = self._sock, self._file
        self._sock = self._file = None
        try:
            if file is not None:
                file.close()
        except OSError:
            pass
        try:
            if sock is not None:
                sock.close()
        except OSError:
            pass

    def _ensure_connected(self) -> None:
        if self._sock is None:
            self._connect()

    def _send(self, request: dict) -> None:
        self._ensure_connected()
        try:
            self._sock.sendall(encode_frame(request))
        except OSError:
            self._teardown()
            raise

    def _recv(self) -> dict:
        try:
            line = self._file.readline()
        except OSError as exc:
            self._teardown()
            raise ConnectionLostError(
                f"connection lost mid-request: {exc}") from exc
        if not line:
            self._teardown()
            raise ConnectionLostError("server closed the connection mid-request")
        if not line.endswith(b"\n"):
            # EOF mid-frame: a truncated write on the server side.  Never
            # hand the torn JSON to the caller — this is a transport loss.
            self._teardown()
            raise ConnectionLostError("connection lost mid-frame "
                                      f"({len(line)} trailing bytes)")
        return decode_frame(line)

    def _recv_terminal(self) -> dict:
        frame = self._recv()
        if frame.get("type") == "error":
            raise exception_from_payload(frame)
        return frame

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query_stream(self, spec: QuerySpec | Mapping, *,
                     graph: str | None = None, batch: int | None = None,
                     resume_from: int = 0, resume_stream: str | None = None,
                     deadline: float | None = None,
                     attempt: int = 0) -> Iterator[dict]:
        """Run one query, yielding every frame (``batch`` then ``done``).

        ``resume_from`` asks the server to skip the first N batches of the
        (deterministic) stream — the resume half of a reconnect;
        ``resume_stream`` is the stream token those N acked batches carried,
        which the server requires before skipping anything (a retry that
        lands on a differently-ordered stream restarts from batch 0);
        ``deadline`` is the seconds budget the server may spend; ``attempt``
        marks a retried request for the server's
        ``repro_serve_retries_total`` counter.  Raises the reconstructed
        typed exception on an ``error`` frame.  The generator must be
        consumed fully (or the connection abandoned) before the next request
        on this client.
        """
        if isinstance(spec, QuerySpec):
            spec = spec.to_dict()
        request: dict = {"op": "query", "spec": dict(spec)}
        if graph is not None:
            request["graph"] = graph
        if batch is not None:
            request["batch"] = batch
        if resume_from:
            request["resume_from"] = int(resume_from)
            if resume_stream is not None:
                request["resume_stream"] = resume_stream
        if deadline is not None:
            request["deadline"] = float(deadline)
        if attempt:
            request["attempt"] = int(attempt)
        self._send(request)
        while True:
            frame = self._recv()
            kind = frame.get("type")
            if kind == "error":
                raise exception_from_payload(frame)
            yield frame
            if kind != "batch":
                return

    def query(self, spec: QuerySpec | Mapping, *, graph: str | None = None,
              batch: int | None = None, retry: RetryPolicy | None = None,
              deadline: float | Deadline | None = None
              ) -> tuple[list[frozenset], dict]:
        """Run one query to completion: ``(cliques, done_frame)``.

        With a ``retry`` policy (or one set on the client), transient
        failures — transport loss, overload shedding, an open circuit, an
        injected fault — are retried with decorrelated-jitter backoff, and a
        stream interrupted after N batches resumes at batch N instead of
        restarting — provided the retry lands on the same deterministic
        batch sequence (stream tokens match); otherwise the server restarts
        from batch 0 and the superseded partial result is discarded, so the
        final clique list is always exactly one complete stream.  A
        ``deadline`` (seconds or :class:`~repro.resilience.retry.Deadline`)
        bounds the whole loop and propagates to the server.
        """
        policy = retry if retry is not None else self.retry
        if isinstance(deadline, (int, float)):
            deadline = Deadline.after(float(deadline))
        delays = policy.delays() if policy is not None else iter(())
        cliques: list[frozenset] = []
        acked = 0  # batch frames fully received and appended
        token: str | None = None  # stream identity of the acked batches
        attempt = 0
        while True:
            try:
                done: dict = {}
                requested = acked
                restarted = False
                remaining = deadline.remaining() if deadline is not None else None
                for frame in self.query_stream(spec, graph=graph, batch=batch,
                                               resume_from=acked,
                                               resume_stream=token,
                                               deadline=remaining,
                                               attempt=attempt):
                    if frame["type"] == "batch":
                        # A seq below our ack count means the server could
                        # not resume (the retry landed on a differently-
                        # ordered stream) and restarted from batch 0:
                        # everything previously held belongs to the old
                        # sequence and is superseded.
                        if frame.get("seq", acked) < acked:
                            cliques.clear()
                            acked = 0
                            restarted = True
                        cliques.extend(wire_to_clique(entry)
                                       for entry in frame["cliques"])
                        acked += 1
                        token = frame.get("stream", token)
                    else:
                        done = frame
                if (requested and not restarted
                        and not int(done.get("resumed_from", requested))):
                    # The server restarted with an *empty* stream — no batch
                    # frame carried the restart signal, but the held batches
                    # belong to the superseded sequence all the same.
                    cliques.clear()
                    acked = 0
                return cliques, done
            except TRANSPORT_ERRORS + BACKOFF_ERRORS as exc:
                if isinstance(exc, TRANSPORT_ERRORS):
                    self._teardown()
                delay = next(delays, None)
                if delay is None:
                    raise
                if deadline is not None:
                    left = deadline.remaining()
                    if left <= 0:
                        raise
                    delay = min(delay, left)
                time.sleep(delay)
                attempt += 1

    # ------------------------------------------------------------------
    # Mutations and control
    # ------------------------------------------------------------------
    def mutate(self, updates: Iterable | None = None, *,
               script: str | None = None, graph: str | None = None) -> dict:
        """Apply a mutation batch; returns the server's ``report`` frame."""
        request: dict = {"op": "mutate"}
        if updates is not None:
            request["updates"] = [list(entry) for entry in updates]
        if script is not None:
            request["script"] = script
        if graph is not None:
            request["graph"] = graph
        self._send(request)
        return self._recv_terminal()

    def graphs(self) -> dict:
        self._send({"op": "graphs"})
        return self._recv_terminal()["graphs"]

    def stats(self) -> dict:
        self._send({"op": "stats"})
        return self._recv_terminal()

    def ping(self) -> bool:
        self._send({"op": "ping"})
        return self._recv_terminal().get("type") == "pong"

    def flush(self, graph: str | None = None) -> int:
        """Drop the server's cached results; returns entries flushed."""
        request: dict = {"op": "flush"}
        if graph is not None:
            request["graph"] = graph
        self._send(request)
        return int(self._recv_terminal().get("entries", 0))

    def shutdown(self) -> None:
        """Ask the server to stop (needs ``allow_shutdown=True`` server-side)."""
        self._send({"op": "shutdown"})
        self._recv_terminal()


def fetch_http(path: str, host: str = "127.0.0.1", port: int = 0, *,
               timeout: float | None = 10.0) -> tuple[int, str]:
    """One plain ``GET`` against the server's HTTP shim: ``(status, body)``.

    Used by tests, the benchmark and the CI smoke job to scrape
    ``/metrics`` without an HTTP client dependency.
    """
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(f"GET {path} HTTP/1.1\r\nHost: {host}\r\n\r\n"
                     .encode("latin-1"))
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    response = b"".join(chunks).decode("utf-8", errors="replace")
    head, _, body = response.partition("\r\n\r\n")
    try:
        status = int(head.split()[1])
    except (IndexError, ValueError):
        raise ReproError(f"malformed HTTP response: {head[:120]!r}")
    return status, body


__all__ = ["BACKOFF_ERRORS", "ServeClient", "TRANSPORT_ERRORS", "fetch_http"]
