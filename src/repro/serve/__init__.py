"""repro.serve — the long-lived query service.

This package turns the engine stack into a server process:

* :mod:`repro.serve.protocol` — the line-delimited JSON wire format;
* :mod:`repro.serve.service` — the asyncio server (:class:`ReproService`):
  one :class:`~repro.dynamic.DynamicEngine` per named graph, streaming
  queries, mutations under a writer-priority gate, and a single-port HTTP
  shim for ``GET /metrics`` scrapes;
* :mod:`repro.serve.coalesce` — single-flight coalescing (a stampede of
  identical cold queries runs exactly one enumeration);
* :mod:`repro.serve.admission` — bounded concurrency with typed load
  shedding (:class:`~repro.errors.ServiceOverloadedError`);
* :mod:`repro.serve.client` — the blocking :class:`ServeClient`, with
  retry/backoff and mid-stream resume (see :mod:`repro.resilience`);
* :mod:`repro.serve.worker` — pull-based worker fan-out over a file-backed
  spool of :class:`~repro.core.dcfastqc.CompactSubproblem` payloads, with
  lease-based crash recovery, checksummed payloads and a dead-letter
  quarantine.

The whole stack is threaded through :mod:`repro.resilience`: deterministic
fault injection at named sites, per-``(graph, spec)`` circuit breaking, and
per-request deadlines that clamp server-side enumeration budgets.

Quick start (in-process, for tests and notebooks)::

    from repro.serve import ReproService, ServeClient, start_in_thread

    service = ReproService(max_concurrent=2)
    service.add_graph("demo", graph)
    with start_in_thread(service) as handle:
        with ServeClient(port=handle.port) as client:
            cliques, done = client.query({"gamma": 0.9, "theta": 3})

From the command line: ``repro serve --dataset enron``, then
``repro client --query '{"gamma": 0.9, "theta": 5}'``.
"""

from .admission import AdmissionController
from .client import ServeClient, fetch_http
from .coalesce import Flight, SingleFlight
from .protocol import (DEFAULT_BATCH_SIZE, OPERATIONS, ProtocolError,
                       clique_to_wire, decode_frame, encode_frame,
                       error_payload, exception_from_payload,
                       validate_request, wire_to_clique)
from .service import GraphHost, ReproService, ServiceHandle, start_in_thread
from .worker import (SpoolQueue, SpoolWorker, TaskResult, WorkTask,
                     spool_enumerate)

__all__ = [
    "AdmissionController",
    "DEFAULT_BATCH_SIZE",
    "Flight",
    "GraphHost",
    "OPERATIONS",
    "ProtocolError",
    "ReproService",
    "ServeClient",
    "ServiceHandle",
    "SingleFlight",
    "SpoolQueue",
    "SpoolWorker",
    "TaskResult",
    "WorkTask",
    "clique_to_wire",
    "spool_enumerate",
    "decode_frame",
    "encode_frame",
    "error_payload",
    "exception_from_payload",
    "fetch_http",
    "start_in_thread",
    "validate_request",
    "wire_to_clique",
]
