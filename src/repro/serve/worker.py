"""Pull-based worker fan-out over a file-backed spool queue.

:class:`~repro.extensions.parallel.ParallelDCFastQC` fans DC subproblems out
to a *process pool* it owns.  This module decouples the two sides so workers
can live anywhere that sees a shared directory (other processes, other
containers on one host, an NFS mount): a **coordinator** spools each
:class:`~repro.core.dcfastqc.CompactSubproblem` as a pickled task file, any
number of ``repro worker`` processes **pull** tasks by atomically claiming
them, run :func:`~repro.extensions.parallel.run_compact_subproblem` — the
exact worker-side unit the process pool uses, one-hop maximality halo
included, so candidate batches are identical to the sequential driver's —
and drop pickled results back into the spool for the coordinator to
aggregate.

Spool layout (all under one root directory)::

    spool/
      tasks/     task-<id>.pkl        # submitted, unclaimed
      claimed/   task-<id>.pkl        # atomically renamed here by one worker
      results/   task-<id>.pkl        # candidate batch + metrics snapshot

The claim is a bare ``os.replace`` — whichever worker renames first wins,
the loser's ``FileNotFoundError`` just means "try the next task".  No locks,
no daemons, crash-tolerant: a task stuck in ``claimed/`` (dead worker) can be
requeued with :meth:`SpoolQueue.requeue_stale`.

Workers return per-task :class:`~repro.obs.metrics.MetricsRegistry` snapshots
(they cannot inc the coordinator's registry across processes); the
coordinator merges them on collect, so ``repro_parallel_*`` counters add up
exactly as if the work had run in-process.
"""

from __future__ import annotations

import os
import pickle
import socket
import time
import uuid
from dataclasses import dataclass, field

from ..core.dcfastqc import CompactSubproblem, DCFastQC
from ..errors import ReproError
from ..extensions.parallel import run_compact_subproblem
from ..graph.graph import Graph
from ..obs.metrics import REGISTRY
from ..quasiclique.definitions import validate_parameters
from ..settrie.filter import filter_non_maximal

_TASKS = REGISTRY.counter(
    "repro_worker_tasks_total",
    "Spool tasks processed, by outcome (labelled at the worker)")
_SPOOLED = REGISTRY.counter(
    "repro_worker_spooled_total",
    "Subproblem tasks submitted to a spool queue by a coordinator")


@dataclass(frozen=True)
class WorkTask:
    """One spooled unit of work: a compact subproblem plus its parameters."""

    task_id: str
    subproblem: CompactSubproblem
    gamma: float
    theta: int
    branching: str = "hybrid"
    kernel: str = "ledger"


@dataclass(frozen=True)
class TaskResult:
    """One worker's answer: the candidate batch and its metrics snapshot."""

    task_id: str
    cliques: tuple = ()
    metrics: dict = field(default_factory=dict)
    seconds: float = 0.0
    worker: str = ""
    error: str | None = None


class SpoolQueue:
    """The shared-directory task queue (both sides use this class)."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.tasks_dir = os.path.join(root, "tasks")
        self.claimed_dir = os.path.join(root, "claimed")
        self.results_dir = os.path.join(root, "results")
        for path in (self.tasks_dir, self.claimed_dir, self.results_dir):
            os.makedirs(path, exist_ok=True)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _filename(task_id: str) -> str:
        return f"task-{task_id}.pkl"

    def _write_atomic(self, directory: str, task_id: str, payload) -> None:
        final = os.path.join(directory, self._filename(task_id))
        tmp = final + f".tmp-{os.getpid()}"
        with open(tmp, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, final)

    # ------------------------------------------------------------------
    # Coordinator side
    # ------------------------------------------------------------------
    def submit(self, task: WorkTask) -> str:
        """Spool one task (atomic: workers never see partial files)."""
        self._write_atomic(self.tasks_dir, task.task_id, task)
        _SPOOLED.inc()
        return task.task_id

    def submit_subproblems(self, subproblems, gamma: float, theta: int, *,
                           branching: str = "hybrid",
                           kernel: str = "ledger") -> list[str]:
        """Spool one task per compact subproblem; returns the task ids."""
        ids = []
        for index, subproblem in enumerate(subproblems):
            task = WorkTask(task_id=f"{uuid.uuid4().hex[:12]}-{index:05d}",
                            subproblem=subproblem, gamma=gamma, theta=theta,
                            branching=branching, kernel=kernel)
            ids.append(self.submit(task))
        return ids

    def collect(self, task_ids, *, timeout: float | None = None,
                poll: float = 0.05, merge_metrics: bool = True
                ) -> list[TaskResult]:
        """Block until every task id has a result (or ``timeout`` elapses).

        Merges each result's metrics snapshot into the process
        :data:`~repro.obs.metrics.REGISTRY` unless ``merge_metrics=False``.
        Raises :class:`ReproError` on timeout or on a task that failed
        worker-side (its ``error`` string is included).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        outstanding = list(task_ids)
        results: dict[str, TaskResult] = {}
        while outstanding:
            still_waiting = []
            for task_id in outstanding:
                path = os.path.join(self.results_dir, self._filename(task_id))
                try:
                    with open(path, "rb") as handle:
                        result: TaskResult = pickle.load(handle)
                except FileNotFoundError:
                    still_waiting.append(task_id)
                    continue
                results[task_id] = result
            outstanding = still_waiting
            if not outstanding:
                break
            if deadline is not None and time.monotonic() > deadline:
                raise ReproError(
                    f"spool collect timed out with {len(outstanding)} of "
                    f"{len(results) + len(outstanding)} tasks outstanding")
            time.sleep(poll)
        failed = [r for r in results.values() if r.error is not None]
        if failed:
            worst = failed[0]
            raise ReproError(f"spool task {worst.task_id} failed on worker "
                             f"{worst.worker or '?'}: {worst.error}")
        if merge_metrics:
            for result in results.values():
                if result.metrics:
                    REGISTRY.merge(result.metrics)
        return [results[task_id] for task_id in task_ids]

    def requeue_stale(self, older_than: float = 300.0) -> int:
        """Move long-claimed tasks (dead workers) back into ``tasks/``."""
        moved = 0
        now = time.time()
        for name in os.listdir(self.claimed_dir):
            path = os.path.join(self.claimed_dir, name)
            try:
                if now - os.path.getmtime(path) < older_than:
                    continue
                os.replace(path, os.path.join(self.tasks_dir, name))
                moved += 1
            except FileNotFoundError:  # another coordinator raced us
                continue
        return moved

    def stats(self) -> dict:
        """Point-in-time queue depths."""
        return {directory: len([name for name in os.listdir(path)
                                if name.endswith(".pkl")])
                for directory, path in (("tasks", self.tasks_dir),
                                        ("claimed", self.claimed_dir),
                                        ("results", self.results_dir))}

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def claim(self, worker_id: str) -> WorkTask | None:
        """Atomically claim one pending task (None when the spool is idle)."""
        for name in sorted(os.listdir(self.tasks_dir)):
            if not name.endswith(".pkl"):
                continue
            source = os.path.join(self.tasks_dir, name)
            target = os.path.join(self.claimed_dir, name)
            try:
                os.replace(source, target)
            except FileNotFoundError:
                continue  # another worker won this one
            with open(target, "rb") as handle:
                return pickle.load(handle)
        return None

    def complete(self, task: WorkTask, result: TaskResult) -> None:
        """Publish one result and retire the claimed task file."""
        self._write_atomic(self.results_dir, task.task_id, result)
        try:
            os.remove(os.path.join(self.claimed_dir, self._filename(task.task_id)))
        except FileNotFoundError:
            pass


class SpoolWorker:
    """The ``repro worker`` loop: claim, enumerate, publish, repeat."""

    def __init__(self, spool: SpoolQueue | str,
                 worker_id: str | None = None) -> None:
        self.spool = spool if isinstance(spool, SpoolQueue) else SpoolQueue(spool)
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.processed = 0

    def run_once(self) -> bool:
        """Process at most one task; returns False when the spool was idle."""
        task = self.spool.claim(self.worker_id)
        if task is None:
            return False
        start = time.perf_counter()
        try:
            cliques, metrics = run_compact_subproblem(
                task.subproblem, task.gamma, task.theta,
                branching=task.branching, kernel=task.kernel)
            result = TaskResult(task_id=task.task_id, cliques=tuple(cliques),
                                metrics=metrics,
                                seconds=time.perf_counter() - start,
                                worker=self.worker_id)
            _TASKS.inc(outcome="ok")
        except Exception as exc:  # noqa: BLE001 - shipped to the coordinator
            result = TaskResult(task_id=task.task_id,
                                seconds=time.perf_counter() - start,
                                worker=self.worker_id,
                                error=f"{type(exc).__name__}: {exc}")
            _TASKS.inc(outcome="error")
        self.spool.complete(task, result)
        self.processed += 1
        return True

    def run(self, *, max_tasks: int | None = None,
            idle_timeout: float | None = None, poll: float = 0.1,
            progress=None) -> int:
        """Drain the spool; returns the number of tasks processed.

        Exits after ``max_tasks`` tasks, or after ``idle_timeout`` seconds
        with nothing to claim (``None``: keep polling forever — the service
        deployment mode).  ``progress`` is an optional per-task callback
        receiving this worker.
        """
        done = 0
        idle_since = time.monotonic()
        while max_tasks is None or done < max_tasks:
            if self.run_once():
                done += 1
                idle_since = time.monotonic()
                if progress is not None:
                    progress(self)
                continue
            if (idle_timeout is not None
                    and time.monotonic() - idle_since >= idle_timeout):
                break
            time.sleep(poll)
        return done


def spool_enumerate(graph: Graph, gamma: float, theta: int, spool: SpoolQueue | str,
                    *, branching: str = "hybrid", kernel: str = "ledger",
                    inline_workers: int = 0, timeout: float | None = None
                    ) -> list[frozenset]:
    """Full MQCE through a spool queue: submit, (optionally) work, collect.

    The coordinator runs DCFastQC's global preprocessing locally, spools every
    compact subproblem, and aggregates the candidate batches through the
    MQCE-S2 maximality filter — the distributed analogue of
    :meth:`repro.extensions.parallel.ParallelDCFastQC.find_maximal`.  With
    ``inline_workers > 0`` that many :class:`SpoolWorker` loops run in local
    threads (tests, single-host convenience); with ``inline_workers=0`` the
    call blocks until external ``repro worker`` processes drain the spool.
    """
    import threading

    validate_parameters(gamma, theta)
    spool = spool if isinstance(spool, SpoolQueue) else SpoolQueue(spool)
    driver = DCFastQC(graph, gamma, theta, branching=branching, kernel=kernel)
    subproblems = tuple(driver.iter_compact_subproblems())
    if not subproblems:
        return []
    ids = spool.submit_subproblems(subproblems, gamma, theta,
                                   branching=branching, kernel=kernel)
    threads = []
    for _ in range(max(0, inline_workers)):
        worker = SpoolWorker(spool)
        thread = threading.Thread(
            target=worker.run, kwargs={"max_tasks": None, "idle_timeout": 0.5},
            daemon=True)
        thread.start()
        threads.append(thread)
    try:
        results = spool.collect(ids, timeout=timeout)
    finally:
        for thread in threads:
            thread.join(timeout=5.0)
    candidates: set[frozenset] = set()
    for result in results:
        candidates.update(result.cliques)
    return filter_non_maximal(
        sorted(candidates, key=lambda h: (-len(h), sorted(map(str, h)))),
        theta=theta)


__all__ = ["SpoolQueue", "SpoolWorker", "TaskResult", "WorkTask",
           "spool_enumerate"]
