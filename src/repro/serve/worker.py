"""Pull-based worker fan-out over a file-backed spool queue.

:class:`~repro.extensions.parallel.ParallelDCFastQC` fans DC subproblems out
to a *process pool* it owns.  This module decouples the two sides so workers
can live anywhere that sees a shared directory (other processes, other
containers on one host, an NFS mount): a **coordinator** spools each
:class:`~repro.core.dcfastqc.CompactSubproblem` as a pickled task file, any
number of ``repro worker`` processes **pull** tasks by atomically claiming
them, run :func:`~repro.extensions.parallel.run_compact_subproblem` — the
exact worker-side unit the process pool uses, one-hop maximality halo
included, so candidate batches are identical to the sequential driver's —
and drop pickled results back into the spool for the coordinator to
aggregate.

Spool layout (all under one root directory)::

    spool/
      tasks/     task-<id>.pkl        # submitted, unclaimed
      claimed/   task-<id>.pkl        # atomically renamed here by one worker
      results/   task-<id>.pkl        # candidate batch + metrics snapshot
      dead/      task-<id>.pkl + .json  # quarantined payloads + reports

The claim is a bare ``os.replace`` — whichever worker renames first wins,
the loser's ``FileNotFoundError`` just means "try the next task".  No locks,
no daemons.

Fault tolerance (see :mod:`repro.resilience`):

* **Leases, not timers.**  A claimed task's file mtime is its lease
  heartbeat: the owning :class:`SpoolWorker` renews it every few seconds
  while enumerating.  A worker that dies (SIGKILL, OOM, power) stops
  renewing; once ``lease_seconds`` elapse, *any* process — another worker's
  idle loop or the coordinator's :meth:`SpoolQueue.collect` wait loop —
  atomically reclaims the task back into ``tasks/`` via
  :meth:`SpoolQueue.reclaim_expired`.
* **Attempt counts and quarantine.**  Every reclaim or retry bumps the
  task's ``attempts``; at ``max_attempts`` the task is moved to ``dead/``
  with a JSON report and surfaces in ``collect`` as the typed
  :class:`~repro.errors.TaskPoisonedError` — a poison task cannot wedge the
  spool forever.
* **Checksummed payloads.**  Every spool file carries a CRC32-checked
  header; a truncated or corrupt pickle is quarantined with a report
  instead of crashing the consumer (:class:`~repro.errors.SpoolCorruptionError`
  internally).
* **Partial progress on timeout.**  ``collect(timeout=...)`` raises
  :class:`~repro.errors.SpoolTimeoutError` carrying every result already
  collected plus the outstanding ids — nothing already computed is thrown
  away.

Because reclaimed tasks re-run the identical
:func:`~repro.extensions.parallel.run_compact_subproblem` unit (maximality
halo included), :func:`spool_enumerate` output is parity-identical to
sequential DCFastQC under any interleaving of worker kills.

Workers return per-task :class:`~repro.obs.metrics.MetricsRegistry` snapshots
(they cannot inc the coordinator's registry across processes); the
coordinator merges them on collect, so ``repro_parallel_*`` counters add up
exactly as if the work had run in-process.
"""

from __future__ import annotations

import json
import os
import pickle
import socket
import struct
import threading
import time
import uuid
import zlib
from dataclasses import dataclass, field, replace

from ..core.dcfastqc import CompactSubproblem, DCFastQC
from ..errors import (ReproError, SpoolCorruptionError, SpoolTimeoutError,
                      TaskPoisonedError)
from ..extensions.parallel import run_compact_subproblem
from ..graph.graph import Graph
from ..obs.metrics import REGISTRY
from ..quasiclique.definitions import validate_parameters
from ..resilience.faults import fault_point
from ..settrie.filter import filter_non_maximal

_TASKS = REGISTRY.counter(
    "repro_worker_tasks_total",
    "Spool tasks processed, by outcome (labelled at the worker)")
_SPOOLED = REGISTRY.counter(
    "repro_worker_spooled_total",
    "Subproblem tasks submitted to a spool queue by a coordinator")
_LEASES_EXPIRED = REGISTRY.counter(
    "repro_spool_leases_expired_total",
    "Claimed-task leases that expired (dead worker) and were reclaimed")
_REQUEUED = REGISTRY.counter(
    "repro_spool_requeued_total",
    "Tasks returned to the spool for another attempt, by reason")
_QUARANTINED = REGISTRY.counter(
    "repro_spool_quarantined_total",
    "Payloads moved to the dead-letter directory, by reason")
_HEARTBEATS = REGISTRY.counter(
    "repro_worker_heartbeats_total",
    "Lease renewals written by spool workers")

#: Checksum header: magic + CRC32 + payload length.
_MAGIC = b"RSP1"
_HEADER = struct.Struct("<4sII")


def _dump_payload(payload) -> bytes:
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return _HEADER.pack(_MAGIC, zlib.crc32(body) & 0xFFFFFFFF, len(body)) + body


def _load_payload(data: bytes, source: str = "payload"):
    if len(data) < _HEADER.size:
        raise SpoolCorruptionError(f"{source}: truncated header "
                                   f"({len(data)} bytes)")
    magic, crc, length = _HEADER.unpack_from(data)
    body = data[_HEADER.size:]
    if magic != _MAGIC:
        raise SpoolCorruptionError(f"{source}: bad magic {magic!r}")
    if len(body) != length:
        raise SpoolCorruptionError(f"{source}: truncated body "
                                   f"({len(body)} of {length} bytes)")
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise SpoolCorruptionError(f"{source}: checksum mismatch")
    try:
        return pickle.loads(body)
    except Exception as exc:  # noqa: BLE001 - any unpickling failure
        raise SpoolCorruptionError(f"{source}: unpicklable body: {exc}") from exc


@dataclass(frozen=True)
class WorkTask:
    """One spooled unit of work: a compact subproblem plus its parameters."""

    task_id: str
    subproblem: CompactSubproblem
    gamma: float
    theta: int
    branching: str = "hybrid"
    kernel: str = "ledger"
    attempts: int = 0


@dataclass(frozen=True)
class TaskResult:
    """One worker's answer: the candidate batch and its metrics snapshot.

    ``statistics`` carries the worker-side
    :class:`~repro.core.stats.SearchStatistics` so a coordinator can merge
    branch counts across spool workers exactly like the in-process parallel
    drivers do (None for results written by older workers).
    """

    task_id: str
    cliques: tuple = ()
    metrics: dict = field(default_factory=dict)
    seconds: float = 0.0
    worker: str = ""
    error: str | None = None
    attempts: int = 0
    statistics: object | None = None


class SpoolQueue:
    """The shared-directory task queue (both sides use this class).

    ``lease_seconds`` is how long a claimed task may go un-renewed before any
    process may reclaim it; ``max_attempts`` is the total execution budget
    per task before it is quarantined as poison.
    """

    def __init__(self, root: str, *, lease_seconds: float = 15.0,
                 max_attempts: int = 3) -> None:
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.root = root
        self.lease_seconds = lease_seconds
        self.max_attempts = max_attempts
        self.tasks_dir = os.path.join(root, "tasks")
        self.claimed_dir = os.path.join(root, "claimed")
        self.results_dir = os.path.join(root, "results")
        self.dead_dir = os.path.join(root, "dead")
        for path in (self.tasks_dir, self.claimed_dir, self.results_dir,
                     self.dead_dir):
            os.makedirs(path, exist_ok=True)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _filename(task_id: str) -> str:
        return f"task-{task_id}.pkl"

    def _write_atomic(self, directory: str, task_id: str, payload) -> None:
        final = os.path.join(directory, self._filename(task_id))
        tmp = final + f".tmp-{os.getpid()}"
        data = _dump_payload(payload)
        if fault_point("spool.write") == "truncate":
            data = data[: max(1, len(data) // 2)]
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, final)

    def _read_payload(self, path: str, source: str):
        with open(path, "rb") as handle:
            return _load_payload(handle.read(), source)

    # ------------------------------------------------------------------
    # Quarantine (dead-letter)
    # ------------------------------------------------------------------
    def quarantine(self, task_id: str, reason: str, *,
                   payload_path: str | None = None,
                   detail: str | None = None, attempts: int = 0) -> dict:
        """Move a payload to ``dead/`` and write its JSON report."""
        if payload_path is not None:
            # Canonical name in dead/, whatever temp name the payload had.
            target = os.path.join(self.dead_dir, self._filename(task_id))
            try:
                os.replace(payload_path, target)
            except FileNotFoundError:
                pass
        report = {"task_id": task_id, "reason": reason, "detail": detail,
                  "attempts": attempts, "time": time.time()}
        report_path = os.path.join(self.dead_dir, f"task-{task_id}.json")
        tmp = report_path + f".tmp-{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(report, handle, sort_keys=True)
        os.replace(tmp, report_path)
        _QUARANTINED.inc(reason=reason)
        return report

    def dead_letters(self) -> list[dict]:
        """Every quarantine report currently in the dead-letter directory."""
        reports = []
        for name in sorted(os.listdir(self.dead_dir)):
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self.dead_dir, name),
                          encoding="utf-8") as handle:
                    reports.append(json.load(handle))
            except (OSError, json.JSONDecodeError):  # racing writer
                continue
        return reports

    def _clear_dead(self, task_id: str) -> None:
        """Drop a quarantined task's dead-letter files (it is being retried)."""
        for name in (f"task-{task_id}.json", self._filename(task_id)):
            try:
                os.remove(os.path.join(self.dead_dir, name))
            except FileNotFoundError:
                pass

    def _dead_report(self, task_id: str) -> dict | None:
        path = os.path.join(self.dead_dir, f"task-{task_id}.json")
        try:
            with open(path, encoding="utf-8") as handle:
                return json.load(handle)
        except (FileNotFoundError, json.JSONDecodeError):
            return None

    # ------------------------------------------------------------------
    # Coordinator side
    # ------------------------------------------------------------------
    def submit(self, task: WorkTask) -> str:
        """Spool one task (atomic: workers never see partial files)."""
        self._write_atomic(self.tasks_dir, task.task_id, task)
        _SPOOLED.inc()
        return task.task_id

    def submit_subproblems(self, subproblems, gamma: float, theta: int, *,
                           branching: str = "hybrid",
                           kernel: str = "ledger") -> list[str]:
        """Spool one task per compact subproblem; returns the task ids."""
        ids = []
        for index, subproblem in enumerate(subproblems):
            task = WorkTask(task_id=f"{uuid.uuid4().hex[:12]}-{index:05d}",
                            subproblem=subproblem, gamma=gamma, theta=theta,
                            branching=branching, kernel=kernel)
            ids.append(self.submit(task))
        return ids

    def collect(self, task_ids, *, timeout: float | None = None,
                poll: float = 0.05, merge_metrics: bool = True,
                tasks: dict[str, WorkTask] | None = None,
                reclaim: bool = True) -> list[TaskResult]:
        """Block until every task id has a usable result.

        The coordinator's half of the recovery loop:

        * every poll cycle also reclaims expired leases (``reclaim=True``),
          so a dead worker's task re-enters ``tasks/`` even when no other
          worker is idle-polling;
        * a **corrupt result** is quarantined and — when ``tasks`` maps the
          id back to its :class:`WorkTask` and attempts remain — the task is
          resubmitted for another run;
        * a **worker-error result** is retried the same way; once the
          attempt budget is exhausted (or without a ``tasks`` map) the task
          is quarantined and :class:`~repro.errors.TaskPoisonedError` raised;
        * on ``timeout`` raises :class:`~repro.errors.SpoolTimeoutError`
          carrying every already-collected :class:`TaskResult` (partial
          progress is reported, not discarded).

        Merges each result's metrics snapshot into the process
        :data:`~repro.obs.metrics.REGISTRY` unless ``merge_metrics=False``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        outstanding = list(task_ids)
        results: dict[str, TaskResult] = {}
        retries: dict[str, int] = {}

        def _attempts(task_id: str) -> int:
            base = tasks[task_id].attempts if tasks and task_id in tasks else 0
            return base + retries.get(task_id, 0)

        def _retry_or_poison(task_id: str, reason: str, detail: str,
                             payload_path: str | None,
                             prior: int | None = None) -> None:
            base = _attempts(task_id) if prior is None else prior
            attempts = base + 1  # counting the attempt that failed
            if tasks is not None and task_id in tasks \
                    and attempts < self.max_attempts:
                retries[task_id] = attempts - tasks[task_id].attempts
                if payload_path is not None:
                    try:
                        os.remove(payload_path)
                    except FileNotFoundError:
                        pass
                self.submit(replace(tasks[task_id], attempts=attempts))
                _REQUEUED.inc(reason=reason)
                return
            report = self.quarantine(task_id, reason, detail=detail,
                                     payload_path=payload_path,
                                     attempts=attempts)
            raise TaskPoisonedError(
                f"spool task {task_id} poisoned after {attempts} attempt(s) "
                f"({reason}): {detail}", task_id=task_id, report=report)

        while outstanding:
            still_waiting = []
            for task_id in outstanding:
                path = os.path.join(self.results_dir, self._filename(task_id))
                try:
                    result: TaskResult = self._read_payload(
                        path, f"result {task_id}")
                except FileNotFoundError:
                    report = self._dead_report(task_id)
                    if report is not None:
                        reason = report.get("reason") or "poisoned"
                        if reason == "lease-expired":
                            # The task repeatedly killed its workers; do not
                            # resurrect it past the lease attempt budget.
                            raise TaskPoisonedError(
                                f"spool task {task_id} poisoned after "
                                f"{report.get('attempts', '?')} attempt(s) "
                                f"({reason}): {report.get('detail')}",
                                task_id=task_id, report=report)
                        prior = max(_attempts(task_id),
                                    int(report.get("attempts") or 0))
                        self._clear_dead(task_id)
                        _retry_or_poison(task_id, reason,
                                         str(report.get("detail")), None,
                                         prior=prior)
                    still_waiting.append(task_id)
                    continue
                except SpoolCorruptionError as exc:
                    _retry_or_poison(task_id, "corrupt-result", str(exc), path)
                    still_waiting.append(task_id)
                    continue
                if result.error is not None:
                    _retry_or_poison(
                        task_id, "worker-error",
                        f"worker {result.worker or '?'}: {result.error}", path)
                    still_waiting.append(task_id)
                    continue
                results[task_id] = result
            outstanding = still_waiting
            if not outstanding:
                break
            if reclaim:
                self.reclaim_expired()
            if deadline is not None and time.monotonic() > deadline:
                raise SpoolTimeoutError(
                    f"spool collect timed out with {len(outstanding)} of "
                    f"{len(results) + len(outstanding)} tasks outstanding "
                    f"({len(results)} completed results attached)",
                    completed=list(results.values()),
                    outstanding=list(outstanding))
            time.sleep(poll)
        if merge_metrics:
            for result in results.values():
                if result.metrics:
                    REGISTRY.merge(result.metrics)
        return [results[task_id] for task_id in task_ids]

    # ------------------------------------------------------------------
    # Lease recovery (any process may run this)
    # ------------------------------------------------------------------
    def reclaim_expired(self, older_than: float | None = None) -> dict:
        """Recover claimed tasks whose lease expired (dead workers).

        Returns ``{"requeued": n, "quarantined": n, "completed": n}`` —
        completed means the worker published its result but died before
        retiring the claim, so only the stale claim file is dropped.
        Race-safe: each candidate is first atomically renamed to a private
        name, so concurrent reclaimers never double-process one task.
        """
        age_limit = self.lease_seconds if older_than is None else older_than
        moved = {"requeued": 0, "quarantined": 0, "completed": 0}
        now = time.time()
        for name in sorted(os.listdir(self.claimed_dir)):
            if not name.endswith(".pkl"):
                continue
            path = os.path.join(self.claimed_dir, name)
            try:
                if now - os.path.getmtime(path) < age_limit:
                    continue
            except FileNotFoundError:
                continue
            private = path + f".reclaim-{uuid.uuid4().hex[:8]}"
            try:
                os.replace(path, private)
            except FileNotFoundError:  # another reclaimer (or renewal race) won
                continue
            _LEASES_EXPIRED.inc()
            task_id = name[len("task-"):-len(".pkl")]
            if os.path.exists(os.path.join(self.results_dir, name)):
                os.remove(private)  # finished, just never retired the claim
                moved["completed"] += 1
                continue
            try:
                task: WorkTask = self._read_payload(private, f"task {task_id}")
            except SpoolCorruptionError as exc:
                self.quarantine(task_id, "corrupt-task", detail=str(exc),
                                payload_path=private)
                moved["quarantined"] += 1
                continue
            attempts = task.attempts + 1
            if attempts >= self.max_attempts:
                self.quarantine(task_id, "lease-expired", payload_path=private,
                                detail=f"lease expired {attempts} time(s)",
                                attempts=attempts)
                moved["quarantined"] += 1
                continue
            self._write_atomic(self.tasks_dir, task_id,
                               replace(task, attempts=attempts))
            os.remove(private)
            _REQUEUED.inc(reason="lease-expired")
            moved["requeued"] += 1
        return moved

    def requeue_stale(self, older_than: float | None = None) -> int:
        """Deprecated spelling of :meth:`reclaim_expired`; returns requeues."""
        return self.reclaim_expired(older_than=older_than)["requeued"]

    def stats(self) -> dict:
        """Point-in-time queue depths."""
        return {directory: len([name for name in os.listdir(path)
                                if name.endswith(".pkl")])
                for directory, path in (("tasks", self.tasks_dir),
                                        ("claimed", self.claimed_dir),
                                        ("results", self.results_dir),
                                        ("dead", self.dead_dir))}

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def claim(self, worker_id: str) -> WorkTask | None:
        """Atomically claim one pending task (None when the spool is idle).

        Claiming starts the lease: the claimed file's mtime is stamped now
        and must be renewed via :meth:`renew_lease` before ``lease_seconds``
        elapse.  A corrupt task payload is quarantined with a report and the
        scan continues — bad bytes never crash a worker.
        """
        fault_point("spool.claim")
        for name in sorted(os.listdir(self.tasks_dir)):
            if not name.endswith(".pkl"):
                continue
            source = os.path.join(self.tasks_dir, name)
            target = os.path.join(self.claimed_dir, name)
            try:
                os.replace(source, target)
            except FileNotFoundError:
                continue  # another worker won this one
            os.utime(target)  # lease starts now
            task_id = name[len("task-"):-len(".pkl")]
            try:
                return self._read_payload(target, f"task {task_id}")
            except SpoolCorruptionError as exc:
                self.quarantine(task_id, "corrupt-task", detail=str(exc),
                                payload_path=target)
                continue
        return None

    def renew_lease(self, task_id: str) -> bool:
        """Refresh a claimed task's lease; False when the claim is gone
        (reclaimed by another process — the worker should drop the task)."""
        try:
            os.utime(os.path.join(self.claimed_dir, self._filename(task_id)))
        except FileNotFoundError:
            return False
        _HEARTBEATS.inc()
        return True

    def complete(self, task: WorkTask, result: TaskResult) -> None:
        """Publish one result and retire the claimed task file."""
        self._write_atomic(self.results_dir, task.task_id, result)
        try:
            os.remove(os.path.join(self.claimed_dir, self._filename(task.task_id)))
        except FileNotFoundError:
            pass


class _LeaseHeartbeat:
    """A daemon thread renewing one claimed task's lease while it runs."""

    def __init__(self, spool: SpoolQueue, task_id: str, interval: float) -> None:
        self._spool = spool
        self._task_id = task_id
        self._interval = interval
        self._stop = threading.Event()
        self.lost = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=f"lease-{task_id}")
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                fault_point("spool.heartbeat")
                if not self._spool.renew_lease(self._task_id):
                    self.lost.set()
                    return
            except Exception:  # noqa: BLE001 - a dead heartbeat = expired lease
                return

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


class SpoolWorker:
    """The ``repro worker`` loop: claim, enumerate, publish, repeat.

    While a task runs, a background :class:`_LeaseHeartbeat` renews its lease
    every ``heartbeat`` seconds (default: a third of the spool's lease), so a
    *live* worker never loses a long task, while a killed worker's lease
    expires within ``lease_seconds``.  Idle workers opportunistically run
    :meth:`SpoolQueue.reclaim_expired` — recovery needs no dedicated daemon.
    """

    def __init__(self, spool: SpoolQueue | str, worker_id: str | None = None,
                 *, heartbeat: float | None = None) -> None:
        self.spool = spool if isinstance(spool, SpoolQueue) else SpoolQueue(spool)
        self.worker_id = worker_id or f"{socket.gethostname()}-{os.getpid()}"
        self.heartbeat = (heartbeat if heartbeat is not None
                          else max(0.05, self.spool.lease_seconds / 3.0))
        self.processed = 0

    def run_once(self) -> bool:
        """Process at most one task; returns False when the spool was idle."""
        task = self.spool.claim(self.worker_id)
        if task is None:
            return False
        start = time.perf_counter()
        beat = _LeaseHeartbeat(self.spool, task.task_id, self.heartbeat)
        try:
            fault_point("worker.task")
            try:
                fault_point("worker.enumerate")
                cliques, metrics, statistics = run_compact_subproblem(
                    task.subproblem, task.gamma, task.theta,
                    branching=task.branching, kernel=task.kernel)
                result = TaskResult(task_id=task.task_id, cliques=tuple(cliques),
                                    metrics=metrics,
                                    seconds=time.perf_counter() - start,
                                    worker=self.worker_id,
                                    attempts=task.attempts,
                                    statistics=statistics)
                _TASKS.inc(outcome="ok")
            except Exception as exc:  # noqa: BLE001 - shipped to the coordinator
                result = TaskResult(task_id=task.task_id,
                                    seconds=time.perf_counter() - start,
                                    worker=self.worker_id,
                                    error=f"{type(exc).__name__}: {exc}",
                                    attempts=task.attempts)
                _TASKS.inc(outcome="error")
        finally:
            beat.stop()
        if beat.lost.is_set():
            # The lease was reclaimed under us (e.g. a long stall): another
            # worker owns the task now; publishing a duplicate result is
            # harmless (identical content) but the claim file is not ours.
            _TASKS.inc(outcome="lease-lost")
        self.spool.complete(task, result)
        self.processed += 1
        return True

    def run(self, *, max_tasks: int | None = None,
            idle_timeout: float | None = None, poll: float = 0.1,
            progress=None) -> int:
        """Drain the spool; returns the number of tasks processed.

        Exits after ``max_tasks`` tasks, or after ``idle_timeout`` seconds
        with nothing to claim (``None``: keep polling forever — the service
        deployment mode).  ``progress`` is an optional per-task callback
        receiving this worker.
        """
        done = 0
        idle_since = time.monotonic()
        while max_tasks is None or done < max_tasks:
            if self.run_once():
                done += 1
                idle_since = time.monotonic()
                if progress is not None:
                    progress(self)
                continue
            self.spool.reclaim_expired()
            if (idle_timeout is not None
                    and time.monotonic() - idle_since >= idle_timeout):
                break
            time.sleep(poll)
        return done


def spool_enumerate(graph: Graph, gamma: float, theta: int, spool: SpoolQueue | str,
                    *, branching: str = "hybrid", kernel: str = "ledger",
                    inline_workers: int = 0, timeout: float | None = None,
                    lease_seconds: float | None = None,
                    max_attempts: int | None = None) -> list[frozenset]:
    """Full MQCE through a spool queue: submit, (optionally) work, collect.

    The coordinator runs DCFastQC's global preprocessing locally, spools every
    compact subproblem, and aggregates the candidate batches through the
    MQCE-S2 maximality filter — the distributed analogue of
    :meth:`repro.extensions.parallel.ParallelDCFastQC.find_maximal`.  With
    ``inline_workers > 0`` that many :class:`SpoolWorker` loops run in local
    threads (tests, single-host convenience); with ``inline_workers=0`` the
    call blocks until external ``repro worker`` processes drain the spool.

    The collect loop runs with full recovery enabled: expired leases are
    reclaimed, failed or corrupt results are resubmitted up to the spool's
    attempt budget, and the answer is byte-identical to the sequential
    pipeline's under any interleaving of worker deaths.
    """
    validate_parameters(gamma, theta)
    if isinstance(spool, str):
        spool = SpoolQueue(
            spool,
            **{key: value for key, value in
               (("lease_seconds", lease_seconds), ("max_attempts", max_attempts))
               if value is not None})
    driver = DCFastQC(graph, gamma, theta, branching=branching, kernel=kernel)
    subproblems = tuple(driver.iter_compact_subproblems())
    if not subproblems:
        return []
    ids = spool.submit_subproblems(subproblems, gamma, theta,
                                   branching=branching, kernel=kernel)
    tasks: dict[str, WorkTask] = {}
    for task_id, subproblem in zip(ids, subproblems):
        tasks[task_id] = WorkTask(task_id=task_id, subproblem=subproblem,
                                  gamma=gamma, theta=theta,
                                  branching=branching, kernel=kernel)
    threads = []
    for _ in range(max(0, inline_workers)):
        worker = SpoolWorker(spool)

        def _drain(worker=worker) -> None:
            try:
                worker.run(max_tasks=None, idle_timeout=0.5)
            except ReproError:  # injected faults kill the thread, not the run
                pass

        thread = threading.Thread(target=_drain, daemon=True)
        thread.start()
        threads.append(thread)
    try:
        results = spool.collect(ids, timeout=timeout, tasks=tasks)
    finally:
        for thread in threads:
            thread.join(timeout=5.0)
    candidates: set[frozenset] = set()
    for result in results:
        candidates.update(result.cliques)
    return filter_non_maximal(
        sorted(candidates, key=lambda h: (-len(h), sorted(map(str, h)))),
        theta=theta)


__all__ = ["SpoolQueue", "SpoolWorker", "TaskResult", "WorkTask",
           "spool_enumerate"]
