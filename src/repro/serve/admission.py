"""Admission control for the serve layer: bounded concurrency, bounded queue.

A production enumeration service must not melt under a traffic spike: running
every arriving cold query concurrently just thrashes the CPU and delivers
nothing on time.  The :class:`AdmissionController` enforces three limits:

* **max_concurrent** — at most this many enumerations execute at once
  (a semaphore; one slot per single-flight *leader*, so coalesced waiters are
  free).
* **max_queue** — at most this many admitted-but-waiting enumerations may
  queue for a slot.  Beyond that the controller *sheds load*: it raises the
  typed :class:`repro.errors.ServiceOverloadedError` immediately instead of
  accepting unbounded latency, and the in-flight work is untouched.
* **per-request budgets** — :meth:`apply_budgets` overlays the server's
  budget policy onto each incoming :class:`repro.api.QuerySpec`: a default
  ``time_limit`` for specs that carry none, a hard ``max_time_limit`` cap,
  and a ``max_results`` cap, so one greedy request cannot hold a slot
  forever.

Everything is asyncio-native and must be used from the server's event loop;
the enumeration itself runs in an executor thread while the slot is held.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager
from dataclasses import replace

from ..api.spec import QuerySpec
from ..errors import ServiceOverloadedError
from ..obs.metrics import REGISTRY

_SHED = REGISTRY.counter(
    "repro_serve_shed_total",
    "Requests shed by admission control (ServiceOverloadedError)")
_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_serve_queue_depth",
    "Enumerations admitted but waiting for a concurrency slot")
_ACTIVE = REGISTRY.gauge(
    "repro_serve_active_enumerations",
    "Enumerations currently holding a concurrency slot")


class AdmissionController:
    """Semaphore-bounded enumeration slots with a bounded, load-shedding queue.

    Parameters
    ----------
    max_concurrent:
        Enumeration slots (>= 1).
    max_queue:
        How many slot-waiters may queue before new arrivals are shed (>= 0).
    default_time_limit / max_time_limit / max_results:
        The per-request budget policy applied by :meth:`apply_budgets`
        (``None`` disables each knob).
    """

    def __init__(self, max_concurrent: int = 4, max_queue: int = 16,
                 default_time_limit: float | None = None,
                 max_time_limit: float | None = None,
                 max_results: int | None = None) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be a positive integer")
        if max_queue < 0:
            raise ValueError("max_queue must be non-negative")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.default_time_limit = default_time_limit
        self.max_time_limit = max_time_limit
        self.max_results = max_results
        self._semaphore = asyncio.Semaphore(max_concurrent)
        self.running = 0
        self.waiting = 0
        self.admitted_total = 0
        self.shed_total = 0

    # ------------------------------------------------------------------
    # Budget policy
    # ------------------------------------------------------------------
    def apply_budgets(self, spec: QuerySpec, *,
                      deadline: float | None = None) -> QuerySpec:
        """Overlay the server's budget policy on one incoming spec.

        ``deadline`` is the client's remaining wall-clock budget in seconds
        (the wire's ``deadline`` field): the effective ``time_limit`` is
        clamped to it, so the server never spends longer on an enumeration
        than the client will wait for the answer.
        """
        changes: dict = {}
        time_limit = spec.time_limit
        if time_limit is None and self.default_time_limit is not None:
            time_limit = changes["time_limit"] = self.default_time_limit
        elif (time_limit is not None and self.max_time_limit is not None
                and time_limit > self.max_time_limit):
            time_limit = changes["time_limit"] = self.max_time_limit
        if deadline is not None and (time_limit is None
                                     or time_limit > deadline):
            changes["time_limit"] = deadline
        if self.max_results is not None and (spec.max_results is None
                                             or spec.max_results > self.max_results):
            changes["max_results"] = self.max_results
        return replace(spec, **changes) if changes else spec

    # ------------------------------------------------------------------
    # Slots
    # ------------------------------------------------------------------
    @asynccontextmanager
    async def slot(self):
        """Hold one enumeration slot, shedding when the wait queue is full."""
        if self.running >= self.max_concurrent and self.waiting >= self.max_queue:
            self.shed_total += 1
            _SHED.inc()
            raise ServiceOverloadedError(
                f"admission queue full ({self.running} running, "
                f"{self.waiting} queued); retry later",
                running=self.running, queued=self.waiting)
        self.waiting += 1
        _QUEUE_DEPTH.set(self.waiting)
        try:
            await self._semaphore.acquire()
        finally:
            self.waiting -= 1
            _QUEUE_DEPTH.set(self.waiting)
        self.running += 1
        self.admitted_total += 1
        _ACTIVE.set(self.running)
        try:
            yield self
        finally:
            self.running -= 1
            _ACTIVE.set(self.running)
            self._semaphore.release()

    def stats(self) -> dict:
        """Point-in-time admission counters for ``stats`` frames."""
        return {
            "max_concurrent": self.max_concurrent,
            "max_queue": self.max_queue,
            "running": self.running,
            "waiting": self.waiting,
            "admitted_total": self.admitted_total,
            "shed_total": self.shed_total,
            "default_time_limit": self.default_time_limit,
            "max_time_limit": self.max_time_limit,
            "max_results": self.max_results,
        }


__all__ = ["AdmissionController"]
