"""The long-lived query service: ``repro serve``.

:class:`ReproService` turns the engine stack into a server process.  It owns
one :class:`repro.dynamic.DynamicEngine` per named graph and multiplexes any
number of client connections over one asyncio event loop:

* **queries** stream through the engine's :class:`~repro.engine.stream.ResultStream`
  consumed in an executor thread, with batches relayed to each connection
  through bounded asyncio queues (backpressure: a slow consumer throttles the
  enumeration, not the process);
* **identical concurrent cold queries coalesce** — the
  :class:`~repro.serve.coalesce.SingleFlight` table runs exactly one
  enumeration per ``(graph, fingerprint, resolved spec)`` and fans the
  batches out to every waiter;
* **admission control** bounds concurrent enumerations and sheds load with a
  typed :class:`~repro.errors.ServiceOverloadedError` once its wait queue is
  full (see :mod:`repro.serve.admission`);
* **failure degrades gracefully** — per-request deadlines clamp the
  enumeration budget to what the client will actually wait, a circuit
  breaker per ``(graph, resolved spec)`` fails persistent faulters fast
  with the typed :class:`~repro.errors.CircuitOpenError` (half-open probe
  after the reset timeout), interrupted query streams resume mid-flight via
  the protocol's ``resume_from`` field, and the hot paths carry named
  :func:`repro.resilience.faults.fault_point` sites so chaos tests schedule
  exactly these failures deterministically;
* **mutations** apply between queries under a per-graph writer-priority
  read/write gate, flowing through the dynamic engine's selective cache
  invalidation, so warm entries survive updates exactly as in-process;
* the same TCP port answers plain HTTP ``GET /metrics`` (Prometheus text
  exposition of the process :data:`~repro.obs.metrics.REGISTRY`),
  ``GET /healthz`` and ``GET /stats`` — the scrape endpoint the metrics
  module reserved for this moment.

The wire protocol is line-delimited JSON (:mod:`repro.serve.protocol`);
:class:`repro.serve.client.ServeClient` and the ``repro client`` CLI speak
it.  For tests and benchmarks, :func:`start_in_thread` boots a service on an
ephemeral port inside a daemon thread and returns a stop handle.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from contextlib import asynccontextmanager, suppress

from ..api.spec import QuerySpec
from ..dynamic import DynamicEngine
from ..dynamic.updates import parse_updates, normalise_update
from ..errors import (CircuitOpenError, DeadlineExceededError, ReproError,
                      ServiceOverloadedError)
from ..graph.graph import Graph
from ..obs.metrics import REGISTRY, render_prometheus
from ..obs.trace import NULL_TRACER, Tracer
from ..resilience.breaker import BreakerBoard
from ..resilience.faults import fault_point
from .admission import AdmissionController
from .coalesce import SingleFlight
from .protocol import (DEFAULT_BATCH_SIZE, HTTP_METHODS, ProtocolError,
                       clique_to_wire, decode_frame, encode_frame,
                       error_payload, validate_request)

_REQUESTS = REGISTRY.counter(
    "repro_serve_requests_total",
    "Requests handled by the serve layer, by operation and outcome")
_CONNECTIONS = REGISTRY.counter(
    "repro_serve_connections_total",
    "Client connections accepted by the serve layer, by kind")
_BATCHES = REGISTRY.counter(
    "repro_serve_batches_total",
    "Result batch frames written to clients")
_TTFB = REGISTRY.histogram(
    "repro_serve_time_to_first_batch_ms",
    "Milliseconds from enumeration start to the first published batch")
_SERVE_RETRIES = REGISTRY.counter(
    "repro_serve_retries_total",
    "Query requests arriving as client retries or stream resumes, by kind")
_CIRCUIT_STATE = REGISTRY.gauge(
    "repro_serve_circuit_state",
    "Circuit-breaker state per graph (0 closed, 1 half-open, 2 open)")


class _ReadWriteGate:
    """Writer-priority read/write exclusion for one graph.

    Queries hold the gate for *reading* (many at once); mutations hold it for
    *writing* (alone).  A waiting writer blocks new readers, so a mutation
    lands as soon as the in-flight enumerations drain instead of starving
    behind a steady query stream.
    """

    def __init__(self) -> None:
        self._cond = asyncio.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @asynccontextmanager
    async def reading(self):
        async with self._cond:
            while self._writer or self._writers_waiting:
                await self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            async with self._cond:
                self._readers -= 1
                self._cond.notify_all()

    @asynccontextmanager
    async def writing(self):
        async with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    await self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True
        try:
            yield
        finally:
            async with self._cond:
                self._writer = False
                self._cond.notify_all()


class GraphHost:
    """One served graph: its dynamic engine plus the per-graph gate."""

    def __init__(self, name: str, graph: Graph) -> None:
        self.name = name
        self.engine = DynamicEngine(graph, name=name)
        self.gate = _ReadWriteGate()
        self.queries = 0
        self.mutations = 0

    def flight_key(self, spec: QuerySpec) -> tuple:
        """The single-flight identity of ``spec`` on the current content.

        Uses the *resolved* spec (planner knobs fixed), so an explicit
        ``algorithm="dcfastqc"`` and an ``auto`` spec the planner resolves to
        DCFastQC coalesce onto one flight — mirroring the cache-key rule.
        Budgets stay part of the identity (the frozen spec hashes whole):
        differently-budgeted queries deliver different frame sequences and
        must not share one.
        """
        plan = self.engine.explain(spec=spec)
        return (self.name, self.engine.prepared.fingerprint, spec.resolved(plan))

    def open_stream(self, spec: QuerySpec, tracer=None):
        """Create the engine stream for one admitted query (on the loop)."""
        return self.engine.stream(spec=spec, trace=tracer)

    def apply_updates(self, updates):
        """Apply one mutation batch through the dynamic engine."""
        self.mutations += 1
        return self.engine.apply(updates)


class ReproService:
    """The asyncio server owning named graphs and their engines.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read
        :attr:`port` after :meth:`start`).
    max_concurrent, max_queue, default_time_limit, max_time_limit,
    max_results:
        Admission-control knobs (see
        :class:`~repro.serve.admission.AdmissionController`).
    batch_size:
        Default cliques per ``batch`` frame (requests may override).
    queue_size:
        Bound of each subscriber's relay queue, in batches — the
        backpressure window.
    single_flight:
        Coalesce identical in-flight queries (disable only for A/B
        benchmarking the stampede behaviour).
    allow_shutdown:
        Honour the ``shutdown`` wire operation (tests, CI and local dev).
    trace_dir:
        When set, each query request writes a Chrome trace of its phase
        spans to ``trace_dir/request-N.json``.
    circuit_threshold, circuit_reset:
        The per-``(graph, resolved spec)`` circuit breaker: after
        ``circuit_threshold`` consecutive enumeration failures that key
        fails fast with :class:`~repro.errors.CircuitOpenError` for
        ``circuit_reset`` seconds, then admits one half-open probe.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 max_concurrent: int = 4, max_queue: int = 16,
                 default_time_limit: float | None = None,
                 max_time_limit: float | None = None,
                 max_results: int | None = None,
                 batch_size: int = DEFAULT_BATCH_SIZE, queue_size: int = 8,
                 single_flight: bool = True, allow_shutdown: bool = False,
                 trace_dir: str | None = None, circuit_threshold: int = 5,
                 circuit_reset: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.batch_size = batch_size
        self.single_flight = single_flight
        self.allow_shutdown = allow_shutdown
        self.trace_dir = trace_dir
        self.admission = AdmissionController(
            max_concurrent=max_concurrent, max_queue=max_queue,
            default_time_limit=default_time_limit,
            max_time_limit=max_time_limit, max_results=max_results)
        self.flights = SingleFlight(queue_size=queue_size)
        self.breakers = BreakerBoard(circuit_threshold, circuit_reset)
        self.hosts: dict[str, GraphHost] = {}
        self.started_at: float | None = None
        self._server: asyncio.base_events.Server | None = None
        self._stop_event: asyncio.Event | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrent + 2, thread_name_prefix="repro-serve")
        self._flight_seq = 0
        self._trace_seq = 0

    # ------------------------------------------------------------------
    # Graph registration
    # ------------------------------------------------------------------
    def add_graph(self, name: str, graph: Graph) -> GraphHost:
        """Serve ``graph`` under ``name`` (prepared artifacts built now)."""
        if name in self.hosts:
            raise ReproError(f"a graph named {name!r} is already being served")
        host = GraphHost(name, graph)
        self.hosts[name] = host
        return host

    def add_dataset(self, name: str) -> GraphHost:
        """Serve a registered dataset analogue under its registry name."""
        from ..datasets.registry import get_spec, load_dataset

        spec = get_spec(name)
        return self.add_graph(spec.name, load_dataset(spec.name))

    def _host(self, name: str | None) -> GraphHost:
        if not self.hosts:
            raise ReproError("this server is not serving any graphs")
        if name is None:
            if len(self.hosts) == 1:
                return next(iter(self.hosts.values()))
            raise ProtocolError(
                f"multiple graphs served ({', '.join(sorted(self.hosts))}); "
                "the request must name one with 'graph'")
        host = self.hosts.get(name)
        if host is None:
            raise ProtocolError(f"unknown graph {name!r}; "
                                f"serving: {', '.join(sorted(self.hosts))}")
        return host

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (non-blocking)."""
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()

    async def serve_forever(self) -> None:
        """Run until :meth:`request_stop` (or the shutdown op) fires."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._stop_event.wait()
        self._executor.shutdown(wait=False, cancel_futures=True)

    def request_stop(self) -> None:
        """Signal the serve loop to exit (safe from any thread)."""
        if self._stop_event is not None:
            loop = self._loop
            if loop is not None:
                try:
                    loop.call_soon_threadsafe(self._stop_event.set)
                except RuntimeError:  # loop already closed: nothing to stop
                    pass

    async def run(self) -> None:
        """Start and serve until stopped — the CLI entry point."""
        await self.start()
        await self.serve_forever()

    @property
    def _loop(self) -> asyncio.AbstractEventLoop | None:
        if self._server is not None:
            return self._server.get_loop()
        return None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            line = await reader.readline()
            if any(line.startswith(method) for method in HTTP_METHODS):
                _CONNECTIONS.inc(kind="http")
                await self._handle_http(line, reader, writer)
                return
            _CONNECTIONS.inc(kind="protocol")
            while line:
                stop = await self._handle_request_line(line, writer)
                if stop:
                    break
                line = await reader.readline()
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _handle_request_line(self, line: bytes,
                                   writer: asyncio.StreamWriter) -> bool:
        """Dispatch one request line; returns True when the server must stop."""
        if not line.strip():
            return False
        op = "?"
        try:
            payload = decode_frame(line)
            op = validate_request(payload)
            handler = getattr(self, f"_op_{op}")
            stop = await handler(payload, writer)
            _REQUESTS.inc(op=op, outcome="ok")
            return bool(stop)
        except ServiceOverloadedError as exc:
            _REQUESTS.inc(op=op, outcome="overloaded")
            await self._write(writer, error_payload(exc))
        except CircuitOpenError as exc:
            _REQUESTS.inc(op=op, outcome="circuit-open")
            await self._write(writer, error_payload(exc))
        except DeadlineExceededError as exc:
            _REQUESTS.inc(op=op, outcome="deadline")
            await self._write(writer, error_payload(exc))
        except ReproError as exc:
            _REQUESTS.inc(op=op, outcome="error")
            await self._write(writer, error_payload(exc))
        except Exception as exc:  # noqa: BLE001 - one request never kills the server
            _REQUESTS.inc(op=op, outcome="error")
            await self._write(writer, error_payload(exc))
        return False

    async def _write(self, writer: asyncio.StreamWriter, payload: dict) -> None:
        action = fault_point("serve.write_frame")
        if action == "drop":
            # Simulate an abrupt connection loss: RST, nothing flushed.
            writer.transport.abort()
            raise ConnectionResetError("injected connection drop")
        data = encode_frame(payload)
        if action == "truncate":
            # Half a frame then a hard close: the client must treat the torn
            # line as transport loss, never as a parseable frame.
            writer.write(data[: max(1, len(data) // 2)])
            with suppress(ConnectionResetError, BrokenPipeError, OSError):
                await writer.drain()
            writer.transport.abort()
            raise ConnectionResetError("injected truncated write")
        writer.write(data)
        await writer.drain()

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    async def _op_ping(self, payload: dict, writer) -> None:
        await self._write(writer, {"type": "pong"})

    async def _op_graphs(self, payload: dict, writer) -> None:
        graphs = {
            name: {"vertices": host.engine.graph.vertex_count,
                   "edges": host.engine.graph.edge_count,
                   "version": host.engine.graph.version,
                   "queries": host.queries, "mutations": host.mutations}
            for name, host in sorted(self.hosts.items())}
        await self._write(writer, {"type": "graphs", "graphs": graphs})

    async def _op_stats(self, payload: dict, writer) -> None:
        await self._write(writer, {"type": "stats", **self._stats_payload()})

    async def _op_flush(self, payload: dict, writer) -> None:
        names = ([payload["graph"]] if payload.get("graph") is not None
                 else list(self.hosts))
        flushed = 0
        for name in names:
            host = self._host(name)
            flushed += len(host.engine.engine.cache)
            host.engine.engine.clear_cache()
        await self._write(writer, {"type": "flushed", "entries": flushed})

    async def _op_shutdown(self, payload: dict, writer) -> bool:
        if not self.allow_shutdown:
            raise ProtocolError("shutdown is disabled; start the server with "
                                "--allow-shutdown to enable it")
        await self._write(writer, {"type": "bye"})
        self.request_stop()
        return True

    async def _op_mutate(self, payload: dict, writer) -> None:
        host = self._host(payload.get("graph"))
        if isinstance(payload.get("updates"), list):
            updates = [normalise_update(entry) for entry in payload["updates"]]
        else:
            updates = parse_updates(payload["script"].splitlines())
        loop = asyncio.get_running_loop()
        async with host.gate.writing():
            report = await loop.run_in_executor(
                self._executor, host.apply_updates, updates)
        await self._write(writer, {"type": "report", **report.as_dict()})

    # ------------------------------------------------------------------
    # The query path
    # ------------------------------------------------------------------
    async def _op_query(self, payload: dict, writer) -> None:
        host = self._host(payload.get("graph"))
        deadline = payload.get("deadline")
        resume_from = int(payload.get("resume_from") or 0)
        resume_token = payload.get("resume_stream")
        attempt = int(payload.get("attempt") or 0)
        if resume_from:
            _SERVE_RETRIES.inc(kind="resume")
        elif attempt:
            _SERVE_RETRIES.inc(kind="retry")
        spec = self.admission.apply_budgets(
            QuerySpec.from_dict(payload["spec"]),
            deadline=float(deadline) if deadline is not None else None)
        batch_size = max(1, int(payload.get("batch") or self.batch_size))
        host.queries += 1
        tracer = self._request_tracer()
        with tracer.span("serve_request", op="query", graph=host.name,
                         workload=spec.workload) as request_span:
            # Key computation needs a consistent snapshot (no mutation
            # mid-plan); the enumeration itself re-acquires the read gate in
            # the leader task for its whole duration.
            async with host.gate.reading():
                resolved = spec.resolved(host.engine.explain(spec=spec))
                fingerprint = host.engine.prepared.fingerprint
            # The breaker key deliberately drops the content fingerprint:
            # a (graph, resolved spec) that keeps faulting stays open across
            # mutations until its reset timeout, unlike the flight key.
            breaker = self.breakers.for_key((host.name, resolved))
            breaker.allow()
            _CIRCUIT_STATE.set(breaker.state, graph=host.name)
            if self.single_flight:
                key = (host.name, fingerprint, resolved)
            else:
                self._flight_seq += 1
                key = (host.name, "uncoalesced", self._flight_seq)
            # The cache-replay token is shared by every flight that replays
            # this exact cached sequence; live enumerations get a unique one
            # in the leader (their emission order differs from the replay).
            cache_token = (f"c:{host.name}:{fingerprint}:"
                           f"{abs(hash(resolved)):x}")
            flight, created = self.flights.get_or_create(key)
            if created:
                flight.task = asyncio.get_running_loop().create_task(
                    self._lead_flight(flight, host, spec, batch_size, tracer,
                                      breaker=breaker,
                                      cache_token=cache_token))
            snapshot, queue = flight.subscribe()
            try:
                # Resume is only sound against the *same* batch sequence the
                # client already acked — identified by the stream token a
                # dropped stream's frames carried.  A mismatch (e.g. the
                # first attempt rode a live enumeration and the retry hits
                # the cache replay, whose order differs) restarts from 0;
                # the client detects the restart from the seq numbers.
                await flight.token_ready.wait()
                if resume_from and resume_token != flight.stream_token:
                    resume_from = 0
                # ``seq`` numbers every batch of the (deterministic) stream;
                # a resuming client already holds batches < resume_from, so
                # those are skipped on the wire but still counted — the
                # delivered seq values continue exactly where they stopped.
                seq = 0
                for batch in snapshot:
                    if seq >= resume_from:
                        await self._write_batch(writer, seq, batch, flight)
                    seq += 1
                while queue is not None:
                    item = await queue.get()
                    if item[0] != "batch":
                        break
                    if seq >= resume_from:
                        await self._write_batch(writer, seq, item[1], flight)
                    seq += 1
            finally:
                flight.leave(queue)
                if flight.done:
                    self.flights.discard(flight)
            request_span.annotate(batches=seq, coalesced=not created,
                                  resumed_from=resume_from)
        if flight.error is not None:
            if flight.error.get("error") == "ServiceOverloadedError":
                # Re-raise so the per-request outcome counter says "overloaded".
                from .protocol import exception_from_payload
                raise exception_from_payload(flight.error)
            await self._write(writer, flight.error)
            return
        done = dict(flight.summary or {})
        done.update(type="done", coalesced=not created, batches=seq,
                    resumed_from=resume_from)
        if flight.stream_token is not None:
            done["stream"] = flight.stream_token
        await self._write(writer, done)
        self._write_request_trace(tracer)

    async def _write_batch(self, writer, seq: int, batch: list,
                           flight) -> None:
        _BATCHES.inc()
        frame = {"type": "batch", "seq": seq, "cliques": batch}
        if flight.stream_token is not None:
            frame["stream"] = flight.stream_token
        await self._write(writer, frame)

    async def _lead_flight(self, flight, host: GraphHost, spec: QuerySpec,
                           batch_size: int, tracer, breaker=None,
                           cache_token: str | None = None) -> None:
        """The single-flight leader: admission, enumeration, publication.

        The leader is also where the circuit breaker observes outcomes —
        exactly one record per actual enumeration, however many subscribers
        coalesced onto it.  Overload shedding is *not* a failure of the query
        itself and leaves the breaker untouched.
        """
        loop = asyncio.get_running_loop()
        try:
            with tracer.span("admission") as admission_span:
                async with self.admission.slot():
                    admission_span.annotate(running=self.admission.running)
                    async with host.gate.reading():
                        fault_point("serve.enumerate")
                        stream = host.open_stream(spec, tracer=tracer)
                        flight.stream = stream
                        # Cache replays of the same key are byte-identical
                        # across flights and share the cache token; a live
                        # enumeration emits in discovery order, so its
                        # sequence is resumable only within this flight.
                        flight.stream_token = (
                            cache_token if stream.from_cache
                            else f"x:{uuid.uuid4().hex[:12]}")
                        flight.token_ready.set()
                        summary = await loop.run_in_executor(
                            self._executor, self._pump_stream,
                            flight, stream, batch_size, loop)
            if breaker is not None:
                breaker.record_success()
            await flight.finish(summary=summary)
        except ServiceOverloadedError as exc:
            await flight.finish(error=error_payload(exc), outcome="overloaded")
        except ReproError as exc:
            if breaker is not None:
                breaker.record_failure()
            await flight.finish(error=error_payload(exc), outcome="error")
        except Exception as exc:  # noqa: BLE001 - surface, don't crash the loop
            if breaker is not None:
                breaker.record_failure()
            await flight.finish(error=error_payload(exc), outcome="error")
        finally:
            if breaker is not None:
                _CIRCUIT_STATE.set(breaker.state, graph=host.name)
            self.flights.discard(flight)

    def _pump_stream(self, flight, stream, batch_size: int,
                     loop: asyncio.AbstractEventLoop) -> dict:
        """Executor thread: consume the ResultStream, publish wire batches.

        ``publish`` is awaited on the loop via ``run_coroutine_threadsafe``
        and blocks this thread while any subscriber queue is full — that is
        the backpressure path from a slow client all the way into the
        enumeration (whose tracer span clock pauses at the yield meanwhile).
        """
        start = time.perf_counter()
        first_batch_seconds = None
        batch: list = []

        def publish() -> None:
            nonlocal first_batch_seconds, batch
            if first_batch_seconds is None:
                first_batch_seconds = time.perf_counter() - start
                _TTFB.observe(int(first_batch_seconds * 1000))
            asyncio.run_coroutine_threadsafe(
                flight.publish(batch), loop).result()
            batch = []

        for clique in stream:
            if flight.abandoned:
                stream.cancel()
                break
            batch.append(clique_to_wire(clique))
            if len(batch) >= batch_size:
                publish()
        if batch and not flight.abandoned:
            publish()
        return {
            "delivered": stream.delivered,
            "count": stream.delivered,
            "finished": stream.finished,
            "truncated": stream.truncated,
            "from_cache": stream.from_cache,
            "cancelled": stream.cancelled,
            "seconds": round(time.perf_counter() - start, 6),
            "first_batch_seconds": (None if first_batch_seconds is None
                                    else round(first_batch_seconds, 6)),
        }

    # ------------------------------------------------------------------
    # HTTP shim (single-port /metrics, /healthz, /stats)
    # ------------------------------------------------------------------
    async def _handle_http(self, request_line: bytes, reader, writer) -> None:
        try:
            _method, path, *_ = request_line.decode("latin-1").split()
        except ValueError:
            path = "/"
        while True:  # drain headers
            header = await reader.readline()
            if not header.strip():
                break
        path = path.split("?", 1)[0]
        if path == "/metrics":
            status, ctype = "200 OK", "text/plain; version=0.0.4; charset=utf-8"
            body = render_prometheus()
        elif path in ("/health", "/healthz"):
            status, ctype = "200 OK", "application/json"
            body = json.dumps({"status": "ok", "graphs": sorted(self.hosts),
                               "uptime_seconds": round(
                                   time.time() - (self.started_at or time.time()), 3)})
        elif path == "/stats":
            status, ctype = "200 OK", "application/json"
            body = json.dumps(self._stats_payload())
        else:
            status, ctype = "404 Not Found", "text/plain"
            body = f"no such endpoint: {path}\n"
        _REQUESTS.inc(op=f"http:{path}", outcome=status.split()[0])
        encoded = body.encode("utf-8")
        writer.write((f"HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\n"
                      f"Content-Length: {len(encoded)}\r\n"
                      f"Connection: close\r\n\r\n").encode("latin-1") + encoded)
        await writer.drain()

    # ------------------------------------------------------------------
    # Introspection / tracing
    # ------------------------------------------------------------------
    def _stats_payload(self) -> dict:
        return {
            "admission": self.admission.stats(),
            "circuits": self.breakers.stats(),
            "flights_in_table": len(self.flights),
            "graphs": {name: host.engine.stats()
                       for name, host in sorted(self.hosts.items())},
            "config": {"batch_size": self.batch_size,
                       "single_flight": self.single_flight,
                       "allow_shutdown": self.allow_shutdown},
        }

    def _request_tracer(self):
        if self.trace_dir is None:
            return NULL_TRACER
        return Tracer()

    def _write_request_trace(self, tracer) -> None:
        if tracer is NULL_TRACER or self.trace_dir is None:
            return
        import os

        os.makedirs(self.trace_dir, exist_ok=True)
        self._trace_seq += 1
        tracer.write(os.path.join(self.trace_dir,
                                  f"request-{self._trace_seq}.json"),
                     format="chrome")


# ----------------------------------------------------------------------
# Thread-hosted service (tests, benchmarks, notebooks)
# ----------------------------------------------------------------------
class ServiceHandle:
    """A running :class:`ReproService` in a background thread."""

    def __init__(self, service: ReproService, thread: threading.Thread) -> None:
        self.service = service
        self.thread = thread

    @property
    def port(self) -> int:
        return self.service.port

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the server and join its thread."""
        self.service.request_stop()
        self.thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_thread(service: ReproService, timeout: float = 10.0) -> ServiceHandle:
    """Boot ``service`` in a daemon thread; returns once it is accepting."""
    started = threading.Event()
    failure: list[BaseException] = []

    async def _main() -> None:
        try:
            await service.start()
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            failure.append(exc)
            started.set()
            raise
        started.set()
        await service.serve_forever()

    thread = threading.Thread(target=lambda: asyncio.run(_main()),
                              name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(timeout):
        raise ReproError("serve thread failed to start in time")
    if failure:
        raise failure[0]
    return ServiceHandle(service, thread)


__all__ = ["GraphHost", "ReproService", "ServiceHandle", "start_in_thread"]
