"""The ``repro serve`` wire format: line-delimited canonical JSON frames.

One connection carries a sequence of **requests** (client -> server) and
**frames** (server -> client), each a single JSON object on its own
``\\n``-terminated line (UTF-8, no embedded newlines — JSON string escaping
guarantees this).  The framing is deliberately transport-trivial so that any
language (or ``nc``) can speak it; the same TCP port also answers plain
``GET /metrics`` / ``GET /healthz`` HTTP requests (see
:mod:`repro.serve.service`), distinguished by the first bytes of the first
line.

Requests
--------
``{"op": "query", "graph": NAME, "spec": {...QuerySpec fields...}}``
    Run one :class:`repro.api.QuerySpec` against the named graph.  The server
    answers with zero or more ``batch`` frames followed by one ``done`` frame
    (or one ``error`` frame).  Optional ``"batch"`` sets the per-frame clique
    count.  Resilience fields (all optional): ``"resume_from"`` skips the
    first N batches of the deterministic stream — a client reconnecting
    after a transport loss resumes where it stopped, and the ``seq`` numbers
    continue as if uninterrupted; ``"resume_stream"`` names the stream
    token the acked batches carried (batch and done frames include a
    ``"stream"`` field) — the server honors ``resume_from`` only against
    the same token, and restarts from batch 0 otherwise, because a retry
    may land on a differently-ordered sequence (a live enumeration emits in
    discovery order, the cache replay in canonical order); ``"deadline"``
    (seconds) clamps the server-side enumeration budget to what the client
    will actually wait; ``"attempt"`` marks a retried request (counted in
    ``repro_serve_retries_total``).
``{"op": "mutate", "graph": NAME, "updates": [["add_edge", 1, 2], ...]}``
    Apply a batch of graph mutations (the :mod:`repro.dynamic.updates`
    spellings; a ``"script"`` string of update-script lines is also accepted)
    through the graph's :class:`repro.dynamic.DynamicEngine` — selective
    cache invalidation included.  Answered by one ``report`` frame.
``{"op": "graphs" | "stats" | "ping" | "flush" | "shutdown"}``
    Introspection and control.  ``flush`` drops cached results (named
    ``"graph"`` or all); ``shutdown`` is honoured only when the server was
    started with ``allow_shutdown=True``.

Frames
------
``{"type": "batch", "seq": N, "cliques": [[...], ...]}``
    One batch of maximal quasi-cliques, each serialised by
    :func:`clique_to_wire` (sorted labels — canonical, so every client in a
    coalesced flight receives byte-identical frames).
``{"type": "done", "delivered": N, "finished": ..., "truncated": ...,
   "from_cache": ..., "coalesced": ..., "seconds": ...}``
    Terminal success frame of a query.
``{"type": "report", ...}`` / ``{"type": "stats", ...}`` / ``{"type":
"pong"}`` / ``{"type": "graphs", ...}`` / ``{"type": "flushed", ...}`` /
``{"type": "bye"}``
    Terminal frames of the other operations.
``{"type": "error", "error": CLASS, "message": ...}``
    Terminal failure frame; :func:`exception_from_payload` reconstructs the
    matching :class:`repro.errors.ReproError` subclass client-side.
"""

from __future__ import annotations

import json
from collections.abc import Iterable

from ..errors import CircuitOpenError, ReproError, ServiceOverloadedError

#: Request operations the server understands.
OPERATIONS = ("query", "mutate", "graphs", "stats", "ping", "flush", "shutdown")

#: Default cliques per ``batch`` frame.
DEFAULT_BATCH_SIZE = 64

#: HTTP methods whose request line switches a connection into the HTTP shim.
HTTP_METHODS = (b"GET ", b"HEAD ", b"POST ")


class ProtocolError(ReproError):
    """A malformed request or frame on the serve wire."""


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(payload: dict) -> bytes:
    """Serialise one frame/request to its canonical wire line."""
    return (json.dumps(payload, sort_keys=True, separators=(",", ":"))
            + "\n").encode("utf-8")


def decode_frame(line: bytes | str) -> dict:
    """Parse one wire line into a frame/request dictionary."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty frame")
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid JSON frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("a frame must be a JSON object")
    return payload


def validate_request(payload: dict) -> str:
    """Check a decoded request and return its operation name."""
    op = payload.get("op")
    if op not in OPERATIONS:
        raise ProtocolError(f"unknown operation {op!r}; "
                            f"expected one of {OPERATIONS}")
    if op == "query":
        if not isinstance(payload.get("spec"), dict):
            raise ProtocolError("a query request needs a 'spec' object")
        resume_from = payload.get("resume_from", 0)
        if not isinstance(resume_from, int) or isinstance(resume_from, bool) \
                or resume_from < 0:
            raise ProtocolError("'resume_from' must be a non-negative integer")
        attempt = payload.get("attempt", 0)
        if not isinstance(attempt, int) or isinstance(attempt, bool) \
                or attempt < 0:
            raise ProtocolError("'attempt' must be a non-negative integer")
        resume_stream = payload.get("resume_stream")
        if resume_stream is not None and not isinstance(resume_stream, str):
            raise ProtocolError("'resume_stream' must be a string")
        deadline = payload.get("deadline")
        if deadline is not None and (not isinstance(deadline, (int, float))
                                     or isinstance(deadline, bool)
                                     or deadline <= 0):
            raise ProtocolError("'deadline' must be a positive number "
                                "of seconds")
    if op == "mutate" and not (isinstance(payload.get("updates"), list)
                               or isinstance(payload.get("script"), str)):
        raise ProtocolError("a mutate request needs 'updates' or 'script'")
    return op


# ----------------------------------------------------------------------
# Clique serialisation
# ----------------------------------------------------------------------
def clique_to_wire(clique: Iterable) -> list:
    """A canonical JSON-ready form of one quasi-clique (labels sorted)."""
    return sorted(clique, key=lambda label: (str(type(label)), str(label)))


def wire_to_clique(labels: Iterable) -> frozenset:
    """The inverse of :func:`clique_to_wire`."""
    return frozenset(labels)


# ----------------------------------------------------------------------
# Error transport
# ----------------------------------------------------------------------
def error_payload(exc: BaseException) -> dict:
    """The ``error`` frame for an exception (class name + message)."""
    payload = {"type": "error", "error": type(exc).__name__, "message": str(exc)}
    if isinstance(exc, ServiceOverloadedError):
        payload["running"] = exc.running
        payload["queued"] = exc.queued
    if isinstance(exc, CircuitOpenError) and exc.retry_after is not None:
        payload["retry_after"] = round(exc.retry_after, 6)
    return payload


def _error_classes() -> dict[str, type]:
    """Every :class:`ReproError` subclass currently importable, by name."""
    classes: dict[str, type] = {}
    stack = [ReproError]
    while stack:
        cls = stack.pop()
        classes[cls.__name__] = cls
        stack.extend(cls.__subclasses__())
    return classes


def exception_from_payload(payload: dict) -> ReproError:
    """Reconstruct the typed exception described by an ``error`` frame.

    Known :class:`ReproError` subclasses come back as themselves (so client
    code can ``except ServiceOverloadedError`` across the wire); anything
    else degrades to a plain :class:`ReproError` tagged with the server-side
    class name.
    """
    name = payload.get("error", "ReproError")
    message = payload.get("message", "")
    cls = _error_classes().get(name)
    if cls is ServiceOverloadedError:
        return ServiceOverloadedError(message, running=payload.get("running"),
                                      queued=payload.get("queued"))
    if cls is CircuitOpenError:
        return CircuitOpenError(message, retry_after=payload.get("retry_after"))
    if cls is not None:
        try:
            return cls(message)
        except TypeError:  # pragma: no cover - exotic constructor signature
            pass
    return ReproError(f"{name}: {message}" if name != "ReproError" else message)


__all__ = [
    "DEFAULT_BATCH_SIZE",
    "HTTP_METHODS",
    "OPERATIONS",
    "ProtocolError",
    "clique_to_wire",
    "decode_frame",
    "encode_frame",
    "error_payload",
    "exception_from_payload",
    "validate_request",
    "wire_to_clique",
]
