"""Additional graph interchange formats: adjacency lists, JSON and DIMACS.

The KONECT-style edge list (``repro.graph.io``) is the primary format; these
extra readers/writers make it easy to pull graphs out of other tooling:

* *adjacency list* — one line per vertex: ``v: n1 n2 n3`` (the separator is
  optional), as produced by many network-analysis scripts,
* *JSON* — ``{"vertices": [...], "edges": [[u, v], ...]}``, convenient for web
  tooling and for storing enumeration results next to their input, and
* *DIMACS* — the classic ``p edge n m`` / ``e u v`` format used by the clique
  and colouring communities (vertices are 1-based integers).
"""

from __future__ import annotations

import json
import os
from typing import TextIO, Union

from .graph import Graph, GraphError

PathLike = Union[str, os.PathLike]


def _open_for(path_or_file, mode: str):
    if hasattr(path_or_file, "read") or hasattr(path_or_file, "write"):
        return path_or_file, False
    return open(path_or_file, mode, encoding="utf-8"), True


def _maybe_int(token: str):
    try:
        return int(token)
    except ValueError:
        return token


# ----------------------------------------------------------------------
# Adjacency lists
# ----------------------------------------------------------------------
def read_adjacency_list(path_or_file: Union[PathLike, TextIO], as_int: bool = True) -> Graph:
    """Read an adjacency-list file: ``vertex[:] neighbour neighbour ...`` per line."""
    handle, should_close = _open_for(path_or_file, "r")
    try:
        graph = Graph()
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith(("#", "%")):
                continue
            head, _, tail = line.partition(":")
            if _:
                tokens = [head.strip()] + tail.split()
            else:
                tokens = line.split()
            if not tokens:
                continue
            labels = [(_maybe_int(t) if as_int else t) for t in tokens]
            vertex = labels[0]
            graph.add_vertex(vertex)
            for neighbour in labels[1:]:
                if neighbour == vertex:
                    raise GraphError(f"line {line_number}: self-loop on {vertex!r}")
                graph.add_edge(vertex, neighbour)
        return graph
    finally:
        if should_close:
            handle.close()


def write_adjacency_list(graph: Graph, path_or_file: Union[PathLike, TextIO]) -> None:
    """Write the graph as an adjacency list (``v: n1 n2 ...`` per vertex)."""
    handle, should_close = _open_for(path_or_file, "w")
    try:
        for vertex in graph.vertices():
            neighbours = " ".join(str(n) for n in sorted(graph.neighbors(vertex), key=str))
            handle.write(f"{vertex}: {neighbours}\n")
    finally:
        if should_close:
            handle.close()


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
def graph_to_json_dict(graph: Graph) -> dict:
    """Return the JSON-serialisable dictionary representation of the graph."""
    return {
        "vertices": list(graph.vertices()),
        "edges": [[u, v] for u, v in graph.edges()],
    }


def graph_from_json_dict(data: dict) -> Graph:
    """Build a graph from the dictionary produced by :func:`graph_to_json_dict`."""
    if "edges" not in data:
        raise GraphError("JSON graph document must contain an 'edges' list")
    return Graph(edges=[tuple(edge) for edge in data["edges"]],
                 vertices=data.get("vertices"))


def read_json_graph(path_or_file: Union[PathLike, TextIO]) -> Graph:
    """Read a graph from a JSON document."""
    handle, should_close = _open_for(path_or_file, "r")
    try:
        return graph_from_json_dict(json.load(handle))
    finally:
        if should_close:
            handle.close()


def write_json_graph(graph: Graph, path_or_file: Union[PathLike, TextIO],
                     indent: int | None = None) -> None:
    """Write a graph as a JSON document."""
    handle, should_close = _open_for(path_or_file, "w")
    try:
        json.dump(graph_to_json_dict(graph), handle, indent=indent)
    finally:
        if should_close:
            handle.close()


# ----------------------------------------------------------------------
# DIMACS
# ----------------------------------------------------------------------
def read_dimacs(path_or_file: Union[PathLike, TextIO]) -> Graph:
    """Read a DIMACS ``p edge`` file (``c`` comments, ``e u v`` edge lines)."""
    handle, should_close = _open_for(path_or_file, "r")
    try:
        graph = Graph()
        declared_vertices = None
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) < 4:
                    raise GraphError(f"line {line_number}: malformed problem line {line!r}")
                declared_vertices = int(parts[2])
                for vertex in range(1, declared_vertices + 1):
                    graph.add_vertex(vertex)
            elif parts[0] == "e":
                if len(parts) < 3:
                    raise GraphError(f"line {line_number}: malformed edge line {line!r}")
                u, v = int(parts[1]), int(parts[2])
                if u == v:
                    continue
                graph.add_edge(u, v)
            else:
                raise GraphError(f"line {line_number}: unknown DIMACS record {parts[0]!r}")
        if declared_vertices is None:
            raise GraphError("DIMACS file has no 'p edge' problem line")
        return graph
    finally:
        if should_close:
            handle.close()


def write_dimacs(graph: Graph, path_or_file: Union[PathLike, TextIO],
                 comment: str = "") -> None:
    """Write the graph in DIMACS format (vertices renumbered to 1..n)."""
    handle, should_close = _open_for(path_or_file, "w")
    try:
        if comment:
            for line in comment.splitlines():
                handle.write(f"c {line}\n")
        handle.write(f"p edge {graph.vertex_count} {graph.edge_count}\n")
        index_of = {label: position + 1 for position, label in enumerate(graph.vertices())}
        for u, v in graph.edges():
            handle.write(f"e {index_of[u]} {index_of[v]}\n")
    finally:
        if should_close:
            handle.close()
