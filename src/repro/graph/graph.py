"""Undirected simple graph used by every algorithm in the library.

The graph stores vertices under arbitrary hashable *labels* but internally
assigns each vertex a dense integer index in ``0..n-1``.  Adjacency is kept in
two synchronized forms:

* ``adjacency_sets[i]`` -- a ``set`` of neighbour indices, convenient for
  Python-level iteration, and
* ``adjacency_masks[i]`` -- a Python ``int`` bitmask with bit ``j`` set when
  ``(i, j)`` is an edge.  Bitmasks make the branch-and-bound inner loops cheap:
  ``(adjacency_masks[v] & candidate_mask).bit_count()`` counts neighbours of
  ``v`` inside an arbitrary vertex set in ``O(n / 64)``.

The graph is fully dynamic: vertices and edges can be added *and removed* at
any time.  ``remove_vertex`` keeps the index space dense by swapping the
last-indexed vertex into the freed slot (labels are stable, indices are not),
so the bitmask invariants the enumeration algorithms rely on always hold.
Every successful mutation bumps the monotonically increasing
:attr:`Graph.version` counter; once a consumer has attached the
:class:`~repro.graph.delta.GraphDelta` changelog (first access to
:attr:`Graph.delta`), mutations are additionally recorded there — which is how
:class:`repro.dynamic.DynamicEngine` maintains its memoized artifacts and
result cache incrementally.  Unwatched graphs (including the many internal
subgraphs the enumeration algorithms build and discard) pay only the integer
increment.  Enumeration algorithms treat the graph as read-only while they
run.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Optional

from ..errors import ReproError
from .delta import DEFAULT_LOG_CAPACITY, GraphDelta

VertexLabel = Hashable


class GraphError(ReproError, ValueError):
    """Raised for invalid graph operations (unknown vertices, self-loops, ...)."""


class Graph:
    """An undirected, unweighted, simple graph with label <-> index mapping."""

    def __init__(self, edges: Optional[Iterable[tuple[VertexLabel, VertexLabel]]] = None,
                 vertices: Optional[Iterable[VertexLabel]] = None,
                 delta_capacity: int | None = DEFAULT_LOG_CAPACITY) -> None:
        self._labels: list[VertexLabel] = []
        self._index_of: dict[VertexLabel, int] = {}
        self._adjacency_sets: list[set[int]] = []
        self._adjacency_masks: list[int] = []
        self._edge_count = 0
        self._version = 0
        self._delta: Optional[GraphDelta] = None  # attached on first .delta access
        self._delta_capacity = delta_capacity
        if vertices is not None:
            for label in vertices:
                self.add_vertex(label)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, label: VertexLabel) -> int:
        """Add a vertex and return its index; a no-op if the label exists."""
        existing = self._index_of.get(label)
        if existing is not None:
            return existing
        index = len(self._labels)
        self._labels.append(label)
        self._index_of[label] = index
        self._adjacency_sets.append(set())
        self._adjacency_masks.append(0)
        self._record("add_vertex", label)
        return index

    def add_edge(self, u: VertexLabel, v: VertexLabel) -> None:
        """Add an undirected edge, creating the endpoints if needed."""
        if u == v:
            raise GraphError(f"self-loops are not allowed (vertex {u!r})")
        i = self.add_vertex(u)
        j = self.add_vertex(v)
        if j in self._adjacency_sets[i]:
            return
        self._adjacency_sets[i].add(j)
        self._adjacency_sets[j].add(i)
        self._adjacency_masks[i] |= 1 << j
        self._adjacency_masks[j] |= 1 << i
        self._edge_count += 1
        self._record("add_edge", u, v)

    def remove_edge(self, u: VertexLabel, v: VertexLabel) -> None:
        """Remove the undirected edge ``(u, v)``; raises if it does not exist."""
        i = self.index_of(u)
        j = self.index_of(v)
        if j not in self._adjacency_sets[i]:
            raise GraphError(f"no edge between {u!r} and {v!r}")
        self._adjacency_sets[i].discard(j)
        self._adjacency_sets[j].discard(i)
        self._adjacency_masks[i] &= ~(1 << j)
        self._adjacency_masks[j] &= ~(1 << i)
        self._edge_count -= 1
        self._record("remove_edge", u, v)

    def remove_vertex(self, label: VertexLabel) -> None:
        """Remove a vertex and all its incident edges.

        Indices stay dense: the vertex currently holding the highest index is
        swapped into the freed slot, so *labels* are stable across removals
        but *indices* (and therefore adjacency bitmask layouts) are not.  The
        changelog records the incident ``remove_edge`` mutations followed by
        one ``remove_vertex`` mutation.
        """
        index = self.index_of(label)
        for neighbour in list(self._adjacency_sets[index]):
            self.remove_edge(label, self._labels[neighbour])
        # The vertex is isolated now; compact the index space by moving the
        # last vertex into its slot (a no-op when it already is the last).
        last = len(self._labels) - 1
        if index != last:
            moved = self._labels[last]
            self._labels[index] = moved
            self._index_of[moved] = index
            self._adjacency_sets[index] = self._adjacency_sets[last]
            self._adjacency_masks[index] = self._adjacency_masks[last]
            for neighbour in self._adjacency_sets[index]:
                self._adjacency_sets[neighbour].discard(last)
                self._adjacency_sets[neighbour].add(index)
                self._adjacency_masks[neighbour] = (
                    (self._adjacency_masks[neighbour] & ~(1 << last)) | (1 << index))
        self._labels.pop()
        self._adjacency_sets.pop()
        self._adjacency_masks.pop()
        del self._index_of[label]
        self._record("remove_vertex", label)

    # ------------------------------------------------------------------
    # Change tracking
    # ------------------------------------------------------------------
    def _record(self, op: str, u: VertexLabel, v: VertexLabel | None = None) -> None:
        """Bump the version and, when a changelog is attached, record the mutation."""
        self._version += 1
        if self._delta is not None:
            self._delta.record(op, u, v)

    @property
    def version(self) -> int:
        """Monotonically increasing mutation counter (0 for a pristine graph).

        Unlike the ``(vertex_count, edge_count)`` pair, the version changes on
        *every* content mutation — an add/remove pair that restores the counts
        still advances it — so snapshots keyed on the version can never serve
        stale derived state.
        """
        return self._version

    @property
    def delta(self) -> GraphDelta:
        """The bounded changelog of applied mutations (see :class:`GraphDelta`).

        Attached lazily: the first access starts recording at the current
        version, so consumers should snapshot :attr:`version` no earlier than
        when they first touch this property.  ``since()`` reports versions
        from before the attachment as a history gap (``None``).
        """
        if self._delta is None:
            self._delta = GraphDelta(capacity=self._delta_capacity,
                                     start_version=self._version)
        return self._delta

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[VertexLabel, VertexLabel]],
                   vertices: Optional[Iterable[VertexLabel]] = None) -> "Graph":
        """Build a graph from an iterable of (u, v) pairs."""
        return cls(edges=edges, vertices=vertices)

    @classmethod
    def from_adjacency(cls, adjacency: dict[VertexLabel, Iterable[VertexLabel]]) -> "Graph":
        """Build a graph from a mapping ``vertex -> iterable of neighbours``."""
        graph = cls(vertices=adjacency.keys())
        for u, neighbours in adjacency.items():
            for v in neighbours:
                graph.add_edge(u, v)
        return graph

    @classmethod
    def from_csr(cls, labels: Iterable[VertexLabel], indptr, indices, *,
                 edge_count: int | None = None) -> "Graph":
        """Build a frozen CSR-backed graph from flat adjacency arrays.

        ``indptr`` holds ``n + 1`` row offsets and ``indices`` the
        concatenated, ascending-sorted neighbour lists — O(V + E) memory
        instead of the O(n^2)-bit dual representation this class keeps.  The
        result is a :class:`repro.core.csr.CSRGraph`: a read-only facade
        whose accessors (and therefore every enumeration answer) match a
        dict-backed graph of the same content exactly; mutations raise
        :class:`GraphError` and ``thaw()`` converts back to a mutable graph.
        """
        from ..core.csr import CSRGraph

        return CSRGraph(labels, indptr, indices, edge_count=edge_count)

    @classmethod
    def from_dense_adjacency(cls, labels: Iterable[VertexLabel],
                             adjacency_masks: Iterable[int]) -> "Graph":
        """Build a graph directly from index-aligned adjacency bitmasks.

        ``adjacency_masks[i]`` is the neighbour bitmask of ``labels[i]`` in the
        new graph's own index space.  The masks must describe a simple
        undirected graph (symmetric, no self-loop bits); the caller is trusted
        because this is the hot constructor for per-subproblem compact
        subgraphs — it installs adjacency wholesale instead of re-inserting
        every edge through :meth:`add_edge`.
        """
        graph = cls()
        labels = list(labels)
        graph._labels = labels
        graph._index_of = {label: index for index, label in enumerate(labels)}
        masks = list(adjacency_masks)
        graph._adjacency_masks = masks
        graph._adjacency_sets = [set(iter_bits(mask)) for mask in masks]
        graph._edge_count = sum(mask.bit_count() for mask in masks) // 2
        graph._version = 1
        return graph

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def vertex_count(self) -> int:
        return len(self._labels)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, label: VertexLabel) -> bool:
        return label in self._index_of

    def __iter__(self) -> Iterator[VertexLabel]:
        return iter(self._labels)

    def vertices(self) -> list[VertexLabel]:
        """Return all vertex labels in index order."""
        return list(self._labels)

    def edges(self) -> list[tuple[VertexLabel, VertexLabel]]:
        """Return all edges once, as (label, label) pairs with i < j by index."""
        result = []
        for i, neighbours in enumerate(self._adjacency_sets):
            for j in neighbours:
                if i < j:
                    result.append((self._labels[i], self._labels[j]))
        return result

    def has_edge(self, u: VertexLabel, v: VertexLabel) -> bool:
        i = self._index_of.get(u)
        j = self._index_of.get(v)
        if i is None or j is None:
            return False
        return j in self._adjacency_sets[i]

    def index_of(self, label: VertexLabel) -> int:
        """Return the internal index of a vertex label."""
        try:
            return self._index_of[label]
        except KeyError:
            raise GraphError(f"unknown vertex {label!r}") from None

    def label_of(self, index: int) -> VertexLabel:
        """Return the label of an internal index."""
        if not 0 <= index < len(self._labels):
            raise GraphError(f"vertex index {index} out of range")
        return self._labels[index]

    def labels_of(self, indices: Iterable[int]) -> frozenset[VertexLabel]:
        """Map a collection of indices back to a frozenset of labels."""
        return frozenset(self.label_of(i) for i in indices)

    def indices_of(self, labels: Iterable[VertexLabel]) -> frozenset[int]:
        """Map a collection of labels to a frozenset of indices."""
        return frozenset(self.index_of(label) for label in labels)

    # ------------------------------------------------------------------
    # Neighbourhoods and degrees (label space)
    # ------------------------------------------------------------------
    def neighbors(self, label: VertexLabel) -> frozenset[VertexLabel]:
        """Return the neighbours of a vertex, as labels."""
        index = self.index_of(label)
        return frozenset(self._labels[j] for j in self._adjacency_sets[index])

    def degree(self, label: VertexLabel) -> int:
        return len(self._adjacency_sets[self.index_of(label)])

    def degree_sequence(self) -> list[int]:
        """Return every vertex degree in index order (O(V + E), no masks)."""
        return [len(neighbours) for neighbours in self._adjacency_sets]

    def max_degree(self) -> int:
        """Return the maximum vertex degree (0 for an empty graph)."""
        if not self._adjacency_sets:
            return 0
        return max(len(neighbours) for neighbours in self._adjacency_sets)

    def density(self) -> float:
        """Return the edge density |E| / |V| used in the paper's Table 1."""
        if not self._labels:
            return 0.0
        return self._edge_count / len(self._labels)

    # ------------------------------------------------------------------
    # Index-space accessors used by the branch-and-bound engine
    # ------------------------------------------------------------------
    def adjacency_set(self, index: int) -> set[int]:
        """Return the neighbour-index set of a vertex index (do not mutate)."""
        return self._adjacency_sets[index]

    def adjacency_mask(self, index: int) -> int:
        """Return the neighbour bitmask of a vertex index."""
        return self._adjacency_masks[index]

    def adjacency_masks(self) -> list[int]:
        """Return the full list of adjacency bitmasks (do not mutate)."""
        return self._adjacency_masks

    def full_mask(self) -> int:
        """Return the bitmask with one bit per vertex of the graph."""
        return (1 << len(self._labels)) - 1

    def mask_of(self, labels: Iterable[VertexLabel]) -> int:
        """Return the bitmask of a collection of vertex labels."""
        mask = 0
        for label in labels:
            mask |= 1 << self.index_of(label)
        return mask

    def labels_of_mask(self, mask: int) -> frozenset[VertexLabel]:
        """Return the labels whose bits are set in ``mask``."""
        return frozenset(self._labels[i] for i in iter_bits(mask))

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, labels: Iterable[VertexLabel]) -> "Graph":
        """Return the subgraph induced by ``labels`` (as a new Graph)."""
        kept = set(labels)
        for label in kept:
            self.index_of(label)  # validate
        subgraph = Graph(vertices=sorted(kept, key=self.index_of))
        for u, v in self.edges():
            if u in kept and v in kept:
                subgraph.add_edge(u, v)
        return subgraph

    def copy(self) -> "Graph":
        """Return a deep copy of the graph."""
        clone = Graph(vertices=self._labels)
        for u, v in self.edges():
            clone.add_edge(u, v)
        return clone

    def relabeled(self) -> "Graph":
        """Return a copy whose labels are the integer indices 0..n-1."""
        clone = Graph(vertices=range(len(self._labels)))
        for i, neighbours in enumerate(self._adjacency_sets):
            for j in neighbours:
                if i < j:
                    clone.add_edge(i, j)
        return clone

    def to_networkx(self):  # pragma: no cover - convenience bridge
        """Return a ``networkx.Graph`` copy (requires networkx)."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(self._labels)
        nx_graph.add_edges_from(self.edges())
        return nx_graph

    @classmethod
    def from_networkx(cls, nx_graph) -> "Graph":
        """Build a graph from a ``networkx.Graph``."""
        return cls(edges=nx_graph.edges(), vertices=nx_graph.nodes())

    def __repr__(self) -> str:
        return f"Graph(|V|={self.vertex_count}, |E|={self.edge_count})"


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the indices of the set bits of ``mask`` in increasing order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_to_set(mask: int) -> set[int]:
    """Return the set of indices of the set bits of ``mask``."""
    return set(iter_bits(mask))


def set_to_mask(indices: Iterable[int]) -> int:
    """Return the bitmask with the bits in ``indices`` set."""
    mask = 0
    for index in indices:
        mask |= 1 << index
    return mask
