"""Reading and writing edge-list graph files.

The paper's real datasets come from http://konect.cc/ in a whitespace-separated
edge-list format with optional ``%`` / ``#`` comment lines and optional extra
columns (weights, timestamps) that are ignored for the unweighted MQCE problem.
This module reads that format, plus a symmetric writer used by the examples.
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Iterator
from typing import TextIO, Union

from .graph import Graph, GraphError

PathLike = Union[str, os.PathLike]

_COMMENT_PREFIXES = ("%", "#", "//")


def iter_edge_list(lines: Iterable[str], directed_duplicates_ok: bool = True
                   ) -> Iterator[tuple[str, str]]:
    """Yield (u, v) label pairs from edge-list lines.

    Comment lines, blank lines and self-loops are skipped; extra columns after
    the first two are ignored.  Vertex labels are kept as strings.

    With ``directed_duplicates_ok=False`` a pair that occurs more than once —
    in either orientation, e.g. ``1 2`` followed later by ``2 1`` — raises
    :class:`GraphError` naming the offending line.  Detection keeps one seen
    set of undirected pairs, so it costs O(E) extra memory; leave the flag on
    (the default) for KONECT-style files that legitimately list both
    directions of each edge.
    """
    seen: set[tuple[str, str]] | None = None if directed_duplicates_ok else set()
    for line_number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith(_COMMENT_PREFIXES):
            continue
        parts = line.replace(",", " ").split()
        if len(parts) < 2:
            raise GraphError(f"line {line_number}: expected at least two columns, got {line!r}")
        u, v = parts[0], parts[1]
        if u == v:
            continue
        if seen is not None:
            pair = (u, v) if u <= v else (v, u)
            if pair in seen:
                raise GraphError(
                    f"line {line_number}: duplicate edge {u!r} -- {v!r}")
            seen.add(pair)
        yield u, v


def read_edge_list(path_or_file: Union[PathLike, TextIO], as_int: bool = True,
                   directed_duplicates_ok: bool = True) -> Graph:
    """Read an edge-list file into a :class:`Graph`.

    Parameters
    ----------
    path_or_file:
        File path or an open text file object.
    as_int:
        If true (default), vertex labels that look like integers are converted
        to ``int`` so they round-trip with the synthetic generators.
    directed_duplicates_ok:
        When false, a pair listed twice (either orientation) raises
        :class:`GraphError` naming the line — see :func:`iter_edge_list`.
    """
    if hasattr(path_or_file, "read"):
        return _read_edge_lines(path_or_file, as_int, directed_duplicates_ok)
    with open(path_or_file, "r", encoding="utf-8") as handle:
        return _read_edge_lines(handle, as_int, directed_duplicates_ok)


def _read_edge_lines(handle: Iterable[str], as_int: bool,
                     directed_duplicates_ok: bool = True) -> Graph:
    graph = Graph()
    for u, v in iter_edge_list(handle,
                               directed_duplicates_ok=directed_duplicates_ok):
        if as_int:
            u = _maybe_int(u)
            v = _maybe_int(v)
        graph.add_edge(u, v)
    return graph


def ingest_edge_list(path_or_file: Union[PathLike, TextIO], as_int: bool = True,
                     directed_duplicates_ok: bool = True):
    """Stream an edge-list file into a CSR-backed graph (O(V + E) memory).

    Unlike :func:`read_edge_list`, which inserts every edge into the dict /
    full-width-bitmask :class:`Graph` (O(n^2) bits — unusable at the paper's
    10^5-10^7-vertex dataset sizes), this path interns labels to dense
    indices as lines stream by, accumulates the endpoints in flat ``array``
    buffers, and builds a :class:`repro.core.csr.CSRGraph` in one pass; at no
    point does a per-vertex set, list or bitmask exist.  The returned graph
    is read-only (mutations raise :class:`GraphError`; ``thaw()`` converts
    back) and answers queries identically to :func:`read_edge_list` on the
    same file.
    """
    if hasattr(path_or_file, "read"):
        return _ingest_edge_lines(path_or_file, as_int, directed_duplicates_ok)
    with open(path_or_file, "r", encoding="utf-8") as handle:
        return _ingest_edge_lines(handle, as_int, directed_duplicates_ok)


def _ingest_edge_lines(handle: Iterable[str], as_int: bool,
                       directed_duplicates_ok: bool):
    from ..core.csr import CSRGraph

    pairs = iter_edge_list(handle, directed_duplicates_ok=directed_duplicates_ok)
    if as_int:
        pairs = ((_maybe_int(u), _maybe_int(v)) for u, v in pairs)
    return CSRGraph.from_edge_stream(pairs)


def _maybe_int(label: str):
    """Convert a label to ``int`` only when the text is the canonical decimal
    form — ``str(int(label)) == label``.  A bare ``int()`` call would merge
    distinct labels: ``"01"``, ``"+1"`` and ``"1"`` all parse to ``1``,
    silently collapsing vertices (and dropping edges) on real edge-list files
    that use zero-padded or signed identifiers.
    """
    try:
        value = int(label)
    except ValueError:
        return label
    return value if str(value) == label else label


def write_edge_list(graph: Graph, path_or_file: Union[PathLike, TextIO],
                    header: str = "") -> None:
    """Write a graph as a whitespace-separated edge list."""
    if hasattr(path_or_file, "write"):
        _write_edge_lines(graph, path_or_file, header)
        return
    with open(path_or_file, "w", encoding="utf-8") as handle:
        _write_edge_lines(graph, handle, header)


def _write_edge_lines(graph: Graph, handle: TextIO, header: str) -> None:
    if header:
        for line in header.splitlines():
            handle.write(f"% {line}\n")
    for u, v in graph.edges():
        handle.write(f"{u} {v}\n")


def read_quasi_cliques(path: PathLike) -> list[frozenset]:
    """Read one quasi-clique per line (whitespace-separated vertex labels)."""
    result = []
    with open(path, "r", encoding="utf-8") as handle:
        for raw in handle:
            line = raw.strip()
            if not line or line.startswith(_COMMENT_PREFIXES):
                continue
            result.append(frozenset(_maybe_int(token) for token in line.split()))
    return result


def write_quasi_cliques(quasi_cliques: Iterable[frozenset], path: PathLike) -> None:
    """Write quasi-cliques one per line, vertices sorted for determinism."""
    with open(path, "w", encoding="utf-8") as handle:
        for clique in quasi_cliques:
            handle.write(" ".join(str(v) for v in sorted(clique, key=str)) + "\n")
