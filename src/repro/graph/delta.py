"""Mutation changelog for :class:`~repro.graph.graph.Graph`.

Every successful structural mutation of a graph (vertex or edge added or
removed) is recorded in its :class:`GraphDelta` as a :class:`GraphMutation`
carrying the graph ``version`` the mutation produced.  The version counter is
monotonically increasing and starts at 0 for an empty graph, so *any* change
to the graph content changes the version — unlike the historical
``(vertex_count, edge_count)`` snapshot, which an add-then-remove pair can
silently restore.

Recording is *lazily attached*: a graph only counts versions (one integer
increment per mutation) until the first access to ``graph.delta`` materialises
the changelog, so the enumeration hot paths — which build and discard many
internal subgraphs — never pay for records nobody will read.  Consumers
(notably :class:`repro.dynamic.DynamicEngine`) attach the changelog when they
bind to the graph, snapshot ``graph.version``, and later poll
:meth:`GraphDelta.since` for the mutations applied after that version.  The
log is bounded: for versions older than its retained history — including
everything that happened before it was attached — ``since`` returns ``None``
and the consumer must fall back to a full rebuild.  A composite operation such
as ``Graph.remove_vertex`` appears as its constituent ``remove_edge`` records
followed by one ``remove_vertex`` record, so replaying the log step by step
reproduces the exact graph evolution.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Hashable, Optional

#: Operation names a :class:`GraphMutation` can carry.
MUTATION_OPS = ("add_vertex", "add_edge", "remove_edge", "remove_vertex")

#: Default number of mutation records a graph retains.  Consumers that lag
#: further behind than this must rebuild from the full graph content.
DEFAULT_LOG_CAPACITY = 65536


@dataclass(frozen=True)
class GraphMutation:
    """One applied graph mutation: the operation, its operands and the version."""

    version: int
    op: str
    u: Hashable
    v: Optional[Hashable] = None

    @property
    def endpoints(self) -> tuple:
        """The vertex labels the mutation touches (one for vertex ops, two for edges)."""
        return (self.u,) if self.v is None else (self.u, self.v)

    def __repr__(self) -> str:
        operand = f"{self.u!r}" if self.v is None else f"{self.u!r}, {self.v!r}"
        return f"GraphMutation(v{self.version}: {self.op} {operand})"


class GraphDelta:
    """A bounded, versioned changelog of applied graph mutations."""

    def __init__(self, capacity: int | None = DEFAULT_LOG_CAPACITY,
                 start_version: int = 0) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("delta log capacity must be a positive integer or None")
        self._mutations: deque[GraphMutation] = deque(maxlen=capacity)
        self._version = start_version

    @property
    def version(self) -> int:
        """The version produced by the most recent mutation (0 when pristine)."""
        return self._version

    @property
    def capacity(self) -> int | None:
        return self._mutations.maxlen

    def record(self, op: str, u, v=None) -> GraphMutation:
        """Append one mutation, advancing the version; returns the record."""
        if op not in MUTATION_OPS:
            raise ValueError(f"unknown mutation op {op!r}; expected one of {MUTATION_OPS}")
        self._version += 1
        mutation = GraphMutation(version=self._version, op=op, u=u, v=v)
        self._mutations.append(mutation)
        return mutation

    def since(self, version: int) -> list[GraphMutation] | None:
        """Mutations applied after ``version``, oldest first.

        Returns ``None`` when the log no longer reaches back that far (the
        caller must rebuild from scratch), and ``[]`` when ``version`` is
        current.
        """
        if version >= self._version:
            return []
        # The log must still hold the record for `version + 1`.
        if not self._mutations or self._mutations[0].version > version + 1:
            return None
        # Walk from the newest record so the cost is O(gap), not O(log size).
        pending = []
        for mutation in reversed(self._mutations):
            if mutation.version <= version:
                break
            pending.append(mutation)
        pending.reverse()
        return pending

    def __len__(self) -> int:
        return len(self._mutations)

    def __iter__(self):
        return iter(self._mutations)

    def __repr__(self) -> str:
        return (f"GraphDelta(version={self._version}, retained={len(self)}, "
                f"capacity={self.capacity})")
