"""Random graph generators for the synthetic experiments and the dataset registry.

The paper's synthetic datasets (Section 6, Figure 10) follow the Erdos–Renyi
model parameterised by vertex count and *edge density* ``|E| / |V|``.  The real
KONECT datasets cannot be downloaded in this offline environment, so the
dataset registry (``repro.datasets``) composes the generators below —
power-law backgrounds plus planted quasi-cliques — into deterministic,
scaled-down analogues that preserve the structural properties the algorithms
are sensitive to (sparsity, skewed degrees, locally dense regions).
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence

from .graph import Graph


def erdos_renyi_gnm(vertex_count: int, edge_count: int, seed: int | None = None) -> Graph:
    """Return a G(n, m) random graph with exactly ``edge_count`` distinct edges.

    This matches the paper's synthetic data construction: "we first generate a
    certain number of vertices and then randomly add a certain number of edges
    between pairs of vertices".
    """
    if vertex_count < 0:
        raise ValueError("vertex_count must be non-negative")
    max_edges = vertex_count * (vertex_count - 1) // 2
    if edge_count > max_edges:
        raise ValueError(f"edge_count {edge_count} exceeds the maximum {max_edges}")
    rng = random.Random(seed)
    graph = Graph(vertices=range(vertex_count))
    existing: set[tuple[int, int]] = set()
    while len(existing) < edge_count:
        u = rng.randrange(vertex_count)
        v = rng.randrange(vertex_count)
        if u == v:
            continue
        edge = (u, v) if u < v else (v, u)
        if edge in existing:
            continue
        existing.add(edge)
        graph.add_edge(*edge)
    return graph


def erdos_renyi_by_density(vertex_count: int, edge_density: float, seed: int | None = None) -> Graph:
    """Return an ER graph with ``|E| = round(edge_density * |V|)`` edges."""
    edge_count = int(round(edge_density * vertex_count))
    return erdos_renyi_gnm(vertex_count, edge_count, seed=seed)


def erdos_renyi_gnp(vertex_count: int, probability: float, seed: int | None = None) -> Graph:
    """Return a G(n, p) random graph (each pair independently an edge)."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    rng = random.Random(seed)
    graph = Graph(vertices=range(vertex_count))
    for u in range(vertex_count):
        for v in range(u + 1, vertex_count):
            if rng.random() < probability:
                graph.add_edge(u, v)
    return graph


def barabasi_albert(vertex_count: int, attachment: int, seed: int | None = None) -> Graph:
    """Return a Barabasi–Albert preferential-attachment graph.

    Produces the skewed degree distributions typical of the paper's social and
    web datasets while keeping the degeneracy small.
    """
    if attachment < 1:
        raise ValueError("attachment must be >= 1")
    if vertex_count <= attachment:
        raise ValueError("vertex_count must exceed attachment")
    rng = random.Random(seed)
    graph = Graph(vertices=range(vertex_count))
    # Start from a small clique of `attachment + 1` vertices.
    targets = list(range(attachment + 1))
    for u in targets:
        for v in targets:
            if u < v:
                graph.add_edge(u, v)
    repeated: list[int] = []
    for vertex in targets:
        repeated.extend([vertex] * attachment)
    for new_vertex in range(attachment + 1, vertex_count):
        chosen: set[int] = set()
        while len(chosen) < attachment:
            chosen.add(rng.choice(repeated))
        for target in chosen:
            graph.add_edge(new_vertex, target)
            repeated.append(target)
        repeated.extend([new_vertex] * attachment)
    return graph


def planted_quasi_clique(graph: Graph, members: Sequence, gamma: float,
                         seed: int | None = None) -> Graph:
    """Densify ``G[members]`` in place until it is a gamma-quasi-clique.

    Edges are added between the least-connected member and a random
    non-neighbour member until every member has at least
    ``ceil(gamma * (|members| - 1))`` neighbours inside the group.  Returns the
    same graph object for chaining.
    """
    import math
    from fractions import Fraction

    members = list(members)
    if len(members) < 2:
        return graph
    for member in members:
        if member not in graph:
            graph.add_vertex(member)
    rng = random.Random(seed)
    # Exact rational arithmetic so boundary cases round the same way as the
    # quasi-clique definition in repro.quasiclique.definitions.
    required = math.ceil(Fraction(str(gamma)) * (len(members) - 1))
    member_set = set(members)

    def internal_degree(vertex) -> int:
        return len(graph.neighbors(vertex) & member_set)

    progress = True
    while progress:
        progress = False
        deficient = [m for m in members if internal_degree(m) < required]
        if not deficient:
            break
        vertex = min(deficient, key=internal_degree)
        candidates = [m for m in members
                      if m != vertex and not graph.has_edge(vertex, m)]
        if not candidates:
            break
        graph.add_edge(vertex, rng.choice(candidates))
        progress = True
    return graph


def planted_quasi_clique_graph(vertex_count: int, background_edges: int,
                               clique_sizes: Iterable[int], gamma: float,
                               seed: int | None = None) -> Graph:
    """Return an ER background graph with several planted gamma-quasi-cliques.

    The planted groups are vertex-disjoint and drawn from the lowest vertex
    ids, so tests and the dataset registry can reason about where the dense
    regions are.
    """
    rng = random.Random(seed)
    graph = erdos_renyi_gnm(vertex_count, background_edges, seed=rng.randrange(2**31))
    next_start = 0
    for size in clique_sizes:
        if next_start + size > vertex_count:
            raise ValueError("planted cliques do not fit in the graph")
        members = list(range(next_start, next_start + size))
        planted_quasi_clique(graph, members, gamma, seed=rng.randrange(2**31))
        next_start += size
    return graph


def random_connected_graph(vertex_count: int, extra_edges: int, seed: int | None = None) -> Graph:
    """Return a connected random graph: a random spanning tree plus extra edges."""
    rng = random.Random(seed)
    graph = Graph(vertices=range(vertex_count))
    vertices = list(range(vertex_count))
    rng.shuffle(vertices)
    for position in range(1, vertex_count):
        parent = vertices[rng.randrange(position)]
        graph.add_edge(vertices[position], parent)
    added = 0
    attempts = 0
    max_attempts = 20 * (extra_edges + 1)
    while added < extra_edges and attempts < max_attempts:
        attempts += 1
        u = rng.randrange(vertex_count)
        v = rng.randrange(vertex_count)
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
        added += 1
    return graph
