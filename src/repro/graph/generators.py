"""Random graph generators for the synthetic experiments and the dataset registry.

The paper's synthetic datasets (Section 6, Figure 10) follow the Erdos–Renyi
model parameterised by vertex count and *edge density* ``|E| / |V|``.  The real
KONECT datasets cannot be downloaded in this offline environment, so the
dataset registry (``repro.datasets``) composes the generators below —
power-law backgrounds plus planted quasi-cliques — into deterministic,
scaled-down analogues that preserve the structural properties the algorithms
are sensitive to (sparsity, skewed degrees, locally dense regions).
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterable, Iterator, Sequence

from .graph import Graph


def _gnm_edge_sample(vertex_count: int, edge_count: int,
                     rng: random.Random) -> Iterator[tuple[int, int]]:
    """Yield ``edge_count`` distinct ``(u, v)`` pairs (``u < v``) of a G(n, m) draw.

    Sparse asks — ``edge_count`` at most half the possible pairs — use the
    historical rejection loop with an *identical* rng consumption pattern and
    yield order, so existing seeds keep producing exactly the graphs recorded
    by earlier versions (the dataset registry's pinned analogues depend on
    this).  Dense asks invert the problem: the rejection loop's expected work
    diverges as ``edge_count -> max_edges`` (the last acceptance takes
    O(max_edges) draws), so instead we rejection-sample the *complement* —
    ``max_edges - edge_count`` excluded pairs, where the acceptance rate is
    at least 1/2 by construction — and emit every non-excluded pair in
    lexicographic order.  Seeds on the dense side of the threshold produce
    different (still exact-m) graphs than the pre-fix rejection loop did; no
    registry analogue sits on that side, so nothing recorded moves.
    """
    max_edges = vertex_count * (vertex_count - 1) // 2
    if 2 * edge_count <= max_edges:
        existing: set[tuple[int, int]] = set()
        while len(existing) < edge_count:
            u = rng.randrange(vertex_count)
            v = rng.randrange(vertex_count)
            if u == v:
                continue
            edge = (u, v) if u < v else (v, u)
            if edge in existing:
                continue
            existing.add(edge)
            yield edge
        return
    missing = max_edges - edge_count
    excluded: set[tuple[int, int]] = set()
    while len(excluded) < missing:
        u = rng.randrange(vertex_count)
        v = rng.randrange(vertex_count)
        if u == v:
            continue
        edge = (u, v) if u < v else (v, u)
        if edge in excluded:
            continue
        excluded.add(edge)
    for u in range(vertex_count - 1):
        for v in range(u + 1, vertex_count):
            if (u, v) not in excluded:
                yield u, v


def gnm_edges(vertex_count: int, edge_count: int,
              seed: int | None = None) -> Iterator[tuple[int, int]]:
    """Stream the edges of a G(n, m) draw without building a :class:`Graph`.

    Consumes the rng identically to :func:`erdos_renyi_gnm`, so the same seed
    yields the same edge set — feed it to
    :meth:`repro.core.csr.CSRGraph.from_edge_stream` (or
    :func:`gnm_csr_graph`) for 10^5+-vertex graphs in O(V + E) memory.
    """
    if vertex_count < 0:
        raise ValueError("vertex_count must be non-negative")
    max_edges = vertex_count * (vertex_count - 1) // 2
    if edge_count > max_edges:
        raise ValueError(f"edge_count {edge_count} exceeds the maximum {max_edges}")
    return _gnm_edge_sample(vertex_count, edge_count, random.Random(seed))


def erdos_renyi_gnm(vertex_count: int, edge_count: int, seed: int | None = None) -> Graph:
    """Return a G(n, m) random graph with exactly ``edge_count`` distinct edges.

    This matches the paper's synthetic data construction: "we first generate a
    certain number of vertices and then randomly add a certain number of edges
    between pairs of vertices".
    """
    if vertex_count < 0:
        raise ValueError("vertex_count must be non-negative")
    max_edges = vertex_count * (vertex_count - 1) // 2
    if edge_count > max_edges:
        raise ValueError(f"edge_count {edge_count} exceeds the maximum {max_edges}")
    rng = random.Random(seed)
    graph = Graph(vertices=range(vertex_count))
    for edge in _gnm_edge_sample(vertex_count, edge_count, rng):
        graph.add_edge(*edge)
    return graph


def erdos_renyi_by_density(vertex_count: int, edge_density: float, seed: int | None = None) -> Graph:
    """Return an ER graph with ``|E| = round(edge_density * |V|)`` edges."""
    edge_count = int(round(edge_density * vertex_count))
    return erdos_renyi_gnm(vertex_count, edge_count, seed=seed)


def _pair_from_index(pair_index: int, vertex_count: int) -> tuple[int, int]:
    """Map a lexicographic pair index to the ``(u, v)`` pair with ``u < v``.

    Row ``u`` holds pairs ``(u, u+1) .. (u, n-1)``; the closed-form inverse
    of the cumulative row size ``C(u) = u * (2n - u - 1) / 2`` uses
    ``math.isqrt``, with while-guards absorbing any integer-sqrt rounding.
    """
    t = 2 * vertex_count - 1
    u = (t - math.isqrt(t * t - 8 * pair_index)) // 2
    base = u * (2 * vertex_count - u - 1) // 2
    while base > pair_index:
        u -= 1
        base = u * (2 * vertex_count - u - 1) // 2
    while pair_index - base >= vertex_count - 1 - u:
        base += vertex_count - 1 - u
        u += 1
    return u, u + 1 + (pair_index - base)


def gnp_edges(vertex_count: int, probability: float,
              seed: int | None = None) -> Iterator[tuple[int, int]]:
    """Stream the edges of a G(n, p) draw in O(|E|) expected time.

    Instead of flipping a coin per pair (the O(n^2) loop that made
    ``erdos_renyi_gnp`` unusable past a few thousand vertices), geometric
    skip-sampling jumps straight to the next success: the gap between
    successive edges in the lexicographic pair order is Geometric(p), drawn
    as ``floor(log(1 - U) / log(1 - p))``.  Note the rng consumption differs
    from the old per-pair loop, so a given seed produces a different (equally
    distributed) graph than pre-fix versions did.
    """
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    return _gnp_edge_sample(vertex_count, probability, seed)


def _gnp_edge_sample(vertex_count: int, probability: float,
                     seed: int | None) -> Iterator[tuple[int, int]]:
    total = vertex_count * (vertex_count - 1) // 2
    if probability <= 0.0 or total == 0:
        return
    if probability >= 1.0:
        for u in range(vertex_count - 1):
            for v in range(u + 1, vertex_count):
                yield u, v
        return
    rng = random.Random(seed)
    log_skip = math.log(1.0 - probability)
    pair_index = -1
    while True:
        pair_index += 1 + int(math.log(1.0 - rng.random()) / log_skip)
        if pair_index >= total:
            return
        yield _pair_from_index(pair_index, vertex_count)


def erdos_renyi_gnp(vertex_count: int, probability: float, seed: int | None = None) -> Graph:
    """Return a G(n, p) random graph (each pair independently an edge)."""
    graph = Graph(vertices=range(vertex_count))
    for u, v in gnp_edges(vertex_count, probability, seed=seed):
        graph.add_edge(u, v)
    return graph


def barabasi_albert(vertex_count: int, attachment: int, seed: int | None = None) -> Graph:
    """Return a Barabasi–Albert preferential-attachment graph.

    Produces the skewed degree distributions typical of the paper's social and
    web datasets while keeping the degeneracy small.
    """
    if attachment < 1:
        raise ValueError("attachment must be >= 1")
    if vertex_count <= attachment:
        raise ValueError("vertex_count must exceed attachment")
    rng = random.Random(seed)
    graph = Graph(vertices=range(vertex_count))
    # Start from a small clique of `attachment + 1` vertices.
    targets = list(range(attachment + 1))
    for u in targets:
        for v in targets:
            if u < v:
                graph.add_edge(u, v)
    repeated: list[int] = []
    for vertex in targets:
        repeated.extend([vertex] * attachment)
    for new_vertex in range(attachment + 1, vertex_count):
        chosen: set[int] = set()
        while len(chosen) < attachment:
            chosen.add(rng.choice(repeated))
        for target in chosen:
            graph.add_edge(new_vertex, target)
            repeated.append(target)
        repeated.extend([new_vertex] * attachment)
    return graph


def preferential_attachment_edges(vertex_count: int, attachment: int,
                                  seed: int | None = None
                                  ) -> Iterator[tuple[int, int]]:
    """Stream the edges of a Barabasi–Albert draw without building a graph.

    Mirrors :func:`barabasi_albert` step for step — same validation, same rng
    consumption, same ``repeated`` pool evolution — so the same seed yields
    the same edge set; the power-law degree skew comes out identical.  The
    only state kept is the O(n * attachment) attachment pool, so this scales
    to 10^5+ vertices where the dict/bitmask graph cannot; feed it to
    :func:`powerlaw_csr_graph` or
    :meth:`repro.core.csr.CSRGraph.from_edge_stream`.
    """
    if attachment < 1:
        raise ValueError("attachment must be >= 1")
    if vertex_count <= attachment:
        raise ValueError("vertex_count must exceed attachment")
    return _preferential_attachment_sample(vertex_count, attachment, seed)


def _preferential_attachment_sample(vertex_count: int, attachment: int,
                                    seed: int | None) -> Iterator[tuple[int, int]]:
    rng = random.Random(seed)
    targets = list(range(attachment + 1))
    for u in targets:
        for v in targets:
            if u < v:
                yield u, v
    repeated: list[int] = []
    for vertex in targets:
        repeated.extend([vertex] * attachment)
    for new_vertex in range(attachment + 1, vertex_count):
        chosen: set[int] = set()
        while len(chosen) < attachment:
            chosen.add(rng.choice(repeated))
        for target in chosen:
            yield new_vertex, target
            repeated.append(target)
        repeated.extend([new_vertex] * attachment)


def powerlaw_csr_graph(vertex_count: int, attachment: int,
                       seed: int | None = None):
    """Power-law (Barabasi–Albert) graph built straight into CSR form.

    Content-equal to ``barabasi_albert(vertex_count, attachment, seed)`` for
    the same seed, but O(V + E) memory end to end — the 10^5+-vertex
    generator for the large-graph benchmark tier.
    """
    from ..core.csr import CSRGraph

    return CSRGraph.from_edge_stream(
        preferential_attachment_edges(vertex_count, attachment, seed=seed),
        vertices=range(vertex_count))


def gnm_csr_graph(vertex_count: int, edge_count: int, seed: int | None = None):
    """G(n, m) graph built straight into CSR form (O(V + E) memory)."""
    from ..core.csr import CSRGraph

    return CSRGraph.from_edge_stream(
        gnm_edges(vertex_count, edge_count, seed=seed),
        vertices=range(vertex_count))


def planted_quasi_clique(graph: Graph, members: Sequence, gamma: float,
                         seed: int | None = None) -> Graph:
    """Densify ``G[members]`` in place until it is a gamma-quasi-clique.

    Edges are added between the least-connected member and a random
    non-neighbour member until every member has at least
    ``ceil(gamma * (|members| - 1))`` neighbours inside the group.  Returns the
    same graph object for chaining.
    """
    import math
    from fractions import Fraction

    members = list(members)
    if len(members) < 2:
        return graph
    for member in members:
        if member not in graph:
            graph.add_vertex(member)
    rng = random.Random(seed)
    # Exact rational arithmetic so boundary cases round the same way as the
    # quasi-clique definition in repro.quasiclique.definitions.
    required = math.ceil(Fraction(str(gamma)) * (len(members) - 1))
    member_set = set(members)

    def internal_degree(vertex) -> int:
        return len(graph.neighbors(vertex) & member_set)

    progress = True
    while progress:
        progress = False
        deficient = [m for m in members if internal_degree(m) < required]
        if not deficient:
            break
        vertex = min(deficient, key=internal_degree)
        candidates = [m for m in members
                      if m != vertex and not graph.has_edge(vertex, m)]
        if not candidates:
            break
        graph.add_edge(vertex, rng.choice(candidates))
        progress = True
    return graph


def planted_quasi_clique_graph(vertex_count: int, background_edges: int,
                               clique_sizes: Iterable[int], gamma: float,
                               seed: int | None = None) -> Graph:
    """Return an ER background graph with several planted gamma-quasi-cliques.

    The planted groups are vertex-disjoint and drawn from the lowest vertex
    ids, so tests and the dataset registry can reason about where the dense
    regions are.
    """
    rng = random.Random(seed)
    graph = erdos_renyi_gnm(vertex_count, background_edges, seed=rng.randrange(2**31))
    next_start = 0
    for size in clique_sizes:
        if next_start + size > vertex_count:
            raise ValueError("planted cliques do not fit in the graph")
        members = list(range(next_start, next_start + size))
        planted_quasi_clique(graph, members, gamma, seed=rng.randrange(2**31))
        next_start += size
    return graph


def random_connected_graph(vertex_count: int, extra_edges: int, seed: int | None = None) -> Graph:
    """Return a connected random graph: a random spanning tree plus extra edges."""
    rng = random.Random(seed)
    graph = Graph(vertices=range(vertex_count))
    vertices = list(range(vertex_count))
    rng.shuffle(vertices)
    for position in range(1, vertex_count):
        parent = vertices[rng.randrange(position)]
        graph.add_edge(vertices[position], parent)
    added = 0
    attempts = 0
    max_attempts = 20 * (extra_edges + 1)
    while added < extra_edges and attempts < max_attempts:
        attempts += 1
        u = rng.randrange(vertex_count)
        v = rng.randrange(vertex_count)
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
        added += 1
    return graph
