"""Graph and result statistics reported in the paper's Table 1."""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, asdict

from .core_decomposition import degeneracy
from .graph import Graph


@dataclass(frozen=True)
class GraphStatistics:
    """The per-dataset columns of Table 1 that describe the input graph."""

    vertex_count: int
    edge_count: int
    edge_density: float
    max_degree: int
    degeneracy: int

    def as_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class QuasiCliqueStatistics:
    """The per-dataset columns of Table 1 that describe the enumerated MQCs."""

    count: int
    min_size: int
    max_size: int
    avg_size: float

    def as_dict(self) -> dict:
        return asdict(self)


def graph_statistics(graph: Graph) -> GraphStatistics:
    """Compute |V|, |E|, |E|/|V|, max degree d and degeneracy omega."""
    return GraphStatistics(
        vertex_count=graph.vertex_count,
        edge_count=graph.edge_count,
        edge_density=graph.density(),
        max_degree=graph.max_degree(),
        degeneracy=degeneracy(graph),
    )


def quasi_clique_statistics(quasi_cliques: Iterable[frozenset]) -> QuasiCliqueStatistics:
    """Compute #, |H_min|, |H_max| and |H_avg| over a collection of vertex sets."""
    sizes = [len(clique) for clique in quasi_cliques]
    if not sizes:
        return QuasiCliqueStatistics(count=0, min_size=0, max_size=0, avg_size=0.0)
    return QuasiCliqueStatistics(
        count=len(sizes),
        min_size=min(sizes),
        max_size=max(sizes),
        avg_size=sum(sizes) / len(sizes),
    )
