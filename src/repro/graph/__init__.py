"""Graph substrate: data structure, I/O, decompositions, generators, statistics."""

from .graph import Graph, GraphError, iter_bits, mask_to_set, set_to_mask
from .delta import GraphDelta, GraphMutation
from .io import read_edge_list, write_edge_list, read_quasi_cliques, write_quasi_cliques
from .formats import (
    graph_from_json_dict,
    graph_to_json_dict,
    read_adjacency_list,
    read_dimacs,
    read_json_graph,
    write_adjacency_list,
    write_dimacs,
    write_json_graph,
)
from .subgraph import (
    closed_neighborhood,
    connected_components,
    induced_subgraph_mask,
    is_connected,
    neighborhood_intersection,
    two_hop_mask,
    two_hop_neighborhood,
)
from .core_decomposition import (
    core_numbers,
    degeneracy,
    degeneracy_ordering,
    is_degeneracy_ordering,
    k_core,
    k_core_vertices,
)
from .statistics import GraphStatistics, QuasiCliqueStatistics, graph_statistics, quasi_clique_statistics
from .generators import (
    barabasi_albert,
    erdos_renyi_by_density,
    erdos_renyi_gnm,
    erdos_renyi_gnp,
    planted_quasi_clique,
    planted_quasi_clique_graph,
    random_connected_graph,
)

__all__ = [
    "Graph",
    "GraphError",
    "iter_bits",
    "mask_to_set",
    "set_to_mask",
    "read_edge_list",
    "write_edge_list",
    "read_quasi_cliques",
    "write_quasi_cliques",
    "graph_from_json_dict",
    "graph_to_json_dict",
    "read_adjacency_list",
    "read_dimacs",
    "read_json_graph",
    "write_adjacency_list",
    "write_dimacs",
    "write_json_graph",
    "closed_neighborhood",
    "connected_components",
    "induced_subgraph_mask",
    "is_connected",
    "neighborhood_intersection",
    "two_hop_mask",
    "two_hop_neighborhood",
    "core_numbers",
    "degeneracy",
    "degeneracy_ordering",
    "is_degeneracy_ordering",
    "k_core",
    "k_core_vertices",
    "GraphStatistics",
    "QuasiCliqueStatistics",
    "graph_statistics",
    "quasi_clique_statistics",
    "barabasi_albert",
    "erdos_renyi_by_density",
    "erdos_renyi_gnm",
    "erdos_renyi_gnp",
    "planted_quasi_clique",
    "planted_quasi_clique_graph",
    "random_connected_graph",
]
