"""k-core decomposition and degeneracy ordering (Batagelj–Zaversnik, 2003).

DCFastQC (Algorithm 3) needs two pieces of core machinery:

* line 1 reduces the graph to its ``ceil(gamma * (theta - 1))``-core, because
  every quasi-clique of size >= theta lives inside that core, and
* line 2 computes a degeneracy ordering, which bounds each divide-and-conquer
  subgraph by ``O(omega * d)`` vertices.

Both are implemented with the linear-time bucket algorithm.
"""

from __future__ import annotations

from collections.abc import Iterable

from .graph import Graph, VertexLabel


def core_numbers(graph: Graph) -> dict[VertexLabel, int]:
    """Return the core number of every vertex.

    The core number of ``v`` is the largest ``k`` such that ``v`` belongs to
    the ``k``-core (the maximal subgraph with minimum degree >= k).
    """
    order, cores = _degeneracy_order_and_cores(graph)
    del order
    return cores


def degeneracy(graph: Graph) -> int:
    """Return the degeneracy ``omega`` of the graph (0 for an empty graph)."""
    cores = core_numbers(graph)
    if not cores:
        return 0
    return max(cores.values())


def degeneracy_ordering(graph: Graph) -> list[VertexLabel]:
    """Return a degeneracy ordering of the vertices.

    The ordering repeatedly removes a vertex of minimum remaining degree.  It
    has the property that every vertex has at most ``omega`` neighbours among
    the vertices that come *after* it in the ordering.
    """
    order, cores = _degeneracy_order_and_cores(graph)
    del cores
    return order


def _degeneracy_order_and_cores(graph: Graph) -> tuple[list[VertexLabel], dict[VertexLabel, int]]:
    n = graph.vertex_count
    if n == 0:
        return [], {}
    if getattr(graph, "indptr", None) is not None:
        # CSR-backed graph: run the bucket algorithm over the flat rows.
        # Building the mask list below would transiently materialise O(n^2)
        # bits — exactly what the CSR tier exists to avoid.  The native
        # variant mirrors this function's scan order bit for bit (ascending
        # bucket init, LIFO pops with the stale skip, ascending neighbour
        # walks over the sorted rows), so orderings and core numbers are
        # identical for identical content.
        from ..core.csr import csr_degeneracy_order_and_cores

        order_indices, core_of_index = csr_degeneracy_order_and_cores(graph)
        order = [graph.label_of(i) for i in order_indices]
        cores = {graph.label_of(i): core_of_index[i] for i in range(n)}
        return order, cores
    masks = graph.adjacency_masks()
    degrees = [mask.bit_count() for mask in masks]
    max_degree = max(degrees)
    buckets: list[list[int]] = [[] for _ in range(max_degree + 1)]
    for index, degree in enumerate(degrees):
        buckets[degree].append(index)
    position_removed = [False] * n
    current_degree = list(degrees)
    order_indices: list[int] = []
    core_of_index = [0] * n
    current_core = 0
    pointer = 0
    removed = 0
    bit_length = int.bit_length
    while removed < n:
        # Find the non-empty bucket with the smallest degree.
        while pointer <= max_degree and not buckets[pointer]:
            pointer += 1
        vertex = buckets[pointer].pop()
        if position_removed[vertex] or current_degree[vertex] != pointer:
            # Stale entry (the vertex's degree changed after it was bucketed).
            continue
        position_removed[vertex] = True
        removed += 1
        current_core = max(current_core, pointer)
        core_of_index[vertex] = current_core
        order_indices.append(vertex)
        # Neighbour walks run over the adjacency bitmask in ascending index
        # order, so the ordering is a pure function of the graph's *content*
        # — identically-built graphs (e.g. an induced subgraph vs a compact
        # remap of the same vertex set) order identically, whereas Python
        # set iteration would leak each graph object's insertion history
        # into the tie-breaks.
        remaining = masks[vertex]
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            neighbour = bit_length(low) - 1
            if position_removed[neighbour]:
                continue
            current_degree[neighbour] -= 1
            new_degree = current_degree[neighbour]
            buckets[new_degree].append(neighbour)
            if new_degree < pointer:
                pointer = new_degree
    order = [graph.label_of(i) for i in order_indices]
    cores = {graph.label_of(i): core_of_index[i] for i in range(n)}
    return order, cores


def degeneracy_ordering_within(graph: Graph, mask: int) -> list[VertexLabel]:
    """Degeneracy ordering of the induced subgraph ``G[mask]``, as labels.

    For the full mask this is just :func:`degeneracy_ordering`.  On a
    CSR-backed graph the restricted bucket algorithm runs natively over the
    flat rows — O(|mask| + restricted edges) — instead of first extracting a
    compact dict/bitmask subgraph of the whole core (O(core^2) bits, the step
    that would dominate DCFastQC's decompose phase on 10^5-vertex graphs).
    Because compact local indices are assigned in increasing global index,
    the native ordering is exactly what ``degeneracy_ordering(
    compact_subgraph(graph, mask))`` returns; dict-backed graphs simply take
    that compact route.
    """
    if mask == graph.full_mask():
        return degeneracy_ordering(graph)
    if getattr(graph, "indptr", None) is not None:
        from ..core.csr import csr_restricted_degeneracy_order

        return [graph.label_of(i)
                for i in csr_restricted_degeneracy_order(graph, mask)]
    from .subgraph import compact_subgraph

    return degeneracy_ordering(compact_subgraph(graph, mask))


def k_core(graph: Graph, k: int) -> Graph:
    """Return the ``k``-core of the graph as a new (possibly empty) graph.

    The ``k``-core is the maximal induced subgraph in which every vertex has
    degree at least ``k``.  For ``k <= 0`` the graph itself is returned
    (as a copy).
    """
    if k <= 0:
        return graph.copy()
    cores = core_numbers(graph)
    kept = [v for v, core in cores.items() if core >= k]
    return graph.induced_subgraph(kept)


def k_core_vertices(graph: Graph, k: int) -> frozenset[VertexLabel]:
    """Return the vertex set of the ``k``-core without materialising the subgraph."""
    if k <= 0:
        return frozenset(graph.vertices())
    cores = core_numbers(graph)
    return frozenset(v for v, core in cores.items() if core >= k)


def is_degeneracy_ordering(graph: Graph, ordering: Iterable[VertexLabel]) -> bool:
    """Check the defining property of a degeneracy ordering.

    Every vertex must have at most ``degeneracy(graph)`` neighbours among the
    vertices that appear after it in the ordering.
    """
    ordering = list(ordering)
    if set(ordering) != set(graph.vertices()) or len(ordering) != graph.vertex_count:
        return False
    omega = degeneracy(graph)
    position = {v: i for i, v in enumerate(ordering)}
    for v in ordering:
        later = sum(1 for u in graph.neighbors(v) if position[u] > position[v])
        if later > omega:
            return False
    return True
