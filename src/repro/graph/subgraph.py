"""Neighbourhood and subgraph helpers used by the divide-and-conquer framework.

DCFastQC (Algorithm 3) builds, for each vertex ``v_i`` in the degeneracy
ordering, the subgraph induced by the 2-hop neighbourhood of ``v_i`` minus the
vertices that precede ``v_i`` in the ordering (Equation 19).  These helpers
compute 1-hop and 2-hop neighbourhoods both in label space and as bitmasks.
"""

from __future__ import annotations

from collections.abc import Iterable

from .graph import Graph, VertexLabel, iter_bits


def closed_neighborhood(graph: Graph, vertex: VertexLabel) -> frozenset[VertexLabel]:
    """Return ``{vertex} ∪ N(vertex)`` as labels."""
    return graph.neighbors(vertex) | {vertex}


def two_hop_neighborhood(graph: Graph, vertex: VertexLabel,
                         include_center: bool = True) -> frozenset[VertexLabel]:
    """Return all vertices within distance 2 of ``vertex`` (closed by default).

    This is the paper's ``Γ2(v, V)``: for γ >= 0.5 every quasi-clique has
    diameter at most 2 (Property 2), so any MQC containing ``vertex`` lives
    inside this set.
    """
    center = graph.index_of(vertex)
    masks = graph.adjacency_masks()
    one_hop = masks[center]
    reach = one_hop
    for neighbour in iter_bits(one_hop):
        reach |= masks[neighbour]
    if include_center:
        reach |= 1 << center
    else:
        reach &= ~(1 << center)
    return graph.labels_of_mask(reach)


def two_hop_mask(graph: Graph, center_index: int, allowed_mask: int) -> int:
    """Return the bitmask of vertices within distance 2 of ``center_index``.

    Distances are measured inside ``G[allowed_mask]``: only neighbours that are
    themselves allowed can act as the middle vertex of a 2-hop path.  The
    center is always included in the result when it is allowed.
    """
    if getattr(graph, "indptr", None) is not None:
        from ..core.csr import csr_two_hop_mask

        return csr_two_hop_mask(graph, center_index, allowed_mask)
    masks = graph.adjacency_masks()
    one_hop = masks[center_index] & allowed_mask
    reach = one_hop
    for neighbour in iter_bits(one_hop):
        reach |= masks[neighbour]
    reach &= allowed_mask
    reach |= (1 << center_index) & allowed_mask
    return reach


def induced_subgraph_mask(graph: Graph, mask: int) -> Graph:
    """Return the induced subgraph over the vertices whose bits are set."""
    return graph.induced_subgraph(graph.labels_of_mask(mask))


def compact_subgraph(graph: Graph, mask: int) -> Graph:
    """Return ``G[mask]`` remapped onto a dense local index space.

    Local indices are assigned by increasing global index, so any algorithm
    whose tie-breaks follow index order (pivot selection, candidate orderings)
    behaves identically on the compact graph and on the original.  Labels are
    preserved, which is what lets DCFastQC enumerate a subproblem on its own
    small graph — bitmask and ledger widths track ``|mask|`` instead of
    ``|V(G)|`` — while still emitting answers in the original label space.

    Cost: one pass over the members' restricted adjacency, ``O(sum of
    deg(v in G[mask]))``, instead of :meth:`Graph.induced_subgraph`'s full
    edge scan.

    On a CSR-backed graph the extraction scans the flat rows directly (and
    still returns a small dict/bitmask graph — subproblems are exactly where
    the bitmask kernel's branch inner loops should keep running).
    """
    if getattr(graph, "indptr", None) is not None:
        from ..core.csr import csr_compact_subgraph

        return csr_compact_subgraph(graph, mask)
    members = list(iter_bits(mask))
    local_of = {global_index: local for local, global_index in enumerate(members)}
    local_masks = []
    for global_index in members:
        local_mask = 0
        for neighbour in iter_bits(graph.adjacency_mask(global_index) & mask):
            local_mask |= 1 << local_of[neighbour]
        local_masks.append(local_mask)
    return Graph.from_dense_adjacency(
        [graph.label_of(global_index) for global_index in members], local_masks)


def neighborhood_intersection(graph: Graph, u: VertexLabel, v: VertexLabel,
                              restriction: Iterable[VertexLabel] | None = None
                              ) -> frozenset[VertexLabel]:
    """Return the common neighbours of ``u`` and ``v`` (optionally restricted)."""
    common = graph.neighbors(u) & graph.neighbors(v)
    if restriction is not None:
        common &= frozenset(restriction)
    return common


def is_connected(graph: Graph, labels: Iterable[VertexLabel] | None = None) -> bool:
    """Return True if ``G`` (or ``G[labels]``) is connected; empty graphs count as connected."""
    if getattr(graph, "indptr", None) is not None:
        from ..core.csr import csr_is_connected

        return csr_is_connected(
            graph, None if labels is None else graph.mask_of(labels))
    if labels is None:
        allowed = graph.full_mask()
    else:
        allowed = graph.mask_of(labels)
    if allowed == 0:
        return True
    masks = graph.adjacency_masks()
    start = (allowed & -allowed).bit_length() - 1
    seen = 1 << start
    frontier = seen
    while frontier:
        reach = 0
        for vertex in iter_bits(frontier):
            reach |= masks[vertex]
        reach &= allowed
        frontier = reach & ~seen
        seen |= frontier
    return seen == allowed


def connected_components(graph: Graph,
                         within_mask: int | None = None) -> list[frozenset[VertexLabel]]:
    """Return the connected components of the graph as label sets.

    With ``within_mask``, connectivity is computed inside the induced
    subgraph ``G[within_mask]`` only — used by the dynamic prepared graph to
    re-split a single touched component without scanning the whole graph.
    """
    if getattr(graph, "indptr", None) is not None:
        from ..core.csr import csr_connected_components

        return csr_connected_components(graph, within_mask)
    remaining = graph.full_mask() if within_mask is None else within_mask
    masks = graph.adjacency_masks()
    components: list[frozenset[VertexLabel]] = []
    while remaining:
        start = (remaining & -remaining).bit_length() - 1
        seen = 1 << start
        frontier = seen
        while frontier:
            reach = 0
            for vertex in iter_bits(frontier):
                reach |= masks[vertex]
            reach &= remaining
            frontier = reach & ~seen
            seen |= frontier
        components.append(graph.labels_of_mask(seen))
        remaining &= ~seen
    return components
