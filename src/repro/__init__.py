"""repro — maximal quasi-clique enumeration (FastQC / DCFastQC / Quick+).

A production-quality reproduction of "Fast Maximal Quasi-clique Enumeration:
A Pruning and Branching Co-Design Approach" (Yu & Long, SIGMOD).  The package
provides

* :class:`repro.Graph` — the graph substrate,
* :class:`repro.QuerySpec` / :class:`repro.Q` — the declarative query API:
  one hashable spec for every workload (enumerate / top-k / containment /
  count) with budgets and streaming delivery,
* :class:`repro.MQCEEngine` — the persistent query engine (prepared graphs,
  cost-based plan selection, LRU result caching, ``stream()``) for repeated
  queries,
* :class:`repro.FastQC`, :class:`repro.DCFastQC`, :class:`repro.QuickPlus` —
  the MQCE-S1 branch-and-bound algorithms,
* :func:`repro.filter_non_maximal` — the set-trie based MQCE-S2 filter,
* ``repro.datasets`` / ``repro.experiments`` — dataset analogues and the
  table/figure reproduction harness.

Quickstart
----------
>>> from repro import Graph, Q
>>> graph = Graph(edges=[(1, 2), (1, 3), (2, 3), (2, 4), (3, 4), (1, 4)])
>>> result = Q(graph).gamma(0.6).theta(3).run()
>>> sorted(sorted(h) for h in result.maximal_quasi_cliques)
[[1, 2, 3, 4]]

(The PR-1 kwargs entry point ``find_maximal_quasi_cliques(graph, gamma,
theta)`` still works but is deprecated in favour of the spec API.)
"""

from .errors import EngineError, ParameterError, QueryError, ReproError, SpecError
from .graph import Graph, GraphError, read_edge_list, write_edge_list
from .quasiclique import (
    is_maximal_quasi_clique,
    is_quasi_clique,
    satisfies_maximality_necessary_condition,
)
from .core import DCFastQC, FastQC, SearchStatistics, branching_factor
from .baselines import NaiveEnumerator, QuickPlus
from .settrie import SetTrie, filter_non_maximal
from .pipeline import (
    ALGORITHMS,
    EnumerationResult,
    QuasiCliqueStream,
    enumerate_candidate_quasi_cliques,
    find_maximal_quasi_cliques,
    run_enumeration,
    stream_maximal_quasi_cliques,
)
from .extensions import (
    ParallelDCFastQC,
    community_of,
    find_largest_quasi_cliques,
    find_quasi_cliques_containing,
    kernel_expansion_top_k,
)
from .api import Q, QueryBuilder, QuerySpec
from .engine import (
    MQCEEngine,
    PreparedGraph,
    QueryPlan,
    QueryPlanner,
    ResultCache,
    ResultStream,
    prepare_graph,
)
from .dynamic import DynamicEngine, DynamicPreparedGraph, UpdateReport
from .graph import GraphDelta, GraphMutation
from .obs import (
    MetricsRegistry,
    ProgressEvent,
    ProgressTicker,
    Tracer,
    heartbeat,
    render_prometheus,
)
from . import api, datasets, dynamic, engine, experiments, extensions, obs

__version__ = "1.2.0"

__all__ = [
    "Graph",
    "GraphError",
    "ReproError",
    "QueryError",
    "ParameterError",
    "SpecError",
    "EngineError",
    "read_edge_list",
    "write_edge_list",
    "is_quasi_clique",
    "is_maximal_quasi_clique",
    "satisfies_maximality_necessary_condition",
    "FastQC",
    "DCFastQC",
    "QuickPlus",
    "NaiveEnumerator",
    "SearchStatistics",
    "branching_factor",
    "SetTrie",
    "filter_non_maximal",
    "ALGORITHMS",
    "EnumerationResult",
    "QuasiCliqueStream",
    "enumerate_candidate_quasi_cliques",
    "find_maximal_quasi_cliques",
    "run_enumeration",
    "stream_maximal_quasi_cliques",
    "ParallelDCFastQC",
    "community_of",
    "find_largest_quasi_cliques",
    "find_quasi_cliques_containing",
    "kernel_expansion_top_k",
    "Q",
    "QueryBuilder",
    "QuerySpec",
    "MQCEEngine",
    "PreparedGraph",
    "QueryPlan",
    "QueryPlanner",
    "ResultCache",
    "ResultStream",
    "prepare_graph",
    "DynamicEngine",
    "DynamicPreparedGraph",
    "UpdateReport",
    "GraphDelta",
    "GraphMutation",
    "Tracer",
    "MetricsRegistry",
    "ProgressTicker",
    "ProgressEvent",
    "heartbeat",
    "render_prometheus",
    "api",
    "datasets",
    "dynamic",
    "engine",
    "experiments",
    "extensions",
    "obs",
    "__version__",
]
