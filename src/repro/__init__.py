"""repro — maximal quasi-clique enumeration (FastQC / DCFastQC / Quick+).

A production-quality reproduction of "Fast Maximal Quasi-clique Enumeration:
A Pruning and Branching Co-Design Approach" (Yu & Long, SIGMOD).  The package
provides

* :class:`repro.Graph` — the graph substrate,
* :func:`repro.find_maximal_quasi_cliques` — the end-to-end MQCE pipeline,
* :class:`repro.FastQC`, :class:`repro.DCFastQC`, :class:`repro.QuickPlus` —
  the MQCE-S1 branch-and-bound algorithms,
* :func:`repro.filter_non_maximal` — the set-trie based MQCE-S2 filter,
* :class:`repro.MQCEEngine` — the persistent query engine (prepared graphs,
  cost-based plan selection, LRU result caching) for repeated queries,
* ``repro.datasets`` / ``repro.experiments`` — dataset analogues and the
  table/figure reproduction harness.

Quickstart
----------
>>> from repro import Graph, find_maximal_quasi_cliques
>>> graph = Graph(edges=[(1, 2), (1, 3), (2, 3), (2, 4), (3, 4), (1, 4)])
>>> result = find_maximal_quasi_cliques(graph, gamma=0.6, theta=3)
>>> sorted(sorted(h) for h in result.maximal_quasi_cliques)
[[1, 2, 3, 4]]
"""

from .graph import Graph, GraphError, read_edge_list, write_edge_list
from .quasiclique import (
    is_maximal_quasi_clique,
    is_quasi_clique,
    satisfies_maximality_necessary_condition,
)
from .core import DCFastQC, FastQC, SearchStatistics, branching_factor
from .baselines import NaiveEnumerator, QuickPlus
from .settrie import SetTrie, filter_non_maximal
from .pipeline import (
    ALGORITHMS,
    EnumerationResult,
    enumerate_candidate_quasi_cliques,
    find_maximal_quasi_cliques,
)
from .extensions import (
    ParallelDCFastQC,
    community_of,
    find_largest_quasi_cliques,
    find_quasi_cliques_containing,
    kernel_expansion_top_k,
)
from .engine import (
    MQCEEngine,
    PreparedGraph,
    QueryPlan,
    QueryPlanner,
    ResultCache,
    prepare_graph,
)
from . import datasets, engine, experiments, extensions

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "GraphError",
    "read_edge_list",
    "write_edge_list",
    "is_quasi_clique",
    "is_maximal_quasi_clique",
    "satisfies_maximality_necessary_condition",
    "FastQC",
    "DCFastQC",
    "QuickPlus",
    "NaiveEnumerator",
    "SearchStatistics",
    "branching_factor",
    "SetTrie",
    "filter_non_maximal",
    "ALGORITHMS",
    "EnumerationResult",
    "enumerate_candidate_quasi_cliques",
    "find_maximal_quasi_cliques",
    "ParallelDCFastQC",
    "community_of",
    "find_largest_quasi_cliques",
    "find_quasi_cliques_containing",
    "kernel_expansion_top_k",
    "MQCEEngine",
    "PreparedGraph",
    "QueryPlan",
    "QueryPlanner",
    "ResultCache",
    "prepare_graph",
    "datasets",
    "engine",
    "experiments",
    "extensions",
    "__version__",
]
