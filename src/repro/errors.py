"""Unified exception hierarchy for the repro package.

Every error the library raises on *invalid input* descends from
:class:`ReproError`, so callers (and the CLI) can catch one type instead of
guessing which submodule complained:

``ReproError``
    The package-wide base class.
``QueryError``
    Anything wrong with a query description: unknown workload or algorithm,
    contradictory options, an unsatisfiable containment query, ...
``ParameterError``
    The classic MQCE parameter validation (gamma outside [0.5, 1] or a
    non-positive theta).  A :class:`QueryError` subclass.
``SpecError``
    A structurally invalid :class:`repro.api.QuerySpec` (bad field values or
    combinations).  A :class:`QueryError` subclass.
``EngineError``
    Invalid use of the persistent :class:`repro.engine.MQCEEngine` (e.g.
    querying a prepared graph whose underlying graph was mutated).

All of these also subclass :class:`ValueError`, preserving the exception types
the pre-``repro.errors`` releases raised; ``except ValueError`` code keeps
working.  :class:`repro.graph.GraphError` joins the hierarchy from its own
module (it subclasses :class:`ReproError` there) so this module stays
dependency-free.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the repro package."""


class QueryError(ReproError, ValueError):
    """An invalid or unsatisfiable query description."""


class ParameterError(QueryError):
    """Raised when gamma or theta are outside the problem's valid ranges."""


class SpecError(QueryError):
    """Raised when a :class:`repro.api.QuerySpec` is structurally invalid."""


class EngineError(QueryError):
    """Raised for invalid engine usage (e.g. querying a mutated prepared graph)."""


class ServiceOverloadedError(ReproError):
    """Raised when the serving layer sheds a request instead of queueing it.

    The ``repro serve`` admission controller raises (and wire-encodes) this
    when every enumeration slot is busy and the bounded wait queue is full —
    the client should back off and retry rather than pile on.  Not a
    :class:`QueryError`: the query was fine, the server was saturated.
    """

    def __init__(self, message: str = "service overloaded", *,
                 running: int | None = None, queued: int | None = None) -> None:
        super().__init__(message)
        self.running = running
        self.queued = queued


__all__ = [
    "ReproError",
    "QueryError",
    "ParameterError",
    "SpecError",
    "EngineError",
    "ServiceOverloadedError",
]
