"""Unified exception hierarchy for the repro package.

Every error the library raises on *invalid input* descends from
:class:`ReproError`, so callers (and the CLI) can catch one type instead of
guessing which submodule complained:

``ReproError``
    The package-wide base class.
``QueryError``
    Anything wrong with a query description: unknown workload or algorithm,
    contradictory options, an unsatisfiable containment query, ...
``ParameterError``
    The classic MQCE parameter validation (gamma outside [0.5, 1] or a
    non-positive theta).  A :class:`QueryError` subclass.
``SpecError``
    A structurally invalid :class:`repro.api.QuerySpec` (bad field values or
    combinations).  A :class:`QueryError` subclass.
``EngineError``
    Invalid use of the persistent :class:`repro.engine.MQCEEngine` (e.g.
    querying a prepared graph whose underlying graph was mutated).

All of these also subclass :class:`ValueError`, preserving the exception types
the pre-``repro.errors`` releases raised; ``except ValueError`` code keeps
working.  :class:`repro.graph.GraphError` joins the hierarchy from its own
module (it subclasses :class:`ReproError` there) so this module stays
dependency-free.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the repro package."""


class QueryError(ReproError, ValueError):
    """An invalid or unsatisfiable query description."""


class ParameterError(QueryError):
    """Raised when gamma or theta are outside the problem's valid ranges."""


class SpecError(QueryError):
    """Raised when a :class:`repro.api.QuerySpec` is structurally invalid."""


class EngineError(QueryError):
    """Raised for invalid engine usage (e.g. querying a mutated prepared graph)."""


class ServiceOverloadedError(ReproError):
    """Raised when the serving layer sheds a request instead of queueing it.

    The ``repro serve`` admission controller raises (and wire-encodes) this
    when every enumeration slot is busy and the bounded wait queue is full —
    the client should back off and retry rather than pile on.  Not a
    :class:`QueryError`: the query was fine, the server was saturated.
    """

    def __init__(self, message: str = "service overloaded", *,
                 running: int | None = None, queued: int | None = None) -> None:
        super().__init__(message)
        self.running = running
        self.queued = queued


class FaultInjectedError(ReproError):
    """Raised by an armed :mod:`repro.resilience.faults` injection site.

    Chaos tests install a :class:`~repro.resilience.faults.FaultPlan` whose
    ``raise`` rules surface as this type, so recovery code can be asserted to
    retry *injected* faults without accidentally swallowing real bugs.
    """

    def __init__(self, message: str = "injected fault", *,
                 site: str | None = None) -> None:
        super().__init__(message)
        self.site = site


class SpoolCorruptionError(ReproError):
    """A spool payload failed its checksum (truncated or corrupt pickle)."""


class TaskPoisonedError(ReproError):
    """A spooled task exhausted its attempt budget and was quarantined.

    Raised by :meth:`repro.serve.worker.SpoolQueue.collect` once a task has
    been moved to the dead-letter directory; carries the quarantine report.
    """

    def __init__(self, message: str = "task poisoned", *,
                 task_id: str | None = None, report: dict | None = None) -> None:
        super().__init__(message)
        self.task_id = task_id
        self.report = report


class SpoolTimeoutError(ReproError):
    """A spool collect timed out; partial progress rides on the exception.

    ``completed`` holds every :class:`~repro.serve.worker.TaskResult` already
    collected (nothing is discarded) and ``outstanding`` the task ids still
    missing, so a coordinator can resume, report, or degrade gracefully.
    """

    def __init__(self, message: str = "spool collect timed out", *,
                 completed: list | None = None,
                 outstanding: list | None = None) -> None:
        super().__init__(message)
        self.completed = completed or []
        self.outstanding = outstanding or []


class CircuitOpenError(ReproError):
    """A circuit breaker is open: the request fails fast instead of running.

    The serve layer opens one circuit per ``(graph, resolved spec)`` after
    repeated enumeration faults; ``retry_after`` is the seconds until the
    breaker half-opens for a probe.
    """

    def __init__(self, message: str = "circuit open", *,
                 retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineExceededError(ReproError):
    """A request's deadline elapsed before (or while) serving it."""


class ConnectionLostError(ReproError):
    """The serve connection died mid-request (EOF, reset, truncated frame).

    The client closes the dead socket before raising, so the instance is
    reconnectable; retry-aware callers treat this as transient.
    """


__all__ = [
    "ReproError",
    "QueryError",
    "ParameterError",
    "SpecError",
    "EngineError",
    "ServiceOverloadedError",
    "FaultInjectedError",
    "SpoolCorruptionError",
    "TaskPoisonedError",
    "SpoolTimeoutError",
    "CircuitOpenError",
    "DeadlineExceededError",
    "ConnectionLostError",
]
