"""Query-driven maximal quasi-clique search (deprecated kwargs shims).

The related work the paper cites ([11, 12, 25]) studies a constrained variant
of MQCE: find the (maximal) gamma-quasi-cliques that *contain a given set of
query vertices* — e.g. the communities around a particular user, or the
functional groups involving a protein of interest.

Since the :class:`repro.api.QuerySpec` redesign the actual implementation
lives in :func:`repro.api.execute.containment_search` (the ``contains``
workload); this module keeps the original entry points as thin shims:
:func:`find_quasi_cliques_containing` delegates and emits a
:class:`DeprecationWarning`, :func:`community_of` remains a supported
convenience wrapper.  Both still accept a :class:`repro.engine.PreparedGraph`
in place of the graph.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable

from ..errors import QueryError
from ..graph.graph import Graph, VertexLabel
from ..quasiclique.definitions import validate_parameters


def _plain_graph(graph) -> Graph:
    """Accept a Graph or an engine PreparedGraph (imported lazily: no cycle)."""
    from ..engine.prepared import as_plain_graph

    return as_plain_graph(graph)


def find_quasi_cliques_containing(graph: Graph, query: Iterable[VertexLabel],
                                  gamma: float, theta: int = 1,
                                  require_maximal: bool = True) -> list[frozenset]:
    """Enumerate (maximal) gamma-quasi-cliques of size >= theta containing ``query``.

    .. deprecated::
        This kwargs entry point is superseded by the containment workload of
        the :class:`repro.api.QuerySpec` API
        (``Q(graph).gamma(gamma).theta(theta).containing(*query).run()``); it
        now builds the equivalent spec, delegates to
        :func:`repro.api.execute.containment_search` and emits a
        :class:`DeprecationWarning`.

    Parameters
    ----------
    graph, gamma, theta:
        The usual MQCE inputs.
    query:
        Vertices that every returned quasi-clique must contain.  All query
        vertices must exist in the graph and be within distance 2 of each
        other (otherwise no gamma >= 0.5 quasi-clique can contain them and an
        empty list is returned).
    require_maximal:
        When True (default) the result is restricted to quasi-cliques that are
        maximal in the *whole graph* among those found; when False, every
        quasi-clique found for the query seed is returned.
    """
    warnings.warn(
        "find_quasi_cliques_containing() is deprecated; use the QuerySpec "
        "containment workload (Q(graph).gamma(...).theta(...)"
        ".containing(*query).run() or MQCEEngine.query with a spec)",
        DeprecationWarning, stacklevel=2)
    return _containing(graph, query, gamma, theta, require_maximal)


def _containing(graph, query, gamma, theta, require_maximal=True) -> list[frozenset]:
    """Shared warning-free delegation to the spec containment workload."""
    from ..api.execute import containment_search
    from ..api.spec import QuerySpec

    graph = _plain_graph(graph)
    validate_parameters(gamma, theta)
    query_set = frozenset(query)
    if not query_set:
        raise QueryError("the query must contain at least one vertex")
    spec = QuerySpec(gamma=gamma, theta=theta, contains=tuple(query_set),
                     require_maximal=require_maximal)
    return list(containment_search(graph, spec).maximal_quasi_cliques)


def community_of(graph: Graph, vertex: VertexLabel, gamma: float, theta: int = 3
                 ) -> frozenset:
    """Return the largest (maximal) gamma-quasi-clique containing ``vertex``.

    Returns the empty frozenset when no quasi-clique of size >= theta contains
    the vertex.  A convenience wrapper used by the community-search example.
    """
    cliques = _containing(graph, [vertex], gamma, theta)
    return cliques[0] if cliques else frozenset()
