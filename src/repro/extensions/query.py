"""Query-driven maximal quasi-clique search.

The related work the paper cites ([11, 12, 25]) studies a constrained variant
of MQCE: find the (maximal) gamma-quasi-cliques that *contain a given set of
query vertices* — e.g. the communities around a particular user, or the
functional groups involving a protein of interest.  The same FastQC engine
solves this variant directly: the search is seeded with the query vertices as
the partial set and restricted to their joint 2-hop neighbourhood (legal for
gamma >= 0.5 by the diameter-2 property), and the output is filtered for
global maximality against the whole graph.

Both entry points accept a :class:`repro.engine.PreparedGraph` in place of the
graph, so an engine-managed prepared graph can serve containment queries
without unwrapping at every call site.
"""

from __future__ import annotations

from collections.abc import Iterable
from functools import reduce

from ..core.branch import Branch
from ..core.fastqc import FastQC
from ..graph.graph import Graph, VertexLabel
from ..graph.subgraph import two_hop_mask
from ..quasiclique.definitions import degree_threshold, validate_parameters
from ..quasiclique.maximality import satisfies_maximality_necessary_condition
from ..settrie.filter import filter_non_maximal


class QueryError(ValueError):
    """Raised when the query vertices cannot all belong to one quasi-clique."""


def _plain_graph(graph) -> Graph:
    """Accept a Graph or an engine PreparedGraph (imported lazily: no cycle)."""
    from ..engine.prepared import as_plain_graph

    return as_plain_graph(graph)


def _query_candidate_mask(graph: Graph, query_indices: list[int], gamma: float,
                          theta: int) -> int:
    """Candidate region for a query: intersection of the queries' 2-hop balls."""
    full = graph.full_mask()
    balls = [two_hop_mask(graph, index, full) | (1 << index) for index in query_indices]
    region = reduce(lambda a, b: a & b, balls, full)
    # Degree-based shrinking, as in the DC framework's one-hop pruning.
    required = degree_threshold(gamma, theta)
    changed = True
    query_bits = 0
    for index in query_indices:
        query_bits |= 1 << index
    while changed:
        changed = False
        for vertex in list(graph.labels_of_mask(region)):
            index = graph.index_of(vertex)
            if (1 << index) & query_bits:
                continue
            if (graph.adjacency_mask(index) & region).bit_count() < required:
                region &= ~(1 << index)
                changed = True
    return region | query_bits


def find_quasi_cliques_containing(graph: Graph, query: Iterable[VertexLabel],
                                  gamma: float, theta: int = 1,
                                  require_maximal: bool = True) -> list[frozenset]:
    """Enumerate (maximal) gamma-quasi-cliques of size >= theta containing ``query``.

    Parameters
    ----------
    graph, gamma, theta:
        The usual MQCE inputs.
    query:
        Vertices that every returned quasi-clique must contain.  All query
        vertices must exist in the graph and be within distance 2 of each
        other (otherwise no gamma >= 0.5 quasi-clique can contain them and an
        empty list is returned).
    require_maximal:
        When True (default) the result is restricted to quasi-cliques that are
        maximal in the *whole graph* among those found; when False, every
        quasi-clique found for the query seed is returned.
    """
    graph = _plain_graph(graph)
    validate_parameters(gamma, theta)
    query_set = frozenset(query)
    if not query_set:
        raise QueryError("the query must contain at least one vertex")
    query_indices = [graph.index_of(v) for v in query_set]

    region = _query_candidate_mask(graph, query_indices, gamma, max(theta, len(query_set)))
    query_mask = 0
    for index in query_indices:
        query_mask |= 1 << index
    if region & query_mask != query_mask:
        return []

    engine = FastQC(graph, gamma, max(theta, len(query_set)), maximality_filter=False)
    branch = Branch(query_mask, region & ~query_mask, 0)
    found = engine.enumerate_branch(branch)
    found = [clique for clique in found if query_set <= clique]
    if not require_maximal:
        return sorted(found, key=lambda h: (-len(h), sorted(map(str, h))))
    maximal = [clique for clique in filter_non_maximal(found, theta=theta)
               if satisfies_maximality_necessary_condition(graph, clique, gamma)]
    return sorted(maximal, key=lambda h: (-len(h), sorted(map(str, h))))


def community_of(graph: Graph, vertex: VertexLabel, gamma: float, theta: int = 3
                 ) -> frozenset:
    """Return the largest (maximal) gamma-quasi-clique containing ``vertex``.

    Returns the empty frozenset when no quasi-clique of size >= theta contains
    the vertex.  A convenience wrapper used by the community-search example.
    """
    cliques = find_quasi_cliques_containing(graph, [vertex], gamma, theta)
    return cliques[0] if cliques else frozenset()
