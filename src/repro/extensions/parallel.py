"""Parallel DCFastQC: process-level parallelism over the DC subproblems.

The paper's conclusion lists "efficient parallel implementations" as future
work, and its related work covers a task-parallel Quick+ (T-thinker).  The
divide-and-conquer framework is embarrassingly parallel: every subproblem
``(v_i, G_i)`` is independent, so this module shards the subproblems across
worker processes, runs the same FastQC engine in each worker and merges the
outputs before the usual MQCE-S2 filter.

The parent process does the cheap global preprocessing (core reduction,
degeneracy ordering, per-root two-hop shrinking) exactly once and ships each
subproblem as a *compact* payload
(:class:`~repro.core.dcfastqc.CompactSubproblem`): the subproblem's vertices
remapped to a dense local index space with their within-subproblem adjacency
bitmasks.  Workers therefore deserialise and enumerate graphs whose bitmask
and ledger widths track the subproblem size, not the input graph — a few
tuples of small ints per task instead of the whole edge list per worker.

Each payload also carries the subproblem's **one-hop maximality halo** (the
outside neighbours of the ball with their adjacency into it), so workers apply
the maximality necessary-condition filter against exactly the evidence the
sequential driver's full-graph check would consult: the emitted candidate sets
are identical to the sequential driver's, batch for batch, not merely after
the MQCE-S2 set-trie filter.

Two execution modes share this payload surface:

* ``"shard"`` — the original whole-subproblem fan-out over a process pool.
* ``"branch"`` — intra-subproblem work stealing over shared-memory segments
  (:mod:`repro.extensions.stealing`), for the skewed case where one huge
  subproblem would serialize a shard run.

``mode="auto"`` picks between them from the subproblem-size distribution: the
per-subproblem cost grows roughly quadratically with the ball size (mask width
times branch count), so when the largest subproblem's estimated work share
exceeds ``(1 + overhead) / workers`` — the point where sharding's best-case
speedup drops below breaking even against stealing's coordination overhead —
branch mode wins.  The same rule, fed by histograms instead of exact sizes,
drives the query planner's ``parallel`` decision.
"""

from __future__ import annotations

import os
import time
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..core.dcfastqc import CompactSubproblem, DCFastQC, DEFAULT_MAX_ROUNDS
from ..core.fastqc import FastQC
from ..core.stats import SearchStatistics
from ..graph.graph import Graph
from ..obs.metrics import REGISTRY, MetricsRegistry
from ..quasiclique.definitions import validate_parameters
from ..resilience.faults import fault_point
from ..settrie.filter import filter_non_maximal
from .stealing import WorkerCrash, branch_parallel_enumerate

#: Values the ``mode`` knob accepts ("auto" defers to the skew rule).
PARALLEL_MODES = ("auto", "shard", "branch")

#: Relative coordination overhead branch mode must amortise before it beats
#: sharding (steal routing, shared-memory attach, verdict round-trips).
BRANCH_OVERHEAD = 0.25

_STEALS = REGISTRY.counter(
    "repro_parallel_steals_total",
    "Subtrees stolen between branch-parallel workers")
_IDLE_GAPS = REGISTRY.histogram(
    "repro_parallel_idle_gap_ms",
    "Milliseconds branch-parallel workers spent idle between tasks")
_UTILIZATION = REGISTRY.gauge(
    "repro_parallel_utilization",
    "busy_seconds / (workers * wall_seconds) of the last parallel run")
_MODES = REGISTRY.counter(
    "repro_parallel_runs_total",
    "Parallel enumerations by resolved execution mode")

#: Telemetry of the most recent parallel run in this process (surfaced by
#: ``repro engine stats`` next to the registry metrics).
LAST_PARALLEL_RUN: dict = {}

# Module-level worker state, initialised once per worker process.
_WORKER_STATE: dict = {}


def branch_mode_wins(largest_work: float, total_work: float, workers: int,
                     overhead: float = BRANCH_OVERHEAD) -> bool:
    """The shard-vs-branch rule shared by the runtime and the query planner.

    ``largest_work / total_work`` bounds shard parallelism: the run cannot
    finish before its biggest subproblem, so shard speedup <= 1 / share.
    Branch mode pays ~``overhead`` extra coordination; it wins once the shard
    bound drops below ``workers / (1 + overhead)``, i.e. once the largest
    share exceeds ``(1 + overhead) / workers``.
    """
    if workers <= 1 or total_work <= 0:
        return False
    return largest_work / total_work >= (1.0 + overhead) / workers


def subproblem_skew(sizes: Sequence[int]) -> tuple[float, float]:
    """(largest_work, total_work) under the quadratic work proxy."""
    work = [float(size) * float(size) for size in sizes]
    return (max(work), sum(work)) if work else (0.0, 0.0)


def histogram_skew(histogram) -> tuple[float, float]:
    """(largest_work, total_work) of a :class:`SizeHistogram` of ball sizes.

    The planner has only the bounded log2-bucket summary, not the exact size
    list: each bucket's work is estimated at its midpoint (``1.5 * key``)
    squared, while the largest term uses the exactly-recorded max.  Total is
    clamped to at least the largest so the share never exceeds 1.
    """
    if not histogram:
        return (0.0, 0.0)
    largest = float(histogram.max) ** 2
    total = sum(count * (1.5 * key) ** 2
                for key, count in histogram.buckets.items())
    return largest, max(total, largest)


def branch_histogram_skew(histogram) -> tuple[float, float]:
    """(largest_work, total_work) of a histogram of per-subproblem *branch counts*.

    Branch counts measure work directly (no size proxy needed), so the weights
    are linear: each bucket contributes its count times the bucket midpoint
    (``1.5 * key``) and the largest term is the exactly-recorded max.  This is
    the histogram the planner trusts most — a descending chain of similar-size
    balls can hide a 10x work concentration that any size-based proxy misses,
    because subtree depth (not ball size alone) drives the branch count.
    """
    if not histogram:
        return (0.0, 0.0)
    largest = float(histogram.max)
    total = sum(count * 1.5 * key for key, count in histogram.buckets.items())
    return largest, max(total, largest)


def _worker_metrics(engine: FastQC, subproblem: CompactSubproblem) -> dict:
    """Record one subproblem's counters into a throwaway registry snapshot.

    Worker processes cannot inc the parent's :data:`~repro.obs.metrics.REGISTRY`
    directly (each fork has its own copy), so every task returns a snapshot of
    a task-local registry and the parent merges them — counters and histograms
    add up exactly as if the work had run in-process.
    """
    local = MetricsRegistry()
    local.counter("repro_parallel_subproblems_total",
                  "DC subproblems enumerated by pool workers").inc()
    local.counter("repro_parallel_worker_branches_total",
                  "Branches explored inside pool workers").inc(
        engine.statistics.branches_explored)
    local.histogram("repro_parallel_subproblem_sizes",
                    "Vertex counts of subproblems shipped to workers").observe(
        len(subproblem.labels))
    return local.snapshot()


@dataclass(frozen=True)
class _WorkerConfig:
    """The enumeration parameters shared by every shipped subproblem."""

    gamma: float
    theta: int
    branching: str
    kernel: str


def _initialise_worker(config: _WorkerConfig) -> None:
    """Record the shared parameters once per worker process."""
    _WORKER_STATE["config"] = config


def run_compact_subproblem(subproblem: CompactSubproblem, gamma: float,
                           theta: int, branching: str = "hybrid",
                           kernel: str = "ledger"
                           ) -> tuple[list[frozenset], dict, SearchStatistics]:
    """Enumerate one compact DC subproblem (the worker-side unit of work).

    The maximality filter checks single-vertex extensions against the ball
    plus its one-hop halo, which decides exactly like the sequential driver's
    full-graph check (any extension vertex is adjacent to the candidate set,
    hence inside ball ∪ halo) — so the emitted candidate sets are *identical*
    to the sequential driver's for this root, wherever the payload runs: a
    pool worker process here or a ``repro worker`` spool consumer
    (:mod:`repro.serve.worker`).  Returns the candidate sets, a metrics
    snapshot for the coordinating process to merge (see
    :func:`_worker_metrics`) and the worker-side :class:`SearchStatistics`,
    which the parent merges so parallel runs report the same branch counts a
    sequential run would.
    """
    fault_point("engine.subproblem")
    graph = subproblem.build_graph()
    maximality = (subproblem.build_maximality_graph()
                  if subproblem.halo_labels else graph)
    engine = FastQC(graph, gamma, theta,
                    branching=branching, kernel=kernel,
                    maximality_graph=maximality)
    chunk = engine.enumerate_branch(subproblem.initial_branch())
    return chunk, _worker_metrics(engine, subproblem), engine.statistics


def _run_subproblem(subproblem: CompactSubproblem
                    ) -> tuple[list[frozenset], dict, SearchStatistics]:
    """Pool-worker entry point: one subproblem under the per-process config."""
    config: _WorkerConfig = _WORKER_STATE["config"]
    return run_compact_subproblem(subproblem, config.gamma, config.theta,
                                  branching=config.branching,
                                  kernel=config.kernel)


class ParallelDCFastQC:
    """DCFastQC with the per-vertex subproblems distributed over processes.

    Parameters mirror :class:`repro.core.dcfastqc.DCFastQC` plus ``workers``
    (process count, default: CPU count capped at 8), ``chunk_size`` (how many
    subproblems each shard task ships, default 8) and ``mode`` — one of
    :data:`PARALLEL_MODES`: ``"shard"`` fans whole subproblems over a process
    pool, ``"branch"`` runs work-stealing branch parallelism over
    shared-memory segments, ``"auto"`` (default) picks by subproblem skew.

    With ``workers=1``, a single nontrivial subproblem under shard mode, or a
    platform without POSIX multiprocessing, everything runs in-process — no
    pool is ever spun up for work it cannot speed up.  After ``enumerate``,
    :attr:`statistics` holds the parent shrink-phase counters merged with
    every worker's counters (branch counts add up exactly to a sequential
    run's) and :attr:`mode_selected` names the path actually taken
    (``"sequential"``, ``"shard"`` or ``"branch"``).
    """

    def __init__(self, graph: Graph, gamma: float, theta: int,
                 branching: str = "hybrid", kernel: str = "ledger",
                 max_rounds: int = DEFAULT_MAX_ROUNDS,
                 workers: int | None = None, chunk_size: int = 8,
                 mode: str = "auto", steal_schedule=None) -> None:
        # Accept an engine PreparedGraph transparently (lazy import: no cycle).
        from ..engine.prepared import as_plain_graph

        graph = as_plain_graph(graph)
        validate_parameters(gamma, theta)
        if workers is not None and workers < 1:
            raise ValueError("workers must be a positive integer")
        if chunk_size < 1:
            raise ValueError("chunk_size must be a positive integer")
        if mode not in PARALLEL_MODES:
            raise ValueError(f"mode must be one of {PARALLEL_MODES}, got {mode!r}")
        self.graph = graph
        self.gamma = gamma
        self.theta = theta
        self.branching = branching
        self.kernel = kernel
        self.max_rounds = max_rounds
        self.workers = workers if workers is not None else min(8, os.cpu_count() or 1)
        self.chunk_size = chunk_size
        self.mode = mode
        self.steal_schedule = steal_schedule
        self.statistics = SearchStatistics()
        self.mode_selected: str | None = None

    # ------------------------------------------------------------------
    def _driver(self) -> DCFastQC:
        """A sequential driver with this configuration (preprocessing + fallback)."""
        return DCFastQC(self.graph, self.gamma, self.theta, branching=self.branching,
                        kernel=self.kernel, max_rounds=self.max_rounds)

    def _subproblems(self) -> Sequence[CompactSubproblem]:
        """The compact subproblem payloads (parent-side preprocessing)."""
        return tuple(self._driver().iter_compact_subproblems())

    def _sequential(self, driver: DCFastQC | None = None) -> list[frozenset]:
        """In-process fallback, reusing an existing driver's preprocessing."""
        if driver is None:
            driver = self._driver()
        results = driver.enumerate()
        self.statistics = driver.statistics
        self.mode_selected = "sequential"
        return results

    def _enumerate_inline(self, driver: DCFastQC,
                          subproblems: Sequence[CompactSubproblem]
                          ) -> list[frozenset]:
        """Run the compact payloads in-process (no pool worth spinning up)."""
        self.statistics = driver.statistics
        results: set[frozenset] = set()
        for subproblem in subproblems:
            chunk, metrics, stats = run_compact_subproblem(
                subproblem, self.gamma, self.theta,
                branching=self.branching, kernel=self.kernel)
            results.update(chunk)
            REGISTRY.merge(metrics)
            self.statistics.merge(stats)
            self.statistics.subproblem_branches.record(stats.branches_explored)
        self.mode_selected = "sequential"
        return sorted(results, key=lambda h: (-len(h), sorted(map(str, h))))

    def _resolve_mode(self, sizes: Sequence[int]) -> str:
        if self.mode != "auto":
            return self.mode
        largest, total = subproblem_skew(sizes)
        return ("branch"
                if branch_mode_wins(largest, total, self.workers)
                else "shard")

    def enumerate(self) -> list[frozenset]:
        """Return a set of QCs containing every large MQC (MQCE-S1), in parallel."""
        # Cheap workload estimate first (core reduction + ordering only): small
        # jobs run in-process without materialising any compact payloads.
        driver = self._driver()
        ordering = driver._vertex_ordering(driver._core_reduction_mask())
        if not ordering:
            self.statistics = driver.statistics
            self.mode_selected = "sequential"
            return []
        if self.workers <= 1:
            return self._sequential(driver)
        subproblems = tuple(driver.iter_compact_subproblems())
        if not subproblems:
            self.statistics = driver.statistics
            self.mode_selected = "sequential"
            return []
        mode = self._resolve_mode([len(s.labels) for s in subproblems])
        if mode == "branch":
            return self._enumerate_branch(driver, subproblems)
        # Shard mode: pooling cannot beat in-process when there is nothing to
        # spread — a single nontrivial subproblem, or fewer than one pool
        # chunk's worth of payloads.
        if len(subproblems) <= 1 or len(subproblems) <= self.chunk_size // 2:
            return self._enumerate_inline(driver, subproblems)
        return self._enumerate_shard(driver, subproblems)

    def _enumerate_shard(self, driver: DCFastQC,
                         subproblems: Sequence[CompactSubproblem]
                         ) -> list[frozenset]:
        config = _WorkerConfig(gamma=self.gamma, theta=self.theta,
                               branching=self.branching, kernel=self.kernel)
        merged = driver.statistics
        results: set[frozenset] = set()
        started = time.perf_counter()
        try:
            with ProcessPoolExecutor(max_workers=self.workers,
                                     initializer=_initialise_worker,
                                     initargs=(config,)) as pool:
                for chunk, metrics, stats in pool.map(
                        _run_subproblem, subproblems,
                        chunksize=self.chunk_size):
                    results.update(chunk)
                    REGISTRY.merge(metrics)
                    merged.merge(stats)
                    merged.subproblem_branches.record(stats.branches_explored)
        except (OSError, ValueError):  # pragma: no cover - platform fallback
            return self._sequential()
        self.statistics = merged
        self.mode_selected = "shard"
        _record_parallel_run("shard", self.workers, self.statistics,
                             time.perf_counter() - started, idle_gaps_ms=(),
                             worker_branches={})
        return sorted(results, key=lambda h: (-len(h), sorted(map(str, h))))

    def _enumerate_branch(self, driver: DCFastQC,
                          subproblems: Sequence[CompactSubproblem]
                          ) -> list[frozenset]:
        try:
            results, worker_stats, telemetry = branch_parallel_enumerate(
                subproblems, self.gamma, self.theta,
                branching=self.branching, kernel=self.kernel,
                workers=max(2, self.workers),
                steal_schedule=self.steal_schedule)
        except (WorkerCrash, OSError, ValueError):
            # A dead worker (or a platform without POSIX shared memory) must
            # not cost the answer: rerun sequentially.  Segments were already
            # unlinked by the coordinator's cleanup path.
            return self._sequential()
        merged = driver.statistics
        merged.merge(worker_stats)
        self.statistics = merged
        self.mode_selected = "branch"
        _record_parallel_run("branch", telemetry["workers"], self.statistics,
                             telemetry["wall_seconds"],
                             idle_gaps_ms=telemetry["idle_gaps_ms"],
                             worker_branches=telemetry.get("worker_branches", {}))
        return sorted(results, key=lambda h: (-len(h), sorted(map(str, h))))

    def find_maximal(self) -> list[frozenset]:
        """Full parallel MQCE: enumerate in parallel and filter non-maximal QCs."""
        return filter_non_maximal(self.enumerate(), theta=self.theta)


def _record_parallel_run(mode: str, workers: int, stats: SearchStatistics,
                         wall_seconds: float, idle_gaps_ms,
                         worker_branches: dict | None = None) -> None:
    """Publish one parallel run's telemetry to the registry + LAST_PARALLEL_RUN."""
    _MODES.inc(mode=mode)
    if stats.steals:
        _STEALS.inc(stats.steals)
    for gap_ms in idle_gaps_ms:
        _IDLE_GAPS.observe(gap_ms)
    utilization = (stats.parallel_busy_seconds / (workers * wall_seconds)
                   if workers > 0 and wall_seconds > 0 else 0.0)
    if mode == "branch":
        _UTILIZATION.set(round(utilization, 4))
    LAST_PARALLEL_RUN.clear()
    LAST_PARALLEL_RUN.update({
        "mode": mode, "workers": workers,
        "steals": stats.steals,
        "busy_seconds": round(stats.parallel_busy_seconds, 6),
        "wall_seconds": round(wall_seconds, 6),
        "parallel_utilization": round(utilization, 4),
        #: Branches explored per branch-parallel worker ({} for shard runs):
        #: the max entry is the run's critical path in machine-independent
        #: units, which the parallel benchmark compares against the largest
        #: subproblem's branch count to measure load balance.
        "worker_branches": dict(worker_branches or {}),
    })


def parallel_enumerate(graph: Graph, gamma: float, theta: int, workers: int | None = None,
                       **kwargs) -> list[frozenset]:
    """Functional wrapper around :class:`ParallelDCFastQC.enumerate`."""
    return ParallelDCFastQC(graph, gamma, theta, workers=workers, **kwargs).enumerate()
