"""Parallel DCFastQC: process-level parallelism over the DC subproblems.

The paper's conclusion lists "efficient parallel implementations" as future
work, and its related work covers a task-parallel Quick+ (T-thinker).  The
divide-and-conquer framework is embarrassingly parallel: every subproblem
``(v_i, G_i)`` is independent, so this module shards the subproblems across
worker processes, runs the same FastQC engine in each worker and merges the
outputs before the usual MQCE-S2 filter.

The parent process does the cheap global preprocessing (core reduction,
degeneracy ordering, per-root two-hop shrinking) exactly once and ships each
subproblem as a *compact* payload
(:class:`~repro.core.dcfastqc.CompactSubproblem`): the subproblem's vertices
remapped to a dense local index space with their within-subproblem adjacency
bitmasks.  Workers therefore deserialise and enumerate graphs whose bitmask
and ledger widths track the subproblem size, not the input graph — a few
tuples of small ints per task instead of the whole edge list per worker.

Each payload also carries the subproblem's **one-hop maximality halo** (the
outside neighbours of the ball with their adjacency into it), so workers apply
the maximality necessary-condition filter against exactly the evidence the
sequential driver's full-graph check would consult: the emitted candidate sets
are identical to the sequential driver's, batch for batch, not merely after
the MQCE-S2 set-trie filter.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..core.dcfastqc import CompactSubproblem, DCFastQC, DEFAULT_MAX_ROUNDS
from ..core.fastqc import FastQC
from ..graph.graph import Graph
from ..obs.metrics import REGISTRY, MetricsRegistry
from ..quasiclique.definitions import validate_parameters
from ..resilience.faults import fault_point
from ..settrie.filter import filter_non_maximal

# Module-level worker state, initialised once per worker process.
_WORKER_STATE: dict = {}


def _worker_metrics(engine: FastQC, subproblem: CompactSubproblem) -> dict:
    """Record one subproblem's counters into a throwaway registry snapshot.

    Worker processes cannot inc the parent's :data:`~repro.obs.metrics.REGISTRY`
    directly (each fork has its own copy), so every task returns a snapshot of
    a task-local registry and the parent merges them — counters and histograms
    add up exactly as if the work had run in-process.
    """
    local = MetricsRegistry()
    local.counter("repro_parallel_subproblems_total",
                  "DC subproblems enumerated by pool workers").inc()
    local.counter("repro_parallel_worker_branches_total",
                  "Branches explored inside pool workers").inc(
        engine.statistics.branches_explored)
    local.histogram("repro_parallel_subproblem_sizes",
                    "Vertex counts of subproblems shipped to workers").observe(
        len(subproblem.labels))
    return local.snapshot()


@dataclass(frozen=True)
class _WorkerConfig:
    """The enumeration parameters shared by every shipped subproblem."""

    gamma: float
    theta: int
    branching: str
    kernel: str


def _initialise_worker(config: _WorkerConfig) -> None:
    """Record the shared parameters once per worker process."""
    _WORKER_STATE["config"] = config


def run_compact_subproblem(subproblem: CompactSubproblem, gamma: float,
                           theta: int, branching: str = "hybrid",
                           kernel: str = "ledger"
                           ) -> tuple[list[frozenset], dict]:
    """Enumerate one compact DC subproblem (the worker-side unit of work).

    The maximality filter checks single-vertex extensions against the ball
    plus its one-hop halo, which decides exactly like the sequential driver's
    full-graph check (any extension vertex is adjacent to the candidate set,
    hence inside ball ∪ halo) — so the emitted candidate sets are *identical*
    to the sequential driver's for this root, wherever the payload runs: a
    pool worker process here or a ``repro worker`` spool consumer
    (:mod:`repro.serve.worker`).  Returns the candidate sets plus a metrics
    snapshot for the coordinating process to merge (see
    :func:`_worker_metrics`).
    """
    fault_point("engine.subproblem")
    graph = subproblem.build_graph()
    maximality = (subproblem.build_maximality_graph()
                  if subproblem.halo_labels else graph)
    engine = FastQC(graph, gamma, theta,
                    branching=branching, kernel=kernel,
                    maximality_graph=maximality)
    chunk = engine.enumerate_branch(subproblem.initial_branch())
    return chunk, _worker_metrics(engine, subproblem)


def _run_subproblem(subproblem: CompactSubproblem) -> tuple[list[frozenset], dict]:
    """Pool-worker entry point: one subproblem under the per-process config."""
    config: _WorkerConfig = _WORKER_STATE["config"]
    return run_compact_subproblem(subproblem, config.gamma, config.theta,
                                  branching=config.branching,
                                  kernel=config.kernel)


class ParallelDCFastQC:
    """DCFastQC with the per-vertex subproblems distributed over processes.

    Parameters mirror :class:`repro.core.dcfastqc.DCFastQC` plus ``workers``
    (process count, default: CPU count capped at 8) and ``chunk_size`` (how
    many subproblems each task ships, default 8).  With ``workers=1``
    everything runs in-process, which is also the fallback used on platforms
    without ``fork``-style multiprocessing.
    """

    def __init__(self, graph: Graph, gamma: float, theta: int,
                 branching: str = "hybrid", kernel: str = "ledger",
                 max_rounds: int = DEFAULT_MAX_ROUNDS,
                 workers: int | None = None, chunk_size: int = 8) -> None:
        # Accept an engine PreparedGraph transparently (lazy import: no cycle).
        from ..engine.prepared import as_plain_graph

        graph = as_plain_graph(graph)
        validate_parameters(gamma, theta)
        if workers is not None and workers < 1:
            raise ValueError("workers must be a positive integer")
        if chunk_size < 1:
            raise ValueError("chunk_size must be a positive integer")
        self.graph = graph
        self.gamma = gamma
        self.theta = theta
        self.branching = branching
        self.kernel = kernel
        self.max_rounds = max_rounds
        self.workers = workers if workers is not None else min(8, os.cpu_count() or 1)
        self.chunk_size = chunk_size

    # ------------------------------------------------------------------
    def _driver(self) -> DCFastQC:
        """A sequential driver with this configuration (preprocessing + fallback)."""
        return DCFastQC(self.graph, self.gamma, self.theta, branching=self.branching,
                        kernel=self.kernel, max_rounds=self.max_rounds)

    def _subproblems(self) -> Sequence[CompactSubproblem]:
        """The compact subproblem payloads (parent-side preprocessing)."""
        return tuple(self._driver().iter_compact_subproblems())

    def enumerate(self) -> list[frozenset]:
        """Return a set of QCs containing every large MQC (MQCE-S1), in parallel."""
        # Cheap workload estimate first (core reduction + ordering only): small
        # jobs run in-process without materialising any compact payloads.
        driver = self._driver()
        ordering = driver._vertex_ordering(driver._core_reduction_mask())
        if not ordering:
            return []
        if self.workers <= 1 or len(ordering) <= self.chunk_size:
            return self._driver().enumerate()
        subproblems = self._subproblems()
        if not subproblems:
            return []
        config = _WorkerConfig(gamma=self.gamma, theta=self.theta,
                               branching=self.branching, kernel=self.kernel)
        results: set[frozenset] = set()
        try:
            with ProcessPoolExecutor(max_workers=self.workers,
                                     initializer=_initialise_worker,
                                     initargs=(config,)) as pool:
                for chunk, metrics in pool.map(_run_subproblem, subproblems,
                                               chunksize=self.chunk_size):
                    results.update(chunk)
                    REGISTRY.merge(metrics)
        except (OSError, ValueError):  # pragma: no cover - platform fallback
            return self._driver().enumerate()
        return sorted(results, key=lambda h: (-len(h), sorted(map(str, h))))

    def find_maximal(self) -> list[frozenset]:
        """Full parallel MQCE: enumerate in parallel and filter non-maximal QCs."""
        return filter_non_maximal(self.enumerate(), theta=self.theta)


def parallel_enumerate(graph: Graph, gamma: float, theta: int, workers: int | None = None,
                       **kwargs) -> list[frozenset]:
    """Functional wrapper around :class:`ParallelDCFastQC.enumerate`."""
    return ParallelDCFastQC(graph, gamma, theta, workers=workers, **kwargs).enumerate()
