"""Parallel DCFastQC: process-level parallelism over the DC subproblems.

The paper's conclusion lists "efficient parallel implementations" as future
work, and its related work covers a task-parallel Quick+ (T-thinker).  The
divide-and-conquer framework is embarrassingly parallel: every subproblem
``(v_i, G_i)`` is independent, so this module simply shards the subproblems
across worker processes, runs the same FastQC engine in each worker and merges
the outputs before the usual MQCE-S2 filter.

The implementation purposely re-derives each subproblem inside the worker from
``(graph, ordering position)`` instead of shipping branch bitmasks, so the
parent process does the cheap global preprocessing (core reduction, degeneracy
ordering) exactly once and the expensive enumeration is all that is
distributed.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..core.branch import Branch
from ..core.dcfastqc import DCFastQC, DEFAULT_MAX_ROUNDS
from ..core.fastqc import FastQC
from ..graph.graph import Graph
from ..quasiclique.definitions import validate_parameters
from ..settrie.filter import filter_non_maximal

# Module-level worker state, initialised once per worker process.
_WORKER_STATE: dict = {}


@dataclass(frozen=True)
class _WorkerConfig:
    """Everything a worker needs to rebuild its enumerator."""

    edges: tuple
    vertices: tuple
    gamma: float
    theta: int
    branching: str
    max_rounds: int
    framework: str
    ordering: tuple


def _initialise_worker(config: _WorkerConfig) -> None:
    """Build the graph and driver once per worker process."""
    graph = Graph(edges=config.edges, vertices=config.vertices)
    driver = DCFastQC(graph, config.gamma, config.theta, branching=config.branching,
                      framework=config.framework, max_rounds=config.max_rounds)
    _WORKER_STATE["graph"] = graph
    _WORKER_STATE["driver"] = driver
    _WORKER_STATE["config"] = config


def _run_subproblem(position: int) -> list[frozenset]:
    """Enumerate one DC subproblem (identified by its position in the ordering)."""
    graph: Graph = _WORKER_STATE["graph"]
    driver: DCFastQC = _WORKER_STATE["driver"]
    config: _WorkerConfig = _WORKER_STATE["config"]
    ordering = config.ordering
    root = ordering[position]
    root_index = graph.index_of(root)
    prior_mask = 0
    for earlier in ordering[:position]:
        prior_mask |= 1 << graph.index_of(earlier)
    core_mask = driver._core_reduction_mask()
    remaining = core_mask & ~prior_mask
    if not (remaining >> root_index) & 1:
        return []
    from ..graph.subgraph import two_hop_mask

    subproblem_mask = driver._shrink_subproblem(
        root_index, two_hop_mask(graph, root_index, remaining))
    if subproblem_mask.bit_count() < config.theta or not (subproblem_mask >> root_index) & 1:
        return []
    engine = FastQC(graph, config.gamma, config.theta, branching=config.branching)
    branch = Branch(1 << root_index, subproblem_mask & ~(1 << root_index),
                    prior_mask & ~(1 << root_index))
    return engine.enumerate_branch(branch)


class ParallelDCFastQC:
    """DCFastQC with the per-vertex subproblems distributed over processes.

    Parameters mirror :class:`repro.core.dcfastqc.DCFastQC` plus ``workers``
    (process count, default: CPU count capped at 8) and ``chunk_size`` (how
    many subproblems each task ships, default 8).  With ``workers=1``
    everything runs in-process, which is also the fallback used on platforms
    without ``fork``-style multiprocessing.
    """

    def __init__(self, graph: Graph, gamma: float, theta: int,
                 branching: str = "hybrid", max_rounds: int = DEFAULT_MAX_ROUNDS,
                 workers: int | None = None, chunk_size: int = 8) -> None:
        # Accept an engine PreparedGraph transparently (lazy import: no cycle).
        from ..engine.prepared import as_plain_graph

        graph = as_plain_graph(graph)
        validate_parameters(gamma, theta)
        if workers is not None and workers < 1:
            raise ValueError("workers must be a positive integer")
        if chunk_size < 1:
            raise ValueError("chunk_size must be a positive integer")
        self.graph = graph
        self.gamma = gamma
        self.theta = theta
        self.branching = branching
        self.max_rounds = max_rounds
        self.workers = workers if workers is not None else min(8, os.cpu_count() or 1)
        self.chunk_size = chunk_size

    # ------------------------------------------------------------------
    def _ordering(self) -> Sequence:
        """The degeneracy ordering of the core-reduced graph (same as DCFastQC)."""
        driver = DCFastQC(self.graph, self.gamma, self.theta, branching=self.branching,
                          max_rounds=self.max_rounds)
        core_mask = driver._core_reduction_mask()
        return driver._vertex_ordering(core_mask)

    def enumerate(self) -> list[frozenset]:
        """Return a set of QCs containing every large MQC (MQCE-S1), in parallel."""
        ordering = tuple(self._ordering())
        if not ordering:
            return []
        if self.workers <= 1 or len(ordering) <= self.chunk_size:
            driver = DCFastQC(self.graph, self.gamma, self.theta, branching=self.branching,
                              max_rounds=self.max_rounds)
            return driver.enumerate()
        config = _WorkerConfig(
            edges=tuple(self.graph.edges()),
            vertices=tuple(self.graph.vertices()),
            gamma=self.gamma, theta=self.theta, branching=self.branching,
            max_rounds=self.max_rounds, framework="dc", ordering=ordering,
        )
        results: set[frozenset] = set()
        try:
            with ProcessPoolExecutor(max_workers=self.workers,
                                     initializer=_initialise_worker,
                                     initargs=(config,)) as pool:
                for chunk in pool.map(_run_subproblem, range(len(ordering)),
                                      chunksize=self.chunk_size):
                    results.update(chunk)
        except (OSError, ValueError):  # pragma: no cover - platform fallback
            driver = DCFastQC(self.graph, self.gamma, self.theta, branching=self.branching,
                              max_rounds=self.max_rounds)
            return driver.enumerate()
        return sorted(results, key=lambda h: (-len(h), sorted(map(str, h))))

    def find_maximal(self) -> list[frozenset]:
        """Full parallel MQCE: enumerate in parallel and filter non-maximal QCs."""
        return filter_non_maximal(self.enumerate(), theta=self.theta)


def parallel_enumerate(graph: Graph, gamma: float, theta: int, workers: int | None = None,
                       **kwargs) -> list[frozenset]:
    """Functional wrapper around :class:`ParallelDCFastQC.enumerate`."""
    return ParallelDCFastQC(graph, gamma, theta, workers=workers, **kwargs).enumerate()
